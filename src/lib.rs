//! `lfmalloc-repro` — umbrella crate for the reproduction of
//! Maged M. Michael, *Scalable Lock-Free Dynamic Memory Allocation*
//! (PLDI 2004).
//!
//! This crate re-exports the workspace's public surface so examples and
//! downstream users need a single dependency:
//!
//! * [`lfmalloc`] — the lock-free allocator (the paper's contribution).
//! * [`dlheap`], [`ptmalloc`], [`hoard`] — the three lock-based
//!   baselines of §4.
//! * [`workloads`] — the six benchmarks of §4.1.
//! * [`oracle`] — the shadow-heap differential verifier with trace
//!   record/replay and failure shrinking.
//! * [`hazard`], [`lockfree_structs`], [`osmem`] — the substrates.
//!
//! # Quickstart
//!
//! ```
//! use lfmalloc_repro::prelude::*;
//!
//! let alloc = LfMalloc::new_default();
//! unsafe {
//!     let p = alloc.malloc(128);
//!     assert!(!p.is_null());
//!     alloc.free(p);
//! }
//! ```
//!
//! See `examples/` for runnable programs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use dlheap;
pub use hazard;
pub use hoard;
pub use lfmalloc;
pub use lockfree_structs;
pub use malloc_api;
pub use oracle;
pub use osmem;
pub use ptmalloc;
pub use workloads;

/// The names most programs need.
pub mod prelude {
    pub use dlheap::LockedHeap;
    pub use hoard::Hoard;
    pub use lfmalloc::{
        Config, GlobalLfMalloc, Hardening, HealthSnapshot, HeapMode, LfMalloc, LivenessConfig,
        LivenessPolicy, MaintenanceBudget, MaintenanceReport, MisuseKind, MisuseReport,
        PartialMode, ReaperConfig, WatchSite,
    };
    pub use malloc_api::{AllocStats, RawMalloc};
    pub use oracle::{OracleMalloc, Trace};
    pub use ptmalloc::Ptmalloc;
    #[cfg(feature = "stats")]
    pub use lfmalloc::{ClassStats, Event, EventKind, StatsSnapshot};
    #[cfg(feature = "forensics")]
    pub use lfmalloc::{
        analyze_dump, diff_dumps, AnalyzeReport, DiffReport, FlightOp, ForensicsParams, OpKind,
        PtrKind, PtrReport,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn all_four_allocators_share_one_interface() {
        let allocs: Vec<Box<dyn RawMalloc + Send + Sync>> = vec![
            Box::new(LfMalloc::new_default()),
            Box::new(Hoard::new(2)),
            Box::new(Ptmalloc::new()),
            Box::new(LockedHeap::new()),
        ];
        for a in &allocs {
            unsafe {
                let p = a.malloc(100);
                assert!(!p.is_null(), "{}", a.name());
                a.free(p);
            }
        }
    }
}
