//! Installing the lock-free allocator as the Rust global allocator.
//!
//! Every `Box`, `Vec`, `String`, … in this process is served by the
//! PLDI 2004 algorithm; initialization happens lock-free on the first
//! allocation (§3.1).
//!
//! Run with `cargo run --release --example global_alloc`.

use lfmalloc_repro::prelude::*;
use std::collections::HashMap;

#[global_allocator]
static GLOBAL: GlobalLfMalloc = GlobalLfMalloc::new();

fn main() {
    // Ordinary Rust data structures — all traffic goes through lfmalloc.
    let mut map: HashMap<String, Vec<u64>> = HashMap::new();
    for i in 0..10_000u64 {
        map.entry(format!("bucket-{}", i % 97)).or_default().push(i);
    }
    let total: usize = map.values().map(Vec::len).sum();
    assert_eq!(total, 10_000);

    // Multithreaded: string churn across threads exercises remote frees
    // through the global allocator.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut v: Vec<String> = Vec::new();
                for i in 0..20_000usize {
                    v.push(format!("thread {t} item {i}"));
                    if v.len() > 100 {
                        v.swap_remove(i % v.len());
                    }
                }
                v.len()
            })
        })
        .collect();
    let kept: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let stats = GLOBAL.instance().os_stats();
    println!("hash map buckets: {}", map.len());
    println!("strings kept across threads: {kept}");
    println!(
        "lfmalloc OS footprint: live {:.2} MiB, peak {:.2} MiB, {} OS calls",
        stats.live_bytes as f64 / (1024.0 * 1024.0),
        stats.peak_bytes as f64 / (1024.0 * 1024.0),
        stats.os_allocs,
    );
    println!("ok");
}
