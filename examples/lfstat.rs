//! `lfstat` — offline viewer for `--stats-json` records and the live
//! profiler.
//!
//! ```text
//! cargo run --release --features stats,profile --example lfstat            # demo
//! cargo run --release --features stats --example lfstat -- print FILE     # pretty-print
//! cargo run --release --features stats --example lfstat -- diff A B       # compare runs
//! cargo run --release --features stats,profile --example lfstat -- top 5 FILE
//! ```
//!
//! `print` renders one stats-JSON record (the last line of
//! `stats_demo`, a bench `--stats-json` record, or `stats().to_json()`)
//! as the operator-facing summary: op counts, latency percentiles per
//! path, fragmentation, health. `diff` subtracts record A from record B
//! counter-by-counter — take a snapshot before and after a workload
//! phase and diff them to see only that phase. `top N` ranks the
//! embedded retention profile's allocation sites by estimated live
//! bytes. `FILE` of `-` reads stdin; records may be surrounded by other
//! output lines (the last JSON object line wins).
//!
//! The JSON reader below is deliberately minimal and dependency-free —
//! enough for the allocator's own records, not a general parser.

use lfmalloc_repro::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Minimal JSON model
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Walks `a.b.c` through nested objects.
    fn get(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            let Json::Obj(fields) = cur else { return None };
            cur = &fields.iter().find(|(k, _)| k == key)?.1;
        }
        Some(cur)
    }

    fn num(&self, path: &str) -> f64 {
        match self.get(path) {
            Some(Json::Num(n)) => *n,
            _ => 0.0,
        }
    }

    fn u64(&self, path: &str) -> u64 {
        self.num(path) as u64
    }

    fn str(&self, path: &str) -> &str {
        match self.get(path) {
            Some(Json::Str(s)) => s,
            _ => "",
        }
    }

    fn arr(&self, path: &str) -> &[Json] {
        match self.get(path) {
            Some(Json::Arr(v)) => v,
            _ => &[],
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { b: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = self.b.get(self.i).copied().ok_or("bad escape")?;
                    self.i += 1;
                    match esc {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        c => out.push(c as char),
                    }
                }
                c => {
                    self.i += 1;
                    out.push(c as char);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("bad array at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut v = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(v));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            v.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(v));
                }
                _ => return Err(format!("bad object at byte {}", self.i)),
            }
        }
    }
}

/// Loads the last JSON-object line of `path` (`-` = stdin): stats-JSON
/// records are emitted as the final stdout line by convention, so demo
/// and bench output can be piped straight in.
fn load_record(path: &str) -> Json {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("lfstat: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let line = text
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .unwrap_or_else(|| {
            eprintln!("lfstat: no JSON object line in {path}");
            std::process::exit(2);
        });
    // Bench records wrap the allocator stats: unwrap a top-level
    // "stats" field when present.
    let v = Parser::new(line.trim()).value().unwrap_or_else(|e| {
        eprintln!("lfstat: {path}: {e}");
        std::process::exit(2);
    });
    match v.get("stats") {
        Some(inner @ Json::Obj(_)) => inner.clone(),
        _ => v,
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn human_bytes(n: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n;
    let mut u = 0;
    while v.abs() >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{n:.0} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

fn human_nanos(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.2} s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2} ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.2} us", n / 1e3)
    } else {
        format!("{n:.0} ns")
    }
}

const LAT_PATHS: [&str; 8] = [
    "malloc_fast",
    "malloc_slow",
    "malloc_large",
    "free_fast",
    "free_slow",
    "free_large",
    "maintain",
    "trim",
];

fn print_record(rec: &Json) {
    let t = rec.get("totals").cloned().unwrap_or(Json::Obj(vec![]));
    let mallocs = t.num("malloc_fast") + t.num("malloc_slow") + t.num("malloc_newsb");
    let frees = t.num("free_local") + t.num("free_remote");
    println!("== operations ==");
    println!(
        "  small mallocs {:>14}   fast {:.1}%  partial {:.1}%  new-sb {:.1}%",
        mallocs as u64,
        100.0 * t.num("malloc_fast") / mallocs.max(1.0),
        100.0 * t.num("malloc_slow") / mallocs.max(1.0),
        100.0 * t.num("malloc_newsb") / mallocs.max(1.0),
    );
    println!(
        "  small frees   {:>14}   local {:.1}%  remote {:.1}%  (teardown {})",
        frees as u64,
        100.0 * t.num("free_local") / frees.max(1.0),
        100.0 * t.num("free_remote") / frees.max(1.0),
        t.u64("free_teardown"),
    );
    println!(
        "  large         {:>14} alloc / {} free ({} live)",
        rec.u64("large.alloc"),
        rec.u64("large.free"),
        rec.u64("large.live"),
    );
    println!(
        "  superblocks retired {}   trims {}   oom backoffs {}   events dropped {}",
        t.u64("free_empty"),
        rec.u64("trims"),
        rec.u64("oom_backoffs"),
        rec.u64("events_dropped"),
    );

    if rec.get("latency").is_some() {
        println!("\n== latency ==");
        println!(
            "  {:<13} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "path", "count", "p50", "p90", "p99", "p99.9"
        );
        for path in LAT_PATHS {
            let count = rec.u64(&format!("latency.{path}.count"));
            if count == 0 {
                continue;
            }
            println!(
                "  {:<13} {:>12} {:>10} {:>10} {:>10} {:>10}",
                path,
                count,
                human_nanos(rec.num(&format!("latency.{path}.p50"))),
                human_nanos(rec.num(&format!("latency.{path}.p90"))),
                human_nanos(rec.num(&format!("latency.{path}.p99"))),
                human_nanos(rec.num(&format!("latency.{path}.p999"))),
            );
        }
    }

    if rec.get("fragmentation").is_some() {
        println!("\n== fragmentation ==");
        println!(
            "  small heap: {} committed, {} live, external {}‰",
            human_bytes(rec.num("fragmentation.small_committed_bytes")),
            human_bytes(rec.num("fragmentation.small_live_bytes")),
            rec.u64("fragmentation.external_frag_permille"),
        );
        let mut classes: Vec<&Json> = rec.arr("fragmentation.classes").iter().collect();
        classes.sort_by(|a, b| b.u64("committed_bytes").cmp(&a.u64("committed_bytes")));
        for c in classes.iter().take(5) {
            println!(
                "    class {:>3} (size {:>6}): {:>10} committed, {:>10} live, {:>4}‰",
                c.u64("class"),
                c.u64("size"),
                human_bytes(c.num("committed_bytes")),
                human_bytes(c.num("live_bytes")),
                c.u64("frag_permille"),
            );
        }
    }

    println!(
        "\n== footprint ==\n  os live {}   peak {}   reconcile ok: {}",
        human_bytes(rec.num("os.live_bytes")),
        human_bytes(rec.num("os.peak_bytes")),
        matches!(rec.get("reconcile.ok"), Some(Json::Bool(true))),
    );

    if rec.get("profile").is_some() {
        println!(
            "\n== retention profile ==\n  stride {}   {} sampled, {} freed, {} live \
             (≈{} live), internal frag {}‰",
            human_bytes(rec.num("profile.stride_bytes")),
            rec.u64("profile.samples_taken"),
            rec.u64("profile.sampled_frees"),
            rec.u64("profile.live_samples"),
            human_bytes(rec.num("profile.live_bytes_estimate")),
            rec.u64("profile.internal_frag_permille"),
        );
        print_sites(rec, 5);
    }
}

fn print_sites(rec: &Json, n: usize) {
    let sites = rec.arr("profile.sites");
    if sites.is_empty() {
        println!("  (no live samples)");
        return;
    }
    println!(
        "  {:<52} {:>12} {:>8} {:>10}",
        "site", "live bytes", "samples", "oldest"
    );
    for s in sites.iter().take(n) {
        println!(
            "  {:<52} {:>12} {:>8} {:>10}",
            s.str("site"),
            human_bytes(s.num("live_bytes")),
            s.u64("live_samples"),
            human_nanos(s.num("oldest_age_nanos")),
        );
    }
}

fn print_diff(a: &Json, b: &Json) {
    println!("{:<34} {:>14} {:>14} {:>14}", "counter", "before", "after", "delta");
    let rows: &[(&str, &str)] = &[
        ("small mallocs (fast)", "totals.malloc_fast"),
        ("small mallocs (partial)", "totals.malloc_slow"),
        ("small mallocs (new sb)", "totals.malloc_newsb"),
        ("small frees (local)", "totals.free_local"),
        ("small frees (remote)", "totals.free_remote"),
        ("superblocks retired", "totals.free_empty"),
        ("large allocs", "large.alloc"),
        ("large frees", "large.free"),
        ("trims", "trims"),
        ("oom backoffs", "oom_backoffs"),
        ("events dropped", "events_dropped"),
        ("os live bytes", "os.live_bytes"),
        ("os peak bytes", "os.peak_bytes"),
        ("external frag permille", "fragmentation.external_frag_permille"),
        ("p99 malloc fast (ns)", "latency.malloc_fast.p99"),
        ("p99 malloc slow (ns)", "latency.malloc_slow.p99"),
        ("p99 free fast (ns)", "latency.free_fast.p99"),
    ];
    for (label, path) in rows {
        let (va, vb) = (a.num(path), b.num(path));
        if va == 0.0 && vb == 0.0 {
            continue;
        }
        println!(
            "{:<34} {:>14} {:>14} {:>+14}",
            label,
            va as i64,
            vb as i64,
            (vb - va) as i64
        );
    }
}

// ---------------------------------------------------------------------
// Demo workload
// ---------------------------------------------------------------------

/// A few distinct allocation sites for the demo's retention report; one
/// of them leaks.
fn demo_workload(a: &Arc<LfMalloc>) -> Vec<usize> {
    let mut leaked = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..4 {
            let a = Arc::clone(a);
            handles.push(s.spawn(move || {
                let mut kept = Vec::new();
                for i in 0..200_000usize {
                    // Site A: short-lived mixed sizes, freed instantly.
                    let p = unsafe { a.malloc(16 + (i * 7) % 480) };
                    assert!(!p.is_null());
                    unsafe { a.free(p) };
                    if i % 10 == t {
                        // Site B: retained for the whole run — the
                        // retention report should rank this line first.
                        let q = unsafe { a.malloc(256) };
                        assert!(!q.is_null());
                        kept.push(q as usize);
                    }
                }
                kept
            }));
        }
        for h in handles {
            leaked.extend(h.join().unwrap());
        }
    });
    leaked
}

fn demo() {
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(4)));
    let leaked = demo_workload(&a);
    a.as_ref().maintain(MaintenanceBudget::light());

    let mut out = std::io::stdout();
    a.as_ref().dump_stats(&mut out).expect("stdout");

    #[cfg(feature = "profile")]
    {
        println!("\nTop retention sites (live sampled bytes):");
        let report = a.as_ref().retention_report();
        for r in report.iter().take(5) {
            println!(
                "  {:<52} {:>10} over {} samples ({} threads)",
                r.site.to_string(),
                r.live_bytes,
                r.live_samples,
                r.threads
            );
        }
    }

    // The OpenMetrics exposition, checked before printing a preview.
    let text = a.as_ref().render_openmetrics();
    lfmalloc::metrics::check_openmetrics(&text).expect("well-formed exposition");
    println!(
        "\nOpenMetrics exposition: {} bytes, {} samples (run with serve_metrics() to scrape)",
        text.len(),
        text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count()
    );

    // Capture the record while the retained set is still live so the
    // embedded profile carries the demo's retention sites, then clean
    // up and print it last, by convention.
    let record = a.as_ref().stats().to_json();

    // With forensics on, also write a post-mortem heap dump while the
    // leak is live — `lfstat analyze <path>` should rank site B first.
    #[cfg(feature = "forensics")]
    {
        let path = std::env::temp_dir().join("lfstat-demo.heapdump.json");
        a.as_ref().dump_heap(&path).expect("heap dump");
        println!("\nHeap dump written to {} (try: lfstat analyze {})", path.display(), path.display());
    }

    for p in leaked {
        unsafe { a.free(p as *mut u8) };
    }
    println!();
    println!("{record}");
}

/// Reads a whole dump file (`-` for stdin). Heap dumps are one JSON
/// document, not a JSON-lines record, so this does not reuse
/// `load_record`'s last-line convention.
#[cfg(feature = "forensics")]
fn load_dump(path: &str) -> String {
    use std::io::Read;
    let mut text = String::new();
    if path == "-" {
        std::io::stdin().read_to_string(&mut text).expect("read stdin");
    } else {
        text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| { eprintln!("lfstat: {path}: {e}"); std::process::exit(2) });
    }
    text
}

fn usage() -> ! {
    eprintln!(
        "usage: lfstat                      run the demo workload\n\
         \x20      lfstat print FILE           pretty-print a stats-JSON record\n\
         \x20      lfstat diff A B             diff two stats-JSON records\n\
         \x20      lfstat top N FILE           top-N retention sites\n\
         \x20      lfstat analyze DUMP         analyze a heap dump (forensics builds)\n\
         \x20      lfstat diff-heap A B        diff two heap dumps (forensics builds)\n\
         FILE may be `-` for stdin; the last JSON line of the file is used."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        [] | ["demo"] => demo(),
        ["print", file] => print_record(&load_record(file)),
        ["diff", a, b] => print_diff(&load_record(a), &load_record(b)),
        ["top", n, file] => {
            let n: usize = n.parse().unwrap_or_else(|_| usage());
            print_sites(&load_record(file), n);
        }
        #[cfg(feature = "forensics")]
        ["analyze", dump] => match lfmalloc::analyze_dump(&load_dump(dump)) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("lfstat: {e}");
                std::process::exit(1);
            }
        },
        #[cfg(feature = "forensics")]
        ["diff-heap", a, b] => match lfmalloc::diff_dumps(&load_dump(a), &load_dump(b)) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("lfstat: {e}");
                std::process::exit(1);
            }
        },
        #[cfg(not(feature = "forensics"))]
        ["analyze", ..] | ["diff-heap", ..] => {
            eprintln!("lfstat: this build lacks heap-dump support; rebuild with --features forensics");
            std::process::exit(2);
        }
        _ => usage(),
    }
}
