//! Quickstart: the lock-free allocator's direct API.
//!
//! Run with `cargo run --release --example quickstart`.

use lfmalloc_repro::prelude::*;

fn main() {
    // Paper-shaped defaults: one processor heap per CPU, FIFO partial
    // lists, 16 KiB superblocks in 1 MiB hyperblocks.
    let alloc = LfMalloc::new_default();
    println!("config: {:?}", alloc.config());

    // Basic malloc/free.
    unsafe {
        let p = alloc.malloc(100);
        assert!(!p.is_null());
        core::ptr::write_bytes(p, 0xAB, 100);
        println!("allocated 100 B at {p:p} (8-byte aligned: {})", p as usize % 8 == 0);
        alloc.free(p);
    }

    // Aligned allocation (Rust `Layout`-style).
    unsafe {
        let p = alloc.malloc_aligned(256, 64);
        println!("allocated 256 B at 64-byte alignment: {p:p}");
        alloc.free(p);
    }

    // Many threads hammering the same allocator: the lock-free paths
    // guarantee system-wide progress no matter how threads interleave.
    let shared = std::sync::Arc::new(alloc);
    let mut handles = Vec::new();
    for t in 0..4 {
        let a = std::sync::Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut live = Vec::new();
            for i in 0..50_000usize {
                unsafe {
                    let p = a.malloc(8 + (i * 16 + t) % 500);
                    assert!(!p.is_null());
                    live.push(p);
                    if live.len() > 64 {
                        a.free(live.swap_remove(i % live.len()));
                    }
                }
            }
            for p in live {
                unsafe { a.free(p) };
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = shared.os_stats();
    println!(
        "after 200k allocations on 4 threads: peak OS memory {:.2} MiB across {} hyperblocks",
        stats.peak_bytes as f64 / (1024.0 * 1024.0),
        shared.hyperblock_count(),
    );
    println!("ok");
}
