//! Fault-injection walkthrough: FlakySource failure plans, the heap
//! integrity auditor, and (with `--features failpoints`) deterministic
//! failpoint schedules.
//!
//! ```text
//! cargo run --release --example fault_demo
//! cargo run --release --example fault_demo --features failpoints
//! ```

use lfmalloc_repro::prelude::*;
use malloc_api::testkit;
use osmem::{FlakySource, SystemSource};
use std::sync::Arc;

unsafe fn churn<S: osmem::PageSource + Send + Sync>(a: &LfMalloc<S>, seed: u64, ops: usize) {
    let mut rng = testkit::TestRng::new(seed);
    let mut live: Vec<(*mut u8, usize)> = Vec::new();
    for _ in 0..ops {
        if live.len() < 48 && rng.range(0, 3) != 0 {
            let sz = match rng.range(0, 3) {
                0 => rng.range(8, 256),
                1 => rng.range(256, 8192),
                _ => rng.range(8192, 40_000),
            };
            let p = a.malloc(sz);
            if !p.is_null() {
                testkit::fill(p, sz);
                live.push((p, sz));
            }
        } else if let Some((p, sz)) = live.pop() {
            testkit::check_fill(p, sz);
            a.free(p);
        }
    }
    for (p, _) in live {
        a.free(p);
    }
}

fn main() {
    // 1. Churn a plain instance, then ask the auditor for a verdict.
    let a = LfMalloc::with_config(Config::with_heaps(2));
    unsafe { churn(&a, 0xDEC0DE, 30_000) };
    let rep = a.audit();
    println!("== baseline churn ==\n{rep}");
    assert!(rep.is_clean());

    // 2. Layered OS-failure plans: ~1/8 of page requests fail at
    //    random (seeded), plus every 13th deterministically.
    let src = Arc::new(FlakySource::reliable(SystemSource::new()));
    src.fail_with_chance(8192, 0xF1A2);
    src.fail_every_nth(13);
    let a = LfMalloc::with_config_and_source(Config::with_heaps(2), Arc::clone(&src));
    unsafe { churn(&a, 0xF1A2, 30_000) };
    println!("== flaky OS ==\nOS denials injected: {}", src.denials());
    let rep = a.audit();
    assert!(rep.is_clean(), "{rep}");
    println!("audit: clean ({} descriptors linked)", rep.descriptors_linked);

    // 3. One-shot outage: the next 4 page requests fail, then the
    //    source heals itself. Large blocks always hit the OS.
    src.fail_every_nth(0);
    src.fail_with_chance(0, 0);
    src.fail_next(4);
    let mut nulls = 0;
    unsafe {
        loop {
            let p = a.malloc(1 << 20);
            if p.is_null() {
                nulls += 1;
            } else {
                a.free(p);
                break;
            }
        }
    }
    println!("== outage ==\nmalloc(1 MiB) returned null {nulls}x, then recovered");

    // 4. The auditor is not a rubber stamp: corrupt a free-list link
    //    and it must object.
    let a = LfMalloc::with_config(Config::with_heaps(1));
    unsafe {
        let p = a.malloc(64);
        a.free(p);
        (p.sub(8) as *mut u64).write(u64::MAX); // smash the next-free index
    }
    let rep = a.audit();
    println!("== planted corruption ==");
    for v in &rep.violations {
        println!("caught: {v}");
    }
    assert!(!rep.is_clean(), "auditor missed planted free-list corruption");

    // 5. Deterministic failpoints (feature-gated; zero cost when off).
    #[cfg(feature = "failpoints")]
    {
        use malloc_api::failpoints::{self as fp, FpAction, FpTrigger};
        let _guard = fp::scenario(0x5EED);
        fp::arm("active.reserve", FpAction::Yield, FpTrigger::EveryNth(13));
        fp::arm("active.pop", FpAction::Retry, FpTrigger::EveryNth(11));
        fp::arm("free.link", FpAction::Retry, FpTrigger::EveryNth(9));
        fp::arm_limited("active.reserved", FpAction::Kill, FpTrigger::EveryNth(301), 8);
        fp::arm_limited("partial.put", FpAction::Kill, FpTrigger::EveryNth(3), 3);

        let a = Arc::new(LfMalloc::with_config(Config::with_heaps(1)));
        let threads: Vec<_> = (0..2)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || unsafe { churn(&a, 0x5EED ^ (t + 1), 20_000) })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        println!("== failpoint schedule 0x5EED ==");
        for (site, hits) in fp::fired_sites() {
            println!("{site:>16}: fired {hits}x");
        }
        let rep = a.audit();
        assert!(rep.is_clean(), "{rep}");
        println!("audit: clean after yields, forced retries and kills");
    }
    #[cfg(not(feature = "failpoints"))]
    println!("(rebuild with --features failpoints for the scheduled-fault demo)");
}
