//! The paper's motivating server scenario: a producer dispatching tasks
//! to worker threads through a lock-free FIFO queue, with all task
//! memory coming from the lock-free allocator — so neither queue nor
//! allocator can deadlock the server, no matter how threads are delayed
//! or descheduled.
//!
//! This drives the same code path as Figure 8(f–h); the measured
//! benchmark version is `workloads::producer_consumer`.
//!
//! Run with `cargo run --release --example producer_consumer`.

use lfmalloc_repro::prelude::*;
use lfmalloc_repro::workloads::producer_consumer::{self, Params};
use std::sync::Arc;

fn main() {
    let consumers = 3;
    let params = Params { database_size: 1 << 18, tasks: 20_000, work: 500, seed: 42 };

    println!(
        "dispatching {} tasks to {} consumers (work={})...",
        params.tasks, consumers, params.work
    );
    let alloc = Arc::new(LfMalloc::new_default());
    let result = producer_consumer::run(Arc::clone(&alloc), consumers + 1, params);
    println!("lfmalloc  : {result}");

    // The same workload on the serial baseline, for contrast.
    let libc = Arc::new(LockedHeap::new());
    let result_libc = producer_consumer::run(libc, consumers + 1, params);
    println!("libc-style: {result_libc}");

    println!(
        "speedup of lock-free allocation for this server: {:.2}x",
        result.speedup_over(&result_libc)
    );
    let stats = alloc.os_stats();
    println!(
        "lfmalloc peak footprint: {:.2} MiB ({} OS allocations for {} tasks x 4 blocks)",
        stats.peak_bytes as f64 / (1024.0 * 1024.0),
        stats.os_allocs,
        params.tasks,
    );
}
