//! A miniature allocator shoot-out over the public API: all four
//! allocators (the paper's "New", Hoard-style, Ptmalloc-style, and the
//! serial libc stand-in) on two § 4.1 workloads.
//!
//! Run with `cargo run --release --example shootout [threads]`.

use lfmalloc_repro::prelude::*;
use lfmalloc_repro::workloads::{larson, linux_scalability};
use std::sync::Arc;

fn allocators() -> Vec<(&'static str, Arc<dyn RawMalloc + Send + Sync>)> {
    vec![
        ("new (lock-free)", Arc::new(LfMalloc::new_default())),
        ("hoard", Arc::new(Hoard::new_detected())),
        ("ptmalloc", Arc::new(Ptmalloc::new())),
        ("libc (serial)", Arc::new(LockedHeap::new())),
    ]
}

fn main() {
    let threads: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("== linux-scalability: {threads} threads x 100k malloc/free pairs of 8 B ==");
    for (name, alloc) in allocators() {
        let r = linux_scalability::run(Arc::new(alloc), threads, 100_000);
        println!("{name:>18}: {r}");
    }

    println!("\n== larson: {threads} threads x 50k random-size replacements ==");
    for (name, alloc) in allocators() {
        let r = larson::run(Arc::new(alloc), threads, 1024, 50_000, 7);
        println!("{name:>18}: {r}");
    }

    println!(
        "\nexpected shape (paper §4.2): the lock-free allocator leads both\n\
         workloads; the serial allocator degrades as threads contend."
    );
}
