//! The shadow-heap oracle walkthrough: record a workload into a trace,
//! replay it differentially against every allocator in the workspace,
//! then (with `--features failpoints`) catch an intentionally planted
//! allocator bug, auto-shrink the failing trace to a minimal repro, and
//! replay the repro deterministically.
//!
//! ```text
//! cargo run --release --example oracle_demo
//! cargo run --release --example oracle_demo --features failpoints
//! ```

use lfmalloc_repro::prelude::*;
use oracle::{all_subjects, OracleMalloc, Trace};
use std::sync::Arc;

fn main() {
    // 1. Live oracle: every malloc/free in this block is mirrored into
    //    the shadow heap, which checks overlap, alignment, and (via
    //    seeded fill patterns) content integrity at free time.
    let o = OracleMalloc::new(LfMalloc::new_default());
    unsafe {
        let mut live = Vec::new();
        for i in 0..10_000usize {
            if live.len() < 64 && i % 3 != 0 {
                live.push(o.malloc(8 + (i * 37) % 4000));
            } else if let Some(p) = live.pop() {
                o.free(p);
            }
        }
        for p in live {
            o.free(p);
        }
    }
    println!("== live oracle ==");
    println!("violations: {}  live blocks: {}", o.violation_count(), o.live_blocks());
    assert_eq!(o.violation_count(), 0);

    // 2. Record: the same oracle type in record mode captures a real
    //    multi-threaded workload run as a portable text trace.
    let (result, trace) = workloads::record::threadtest_recorded(
        Arc::new(LfMalloc::new_default()),
        2,   // threads
        10,  // rounds
        500, // blocks per round
    );
    println!("\n== recorded threadtest ==");
    println!("workload: {result}");
    println!("trace: {} ops across {} threads", trace.ops.len(), trace.threads);

    // 3. Differential replay: the recorded trace replays op-for-op, in
    //    the identical global order, on every allocator in the
    //    workspace. A violation here would localize a bug to one
    //    allocator.
    println!("\n== differential replay ==");
    for s in all_subjects() {
        let out = s.replay(&trace);
        println!(
            "{:<20} executed={} drained={} violations={}",
            s.name(),
            out.executed_ops,
            out.drained,
            out.violations.len()
        );
        assert!(out.is_clean(), "{}: {:?}", s.name(), out.violations);
    }

    // 4. Generated traces work too — same seed, same trace, any machine.
    let generated = Trace::generate(0xD1FF, 4, 400);
    let out = oracle::replay(&LfMalloc::new_default(), &generated);
    println!("\n== generated trace 0xD1FF ==");
    println!("executed={} violations={}", out.executed_ops, out.violations.len());

    // 5. Catch -> shrink -> replay, against a real planted bug.
    #[cfg(feature = "failpoints")]
    planted_bug_pipeline();
    #[cfg(not(feature = "failpoints"))]
    println!("\n(recompile with --features failpoints for the catch/shrink/replay demo)");
}

/// The full failure pipeline: a failpoint plan makes lfmalloc re-hand
/// out a still-live block, the oracle catches the duplicate, delta
/// debugging shrinks the 400-op trace to a handful of ops, and the
/// minimized repro replays to the identical violation every run.
#[cfg(feature = "failpoints")]
fn planted_bug_pipeline() {
    use oracle::{shrink, subjects::replay_named, FpActionSpec, FpPlan, FpTriggerSpec};

    let mut trace = Trace::generate(0x5EED, 3, 400);
    trace.allocator = "lfmalloc".into();
    trace.failpoints.push(FpPlan {
        site: "alloc.double_handout".into(),
        action: FpActionSpec::Retry,
        trigger: FpTriggerSpec::Nth(7),
        budget: None,
    });

    let (out, _) = replay_named("lfmalloc", &trace);
    println!("\n== planted double-hand-out ==");
    println!("caught: {}", out.violations.first().map(|v| v.to_string()).unwrap_or_default());
    assert!(!out.violations.is_empty());

    let small = shrink(&trace, |cand| {
        !replay_named("lfmalloc", cand).0.violations.is_empty()
    });
    println!("shrunk {} ops -> {} ops", trace.ops.len(), small.ops.len());

    for run in 0..3 {
        let (out, _) = replay_named("lfmalloc", &small);
        println!("replay {run}: {}", out.violations[0]);
    }
    println!("\nminimized repro (corpus-ready):\n{small}");
}
