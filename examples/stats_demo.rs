//! Telemetry walkthrough: an 8-thread producer/consumer run, the
//! jemalloc-style stats dump, a top-5 hottest-size-classes table, and
//! the JSON snapshot (printed last, so scripts can `tail -n 1`).
//!
//! ```text
//! cargo run --release --features stats --example stats_demo
//! ```
//!
//! Producers allocate blocks and hand them across a channel; consumers
//! free them. Every free is therefore *remote* (a different thread —
//! and usually a different heap — than the allocator), which exercises
//! the slow paths the telemetry exists to count: remote frees, FULL →
//! PARTIAL transitions, partial-list reuse, and contended anchor CASes.

use lfmalloc_repro::prelude::*;
use std::sync::mpsc;
use std::sync::Arc;

const PAIRS: usize = 4; // 4 producers + 4 consumers = 8 threads
const BLOCKS_PER_PRODUCER: usize = 50_000;

fn main() {
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(PAIRS)));

    std::thread::scope(|s| {
        for pair in 0..PAIRS {
            let (tx, rx) = mpsc::sync_channel::<usize>(256);
            let prod = Arc::clone(&a);
            s.spawn(move || {
                // A size mix that lands in several classes, skewed
                // toward the small ones so the "hottest" table has a
                // clear winner.
                let sizes = [16usize, 16, 16, 48, 48, 128, 512, 4000];
                for i in 0..BLOCKS_PER_PRODUCER {
                    let sz = sizes[(i + pair) % sizes.len()];
                    let p = unsafe { prod.malloc(sz) };
                    assert!(!p.is_null());
                    unsafe { p.write_bytes(0xAB, sz.min(64)) };
                    if tx.send(p as usize).is_err() {
                        break;
                    }
                }
            });
            let cons = Arc::clone(&a);
            s.spawn(move || {
                while let Ok(p) = rx.recv() {
                    unsafe { cons.free(p as *mut u8) };
                }
            });
        }
    });

    // The full report: totals, CAS-retry histograms, hazard-pointer
    // activity, the byte reconciliation, per-class rows, and the
    // drained slow-path event trace.
    // `as_ref()` first: `Arc<T>` itself implements `RawMalloc`, whose
    // `stats()` (OS-level `AllocStats`) would otherwise shadow the
    // telemetry snapshot on the concrete allocator.
    let mut out = std::io::stdout();
    a.as_ref().dump_stats(&mut out).expect("stdout");

    let snap = a.as_ref().stats();
    println!("\nTop 5 hottest size classes:");
    println!("{:>7} {:>8} {:>10} {:>10} {:>8} {:>8}", "class", "size", "mallocs", "remote", "fast%", "new-sb");
    for c in snap.hottest_classes().iter().take(5) {
        let fast_pct = 100.0 * c.malloc_fast as f64 / c.mallocs().max(1) as f64;
        println!(
            "{:>7} {:>8} {:>10} {:>10} {:>7.1}% {:>8}",
            c.class, c.block_size, c.mallocs(), c.free_remote, fast_pct, c.malloc_newsb
        );
    }

    let totals = &snap.totals;
    assert!(totals.malloc_fast > 0, "fast path never taken");
    assert!(totals.malloc_slow + totals.partial_reuse > 0, "slow path never taken");
    assert!(totals.free_remote > 0, "cross-thread frees must register as remote");
    assert!(totals.anchor_cas.iter().sum::<u64>() > 0, "anchor CAS histogram empty");

    // One thorough maintenance pass, then the health verdict. All the
    // workers are joined, so the quiescent-trim contract holds and the
    // pass may also shrink the OS footprint.
    let before = a.as_ref().os_stats().live_bytes;
    let budget = unsafe { MaintenanceBudget::full().with_quiescent_trim(4 << 20) };
    let rep = a.as_ref().maintain(budget);
    println!(
        "\nMaintenance pass: {} retired reaped, {} empty pruned, {}/{} audit slice flagged, \
         {} bytes trimmed ({} -> {} live)",
        rep.reaped_retired,
        rep.empty_pruned,
        rep.audit_flagged,
        rep.audit_checked,
        rep.bytes_trimmed,
        before,
        a.as_ref().os_stats().live_bytes
    );
    let health = a.as_ref().health();
    println!("Health: {}", health.to_json());
    assert!(!health.is_degraded(), "healthy run must not report degradation");

    // Machine-readable snapshot (with the embedded health object),
    // last line of stdout by contract.
    let snap = a.as_ref().stats();
    println!();
    println!("{}", snap.to_json());
}
