//! Memory-pressure walkthrough: a burst held then drained, trim-to-
//! watermark handing hyperblocks back to the OS, a total OS outage that
//! degrades to nulls while cached memory keeps serving, and recovery.
//!
//! ```text
//! cargo run --release --example pressure_demo
//! ```

use lfmalloc_repro::prelude::*;
use malloc_api::testkit;
use osmem::{CountingSource, FlakySource, PageSource, SystemSource};
use std::sync::Arc;

const MIB: usize = 1 << 20;

fn main() {
    let src = Arc::new(FlakySource::reliable(CountingSource::new(SystemSource::new())));
    let a = LfMalloc::try_with_config_and_source(Config::with_heaps(2), Arc::clone(&src))
        .expect("construction is fallible but the source is healthy");

    // 1. Pressure burst: hold 32 MiB of mixed sizes, then drain it.
    let mut rng = testkit::TestRng::new(0x9E55);
    let mut live: Vec<(*mut u8, usize)> = Vec::new();
    let mut held = 0usize;
    unsafe {
        while held < 32 * MIB {
            let sz = match rng.range(0, 10) {
                0..=5 => rng.range(8, 256),
                6..=8 => rng.range(256, 8192),
                _ => rng.range(8192, 40_000),
            };
            let p = a.malloc(sz);
            assert!(!p.is_null());
            testkit::fill(p, sz);
            live.push((p, sz));
            held += sz;
        }
        let peak = src.stats().live_bytes;
        println!("== burst ==\nheld {} MiB; OS live {} MiB", held / MIB, peak / MIB);
        // Large blocks unmap at free; superblock cache stays resident
        // until trim.
        for (p, sz) in live.drain(..) {
            testkit::check_fill(p, sz);
            a.free(p);
        }
        println!("drained: OS live {} MiB (superblock + descriptor cache)",
                 src.stats().live_bytes / MIB);

        // 2. Trim to a 2-hyperblock watermark: idle actives uninstall,
        //    EMPTY descriptors leave the partial lists, and fully-free
        //    hyperblocks and descriptor slabs unmap.
        let released = a.trim_to(2 * MIB);
        println!(
            "== trim_to(2 MiB) ==\nreleased {} MiB; OS live {} KiB across {} hyperblocks",
            released / MIB,
            src.stats().live_bytes >> 10,
            a.hyperblock_count()
        );
        assert!(src.stats().live_bytes <= 2 * MIB + MIB);

        // 3. Total outage: the next 400 page requests fail — far deeper
        //    than the retry budget (oom_retries = 8 by default). Fresh
        //    hyperblock mallocs report null; the trimmed-but-warm cache
        //    keeps small requests serviceable; frees never need the OS.
        let warm = a.malloc(64);
        assert!(!warm.is_null());
        src.fail_next(400);
        let mut nulls = 0;
        for _ in 0..8 {
            let p = a.malloc(MIB);
            if p.is_null() {
                nulls += 1;
            } else {
                a.free(p);
            }
        }
        let cached = a.malloc(64);
        assert!(!cached.is_null(), "cached superblocks must serve during an outage");
        a.free(cached);
        a.free(warm);
        println!("== outage ==\n{nulls}/8 large mallocs null; small cache still serving");
        assert!(nulls > 0);

        // 4. Recovery: keep asking until the outage plan drains.
        let mut attempts = 0;
        loop {
            attempts += 1;
            let p = a.malloc(MIB);
            if !p.is_null() {
                a.free(p);
                break;
            }
        }
        println!("== recovery ==\nservice back after {attempts} attempts");
    }

    let rep = a.audit();
    assert!(rep.is_clean(), "{rep}");
    let released = unsafe { a.trim() };
    println!(
        "== final trim ==\nreleased {} KiB; OS live {} KiB; audit clean",
        released >> 10,
        src.stats().live_bytes >> 10
    );
    assert!(src.stats().live_bytes <= MIB);
}
