//! Hardened-mode walkthrough: provoke every misuse class against a
//! `Hardening::Detect` instance and watch the reports arrive while the
//! heap stays intact (DESIGN.md §8).
//!
//! ```sh
//! cargo run --release --example hardening_demo
//! ```

use lfmalloc_repro::prelude::*;

fn main() {
    let a = LfMalloc::with_config(Config::detect().with_hardening(Hardening::Detect));
    let c = a.misuse_counters();

    println!("== invalid free ==");
    unsafe {
        let p = a.malloc(64);
        core::ptr::write_bytes(p, 0xAB, 64);
        a.free(p.add(8)); // interior pointer
        let local = 0u64;
        a.free(&local as *const u64 as *mut u8); // stack address
        a.free(p); // the real block still frees fine
    }
    println!("   InvalidFree x{}: {}", c.count(MisuseKind::InvalidFree), c.last_report().unwrap());

    println!("== double free ==");
    unsafe {
        let p = a.malloc(48);
        a.free(p);
        a.free(p);
    }
    println!("   DoubleFree x{}: {}", c.count(MisuseKind::DoubleFree), c.last_report().unwrap());

    println!("== use-after-free write ==");
    unsafe {
        let p = a.malloc(256);
        a.free(p); // poisoned + quarantined
        p.write(7); // dangling write through the stale pointer
    }
    let flushed = a.flush_quarantine(); // re-verifies poison on the way out
    println!(
        "   flushed {flushed} quarantined block(s); PoisonViolation x{}: {}",
        c.count(MisuseKind::PoisonViolation),
        c.last_report().unwrap()
    );

    println!("== large-block guard overrun ==");
    unsafe {
        let p = a.malloc(100_000);
        let usable = a.usable_size(p);
        p.add(usable).write(0); // lands on the canary page
        a.free(p);
    }
    println!("   GuardOverrun x{}: {}", c.count(MisuseKind::GuardOverrun), c.last_report().unwrap());

    let report = a.audit();
    println!(
        "\n{} total report(s); audit after all of the above: {}",
        c.total(),
        if report.is_clean() { "clean" } else { "VIOLATIONS" }
    );
    assert!(report.is_clean());
    assert_eq!(c.total(), 5);
    println!("ok");
}
