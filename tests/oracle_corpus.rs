//! Corpus replay: every checked-in trace in `tests/corpus/` replays
//! under the oracle on every CI run, so minimized repros of historical
//! (or planted) failures stay failures-caught forever and clean
//! regression traces stay clean.
//!
//! * `expect clean` traces replay against the *whole* differential set
//!   and must produce zero violations and clean audits.
//! * `expect violation` traces replay against their recorded allocator
//!   and must still produce at least one violation — they encode a bug
//!   reachable only through trace-embedded failpoint plans, so they are
//!   skipped (loudly) when the `failpoints` feature is compiled out.

use oracle::{all_subjects, subjects::replay_named, Expectation, Trace};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn load_corpus() -> Vec<(String, Trace)> {
    let mut traces = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("trace") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let trace =
            Trace::parse(&text).unwrap_or_else(|e| panic!("{name}: corpus trace must parse: {e}"));
        traces.push((name, trace));
    }
    traces.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!traces.is_empty(), "corpus must contain at least one trace");
    traces
}

#[test]
fn clean_corpus_traces_replay_clean_on_every_subject() {
    for (name, trace) in load_corpus() {
        if trace.expect != Expectation::Clean {
            continue;
        }
        for s in all_subjects() {
            let out = s.replay(&trace);
            assert!(
                out.is_clean(),
                "{name} on {}: {:?}",
                s.name(),
                out.violations
            );
            assert_ne!(s.audit_clean(), Some(false), "{name} on {}: audit", s.name());
        }
    }
}

#[test]
fn violation_corpus_traces_still_reproduce() {
    let mut checked = 0;
    for (name, trace) in load_corpus() {
        if trace.expect != Expectation::Violation {
            continue;
        }
        if !cfg!(feature = "failpoints") {
            eprintln!("skipping {name}: needs --features failpoints");
            continue;
        }
        // Three consecutive replays: the violation must be deterministic,
        // not a lucky interleaving.
        let mut first = None;
        for run in 0..3 {
            let (out, _) = replay_named(&trace.allocator, &trace);
            assert!(
                !out.violations.is_empty(),
                "{name}: run {run} no longer reproduces its violation"
            );
            match &first {
                None => first = Some(out.violations[0].clone()),
                Some(f) => assert_eq!(
                    *f, out.violations[0],
                    "{name}: run {run} produced a different violation"
                ),
            }
        }
        checked += 1;
    }
    if cfg!(feature = "failpoints") {
        assert!(checked > 0, "corpus must include at least one violation trace");
    }
}
