//! Fault injection: allocators must degrade gracefully when the OS
//! refuses memory — null returns, no panics, no corruption of existing
//! blocks, and full recovery once memory is available again.
//!
//! This exercises the lock-free allocator's OOM paths
//! (`MallocFromNewSB` failing to get a superblock or descriptor slab)
//! and the equivalent paths in the baselines.

use lfmalloc_repro::prelude::*;
use malloc_api::testkit;
use osmem::{CountingSource, FlakySource, PageSource, SystemSource};
use std::sync::Arc;

type Flaky = CountingSource<FlakySource<SystemSource>>;

fn flaky_source(budget: isize) -> Arc<Flaky> {
    Arc::new(CountingSource::new(FlakySource::new(SystemSource::new(), budget)))
}

fn lf_with_budget(budget: isize) -> (LfMalloc<Arc<Flaky>>, Arc<Flaky>) {
    let src = flaky_source(budget);
    (LfMalloc::with_config_and_source(Config::with_heaps(2), Arc::clone(&src)), src)
}

#[test]
fn lfmalloc_returns_null_when_source_dries_up() {
    // Budget of 2 OS allocations: one descriptor slab + one hyperblock.
    let (a, src) = lf_with_budget(2);
    unsafe {
        let p = a.malloc(64);
        assert!(!p.is_null(), "first allocation fits in the budget");
        // Exhaust the hyperblock: 64 superblocks of 64 B-class blocks.
        let mut live = vec![p];
        loop {
            let q = a.malloc(64);
            if q.is_null() {
                break;
            }
            live.push(q);
        }
        // Existing blocks still intact and freeable.
        for &q in &live {
            testkit::fill(q, 64);
        }
        for &q in &live {
            testkit::check_fill(q, 64);
        }
        for q in live {
            a.free(q);
        }
        // After freeing, allocation works again without new OS memory.
        let r = a.malloc(64);
        assert!(!r.is_null(), "recycled superblocks must satisfy post-OOM allocations");
        a.free(r);
    }
    drop(a);
    assert_eq!(src.stats().live_bytes, 0, "teardown returns everything");
}

#[test]
fn lfmalloc_large_path_oom_is_null_not_panic() {
    let (a, _src) = lf_with_budget(0);
    unsafe {
        assert!(a.malloc(1 << 20).is_null(), "large path must fail cleanly");
        assert!(a.malloc(8).is_null(), "small path must fail cleanly");
    }
}

#[test]
fn lfmalloc_recovers_after_refill() {
    let (a, src) = lf_with_budget(0);
    unsafe {
        assert!(a.malloc(100).is_null());
        src.inner().refill(8);
        let p = a.malloc(100);
        assert!(!p.is_null(), "allocation must succeed after the source revives");
        a.free(p);
    }
}

#[test]
fn oversize_requests_fail_cleanly() {
    let a = LfMalloc::new_default();
    unsafe {
        // Near-overflow sizes must not wrap into small allocations.
        assert!(a.malloc(usize::MAX).is_null());
        assert!(a.malloc(usize::MAX - 7).is_null());
        assert!(a.malloc_aligned(usize::MAX - 4096, 4096).is_null());
    }
}

#[test]
fn serial_heap_oom_paths() {
    let src = flaky_source(0);
    let a = LockedHeap::with_source(src.clone());
    unsafe {
        assert!(a.malloc(100).is_null());
        assert!(a.malloc(1 << 20).is_null());
        src.inner().refill(4);
        let p = a.malloc(100);
        assert!(!p.is_null());
        a.free(p);
    }
}

#[test]
fn hoard_oom_paths() {
    let src = flaky_source(0);
    let a = Hoard::with_source(2, src.clone());
    unsafe {
        assert!(a.malloc(100).is_null());
        assert!(a.malloc(1 << 20).is_null());
        src.inner().refill(4);
        let p = a.malloc(100);
        assert!(!p.is_null());
        a.free(p);
    }
}

#[test]
fn ptmalloc_oom_paths() {
    let src = flaky_source(0);
    let a = Ptmalloc::with_source(src.clone());
    unsafe {
        assert!(a.malloc(100).is_null());
        src.inner().refill(4);
        let p = a.malloc(100);
        assert!(!p.is_null());
        a.free(p);
    }
}

#[test]
fn concurrent_oom_does_not_corrupt() {
    // Threads race into an exhausted source; every success must be a
    // real, distinct block and every failure a clean null.
    let src = flaky_source(6);
    let a = Arc::new(LfMalloc::with_config_and_source(
        Config::with_heaps(4),
        Arc::clone(&src),
    ));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let a = Arc::clone(&a);
        handles.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            for i in 0..50_000usize {
                unsafe {
                    let p = a.malloc(16 + ((i as u64 + t) % 64) as usize * 16);
                    if p.is_null() {
                        continue;
                    }
                    testkit::fill(p, 16);
                    got.push(p as usize);
                }
            }
            got
        }));
    }
    let mut all: Vec<usize> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    // While live, all blocks are distinct.
    let unique: std::collections::HashSet<usize> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "overlapping blocks under OOM race");
    for p in all {
        unsafe { a.free(p as *mut u8) };
    }
}
