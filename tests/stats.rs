//! End-to-end tests of the telemetry layer through the public API:
//! monotonic counters under concurrent snapshots, exact malloc/free
//! bookkeeping, remote-free attribution, and the event ring's
//! never-block guarantee on the hot path.

#![cfg(feature = "stats")]

use lfmalloc_repro::prelude::*;
use malloc_api::testkit::TestRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn counters_are_monotonic_across_concurrent_snapshots() {
    // Snapshots race the workload: every counter a later snapshot
    // reports must be >= what an earlier snapshot reported (relaxed
    // increments never decrease; tearing across shards only loses
    // *recent* increments, it cannot un-count old ones).
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(4)));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let a = Arc::clone(&a);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut rng = TestRng::new(0x57A7 + t);
            let mut live = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                if live.len() > 64 || (!live.is_empty() && rng.range(0, 2) == 0) {
                    let k = rng.range(0, live.len());
                    unsafe { a.free(live.swap_remove(k)) };
                } else {
                    let p = unsafe { a.malloc(rng.range(1, 2048)) };
                    assert!(!p.is_null());
                    live.push(p);
                }
            }
            for p in live {
                unsafe { a.free(p) };
            }
        }));
    }

    let mut prev = a.as_ref().stats();
    for _ in 0..50 {
        let next = a.as_ref().stats();
        let (p, n) = (&prev.totals, &next.totals);
        assert!(n.malloc_fast >= p.malloc_fast, "malloc_fast went backwards");
        assert!(n.malloc_slow >= p.malloc_slow, "malloc_slow went backwards");
        assert!(n.malloc_newsb >= p.malloc_newsb, "malloc_newsb went backwards");
        assert!(
            n.free_local + n.free_remote >= p.free_local + p.free_remote,
            "frees went backwards"
        );
        assert!(
            n.anchor_cas.iter().sum::<u64>() >= p.anchor_cas.iter().sum::<u64>(),
            "anchor histogram went backwards"
        );
        assert!(n.mallocs() >= p.mallocs(), "total mallocs went backwards");
        prev = next;
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn malloc_paths_partition_the_total() {
    // Quiescent bookkeeping identity: every small malloc took exactly
    // one of the three ladder rungs, so fast + slow + new-sb == the
    // number of small mallocs issued; frees match mallocs.
    let a = LfMalloc::with_config(Config::with_heaps(2));
    const N: u64 = 20_000;
    unsafe {
        let mut live = Vec::new();
        let mut rng = TestRng::new(0xB00C);
        for _ in 0..N {
            let p = a.malloc(rng.range(1, 4096));
            assert!(!p.is_null());
            live.push(p);
        }
        for p in live {
            a.free(p);
        }
    }
    let s = a.stats();
    let t = &s.totals;
    assert_eq!(t.mallocs(), N, "{t:?}");
    assert_eq!(t.malloc_fast + t.malloc_slow + t.malloc_newsb, N);
    assert_eq!(t.frees(), N, "{t:?}");
    // Single-threaded: every free targets the caller's own heap.
    assert_eq!(t.free_remote, 0, "{t:?}");
    // Per-class rows must sum to the totals row.
    let class_mallocs: u64 = s.classes.iter().map(|c| c.mallocs()).sum();
    assert_eq!(class_mallocs, N);
}

#[test]
fn cross_thread_frees_count_as_remote() {
    // Producer-consumer with a heap per thread: the consumer frees
    // blocks whose superblocks belong to the producer's heap, so every
    // one of them must land in free_remote.
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(8)));
    const N: usize = 10_000;
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let prod = Arc::clone(&a);
    let producer = std::thread::spawn(move || {
        for _ in 0..N {
            let p = unsafe { prod.malloc(64) };
            assert!(!p.is_null());
            tx.send(p as usize).unwrap();
        }
    });
    let cons = Arc::clone(&a);
    let consumer = std::thread::spawn(move || {
        while let Ok(p) = rx.recv() {
            unsafe { cons.free(p as *mut u8) };
        }
    });
    producer.join().unwrap();
    consumer.join().unwrap();

    let t = a.as_ref().stats().totals;
    assert_eq!(t.frees(), N as u64, "{t:?}");
    // With 8 heaps and two live threads the consumer's heap is almost
    // surely distinct from the producer's; but even under slot reuse,
    // remote frees dominate. Require a clear majority rather than all
    // N so the test is robust to thread-slot assignment.
    assert!(
        t.free_remote >= (N as u64) / 2,
        "cross-thread frees not attributed: {t:?}"
    );
}

#[test]
fn event_ring_never_blocks_the_hot_path() {
    // The ring holds 1024 events; this workload generates far more
    // (every superblock acquire/retire records one). Across several
    // seeds: the workload must complete with exact counter totals (a
    // blocked or lost *path* would show up here), the ring must report
    // drops rather than growing, and draining returns at most the
    // capacity.
    for seed in [0x5EED_1u64, 0x5EED_2, 0x5EED_3] {
        let a = Arc::new(LfMalloc::with_config(Config::with_heaps(4)));
        let mut workers = Vec::new();
        const BATCHES: u64 = 400;
        const BATCH: u64 = 64;
        const PER_THREAD: u64 = BATCHES * BATCH;
        for t in 0..4u64 {
            let a = Arc::clone(&a);
            workers.push(std::thread::spawn(move || {
                let mut rng = TestRng::new(seed ^ (t << 32));
                // Batches of large-class blocks (few blocks per 16 KiB
                // superblock): each drain empties whole superblocks, so
                // retire events flood the ring.
                let mut batch = Vec::with_capacity(BATCH as usize);
                for _ in 0..BATCHES {
                    for _ in 0..BATCH {
                        let p = unsafe { a.malloc(rng.range(3000, 8000)) };
                        assert!(!p.is_null());
                        batch.push(p);
                    }
                    for p in batch.drain(..) {
                        unsafe { a.free(p) };
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let s = a.as_ref().stats();
        assert_eq!(s.totals.mallocs(), 4 * PER_THREAD, "seed {seed:#x}");
        assert_eq!(s.totals.frees(), 4 * PER_THREAD, "seed {seed:#x}");
        let drained = a.take_events();
        assert!(
            drained.len() <= lfmalloc::stats::EVENT_RING_CAP,
            "ring exceeded capacity: {} (seed {seed:#x})",
            drained.len()
        );
        // Far more events were generated than the ring holds (every
        // superblock retire records one); the ring must have absorbed
        // them by overwriting the oldest, never by blocking or growing.
        assert!(
            s.totals.free_empty > 4 * lfmalloc::stats::EVENT_RING_CAP as u64,
            "workload too tame to overflow the ring: {} retires (seed {seed:#x})",
            s.totals.free_empty
        );
        assert!(
            drained.len() >= lfmalloc::stats::EVENT_RING_CAP / 2,
            "overflowed ring should drain near-full: {} (seed {seed:#x})",
            drained.len()
        );
    }
}

#[test]
fn health_and_maintenance_land_in_stats_surface() {
    // The health snapshot is part of the stats surface: embedded in the
    // JSON, rendered by dump_stats, and advanced by maintain().
    let a = LfMalloc::with_config(Config::with_heaps(2));
    unsafe {
        let p = a.malloc(256);
        assert!(!p.is_null());
        a.free(p);
    }
    a.maintain(MaintenanceBudget::full());
    let s = a.stats();
    assert_eq!(s.health.maintain_passes, 1);
    assert_eq!(s.health.storms_total(), 0);
    let json = s.to_json();
    assert!(json.contains("\"health\":{\"degraded\":false"), "{json}");
    assert!(json.contains("\"maintain_passes\":1"), "{json}");
    assert!(json.contains("\"free_teardown\":"), "{json}");
    let mut out = Vec::new();
    a.dump_stats(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("health: ok"), "{text}");
    assert!(text.contains("maintenance: 1 passes"), "{text}");
    assert!(text.contains("TLS teardown"), "{text}");
}
