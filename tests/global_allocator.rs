//! End-to-end: the lock-free allocator as this test binary's Rust
//! global allocator. Every `Vec`, `String`, `HashMap`, channel buffer
//! and test-harness allocation below is served by the PLDI 2004
//! algorithm.

use lfmalloc_repro::prelude::*;
use std::collections::HashMap;

#[global_allocator]
static GLOBAL: GlobalLfMalloc = GlobalLfMalloc::new();

#[test]
fn std_collections_work() {
    let mut m: HashMap<String, Vec<u32>> = HashMap::new();
    for i in 0..5_000u32 {
        m.entry(format!("k{}", i % 101)).or_default().push(i);
    }
    assert_eq!(m.values().map(Vec::len).sum::<usize>(), 5_000);
    let mut keys: Vec<&String> = m.keys().collect();
    keys.sort();
    assert_eq!(keys.len(), 101);
}

#[test]
fn multithreaded_string_churn() {
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut v = Vec::new();
                for i in 0..10_000usize {
                    v.push(format!("t{t}-{i}-{}", "x".repeat(i % 64)));
                    if v.len() > 50 {
                        v.swap_remove(i % v.len());
                    }
                }
                v.into_iter().map(|s| s.len()).sum::<usize>()
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
}

#[test]
fn cross_thread_moves() {
    // Allocate on one thread, grow/drop on another (remote frees through
    // the global allocator).
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
    let producer = std::thread::spawn(move || {
        for i in 0..1_000usize {
            tx.send(vec![i as u8; 16 + i % 1_000]).unwrap();
        }
    });
    let mut bytes = 0usize;
    for mut v in rx {
        v.extend_from_slice(&[1, 2, 3]);
        bytes += v.len();
    }
    producer.join().unwrap();
    assert!(bytes > 0);
}

#[test]
fn large_and_aligned_layouts() {
    // Vec with large capacity exercises the large-block path through
    // GlobalAlloc; Box<[u128]> exercises 16-byte alignment.
    let big: Vec<u64> = (0..200_000).collect();
    assert_eq!(big.len(), 200_000);
    let aligned: Box<[u128]> = (0..1_000u128).collect();
    assert_eq!(aligned.as_ptr() as usize % 16, 0);
    assert_eq!(aligned[999], 999);
}

#[test]
fn allocator_reports_usage() {
    // Force some traffic, then check the instance accounting is sane.
    let v: Vec<Vec<u8>> = (0..100).map(|i| vec![0u8; 100 + i]).collect();
    let stats = GLOBAL.instance().os_stats();
    assert!(stats.peak_bytes > 0);
    assert!(stats.live_bytes > 0);
    drop(v);
}
