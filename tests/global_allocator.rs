//! End-to-end: the lock-free allocator as this test binary's Rust
//! global allocator. Every `Vec`, `String`, `HashMap`, channel buffer
//! and test-harness allocation below is served by the PLDI 2004
//! algorithm.

use lfmalloc_repro::prelude::*;
use malloc_api::procfork::{self, sys};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

#[global_allocator]
static GLOBAL: GlobalLfMalloc = GlobalLfMalloc::new();

/// Reaps `pid` with a deadline, SIGKILLing a hung child so a
/// process-lifecycle bug fails the test instead of wedging the run.
fn wait_child(pid: i32) -> Option<i32> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut status = 0i32;
    loop {
        let r = unsafe { sys::waitpid(pid, &mut status, sys::WNOHANG) };
        if r == pid {
            return sys::exit_code(status);
        }
        assert_eq!(r, 0, "waitpid failed");
        if std::time::Instant::now() > deadline {
            unsafe {
                sys::kill(pid, sys::SIGKILL);
                sys::waitpid(pid, &mut status, 0);
            }
            panic!("child {pid} hung — post-fork deadlock in the global allocator");
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

#[test]
fn std_collections_work() {
    let mut m: HashMap<String, Vec<u32>> = HashMap::new();
    for i in 0..5_000u32 {
        m.entry(format!("k{}", i % 101)).or_default().push(i);
    }
    assert_eq!(m.values().map(Vec::len).sum::<usize>(), 5_000);
    let mut keys: Vec<&String> = m.keys().collect();
    keys.sort();
    assert_eq!(keys.len(), 101);
}

#[test]
fn multithreaded_string_churn() {
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut v = Vec::new();
                for i in 0..10_000usize {
                    v.push(format!("t{t}-{i}-{}", "x".repeat(i % 64)));
                    if v.len() > 50 {
                        v.swap_remove(i % v.len());
                    }
                }
                v.into_iter().map(|s| s.len()).sum::<usize>()
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
}

#[test]
fn cross_thread_moves() {
    // Allocate on one thread, grow/drop on another (remote frees through
    // the global allocator).
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
    let producer = std::thread::spawn(move || {
        for i in 0..1_000usize {
            tx.send(vec![i as u8; 16 + i % 1_000]).unwrap();
        }
    });
    let mut bytes = 0usize;
    for mut v in rx {
        v.extend_from_slice(&[1, 2, 3]);
        bytes += v.len();
    }
    producer.join().unwrap();
    assert!(bytes > 0);
}

#[test]
fn large_and_aligned_layouts() {
    // Vec with large capacity exercises the large-block path through
    // GlobalAlloc; Box<[u128]> exercises 16-byte alignment.
    let big: Vec<u64> = (0..200_000).collect();
    assert_eq!(big.len(), 200_000);
    let aligned: Box<[u128]> = (0..1_000u128).collect();
    assert_eq!(aligned.as_ptr() as usize % 16, 0);
    assert_eq!(aligned[999], 999);
}

/// fork → allocate in the child *through the global allocator* → exec.
/// This is the canonical fork/exec pattern every process spawner uses;
/// the child's heap must work (DESIGN.md §12 child recovery) and exec
/// must replace the image cleanly, handing back the script's exit code.
#[test]
fn fork_alloc_exec_roundtrip() {
    let pid = unsafe { procfork::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        // Every one of these goes through GLOBAL in the forked child.
        let mut v: Vec<String> = Vec::new();
        for i in 0..500usize {
            v.push(format!("child-{i}"));
        }
        if v.len() != 500 {
            unsafe { sys::_exit(99) };
        }
        drop(v);
        let path = b"/bin/sh\0";
        let arg0 = b"sh\0";
        let arg1 = b"-c\0";
        let arg2 = b"exit 7\0";
        let argv: [*const u8; 4] =
            [arg0.as_ptr(), arg1.as_ptr(), arg2.as_ptr(), core::ptr::null()];
        unsafe {
            sys::execv(path.as_ptr(), argv.as_ptr());
            sys::_exit(98); // only reached if exec failed
        }
    }
    assert_eq!(wait_child(pid), Some(7), "child did not exec cleanly after fork+alloc");
}

/// Allocating from a signal handler must never deadlock: it either
/// completes lock-free or — if the signal interrupted this same
/// thread's allocation — is rejected and counted as `ReentrantAlloc`.
/// Every delivery is accounted for: handled = completed + rejected.
#[test]
fn signal_handler_allocation_is_deadlock_free() {
    static COMPLETED: AtomicUsize = AtomicUsize::new(0);
    static REJECTED: AtomicUsize = AtomicUsize::new(0);

    extern "C" fn on_usr1(_sig: i32) {
        // Raw instance calls, not Vec: a rejected (null) allocation
        // must be *observable*, not routed to handle_alloc_error.
        unsafe {
            let p = GLOBAL.instance().malloc(96);
            if p.is_null() {
                REJECTED.fetch_add(1, Ordering::SeqCst);
            } else {
                p.write(0xEE);
                GLOBAL.instance().free(p);
                COMPLETED.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    let prev = unsafe { sys::signal(sys::SIGUSR1, on_usr1 as *const () as usize) };
    malloc_api::testkit::for_each_seed(
        "signal-handler allocation",
        &[0x51, 0x52, 0x53, 0x54],
        |seed| {
            let before = COMPLETED.load(Ordering::SeqCst) + REJECTED.load(Ordering::SeqCst);
            let mut x = seed | 1;
            for _ in 0..50 {
                // Interleave real allocator traffic with deliveries so
                // the handler races live heap state.
                x ^= x << 13;
                x ^= x >> 7;
                let v = vec![0u8; 1 + (x as usize % 2_000)];
                unsafe { sys::raise(sys::SIGUSR1) };
                drop(v);
            }
            let after = COMPLETED.load(Ordering::SeqCst) + REJECTED.load(Ordering::SeqCst);
            assert_eq!(after - before, 50, "a signal delivery was lost or deadlocked");
        },
    );
    unsafe { sys::signal(sys::SIGUSR1, prev) };
    // Any rejection must have been counted as misuse, never silent.
    assert!(
        GLOBAL.instance().misuse_counters().count(MisuseKind::ReentrantAlloc)
            >= REJECTED.load(Ordering::SeqCst) as u64
    );
}

/// Deterministic version of the reentrancy contract: with the guard
/// artificially held (as if a signal had landed mid-malloc), the fast
/// path fails fast with a counted rejection instead of recursing.
#[test]
fn reentrant_allocation_fails_fast_and_is_counted() {
    let inst = GLOBAL.instance();
    let before = inst.misuse_counters().count(MisuseKind::ReentrantAlloc);
    {
        let _in_alloc = lfmalloc::fork::hold_reentrancy_guard_for_testing();
        // No Vec/String here: the global allocator would abort on the
        // deliberate null. Raw calls observe the rejection directly.
        let p = unsafe { inst.malloc(64) };
        assert!(p.is_null(), "reentrant malloc must be rejected");
    }
    let after = inst.misuse_counters().count(MisuseKind::ReentrantAlloc);
    assert!(after > before, "rejection was not counted");
    // Guard released: this thread allocates normally again.
    let p = unsafe { inst.malloc(64) };
    assert!(!p.is_null());
    unsafe { inst.free(p) };
}

#[test]
fn allocator_reports_usage() {
    // Force some traffic, then check the instance accounting is sane.
    let v: Vec<Vec<u8>> = (0..100).map(|i| vec![0u8; 100 + i]).collect();
    let stats = GLOBAL.instance().os_stats();
    assert!(stats.peak_bytes > 0);
    assert!(stats.live_bytes > 0);
    drop(v);
}
