//! Liveness watchdog + maintenance subsystem, end to end: thread-churn
//! soak (dead-thread reclamation through `maintain`), watchdog storm
//! detection under seeded forced-retry plans, policy semantics
//! (Report / Throttle / Abort), the background reaper, and TLS-teardown
//! frees.
//!
//! The soak and reaper scenarios run in the default tier-1 build; the
//! watchdog scenarios force CAS-retry storms with failpoint plans and
//! need `--features failpoints`.

use lfmalloc_repro::prelude::*;
use malloc_api::testkit::{self, TestRng};
use std::sync::Arc;

/// Spawns `total` short-lived allocating threads, at most `width`
/// concurrently, each doing a seeded malloc/fill/free burst.
fn churn_threads<S: osmem::PageSource + Send + Sync + 'static>(
    a: &Arc<LfMalloc<S>>,
    seed: u64,
    total: usize,
    width: usize,
) {
    use malloc_api::testkit;
    let mut spawned = 0usize;
    while spawned < total {
        let batch = width.min(total - spawned);
        let mut handles = Vec::with_capacity(batch);
        for t in 0..batch {
            let a = Arc::clone(a);
            let tseed = seed ^ ((spawned + t + 1) as u64);
            handles.push(std::thread::spawn(move || {
                let mut rng = TestRng::new(tseed);
                let mut live: Vec<(*mut u8, usize)> = Vec::new();
                for _ in 0..8 {
                    let sz = rng.range(8, 1024);
                    let p = unsafe { a.malloc(sz) };
                    assert!(!p.is_null());
                    unsafe { testkit::fill(p, sz) };
                    live.push((p, sz));
                }
                for (p, sz) in live {
                    unsafe {
                        testkit::check_fill(p, sz);
                        a.free(p);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        spawned += batch;
    }
}

/// The churn soak of the acceptance criteria: thousands of short-lived
/// allocating threads, then one maintenance pass must leave the
/// instance healthy — hazard records adopted (their count plateaus at
/// the concurrency width, not the thread count), dead-thread retired
/// queues drained, OS footprint trimmed under a fixed bound, and a full
/// audit clean.
#[test]
fn thread_churn_soak_stays_healthy() {
    const THREADS: usize = 5_000;
    const WIDTH: usize = 8;
    testkit::for_each_seed("thread churn soak", &[0x11FE_0001, 0x11FE_0002], |seed| {
        let a = Arc::new(LfMalloc::with_config(Config::with_heaps(2)));
        churn_threads(&a, seed, THREADS, WIDTH);

        let h = a.health();
        assert!(
            h.hazard_records <= 8 * WIDTH,
            "hazard records did not plateau: {} records after {} threads (seed {seed:#x})",
            h.hazard_records,
            THREADS
        );

        // All workers are joined, so the quiescent-trim contract holds.
        let bound = 4 << 20; // 4 MiB keeps plenty of slack over the working set
        let budget = unsafe { MaintenanceBudget::full().with_quiescent_trim(bound) };
        let rep = a.maintain(budget);
        let h = a.health();
        assert_eq!(h.hazard_retired, 0, "retired queues not drained: {rep:?} (seed {seed:#x})");
        assert!(
            h.os_live_bytes <= bound + (1 << 18),
            "live bytes {} over bound {bound} (seed {seed:#x})",
            h.os_live_bytes
        );
        assert_eq!(h.os_watermark, Some(bound));
        let audit = a.audit();
        assert!(audit.is_clean(), "audit after soak (seed {seed:#x}):\n{audit}");
        let h = a.health();
        assert!(!h.is_degraded(), "degraded after clean soak (seed {seed:#x}): {}", h.to_json());
    });
}

/// The background reaper keeps up with thread churn on its own: with no
/// explicit `maintain` call, dead-thread retired nodes are still
/// reclaimed.
#[test]
fn reaper_keeps_up_with_thread_churn() {
    let cfg = Config::with_heaps(2)
        .with_reaper(ReaperConfig::every(std::time::Duration::from_millis(2)));
    let a = Arc::new(LfMalloc::with_config(cfg));
    churn_threads(&a, 0x4EA9E4, 400, 8);
    // Give the reaper a few periods of quiescence, then check it both
    // ran and drained the backlog.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let h = a.health();
        if h.reaper_passes > 0 && h.hazard_retired == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "reaper never caught up: {}",
            h.to_json()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(a.stop_reaper());
    let audit = a.audit();
    assert!(audit.is_clean(), "{audit}");
    assert!(!a.health().is_degraded());
}

/// Frees issued from TLS destructors (thread identity torn down) must
/// route cleanly: blocks really return to their superblocks and the
/// books still balance.
#[test]
fn frees_during_tls_teardown_are_routed() {
    struct TeardownFree {
        a: Arc<LfMalloc<osmem::SystemSource>>,
        ptrs: Vec<*mut u8>,
    }
    unsafe impl Send for TeardownFree {}
    impl Drop for TeardownFree {
        fn drop(&mut self) {
            // Runs during TLS teardown: `heap::try_thread_id` may
            // already be gone; the free path must handle either case.
            for p in self.ptrs.drain(..) {
                unsafe { self.a.free(p) };
            }
        }
    }
    thread_local! {
        static PARKED: std::cell::RefCell<Option<TeardownFree>> =
            const { std::cell::RefCell::new(None) };
    }

    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(2)));
    for round in 0..16usize {
        let a2 = Arc::clone(&a);
        std::thread::spawn(move || {
            let ptrs: Vec<*mut u8> =
                (0..32usize).map(|i| unsafe { a2.malloc(16 + 8 * (i % 40) + round) }).collect();
            assert!(ptrs.iter().all(|p| !p.is_null()));
            PARKED.with(|slot| *slot.borrow_mut() = Some(TeardownFree { a: a2, ptrs }));
            // Thread exits here; the destructor frees every block.
        })
        .join()
        .unwrap();
    }
    a.maintain(MaintenanceBudget::full());
    let audit = a.audit();
    assert!(audit.is_clean(), "audit after TLS-teardown frees:\n{audit}");
    assert!(!a.health().is_degraded());
    #[cfg(feature = "stats")]
    {
        let t = a.as_ref().stats().totals;
        assert_eq!(t.frees(), 16 * 32, "every teardown free was counted");
        assert_eq!(
            t.free_local + t.free_remote,
            t.frees(),
            "teardown frees stay inside the local/remote split"
        );
    }
}

#[cfg(feature = "failpoints")]
mod watchdog {
    use super::*;
    use malloc_api::failpoints::{self as fp, FpAction, FpTrigger};

    /// One malloc against an Active word whose pop CAS is forced to
    /// fail `retries` consecutive times.
    fn storm_one_malloc<S: osmem::PageSource + Send + Sync>(a: &LfMalloc<S>, retries: u64) {
        // Warm up so the Active word is installed with credits and the
        // next malloc takes the `active.pop` path.
        unsafe {
            let p = a.malloc(64);
            assert!(!p.is_null());
            a.free(p);
        }
        fp::arm_limited("active.pop", FpAction::Retry, FpTrigger::Always, retries);
        unsafe {
            let p = a.malloc(64);
            assert!(!p.is_null(), "storm must delay, never fail, the operation");
            a.free(p);
        }
    }

    /// Acceptance: under `Report`, a seeded retry storm crossing the
    /// ceiling is detected within the storming operation itself and
    /// surfaces in the `HealthSnapshot`.
    #[test]
    fn report_mode_surfaces_seeded_storm() {
        testkit::for_each_seed("report-mode storm", &[0x57A2_0001, 0x57A2_0002, 0x57A2_0003], |seed| {
            let _guard = fp::scenario(seed);
            let (storms_before, _) = lfmalloc::process_liveness_counters();
            let cfg = Config::with_heaps(1)
                .with_liveness(LivenessConfig::new(8, LivenessPolicy::Report));
            let a = LfMalloc::with_config(cfg);
            assert!(!a.health().is_degraded());

            storm_one_malloc(&a, 64);

            let h = a.health();
            assert_eq!(
                h.storms[WatchSite::ActivePop as usize], 1,
                "exactly one storm per storming operation (seed {seed:#x}): {}",
                h.to_json()
            );
            assert_eq!(h.storms_total(), 1);
            assert!(h.is_degraded(), "a detected storm must degrade the verdict");
            let (storms_after, _) = lfmalloc::process_liveness_counters();
            assert!(storms_after > storms_before, "process-wide counter advanced");
            #[cfg(feature = "stats")]
            {
                let events = a.take_events();
                assert!(
                    events.iter().any(|e| e.kind == EventKind::LivenessStorm
                        && e.arg == WatchSite::ActivePop as u64),
                    "no LivenessStorm event in the ring (seed {seed:#x}): {events:?}"
                );
                let json = a.stats().to_json();
                assert!(json.contains("\"degraded\":true"), "health missing from stats JSON");
            }
        });
    }

    /// Storms below the ceiling are not storms: honest short retry
    /// bursts never trip the watchdog.
    #[test]
    fn short_retry_bursts_stay_below_ceiling() {
        let _guard = fp::scenario(0x57A2_0010);
        let cfg = Config::with_heaps(1)
            .with_liveness(LivenessConfig::new(64, LivenessPolicy::Report));
        let a = LfMalloc::with_config(cfg);
        storm_one_malloc(&a, 16); // 16 forced retries < ceiling 64
        let h = a.health();
        assert_eq!(h.storms_total(), 0, "{}", h.to_json());
        assert!(!h.is_degraded());
    }

    /// `Ignore` really ignores: same storm, no detection.
    #[test]
    fn ignore_mode_counts_nothing() {
        let _guard = fp::scenario(0x57A2_0020);
        let cfg = Config::with_heaps(1)
            .with_liveness(LivenessConfig::new(8, LivenessPolicy::Ignore));
        let a = LfMalloc::with_config(cfg);
        storm_one_malloc(&a, 64);
        assert_eq!(a.health().storms_total(), 0);
        assert!(!a.health().is_degraded());
    }

    /// `Throttle` injects escalated backoff but the operation still
    /// completes and is counted.
    #[test]
    fn throttle_mode_backs_off_and_completes() {
        testkit::for_each_seed("throttle-mode storm", &[0x57A2_0030, 0x57A2_0031], |seed| {
            let _guard = fp::scenario(seed);
            let cfg = Config::with_heaps(1)
                .with_liveness(LivenessConfig::new(4, LivenessPolicy::Throttle));
            let a = LfMalloc::with_config(cfg);
            storm_one_malloc(&a, 16); // crosses multiples 4, 8, 12, 16
            let h = a.health();
            assert_eq!(h.storms_total(), 1, "(seed {seed:#x}) {}", h.to_json());
            assert!(
                h.throttle_activations >= 2,
                "re-escalation at ceiling multiples (seed {seed:#x}): {}",
                h.to_json()
            );
        });
    }

    /// `Abort` fail-stops: the storming operation panics with the site
    /// label instead of spinning.
    #[test]
    fn abort_mode_fail_stops_on_storm() {
        let _guard = fp::scenario(0x57A2_0040);
        let cfg = Config::with_heaps(1)
            .with_liveness(LivenessConfig::new(4, LivenessPolicy::Abort));
        let a = LfMalloc::with_config(cfg);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            storm_one_malloc(&a, 64);
        }))
        .expect_err("Abort policy must fail-stop on a storm");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("liveness watchdog") && msg.contains("active.pop"),
            "panic message names the watchdog and site: {msg:?}"
        );
        assert_eq!(a.health().storms[WatchSite::ActivePop as usize], 1);
    }

    /// The free-side site: a forced-retry plan against the free-link
    /// anchor CAS is attributed to `free.link`.
    #[test]
    fn free_link_storms_are_attributed() {
        let _guard = fp::scenario(0x57A2_0050);
        let cfg = Config::with_heaps(1)
            .with_liveness(LivenessConfig::new(8, LivenessPolicy::Report));
        let a = LfMalloc::with_config(cfg);
        let p = unsafe { a.malloc(64) };
        assert!(!p.is_null());
        fp::arm_limited("free.link", FpAction::Retry, FpTrigger::Always, 32);
        unsafe { a.free(p) };
        let h = a.health();
        assert_eq!(h.storms[WatchSite::FreeLink as usize], 1, "{}", h.to_json());
        assert_eq!(h.storms_total(), 1);
    }
}
