//! The paper's availability claims, exercised as tests:
//!
//! "A lock-free object must be immune to deadlock even if any number of
//! threads are killed while operating on it. Accordingly, a lock-free
//! object must offer guaranteed availability regardless of arbitrary
//! thread termination or crash-failure."
//!
//! We cannot literally kill a thread mid-instruction from safe Rust, but
//! the observable effect of a kill inside `malloc` is precise: the dying
//! thread holds some partial state (a reserved credit, a half-installed
//! superblock) and never completes its operation. The
//! `simulate_killed_reservation` hook reproduces the canonical case —
//! killed between the reservation CAS and the block pop — and these
//! tests verify the allocator's guarantee: everyone else keeps going.

use lfmalloc_repro::prelude::*;
use malloc_api::testkit;
use std::sync::Arc;

#[test]
fn allocation_survives_abandoned_reservations() {
    let a = LfMalloc::with_config(Config::with_heaps(1)); // all threads share heap 0
    unsafe {
        // Warm up: install an active superblock.
        let p = a.malloc(64);
        assert!(!p.is_null());
        a.free(p);
        // "Kill" 200 threads mid-malloc.
        let mut kills = 0;
        for _ in 0..200 {
            if a.simulate_killed_reservation(64) {
                kills += 1;
            }
            // The allocator must still serve this thread.
            let q = a.malloc(64);
            assert!(!q.is_null(), "allocation blocked after {kills} kills");
            testkit::fill(q, 64);
            testkit::check_fill(q, 64);
            a.free(q);
        }
        assert!(kills > 0, "the hook never found an active superblock to die in");
    }
}

#[test]
fn killed_reservations_leak_at_most_one_block_each() {
    let a = LfMalloc::with_config(Config::with_heaps(1));
    unsafe {
        let p = a.malloc(16);
        a.free(p);
        let mut kills = 0usize;
        for _ in 0..50 {
            if a.simulate_killed_reservation(16) {
                kills += 1;
            }
        }
        println!("abandoned {kills} reservations");
        // Churn hard; the allocator must reuse memory normally. The
        // kills cost at most `kills` blocks (24 B each here), not
        // superblocks.
        for _ in 0..10 {
            let blocks: Vec<*mut u8> = (0..5_000).map(|_| a.malloc(16)).collect();
            for b in &blocks {
                assert!(!b.is_null());
            }
            for b in blocks {
                a.free(b);
            }
        }
        assert!(
            a.hyperblock_count() <= 2,
            "kills must not leak whole superblocks: {} hyperblocks",
            a.hyperblock_count()
        );
    }
}

#[test]
fn concurrent_threads_progress_while_killer_rampages() {
    // One thread continuously "kills itself" mid-malloc; four workers
    // hammer the same single heap. Total progress must match the
    // workers' demands exactly.
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(1)));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let killer = {
        let a = Arc::clone(&a);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut kills = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                if a.simulate_killed_reservation(64) {
                    kills += 1;
                }
                std::thread::yield_now();
            }
            kills
        })
    };

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let a = Arc::clone(&a);
        workers.push(std::thread::spawn(move || {
            let mut rng = testkit::TestRng::new(t + 99);
            for _ in 0..20_000 {
                unsafe {
                    let sz = rng.range(1, 128);
                    let p = a.malloc(sz);
                    assert!(!p.is_null());
                    testkit::fill(p, sz);
                    testkit::check_fill(p, sz);
                    a.free(p);
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let kills = killer.join().unwrap();
    println!("workers completed 80k pairs alongside {kills} mid-malloc kills");
}
