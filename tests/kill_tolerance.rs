//! The paper's availability claims, exercised as tests:
//!
//! "A lock-free object must be immune to deadlock even if any number of
//! threads are killed while operating on it. Accordingly, a lock-free
//! object must offer guaranteed availability regardless of arbitrary
//! thread termination or crash-failure."
//!
//! We cannot literally kill a thread mid-instruction from safe Rust, but
//! the observable effect of a kill inside `malloc` is precise: the dying
//! thread holds some partial state (a reserved credit, a half-installed
//! superblock) and never completes its operation. The
//! `simulate_killed_reservation` hook reproduces the canonical case —
//! killed between the reservation CAS and the block pop — and these
//! tests verify the allocator's guarantee: everyone else keeps going.

use lfmalloc_repro::prelude::*;
use malloc_api::testkit;
use std::sync::Arc;

#[test]
fn allocation_survives_abandoned_reservations() {
    let a = LfMalloc::with_config(Config::with_heaps(1)); // all threads share heap 0
    unsafe {
        // Warm up: install an active superblock.
        let p = a.malloc(64);
        assert!(!p.is_null());
        a.free(p);
        // "Kill" 200 threads mid-malloc.
        let mut kills = 0;
        for _ in 0..200 {
            if a.simulate_killed_reservation(64) {
                kills += 1;
            }
            // The allocator must still serve this thread.
            let q = a.malloc(64);
            assert!(!q.is_null(), "allocation blocked after {kills} kills");
            testkit::fill(q, 64);
            testkit::check_fill(q, 64);
            a.free(q);
        }
        assert!(kills > 0, "the hook never found an active superblock to die in");
    }
}

#[test]
fn killed_reservations_leak_at_most_one_block_each() {
    let a = LfMalloc::with_config(Config::with_heaps(1));
    unsafe {
        let p = a.malloc(16);
        a.free(p);
        let mut kills = 0usize;
        for _ in 0..50 {
            if a.simulate_killed_reservation(16) {
                kills += 1;
            }
        }
        println!("abandoned {kills} reservations");
        // Churn hard; the allocator must reuse memory normally. The
        // kills cost at most `kills` blocks (24 B each here), not
        // superblocks.
        for _ in 0..10 {
            let blocks: Vec<*mut u8> = (0..5_000).map(|_| a.malloc(16)).collect();
            for b in &blocks {
                assert!(!b.is_null());
            }
            for b in blocks {
                a.free(b);
            }
        }
        assert!(
            a.hyperblock_count() <= 2,
            "kills must not leak whole superblocks: {} hyperblocks",
            a.hyperblock_count()
        );
    }
}

#[test]
fn concurrent_threads_progress_while_killer_rampages() {
    // One thread continuously "kills itself" mid-malloc; four workers
    // hammer the same single heap. Total progress must match the
    // workers' demands exactly.
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(1)));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let killer = {
        let a = Arc::clone(&a);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut kills = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                if a.simulate_killed_reservation(64) {
                    kills += 1;
                }
                std::thread::yield_now();
            }
            kills
        })
    };

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let a = Arc::clone(&a);
        workers.push(std::thread::spawn(move || {
            let mut rng = testkit::TestRng::new(t + 99);
            for _ in 0..20_000 {
                unsafe {
                    let sz = rng.range(1, 128);
                    let p = a.malloc(sz);
                    assert!(!p.is_null());
                    testkit::fill(p, sz);
                    testkit::check_fill(p, sz);
                    a.free(p);
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let kills = killer.join().unwrap();
    println!("workers completed 80k pairs alongside {kills} mid-malloc kills");
}

/// Kill sites beyond the reservation window, reachable only through the
/// deterministic failpoint registry (`--features failpoints`): deaths
/// inside `free` (before the free-list CAS, and between the EMPTY
/// transition and the superblock recycle) and inside the partial-list
/// operations (put, get, and the post-get reservation).
#[cfg(feature = "failpoints")]
mod failpoint_kills {
    use super::*;
    use malloc_api::failpoints::{self as fp, FpAction, FpTrigger};

    #[test]
    fn free_path_kills_leak_blocks_not_progress() {
        let _guard = fp::scenario(0x1C1F);
        fp::arm_limited("free.link", FpAction::Kill, FpTrigger::EveryNth(10), 20);

        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let blocks: Vec<*mut u8> = (0..2_000).map(|_| a.malloc(32)).collect();
            for p in &blocks {
                assert!(!p.is_null());
            }
            for p in blocks {
                a.free(p); // up to 20 of these die before the CAS
            }
            assert_eq!(fp::fired("free.link"), 20, "kill budget not consumed");
            // Each kill leaks exactly one 32-byte-class block; churn must
            // proceed and reuse the rest of the superblocks normally.
            for _ in 0..5 {
                let again: Vec<*mut u8> = (0..2_000).map(|_| a.malloc(32)).collect();
                for p in &again {
                    assert!(!p.is_null(), "allocation blocked after free-path kills");
                }
                for p in again {
                    a.free(p);
                }
            }
            assert!(
                a.hyperblock_count() <= 2,
                "free-path kills must not leak whole hyperblocks"
            );
        }
        let rep = a.audit();
        assert!(rep.is_clean(), "free-path kills corrupted the heap:\n{rep}");
    }

    #[test]
    fn partial_list_kills_leak_descriptors_not_progress() {
        let _guard = fp::scenario(0x9A27);
        // Deaths at every partial-list window: while publishing a
        // partial superblock, while fetching one, and after fetching
        // one but before reserving from it.
        fp::arm_limited("partial.put", FpAction::Kill, FpTrigger::EveryNth(4), 6);
        fp::arm_limited("partial.get", FpAction::Kill, FpTrigger::EveryNth(5), 6);
        fp::arm_limited("partial.reserve", FpAction::Kill, FpTrigger::EveryNth(3), 6);

        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            // Drive superblocks through ACTIVE -> PARTIAL -> reuse by
            // freeing strided halves of large batches.
            for round in 0..6 {
                let blocks: Vec<*mut u8> = (0..3_000).map(|_| a.malloc(128)).collect();
                for (i, p) in blocks.iter().enumerate() {
                    assert!(!p.is_null(), "round {round}: allocation blocked");
                    if i % 2 == 0 {
                        a.free(*p);
                    }
                }
                for (i, p) in blocks.iter().enumerate() {
                    if i % 2 != 0 {
                        a.free(*p);
                    }
                }
            }
        }
        let put = fp::fired("partial.put");
        let get = fp::fired("partial.get");
        let reserve = fp::fired("partial.reserve");
        assert!(
            put + get + reserve > 0,
            "no partial-list kill fired (put {put}, get {get}, reserve {reserve})"
        );
        let rep = a.audit();
        assert!(rep.is_clean(), "partial-list kills corrupted the heap:\n{rep}");
    }

    #[test]
    fn empty_transition_kill_strands_one_superblock() {
        let _guard = fp::scenario(0xE391);
        // Die exactly once, between the EMPTY anchor CAS and the
        // superblock's return to the page pool.
        fp::arm_limited("free.empty", FpAction::Kill, FpTrigger::Always, 1);

        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            // 4096-byte class: 4 blocks per superblock, so one batch
            // drains a superblock to EMPTY quickly.
            let blocks: Vec<*mut u8> = (0..4).map(|_| a.malloc(4_000)).collect();
            for p in blocks {
                assert!(!p.is_null());
                a.free(p); // the last free dies mid-recycle
            }
            assert_eq!(fp::fired("free.empty"), 1, "the EMPTY-path kill never fired");
            // The superblock is stranded (legal leak), but allocation
            // continues from fresh superblocks.
            let p = a.malloc(4_000);
            assert!(!p.is_null(), "allocation blocked after EMPTY-transition kill");
            a.free(p);
        }
        let rep = a.audit();
        assert!(rep.is_clean(), "EMPTY-transition kill corrupted the heap:\n{rep}");
    }
}
