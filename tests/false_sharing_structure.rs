//! Structural false-sharing check.
//!
//! Figure 8(c)/(d) measure false sharing *dynamically* (cache-line
//! ping-pong between processors), which a single-CPU machine cannot
//! exhibit. The underlying allocator property is structural, though,
//! and testable anywhere: an allocator avoids *actively inducing* false
//! sharing iff blocks handed to different threads never share a cache
//! line. The lock-free allocator inherits this from Hoard's design:
//! different threads draw from different processor heaps, hence from
//! different (16 KiB-aligned) superblocks.

use lfmalloc_repro::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Barrier};

const LINE: usize = 64;

/// Each of two threads allocates many small blocks simultaneously;
/// returns the two live address sets.
fn two_thread_allocation_sets<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    blocks: usize,
    size: usize,
) -> (Vec<usize>, Vec<usize>) {
    let barrier = Arc::new(Barrier::new(2));
    let free_after = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let alloc = Arc::clone(&alloc);
        let barrier = Arc::clone(&barrier);
        let _ = Arc::clone(&free_after);
        handles.push(std::thread::spawn(move || {
            // Allocate in barrier-paced batches so neither thread can
            // run to completion unopposed: the serial baseline below
            // relies on the threads genuinely overlapping, and the
            // zero-sharing tests are only stronger for it. The batch
            // length is deliberately not a multiple of the line/chunk
            // ratio, so even strict batch alternation splits lines.
            const BATCH: usize = 37;
            let mut ptrs = Vec::with_capacity(blocks);
            while ptrs.len() < blocks {
                barrier.wait();
                for _ in 0..BATCH.min(blocks - ptrs.len()) {
                    ptrs.push(unsafe { alloc.malloc(size) } as usize);
                }
            }
            assert!(ptrs.iter().all(|&p| p != 0));
            ptrs
        }));
    }
    let a = handles.remove(0).join().unwrap();
    let b = handles.remove(0).join().unwrap();
    (a, b)
}

fn shared_lines(a: &[usize], b: &[usize], size: usize) -> usize {
    let lines = |v: &[usize]| -> HashSet<usize> {
        v.iter().flat_map(|&p| (p / LINE)..=((p + size - 1) / LINE)).collect()
    };
    lines(a).intersection(&lines(b)).count()
}

#[test]
fn lfmalloc_never_shares_lines_between_threads() {
    // 8 heaps, 2 threads with consecutive thread ids: distinct heaps,
    // hence distinct superblocks, hence distinct cache lines.
    let alloc = Arc::new(LfMalloc::with_config(Config::with_heaps(8)));
    let (a, b) = two_thread_allocation_sets(Arc::clone(&alloc), 2_000, 8);
    let shared = shared_lines(&a, &b, 8);
    assert_eq!(
        shared, 0,
        "lock-free allocator actively induced false sharing on {shared} lines"
    );
    for p in a.into_iter().chain(b) {
        unsafe { alloc.free(p as *mut u8) };
    }
}

#[test]
fn hoard_never_shares_lines_between_threads() {
    // Hoard's design property, same argument.
    let alloc = Arc::new(Hoard::new(8));
    let (a, b) = two_thread_allocation_sets(Arc::clone(&alloc), 2_000, 8);
    assert_eq!(shared_lines(&a, &b, 8), 0);
    for p in a.into_iter().chain(b) {
        unsafe { alloc.free(p as *mut u8) };
    }
}

#[test]
fn serial_allocator_does_share_lines() {
    // The contrast that makes the two tests above meaningful: a single
    // serial heap interleaves threads' 8-byte blocks in the same chunks
    // of address space. (If this ever fails, the structural tests above
    // have lost their discriminating power and should be revisited.)
    let alloc = Arc::new(LockedHeap::new());
    let (a, b) = two_thread_allocation_sets(Arc::clone(&alloc), 2_000, 8);
    let shared = shared_lines(&a, &b, 8);
    assert!(
        shared > 0,
        "expected the serial baseline to interleave allocations across threads"
    );
    for p in a.into_iter().chain(b) {
        unsafe { alloc.free(p as *mut u8) };
    }
}

#[test]
fn remote_free_does_not_poison_future_locality() {
    // Passive false sharing: thread B frees blocks allocated by thread
    // A; B's *subsequent* allocations must still come from B's own
    // heap, not from A's returned lines. In lfmalloc a remote free goes
    // back to the block's own superblock (owned by A's heap), so B's
    // next blocks cannot land there unless B's heap adopts that
    // superblock.
    let alloc = Arc::new(LfMalloc::with_config(Config::with_heaps(8)));
    // Thread A allocates and keeps half, sending half away.
    let (keep, give): (Vec<usize>, Vec<usize>) = {
        let alloc = Arc::clone(&alloc);
        std::thread::spawn(move || {
            let all: Vec<usize> =
                (0..2_000).map(|_| unsafe { alloc.malloc(8) } as usize).collect();
            let give = all[1_000..].to_vec();
            (all[..1_000].to_vec(), give)
        })
        .join()
        .unwrap()
    };
    // Thread B frees A's blocks, then allocates its own.
    let mine: Vec<usize> = {
        let alloc = Arc::clone(&alloc);
        std::thread::spawn(move || {
            for p in give {
                unsafe { alloc.free(p as *mut u8) };
            }
            (0..1_000).map(|_| unsafe { alloc.malloc(8) } as usize).collect()
        })
        .join()
        .unwrap()
    };
    let shared = shared_lines(&keep, &mine, 8);
    assert_eq!(shared, 0, "remote frees fed another thread's lines back ({shared} shared)");
    for p in keep.into_iter().chain(mine) {
        unsafe { alloc.free(p as *mut u8) };
    }
}
