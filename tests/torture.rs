//! Fault-injection torture: malloc/free churn under injected yields,
//! bounded delays, forced CAS retries, simulated mid-operation thread
//! kills, and OS allocation failures — with [`LfMalloc::audit`] as the
//! oracle after every scenario.
//!
//! Every scenario is seeded and prints its seed in the assertion
//! message, so a failure reproduces with a one-line test filter (see
//! EXPERIMENTS.md, "Reproducing torture failures").
//!
//! The failpoint scenarios require `--features failpoints`; the audit
//! and OS-failure-plan scenarios run in the default tier-1 build too.

use lfmalloc_repro::prelude::*;
use malloc_api::testkit;
use osmem::{FlakySource, SystemSource};
use std::sync::Arc;

/// Mixed size classes plus an occasional large block.
fn churn_size(rng: &mut testkit::TestRng) -> usize {
    match rng.range(0, 10) {
        0..=5 => rng.range(8, 256),
        6..=8 => rng.range(256, 8192),
        _ => rng.range(8192, 40_000),
    }
}

/// One thread's worth of randomized malloc/fill/check/free churn.
/// Null returns (injected OOM or kills) are tolerated; blocks are
/// verified against their fill pattern before being freed.
unsafe fn churn<S: osmem::PageSource + Send + Sync>(
    a: &LfMalloc<S>,
    seed: u64,
    ops: usize,
    drain: bool,
) {
    let mut rng = testkit::TestRng::new(seed);
    let mut live: Vec<(*mut u8, usize)> = Vec::new();
    for _ in 0..ops {
        if live.len() > 64 || (!live.is_empty() && rng.range(0, 3) == 0) {
            let (p, sz) = live.swap_remove(rng.range(0, live.len()));
            testkit::check_fill(p, sz);
            a.free(p);
        } else {
            let sz = churn_size(&mut rng);
            let p = a.malloc(sz);
            if !p.is_null() {
                testkit::fill(p, sz);
                live.push((p, sz));
            }
        }
    }
    if drain {
        for (p, sz) in live {
            testkit::check_fill(p, sz);
            a.free(p);
        }
    }
    // Without `drain` the remaining blocks stay allocated on purpose:
    // the audit must hold with live blocks outstanding, and the
    // instance reclaims them wholesale on drop.
}

fn assert_clean<S: osmem::PageSource + Send + Sync>(a: &LfMalloc<S>, scenario: &str, seed: u64) {
    let rep = a.audit();
    assert!(
        rep.is_clean(),
        "audit violations (scenario {scenario}, seed {seed:#x}):\n{rep}"
    );
}

#[test]
fn audit_clean_on_fresh_instance() {
    let a = LfMalloc::new_default();
    let rep = a.audit();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(rep.descriptors_total, 0, "no slabs before the first malloc");
}

#[test]
fn audit_clean_after_mixed_churn() {
    testkit::for_each_seed("mixed churn", &[0x5EED_0001, 0x5EED_0002, 0x5EED_0003], |seed| {
        let a = LfMalloc::with_config(Config::with_heaps(2));
        unsafe { churn(&a, seed, 20_000, false) };
        // Audit with blocks still live...
        assert_clean(&a, "mixed churn, blocks live", seed);
        let rep = a.audit();
        assert!(rep.descriptors_linked >= 1, "coverage: nothing linked\n{rep}");
        assert!(rep.free_blocks_walked >= 1, "coverage: no free list walked\n{rep}");
        // ...and the leak from `forget` is bounded to what churn left
        // behind (the instance reclaims it wholesale on drop).
    });
    // Full drain must also audit clean, with every block back on a list.
    let a = LfMalloc::with_config(Config::with_heaps(2));
    unsafe { churn(&a, 0x5EED_0004, 20_000, true) };
    assert_clean(&a, "mixed churn, drained", 0x5EED_0004);
}

#[test]
fn audit_clean_after_simulated_kills() {
    let a = LfMalloc::with_config(Config::with_heaps(1));
    unsafe {
        let p = a.malloc(64);
        assert!(!p.is_null());
        a.free(p);
        let mut kills = 0;
        for _ in 0..100 {
            if a.simulate_killed_reservation(64) {
                kills += 1;
            }
            let q = a.malloc(64);
            assert!(!q.is_null());
            a.free(q);
        }
        assert!(kills > 0, "no reservation was ever abandoned");
    }
    assert_clean(&a, "abandoned reservations", 0);
}

#[test]
fn audit_flags_seeded_freelist_corruption() {
    // The auditor must not be vacuous: scribbling over a free block's
    // next-index word is exactly the corruption a buggy free path would
    // produce, and the walk must report it.
    let a = LfMalloc::with_config(Config::with_heaps(1));
    unsafe {
        let p = a.malloc(64);
        assert!(!p.is_null());
        a.free(p);
        // `p`'s block is now the head of its superblock's free list; the
        // block's first word (at the prefix slot, user pointer − 8)
        // holds the next-free index.
        (p.sub(8) as *mut u64).write(u64::MAX);
    }
    let rep = a.audit();
    assert!(
        rep.violations.iter().any(|v| v.check.starts_with("sb.freelist")),
        "auditor missed planted free-list corruption:\n{rep}"
    );
}

#[test]
fn audit_clean_under_intermittent_os_failure_plans() {
    // FlakySource failure plans (no failpoints feature needed): a
    // probabilistic plan layered on a fail-every-Nth plan, then a
    // one-shot outage with self-recovery.
    testkit::for_each_seed("intermittent OS failure", &[0xBAD_05, 0xBAD_06], |seed| {
        let src = Arc::new(FlakySource::reliable(SystemSource::new()));
        src.fail_with_chance(8192, seed); // ~1/8 of OS allocations fail
        src.fail_every_nth(13);
        let a = LfMalloc::with_config_and_source(Config::with_heaps(2), Arc::clone(&src));
        unsafe { churn(&a, seed, 20_000, true) };
        assert!(src.denials() > 0, "the failure plans never fired (seed {seed:#x})");
        assert_clean(&a, "intermittent OS failure", seed);

        // Outage: the next 4 OS allocations fail, then service resumes
        // on its own. Large blocks always go to the OS, so the outage is
        // squarely in the allocation path — and the bounded backoff loop
        // (Config::oom_retries, default 8) must ride it out: the caller
        // sees one successful malloc, while the source records the
        // denials that the retries absorbed.
        src.fail_every_nth(0);
        src.fail_with_chance(0, 0);
        let denials_before = src.denials();
        src.fail_next(4);
        unsafe {
            let p = a.malloc(1 << 20);
            assert!(!p.is_null(), "backoff retries failed to absorb a 4-deep outage");
            a.free(p);
        }
        assert!(
            src.denials() >= denials_before + 4,
            "outage plan never fired (seed {seed:#x})"
        );
        assert_clean(&a, "post-outage", seed);
    });
}

#[cfg(feature = "failpoints")]
mod failpoint_scenarios {
    use super::*;
    use malloc_api::failpoints::{self as fp, FpAction, FpTrigger};
    use std::collections::HashSet;

    /// Sites armed with each action category in the combined scenario,
    /// for the coverage assertion.
    const YIELD_SITES: &[&str] = &["active.reserve", "hazard.scan", "hazard.retire", "queue.dequeue"];
    const RETRY_SITES: &[&str] = &["active.pop", "free.link", "queue.enqueue", "partial.get"];
    const KILL_SITES: &[&str] =
        &["active.reserved", "active.update", "partial.put", "desc.retire", "free.empty"];

    fn arm_combined_scenario() {
        // Yields and bounded delays: pure schedule perturbation.
        fp::arm("active.reserve", FpAction::Yield, FpTrigger::EveryNth(13));
        fp::arm("hazard.scan", FpAction::Yield, FpTrigger::Always);
        fp::arm("hazard.retire", FpAction::Delay(25), FpTrigger::EveryNth(6));
        fp::arm("queue.dequeue", FpAction::Delay(40), FpTrigger::EveryNth(8));
        // Forced CAS-retry arms: exercise every loop's failure path.
        fp::arm("active.pop", FpAction::Retry, FpTrigger::EveryNth(11));
        fp::arm("free.link", FpAction::Retry, FpTrigger::EveryNth(9));
        fp::arm("queue.enqueue", FpAction::Retry, FpTrigger::Chance(8000));
        fp::arm("partial.get", FpAction::Retry, FpTrigger::Chance(6000));
        // Simulated thread deaths, bounded so leaks stay bounded.
        fp::arm_limited("active.reserved", FpAction::Kill, FpTrigger::EveryNth(301), 8);
        fp::arm_limited("active.update", FpAction::Kill, FpTrigger::EveryNth(467), 4);
        fp::arm_limited("partial.put", FpAction::Kill, FpTrigger::EveryNth(3), 3);
        fp::arm_limited("desc.retire", FpAction::Kill, FpTrigger::EveryNth(2), 3);
        fp::arm_limited("free.empty", FpAction::Kill, FpTrigger::EveryNth(3), 2);
    }

    #[test]
    fn combined_torture_across_seeds_audits_clean() {
        let mut fired_total: HashSet<&'static str> = HashSet::new();
        let seeds = [0xF00D_0001, 0xF00D_0002, 0xF00D_0003, 0xF00D_0004];
        testkit::for_each_seed("combined failpoint torture", &seeds, |seed| {
            let _guard = fp::scenario(seed);
            arm_combined_scenario();

            // The background reaper rides along: its maintenance passes
            // run concurrently with the churn *and* the failpoint storm,
            // so the self-healing paths face the same adversary.
            let cfg = Config::with_heaps(1)
                .with_reaper(ReaperConfig::every(std::time::Duration::from_millis(2)));
            let a = Arc::new(LfMalloc::with_config(cfg));
            let mut workers = Vec::new();
            for t in 0..2u64 {
                let a = Arc::clone(&a);
                workers.push(std::thread::spawn(move || unsafe {
                    churn(&a, seed ^ (t + 1), 12_000, true);
                }));
            }
            for w in workers {
                w.join().unwrap();
            }

            let fired = fp::fired_sites();
            assert!(!fired.is_empty(), "no failpoint fired (seed {seed:#x})");
            for (name, _count) in &fired {
                fired_total.insert(name);
            }
            // Quiesce the reaper before the audit walks the structures.
            a.stop_reaper();
            assert_clean(&*a, "combined failpoint torture", seed);
        });

        // Acceptance coverage: many distinct sites, and every action
        // category (yield/delay, forced retry, kill) actually fired.
        assert!(
            fired_total.len() >= 8,
            "only {} distinct failpoints fired: {fired_total:?}",
            fired_total.len()
        );
        for (category, sites) in
            [("yield", YIELD_SITES), ("retry", RETRY_SITES), ("kill", KILL_SITES)]
        {
            assert!(
                sites.iter().any(|s| fired_total.contains(s)),
                "no {category} site fired; fired = {fired_total:?}"
            );
        }
    }

    #[test]
    fn forced_retries_never_change_results() {
        // Retry arms must be invisible to callers: same single-threaded
        // allocation behavior, just slower paths.
        let _guard = fp::scenario(0xC0FFEE);
        fp::arm("active.reserve", FpAction::Retry, FpTrigger::EveryNth(2));
        fp::arm("active.pop", FpAction::Retry, FpTrigger::EveryNth(2));
        fp::arm("free.link", FpAction::Retry, FpTrigger::EveryNth(2));
        fp::arm("queue.enqueue", FpAction::Retry, FpTrigger::EveryNth(2));
        fp::arm("queue.dequeue", FpAction::Retry, FpTrigger::EveryNth(2));

        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let blocks: Vec<*mut u8> = (0..2_000).map(|_| a.malloc(48)).collect();
            let unique: HashSet<usize> = blocks.iter().map(|p| *p as usize).collect();
            assert_eq!(unique.len(), blocks.len(), "duplicate blocks under forced retries");
            for p in &blocks {
                assert!(!p.is_null());
                testkit::fill(*p, 48);
            }
            for p in blocks {
                testkit::check_fill(p, 48);
                a.free(p);
            }
        }
        assert!(fp::fired("active.pop") > 0, "retry sites never fired");
        assert_clean(&a, "forced retries", 0xC0FFEE);
    }

    #[test]
    fn kill_storm_leaks_boundedly_and_audits_clean() {
        let _guard = fp::scenario(0xDEAD_01);
        fp::arm_limited("active.reserved", FpAction::Kill, FpTrigger::EveryNth(40), 16);
        fp::arm_limited("free.link", FpAction::Kill, FpTrigger::EveryNth(50), 8);
        fp::arm_limited("partial.reserve", FpAction::Kill, FpTrigger::EveryNth(2), 4);
        fp::arm_limited("free.empty", FpAction::Kill, FpTrigger::EveryNth(2), 4);

        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            // Build partial superblocks (allocate a lot, free a stride)
            // so partial-path and empty-path kills have prey.
            for _ in 0..4 {
                let blocks: Vec<*mut u8> = (0..4_000).map(|_| a.malloc(64)).collect();
                for (i, p) in blocks.iter().enumerate() {
                    if !p.is_null() && i % 3 != 0 {
                        a.free(*p);
                    }
                }
            }
            // The allocator must still serve after every kill.
            let p = a.malloc(64);
            assert!(!p.is_null(), "allocation blocked after kill storm");
            a.free(p);
        }
        let kills: u64 = ["active.reserved", "free.link", "partial.reserve", "free.empty"]
            .iter()
            .map(|s| fp::fired(s))
            .sum();
        assert!(kills > 0, "no kill site fired");
        assert_clean(&a, "kill storm", 0xDEAD_01);
    }

    #[test]
    fn oom_kills_and_retries_compose() {
        // OS failure plans + failpoints at once: the descriptor- and
        // superblock-allocation failpoints ride on top of a flaky
        // source, so both OOM entry points (real and simulated) fire.
        let _guard = fp::scenario(0xA110C);
        fp::arm("pool.carve", FpAction::Retry, FpTrigger::EveryNth(3));
        fp::arm_limited("desc.alloc", FpAction::Kill, FpTrigger::EveryNth(101), 2);

        let src = Arc::new(FlakySource::reliable(SystemSource::new()));
        src.fail_with_chance(6553, 0xA110C); // ~10%
        let a = LfMalloc::with_config_and_source(Config::with_heaps(2), Arc::clone(&src));
        unsafe { churn(&a, 0xA110C, 15_000, true) };
        assert!(fp::fired("pool.carve") + fp::fired("desc.alloc") > 0);
        assert_clean(&a, "oom + failpoints", 0xA110C);
    }
}
