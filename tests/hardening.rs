//! Hardened-mode integration tests: every misuse class is provoked on a
//! real allocator instance and must yield exactly one report of the
//! right kind, with the heap passing a full audit afterwards.
//!
//! The trap guard page (`PROT_NONE`) is deliberately not exercised:
//! writing into it raises SIGSEGV by design, which a test process
//! cannot survive. The canary page in front of it covers overruns that
//! stop short of the trap.

use lfmalloc_repro::prelude::*;
use std::sync::{Arc, Barrier};

fn hardened(level: Hardening) -> LfMalloc {
    LfMalloc::with_config(Config::detect().with_hardening(level))
}

#[test]
fn invalid_frees_are_rejected_and_counted() {
    let a = hardened(Hardening::Detect);
    let b = hardened(Hardening::Detect);
    unsafe {
        let p = a.malloc(64);
        assert!(!p.is_null());
        // Deterministic garbage where an interior free will look for a
        // prefix word.
        core::ptr::write_bytes(p, 0xAB, 64);

        // Interior pointer: 8-aligned but pointing into block data.
        a.free(p.add(8));
        assert_eq!(a.misuse_counters().count(MisuseKind::InvalidFree), 1);

        // Misaligned pointer.
        a.free(p.add(3));
        assert_eq!(a.misuse_counters().count(MisuseKind::InvalidFree), 2);

        // Stack address: not in any superblock this instance mapped.
        let local = 0u64;
        a.free(&local as *const u64 as *mut u8);
        assert_eq!(a.misuse_counters().count(MisuseKind::InvalidFree), 3);

        // Foreign pointer: a live block of another lfmalloc instance.
        let q = b.malloc(64);
        assert!(!q.is_null());
        a.free(q);
        assert_eq!(a.misuse_counters().count(MisuseKind::InvalidFree), 4);
        assert_eq!(b.misuse_counters().total(), 0);

        // The legitimate owners can still free both blocks.
        a.free(p);
        b.free(q);
    }
    assert_eq!(a.misuse_counters().count(MisuseKind::InvalidFree), 4);
    assert_eq!(a.misuse_counters().total(), 4, "no other kind may fire");
    let last = a.misuse_counters().last_report().unwrap();
    assert_eq!(last.kind, MisuseKind::InvalidFree);
    a.flush_quarantine();
    assert!(a.audit().is_clean(), "{:?}", a.audit());
    assert!(b.audit().is_clean());
}

#[test]
fn sequential_double_free_is_classified_as_double_free() {
    let a = hardened(Hardening::Detect);
    unsafe {
        let p = a.malloc(48);
        assert!(!p.is_null());
        a.free(p);
        // The block is quarantined with its descriptor prefix intact,
        // so the repeat free reaches the bitmap and loses there.
        a.free(p);
    }
    let c = a.misuse_counters();
    assert_eq!(c.count(MisuseKind::DoubleFree), 1);
    assert_eq!(c.total(), 1);
    let r = c.last_report().unwrap();
    assert_eq!(r.kind, MisuseKind::DoubleFree);
    assert!(r.size_class.is_some(), "small double free knows its class");
    a.flush_quarantine();
    assert!(a.audit().is_clean(), "{:?}", a.audit());
}

#[test]
fn concurrent_double_free_has_exactly_one_winner() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 8;
    malloc_api::testkit::for_each_seed("concurrent double free", &[0, 1, 2], |seed| {
        let a = Arc::new(hardened(Hardening::Detect));
        for round in 0..ROUNDS {
            // Vary the class per seed/round so different heaps and
            // descriptors arbitrate.
            let size = 16 << ((seed as usize + round) % 4);
            let p = unsafe { a.malloc(size) } as usize;
            assert!(p != 0);
            let barrier = Arc::new(Barrier::new(THREADS));
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let a = Arc::clone(&a);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        unsafe { a.free(p as *mut u8) };
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // Exactly one free won the bitmap race per round.
            assert_eq!(
                a.misuse_counters().count(MisuseKind::DoubleFree),
                ((round + 1) * (THREADS - 1)) as u64,
                "seed {seed} round {round}"
            );
        }
        assert_eq!(a.misuse_counters().total(), (ROUNDS * (THREADS - 1)) as u64);
        a.flush_quarantine();
        assert!(a.audit().is_clean(), "seed {seed}: {:?}", a.audit());
    });
}

#[test]
fn use_after_free_write_is_caught_by_quarantine_poison() {
    let a = hardened(Hardening::Detect);
    unsafe {
        let p = a.malloc(256);
        assert!(!p.is_null());
        a.free(p);
        // Dangling write through the stale pointer while the block sits
        // in quarantine.
        p.write(7);
    }
    assert_eq!(a.misuse_counters().total(), 0, "not detected until reuse/flush");
    let flushed = a.flush_quarantine();
    assert!(flushed >= 1);
    let c = a.misuse_counters();
    assert_eq!(c.count(MisuseKind::PoisonViolation), 1);
    assert_eq!(c.total(), 1);
    assert_eq!(c.last_report().unwrap().kind, MisuseKind::PoisonViolation);
    assert!(a.audit().is_clean(), "{:?}", a.audit());
}

#[test]
fn clean_quarantined_blocks_flush_without_reports() {
    let a = hardened(Hardening::Detect);
    unsafe {
        let blocks: Vec<usize> = (0..20).map(|_| a.malloc(64) as usize).collect();
        for &p in &blocks {
            assert!(p != 0);
            a.free(p as *mut u8);
        }
    }
    a.flush_quarantine();
    assert_eq!(a.misuse_counters().total(), 0);
    assert!(a.audit().is_clean(), "{:?}", a.audit());
}

#[test]
fn large_block_guard_overrun_is_detected_on_free() {
    let a = hardened(Hardening::Detect);
    unsafe {
        let p = a.malloc(100_000);
        assert!(!p.is_null());
        let usable = a.usable_size(p);
        assert!(usable >= 100_000);
        // One byte past the usable area lands on the canary page.
        p.add(usable).write(0);
        a.free(p);
    }
    let c = a.misuse_counters();
    assert_eq!(c.count(MisuseKind::GuardOverrun), 1);
    assert_eq!(c.total(), 1);
    // Detect mode released the span regardless; a second free of the
    // now-unknown pointer is an invalid free, not a crash.
    assert!(a.audit().is_clean(), "{:?}", a.audit());
}

#[test]
fn large_block_misuse_classification() {
    let a = hardened(Hardening::Detect);
    unsafe {
        let p = a.malloc(200_000);
        assert!(!p.is_null());
        // Interior pointer into a live large block: rejected, block
        // stays live.
        a.free(p.add(4096));
        assert_eq!(a.misuse_counters().count(MisuseKind::InvalidFree), 1);
        core::ptr::write_bytes(p, 0x5A, 200_000); // still writable
        a.free(p);
        // Sequential double free: the span is gone from the registry
        // and the memory unmapped, indistinguishable from a wild
        // pointer — reported as InvalidFree.
        a.free(p);
        assert_eq!(a.misuse_counters().count(MisuseKind::InvalidFree), 2);
    }
    assert_eq!(a.misuse_counters().total(), 2);
    assert!(a.audit().is_clean(), "{:?}", a.audit());
}

#[test]
#[should_panic(expected = "lfmalloc hardened mode")]
fn abort_mode_panics_with_the_report() {
    let a = hardened(Hardening::Abort);
    unsafe {
        let p = a.malloc(64);
        a.free(p);
        a.free(p); // DoubleFree -> panic
    }
}

#[test]
fn hardening_off_reports_nothing_under_normal_use() {
    let a = LfMalloc::new_default();
    unsafe {
        let blocks: Vec<usize> = (0..500)
            .map(|i| a.malloc(16 + (i % 100) * 8) as usize)
            .collect();
        for &p in &blocks {
            assert!(p != 0);
            a.free(p as *mut u8);
        }
    }
    assert_eq!(a.misuse_counters().total(), 0);
    assert_eq!(a.flush_quarantine(), 0, "no quarantine without hardening");
    assert!(a.audit().is_clean());
}

#[test]
fn hardened_mode_survives_mixed_churn_with_audit() {
    // Hardened allocator under ordinary multi-threaded churn: zero
    // reports, clean audit — validation must not misfire on legal use.
    let a = Arc::new(hardened(Hardening::Detect));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let mut live: Vec<(usize, usize)> = Vec::new();
                let mut x = 0x9E3779B9u64.wrapping_mul(t as u64 + 1);
                for _ in 0..3_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if live.len() > 32 || (!live.is_empty() && x % 2 == 0) {
                        let (p, sz) = live.swap_remove(x as usize % live.len());
                        unsafe {
                            malloc_api::testkit::check_fill(p as *mut u8, sz);
                            a.free(p as *mut u8);
                        }
                    } else {
                        let sz = 8 + (x as usize % 2048);
                        let p = unsafe { a.malloc(sz) };
                        assert!(!p.is_null());
                        unsafe { malloc_api::testkit::fill(p, sz) };
                        live.push((p as usize, sz));
                    }
                }
                for (p, sz) in live {
                    unsafe {
                        malloc_api::testkit::check_fill(p as *mut u8, sz);
                        a.free(p as *mut u8);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(a.misuse_counters().total(), 0, "{:?}", a.misuse_counters().last_report());
    a.flush_quarantine();
    assert!(a.audit().is_clean(), "{:?}", a.audit());
}
