//! End-to-end tests of the crash-forensics subsystem: `describe_ptr`
//! across every pointer state, the flight recorder's ordering and
//! content, the async-signal-safe crash reporter exercised by a forked
//! child that really segfaults, fail-stop report routing, post-mortem
//! heap dumps round-tripped through the offline analyzer, and the
//! forensics OpenMetrics series.

#![cfg(feature = "forensics")]

use std::fs::File;
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use lfmalloc::forensics::{CLASS_LARGE, CLASS_UNKNOWN};
use lfmalloc_repro::prelude::*;
use malloc_api::procfork::sys;
use malloc_api::testkit::for_each_seed;
use osmem::source::PAGE_SIZE;

fn hardened(h: Hardening) -> LfMalloc {
    LfMalloc::with_config(Config::with_heaps(2).with_hardening(h))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lfmalloc-forensics-{}-{name}", std::process::id()))
}

/// Serializes tests that fork or install process-wide crash sinks: a
/// forked child inherits every live sink and would otherwise interleave
/// its report into another test's file through the shared descriptor.
fn fork_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Reaps `pid` and returns the raw wait status. The crash child dies by
/// signal, so `fork_torture`'s exit-code-only waiter does not fit here.
fn wait_status(pid: i32) -> i32 {
    let start = Instant::now();
    loop {
        let mut status = 0i32;
        let r = unsafe { sys::waitpid(pid, &mut status, sys::WNOHANG) };
        if r == pid {
            return status;
        }
        assert!(r >= 0, "waitpid({pid}) failed");
        if start.elapsed() > Duration::from_secs(60) {
            unsafe {
                sys::kill(pid, sys::SIGKILL);
                sys::waitpid(pid, &mut status, 0);
            }
            panic!("forked child {pid} hung");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------
// describe_ptr: every pointer state.
// ---------------------------------------------------------------------

#[test]
fn describe_ptr_classifies_every_pointer_state() {
    use lfmalloc::PtrKind;
    for_each_seed("describe-ptr", &[1, 7, 0xC0FFEE], |seed| {
        let a = hardened(Hardening::Detect);

        // Null page.
        assert_eq!(a.describe_ptr(0).kind, PtrKind::Null);
        assert_eq!(a.describe_ptr(8).kind, PtrKind::Null);

        // Live small block: class geometry, prefix offset, alloc bit.
        let size = 48 + (seed as usize % 96);
        let p = unsafe { a.malloc(size) } as usize;
        assert_ne!(p, 0);
        let r = a.describe_ptr(p);
        assert_eq!(r.kind, PtrKind::Small, "{r:?}");
        assert!(r.class.is_some());
        assert!(r.class_size as usize >= size, "class must fit the request");
        assert_eq!(r.offset_in_block, 8, "user data sits past the prefix");
        assert_eq!(r.block_start, p - 8);
        assert_ne!(r.superblock, 0);
        assert_ne!(r.descriptor, 0);
        assert!(r.sb_state.is_some());
        assert_eq!(r.allocated, Some(true), "hardened bitmap tracks the block");
        assert!(!r.poisoned);
        let text = r.to_string();
        assert!(text.contains("small block"), "{text}");
        assert!(text.contains("allocated=yes"), "{text}");

        // An interior pointer into the same block resolves to the block.
        let mid = a.describe_ptr(p + size / 2);
        assert_eq!(mid.kind, PtrKind::Small);
        assert_eq!(mid.block_start, r.block_start);

        // The descriptor behind it is allocator metadata.
        assert_eq!(a.describe_ptr(r.descriptor).kind, PtrKind::DescriptorSlab);

        // Freed (quarantined) small block: bit cleared, poison present.
        unsafe { a.free(p as *mut u8) };
        let rf = a.describe_ptr(p);
        assert_eq!(rf.kind, PtrKind::Small);
        assert_eq!(rf.allocated, Some(false));
        assert!(rf.poisoned, "quarantined block carries the poison fill");
        assert!(rf.to_string().contains("poisoned=yes"));

        // Large span, its guard region, and an interior pointer.
        let q = unsafe { a.malloc(100_000) } as usize;
        assert_ne!(q, 0);
        let rl = a.describe_ptr(q);
        assert_eq!(rl.kind, PtrKind::LargeSpan, "{rl:?}");
        assert!(rl.guarded, "hardened large blocks always carry guards");
        assert!(rl.span_base < q && q < rl.span_base + rl.span_bytes);
        assert_eq!(a.describe_ptr(q + 5000).kind, PtrKind::LargeSpan);
        let guard = rl.span_base + rl.span_bytes - 2 * PAGE_SIZE;
        let rg = a.describe_ptr(guard);
        assert_eq!(rg.kind, PtrKind::GuardRegion, "{rg:?}");
        assert!(rg.to_string().contains("GUARD REGION"), "{rg:?}");
        unsafe { a.free(q as *mut u8) };
        // Unregistered after free: the address is no longer ours.
        assert_eq!(a.describe_ptr(q).kind, PtrKind::Foreign);

        // Foreign: stack memory and another instance's block.
        let local = 0u64;
        assert_eq!(
            a.describe_ptr(&local as *const u64 as usize).kind,
            PtrKind::Foreign
        );
        let b = LfMalloc::new_default();
        let fp = unsafe { b.malloc(64) };
        assert_eq!(a.describe_ptr(fp as usize).kind, PtrKind::Foreign);
        unsafe { b.free(fp) };

        // Trusting-mode instance: no alloc bitmap, so liveness is
        // reported as untracked rather than guessed.
        let t = LfMalloc::with_config(Config::with_heaps(1));
        let tp = unsafe { t.malloc(64) } as usize;
        let rt = t.describe_ptr(tp);
        assert_eq!(rt.kind, PtrKind::Small);
        assert_eq!(rt.allocated, None);
        assert!(rt.to_string().contains("allocated=untracked"));
        unsafe { t.free(tp as *mut u8) };
    });
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

#[test]
fn flight_recorder_orders_and_classifies_ops() {
    let a = hardened(Hardening::Detect);
    let mut ptrs = Vec::new();
    for i in 0..40usize {
        let p = unsafe { a.malloc(32 + i) };
        assert!(!p.is_null());
        ptrs.push(p);
    }
    for &p in &ptrs {
        unsafe { a.free(p) };
    }

    // Newest first, strictly descending sequence, and the most recent
    // operations are the frees we just issued.
    let tail = a.flight_recorder_tail(16);
    assert_eq!(tail.len(), 16);
    assert!(
        tail.windows(2).all(|w| w[0].seq > w[1].seq),
        "tail must be newest-first with unique sequence numbers"
    );
    assert!(tail.iter().all(|op| op.op == OpKind::Free));
    assert!(tail
        .iter()
        .any(|op| op.ptr == *ptrs.last().unwrap() as usize));
    assert!(tail.iter().all(|op| op.class != CLASS_LARGE && op.class != CLASS_UNKNOWN));

    // A wider window still holds the matching allocations.
    let all = a.flight_recorder_tail(4096);
    assert!(all.iter().any(|op| op.op == OpKind::Alloc));
    assert_eq!(a.flight_recorder_dropped(), 0);

    // Large operations are tagged CLASS_LARGE on both sides.
    let q = unsafe { a.malloc(100_000) };
    unsafe { a.free(q) };
    let recent = a.flight_recorder_tail(2);
    assert_eq!(recent.len(), 2);
    assert!(recent.iter().all(|op| op.class == CLASS_LARGE), "{recent:?}");
    assert_eq!(recent[0].op, OpKind::Free);
    assert_eq!(recent[1].op, OpKind::Alloc);
    assert_eq!(recent[0].ptr, q as usize);
}

// ---------------------------------------------------------------------
// Crash reporter: a forked child really segfaults on a guard page and
// the parent reads the black-box report.
// ---------------------------------------------------------------------

#[test]
fn segfaulting_child_emits_crash_report() {
    let _serial = fork_lock();
    let path = tmp("crash.txt");
    let _ = std::fs::remove_file(&path);
    let file = File::create(&path).expect("create report file");
    let fd = file.as_raw_fd();

    let pid = unsafe { sys::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        // Child: verdicts travel as exit codes or the death signal;
        // never panic, never return.
        let a = hardened(Hardening::Detect);
        for i in 0..48usize {
            let p = unsafe { a.malloc(40 + i) };
            if p.is_null() {
                unsafe { sys::_exit(13) };
            }
            unsafe { a.free(p) };
        }
        if !a.install_crash_reporter(fd) {
            unsafe { sys::_exit(10) };
        }
        let q = unsafe { a.malloc(100_000) } as usize;
        if q == 0 {
            unsafe { sys::_exit(13) };
        }
        let r = a.describe_ptr(q);
        if !r.guarded || r.span_bytes == 0 {
            unsafe { sys::_exit(11) };
        }
        // One byte into the PROT_NONE trap page: a deterministic
        // overrun past the span's user extent.
        let trap = r.span_base + r.span_bytes - PAGE_SIZE + 16;
        unsafe { core::ptr::write_volatile(trap as *mut u8, 0xAB) };
        // Reached only if the hardware guard was not armed.
        unsafe { sys::_exit(12) };
    }

    let status = wait_status(pid);
    assert_eq!(
        sys::term_signal(status),
        Some(sys::SIGSEGV),
        "child should die on the guard page; status={status:#x} exit={:?}",
        sys::exit_code(status)
    );
    drop(file);
    let text = std::fs::read_to_string(&path).expect("read crash report");
    assert!(text.contains("==== lfmalloc crash report ===="), "{text}");
    assert!(text.contains("cause: signal 11 (SIGSEGV)"), "{text}");
    assert!(text.contains("fault address: 0x"), "{text}");
    // describe_ptr of the faulting address names the guard region.
    assert!(text.contains("GUARD REGION"), "{text}");
    // The flight-recorder tail is present with real entries.
    assert!(text.contains("-- flight recorder (newest first"), "{text}");
    assert!(text.contains("seq="), "{text}");
    assert!(text.contains("op=free"), "{text}");
    assert!(text.contains("class=large"), "{text}");
    assert!(text.contains("reconciles=yes"), "{text}");
    assert!(text.contains("==== end lfmalloc crash report ===="), "{text}");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Fail-stop routing: Hardening::Abort writes the same report before
// panicking.
// ---------------------------------------------------------------------

#[test]
fn hardened_abort_failstop_emits_report() {
    let _serial = fork_lock();
    let path = tmp("failstop.txt");
    let _ = std::fs::remove_file(&path);
    let file = File::create(&path).expect("create report file");

    let a = hardened(Hardening::Abort);
    assert!(!a.crash_handler_installed());
    assert!(a.install_crash_reporter(file.as_raw_fd()));
    assert!(a.crash_handler_installed());

    let p = unsafe { a.malloc(64) };
    unsafe { a.free(p) };
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
        a.free(p) // double free: Abort mode must fail-stop
    }));
    assert!(err.is_err(), "double free under Abort must panic");

    let text = std::fs::read_to_string(&path).expect("read fail-stop report");
    assert!(text.contains("==== lfmalloc crash report ===="), "{text}");
    assert!(text.contains("cause: fail-stop (hardened-abort)"), "{text}");
    assert!(text.contains("double_free=1"), "{text}");
    assert!(text.contains("==== end lfmalloc crash report ===="), "{text}");
    drop(a);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Heap dumps: snapshot -> offline analyzer -> diff.
// ---------------------------------------------------------------------

#[test]
fn dump_heap_roundtrips_through_analyzer() {
    let a = hardened(Hardening::Detect);
    let mut live = Vec::new();
    for i in 0..500usize {
        let p = unsafe { a.malloc(64 + (i % 5) * 32) };
        assert!(!p.is_null());
        live.push(p);
    }
    let q = unsafe { a.malloc(50_000) };
    assert!(!q.is_null());

    let path = tmp("dump-a.json");
    a.dump_heap(&path).expect("dump_heap");
    let first = std::fs::read_to_string(&path).expect("read dump");
    let r = lfmalloc::analyze_dump(&first).expect("analyze own dump");
    assert_eq!(r.version, lfmalloc::DUMP_VERSION);
    assert_eq!(r.hardening, "detect");
    assert!(r.reconciles, "component byte counts must reconcile");
    assert!(!r.classes.is_empty());
    assert!(r.small_used_bytes > 0);
    assert!(r.small_capacity_bytes >= r.small_used_bytes);
    assert!(r.large_spans >= 1);
    assert!(r.large_bytes > 0);
    assert!(r.os_live_bytes > 0);
    assert!(r.flight_len > 0, "dump embeds the flight-recorder tail");
    assert_eq!(r.flight_dropped, 0);
    assert!(r.descriptors.total > 0);
    let rendered = r.to_string();
    assert!(rendered.contains("lfmalloc heap dump v1"), "{rendered}");
    assert!(rendered.contains("fragmentation by class:"), "{rendered}");

    // Free half and dump again: the diff shows per-class shrinkage and
    // the large span disappearing.
    for p in live.drain(..250) {
        unsafe { a.free(p) };
    }
    unsafe { a.free(q) };
    a.flush_quarantine();
    let path2 = tmp("dump-b.json");
    a.dump_heap(&path2).expect("dump_heap second");
    let second = std::fs::read_to_string(&path2).expect("read second dump");
    let d = lfmalloc::diff_dumps(&first, &second).expect("diff");
    assert!(
        d.class_deltas.iter().any(|&(_, _, delta)| delta < 0),
        "frees must shrink class occupancy: {:?}",
        d.class_deltas
    );
    assert!(d.delta_large_bytes < 0, "freed large span must show up");

    for p in live {
        unsafe { a.free(p) };
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&path2);
}

#[test]
fn dump_heap_fd_is_parseable_and_profile_free() {
    let a = hardened(Hardening::Detect);
    let p = unsafe { a.malloc(256) };
    let path = tmp("dump-fd.json");
    let _ = std::fs::remove_file(&path);
    let file = File::create(&path).expect("create dump file");
    a.dump_heap_fd(file.as_raw_fd());
    drop(file);
    let text = std::fs::read_to_string(&path).expect("read fd dump");
    let r = lfmalloc::analyze_dump(&text).expect("fd dump parses");
    assert_eq!(r.version, lfmalloc::DUMP_VERSION);
    // The fd path is for crash contexts: building the profile section
    // allocates, so it is always omitted there.
    assert!(r.leak_candidates.is_empty());
    unsafe { a.free(p) };
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Planted leak: dump -> analyzer ranks the leaking call site first.
// ---------------------------------------------------------------------

#[cfg(feature = "profile")]
mod leak_ranking {
    use super::*;
    use lfmalloc::ProfileParams;

    #[test]
    fn analyzer_ranks_planted_leak_site_first() {
        let a = LfMalloc::with_config(
            Config::with_heaps(1)
                .with_hardening(Hardening::Detect)
                .with_profile(ProfileParams::new(4096, 99)),
        );
        let mut leaked = Vec::new();
        let mut small_kept = Vec::new();
        let mut leak_line = 0u64;
        let mut small_line = 0u64;
        for i in 0..20_000usize {
            // Churn site: allocated and immediately freed, retains ~0.
            let p = unsafe { a.malloc(24 + i % 64) };
            assert!(!p.is_null());
            unsafe { a.free(p) };
            if i % 8 == 0 {
                // The planted leak: big blocks, never freed.
                leak_line = line!() as u64 + 1;
                let q = unsafe { a.malloc(4096) };
                assert!(!q.is_null());
                leaked.push(q);
            }
            if i % 400 == 0 {
                // A second retained site, far smaller than the leak.
                small_line = line!() as u64 + 1;
                let s = unsafe { a.malloc(40) };
                assert!(!s.is_null());
                small_kept.push(s);
            }
        }

        let path = tmp("leak-dump.json");
        a.dump_heap(&path).expect("dump_heap");
        let text = std::fs::read_to_string(&path).expect("read dump");
        let r = lfmalloc::analyze_dump(&text).expect("analyze");
        assert!(
            !r.leak_candidates.is_empty(),
            "10MB retained at stride 4096 must be sampled"
        );
        let top = &r.leak_candidates[0];
        assert!(
            top.file.ends_with("forensics.rs"),
            "top candidate file: {}",
            top.file
        );
        assert_eq!(
            top.line, leak_line,
            "the planted leak must rank first (small site at line {small_line}): {:?}",
            r.leak_candidates
        );
        assert!(top.live_bytes > 0 && top.live_samples > 0);
        // Ranking is by retained bytes, largest first.
        assert!(r
            .leak_candidates
            .windows(2)
            .all(|w| w[0].live_bytes >= w[1].live_bytes));

        for p in leaked.into_iter().chain(small_kept) {
            unsafe { a.free(p) };
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------
// Exit-time leak report on the global adapter.
// ---------------------------------------------------------------------

#[test]
fn exit_leak_report_fires_at_process_exit() {
    let _serial = fork_lock();
    let path = tmp("exitleak.txt");
    let _ = std::fs::remove_file(&path);
    let file = File::create(&path).expect("create report file");
    let fd = file.as_raw_fd();

    let pid = unsafe { sys::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        let g = GlobalLfMalloc::with_heaps(1);
        let p = unsafe { g.instance().malloc(5000) };
        if p.is_null() {
            unsafe { sys::_exit(13) };
        }
        g.install_exit_leak_report(fd);
        // Normal exit runs the atexit hook; `p` is deliberately leaked.
        std::process::exit(0);
    }

    let status = wait_status(pid);
    assert_eq!(
        sys::exit_code(status),
        Some(0),
        "child should exit cleanly; status={status:#x} signal={:?}",
        sys::term_signal(status)
    );
    drop(file);
    let text = std::fs::read_to_string(&path).expect("read exit report");
    assert!(text.contains("==== lfmalloc exit leak report ===="), "{text}");
    assert!(text.contains("==== end lfmalloc exit leak report ===="), "{text}");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// OpenMetrics: the forensics series are exported and well-formed.
// ---------------------------------------------------------------------

#[test]
fn openmetrics_exports_forensics_series() {
    let a = hardened(Hardening::Detect);
    let p = unsafe { a.malloc(64) };
    unsafe { a.free(p) };
    let text = a.render_openmetrics();
    lfmalloc::metrics::check_openmetrics(&text).expect("exposition well-formed");
    assert!(
        text.contains("lfmalloc_flight_recorder_dropped_total 0"),
        "{text}"
    );
    assert!(text.contains("lfmalloc_crash_handler_installed 0"), "{text}");
}
