//! Fork torture: process-lifecycle robustness under concurrent load.
//!
//! Lock-freedom's availability argument (§2 of the paper: immunity to
//! deadlock "even if any number of threads are killed while operating")
//! extends naturally to `fork(2)`, which is a mass thread kill: the
//! child inherits the whole heap image but only the forking thread.
//! These tests fork repeatedly while other threads hammer the
//! allocators and then prove, in the child:
//!
//! * lfmalloc serves allocations immediately, adopts every orphaned
//!   hazard record, passes a full [`LfMalloc::audit`], and reports the
//!   recovery in its health snapshot (DESIGN.md §12);
//! * the reaper thread — which died in the fork — is respawned, and
//!   `stop_reaper` never tries to join the corpse;
//! * the three lock-based baselines, which WOULD deadlock when forked
//!   mid-allocation, never do so under their atfork guards (prepare
//!   acquires every lock, parent/child release);
//! * the differential oracle replays cleanly over a forked heap.
//!
//! Children communicate only via `_exit` codes (no panic unwinding, no
//! stdio flushing in the child); the parent reaps with a watchdog that
//! converts a hung child — i.e. a deadlock — into `SIGKILL` plus a test
//! failure instead of a hung CI job.

use lfmalloc_repro::prelude::*;
use malloc_api::procfork::{self, sys};
use malloc_api::testkit::for_each_seed;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Child exit codes (each failure mode gets its own, so a red test says
/// what broke without child-side stdio).
const OK: i32 = 0;
const NULL_ALLOC: i32 = 10;
const AUDIT_VIOLATION: i32 = 11;
const HEALTH_MISMATCH: i32 = 12;
const ORACLE_VIOLATION: i32 = 13;
const REAPER_STUCK: i32 = 14;

/// Serializes fork scenarios: the test harness is multithreaded, and
/// concurrent `waitpid` loops could reap each other's children.
fn fork_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

/// Reaps `pid` with a deadline. A child that deadlocks (the exact bug
/// these tests exist to catch) is SIGKILLed and reported as a failure
/// rather than hanging the suite.
fn wait_child(pid: i32, what: &str) -> i32 {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut status = 0i32;
    loop {
        let r = unsafe { sys::waitpid(pid, &mut status, sys::WNOHANG) };
        if r == pid {
            match sys::exit_code(status) {
                Some(code) => return code,
                None => panic!("{what}: child {pid} killed by signal (status {status:#x})"),
            }
        }
        assert!(r == 0, "{what}: waitpid failed ({r})");
        if std::time::Instant::now() > deadline {
            unsafe {
                sys::kill(pid, sys::SIGKILL);
                sys::waitpid(pid, &mut status, 0);
            }
            panic!("{what}: child {pid} hung past the deadline — deadlock in the child");
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

/// Spawns `n` allocator-hammering threads that run until `stop`. The
/// returned closure is the per-thread body.
fn hammer<A: RawMalloc + Send + Sync>(a: &A, stop: &AtomicBool, seed: u64) {
    let mut x = seed | 1;
    let mut held: Vec<(*mut u8, usize)> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        // xorshift: cheap deterministic size/action stream.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let size = 1 + (x as usize % 1500);
        unsafe {
            if held.len() >= 64 || (x & 3 == 0 && !held.is_empty()) {
                let (p, _) = held.swap_remove(x as usize % held.len());
                a.free(p);
            } else {
                let p = a.malloc(size);
                if !p.is_null() {
                    p.write(0xA5);
                    held.push((p, size));
                }
            }
        }
    }
    for (p, _) in held {
        unsafe { a.free(p) };
    }
}

/// Child-side proof for lfmalloc: the heap must work immediately, the
/// audit must be clean (every parent thread's hazard record adopted,
/// retired queues drained), and the health snapshot must show exactly
/// one recovery at the child's generation.
fn lfmalloc_child_check(a: &LfMalloc) -> ! {
    unsafe {
        let mut ptrs = Vec::new();
        for i in 0..2_000usize {
            let p = a.malloc(1 + (i * 37) % 4_000);
            if p.is_null() {
                sys::_exit(NULL_ALLOC);
            }
            p.write(0x5A);
            ptrs.push(p);
        }
        for p in ptrs {
            a.free(p);
        }
    }
    if !a.audit().is_clean() {
        unsafe { sys::_exit(AUDIT_VIOLATION) };
    }
    let h = a.health();
    if h.fork_recoveries != 1 || h.fork_generation != procfork::generation() {
        unsafe { sys::_exit(HEALTH_MISMATCH) };
    }
    unsafe { sys::_exit(OK) };
}

/// The tentpole scenario: fork lfmalloc under multithreaded load, with
/// seeds varying the interleaving; the child must recover and audit
/// clean every time.
#[test]
fn lfmalloc_child_recovers_after_fork_under_load() {
    let _serial = fork_lock();
    for_each_seed("fork under load", &[0x5EED_1, 0x5EED_2, 0x5EED_3, 0x5EED_4], |seed| {
        let a = LfMalloc::new_default();
        let stop = AtomicBool::new(false);
        let (ar, stopr) = (&a, &stop);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || hammer(ar, stopr, seed.wrapping_mul(t + 1)));
            }
            // Let the hammers reach steady state, then fork mid-churn.
            std::thread::sleep(std::time::Duration::from_millis(30));
            let pid = unsafe { procfork::fork() };
            assert!(pid >= 0, "fork failed");
            if pid == 0 {
                lfmalloc_child_check(&a); // never returns
            }
            let code = wait_child(pid, "lfmalloc fork under load");
            stop.store(true, Ordering::Relaxed);
            assert_eq!(code, OK, "child failed (see exit-code constants)");
        });
        // The parent's heap was never perturbed: its own audit must
        // stay clean and it must have recorded zero recoveries.
        assert!(a.audit().is_clean(), "parent audit dirty after fork");
        assert_eq!(a.health().fork_recoveries, 0);
    });
}

/// The reaper dies in the fork. The child must (a) get a fresh reaper
/// via the atfork child hook, (b) be able to stop it — proving
/// `stop_reaper` joins the respawned thread, not the corpse — and (c)
/// restart it again.
#[test]
fn reaper_respawns_in_child_and_corpse_is_never_joined() {
    let _serial = fork_lock();
    let a = LfMalloc::new_default();
    assert!(a.start_reaper_with(ReaperConfig::every(std::time::Duration::from_millis(10))));
    // Give the reaper a beat to be genuinely parked in its loop.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let pid = unsafe { procfork::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        // Allocation works before anything reaper-related is touched.
        unsafe {
            let p = a.malloc(256);
            if p.is_null() {
                sys::_exit(NULL_ALLOC);
            }
            a.free(p);
        }
        // stop_reaper must return true (a live, respawned reaper was
        // stopped) and must not hang joining the parent's dead thread.
        if !a.stop_reaper() {
            unsafe { sys::_exit(REAPER_STUCK) };
        }
        // And the child can run its own reaper lifecycle afterwards.
        if !a.start_reaper_with(ReaperConfig::every(std::time::Duration::from_millis(10))) || !a.stop_reaper() {
            unsafe { sys::_exit(REAPER_STUCK) };
        }
        if !a.audit().is_clean() {
            unsafe { sys::_exit(AUDIT_VIOLATION) };
        }
        unsafe { sys::_exit(OK) };
    }
    let code = wait_child(pid, "reaper respawn");
    assert_eq!(code, OK, "child failed (see exit-code constants)");
    // The parent's reaper is untouched by the child's lifecycle.
    assert!(a.stop_reaper(), "parent lost its reaper");
}

/// Forks a lock-based baseline mid-allocation, repeatedly, with its
/// atfork guard armed. Without the guard the child would inherit a heap
/// mutex locked by a hammer thread and deadlock on first use — caught
/// here by the watchdog.
fn baseline_fork_torture<A: RawMalloc + Send + Sync>(a: &A, guard_armed: bool, what: &str) {
    assert!(guard_armed, "{what}: atfork guard failed to register");
    let stop = AtomicBool::new(false);
    let stopr = &stop;
    std::thread::scope(|s| {
        for t in 0..3u64 {
            s.spawn(move || hammer(a, stopr, 0x0DDB_1A5E + t));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        for round in 0..8 {
            let pid = unsafe { procfork::fork() };
            assert!(pid >= 0, "{what}: fork failed");
            if pid == 0 {
                // The child's heap must be usable at once: prepare held
                // every lock across the fork, child released them.
                unsafe {
                    for i in 0..200usize {
                        let p = a.malloc(1 + i * 13 % 2_000);
                        if p.is_null() {
                            sys::_exit(NULL_ALLOC);
                        }
                        a.free(p);
                    }
                    sys::_exit(OK);
                }
            }
            let code = wait_child(pid, what);
            assert_eq!(code, OK, "{what}: child failed in round {round}");
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn dlheap_never_deadlocks_forked_mid_allocation() {
    let _serial = fork_lock();
    let a = LockedHeap::new();
    let g = a.atfork_guard();
    baseline_fork_torture(&a, g.is_armed(), "dlheap fork torture");
}

#[test]
fn hoard_never_deadlocks_forked_mid_allocation() {
    let _serial = fork_lock();
    let a = Hoard::new(4);
    let g = a.atfork_guard();
    baseline_fork_torture(&a, g.is_armed(), "hoard fork torture");
}

#[test]
fn ptmalloc_never_deadlocks_forked_mid_allocation() {
    let _serial = fork_lock();
    let a = Ptmalloc::new();
    let g = a.atfork_guard();
    baseline_fork_torture(&a, g.is_armed(), "ptmalloc fork torture");
}

/// Differential check across the fork boundary: an oracle-wrapped
/// lfmalloc is forked with live blocks outstanding; the child frees the
/// parent-era blocks, churns new ones, and every content/bounds check
/// must stay silent.
#[test]
fn child_heap_passes_oracle_differential_after_fork() {
    let _serial = fork_lock();
    for_each_seed("post-fork oracle", &[0x0AC1_E1, 0x0AC1_E2, 0x0AC1_E3, 0x0AC1_E4], |seed| {
        let oracle = Arc::new(OracleMalloc::new(LfMalloc::new_default()));
        // Parent-era live blocks the child will inherit and free.
        let mut live = Vec::new();
        unsafe {
            for i in 0..300usize {
                let p = oracle.malloc(1 + (seed as usize + i * 41) % 3_000);
                assert!(!p.is_null());
                live.push(p);
            }
        }
        let pid = unsafe { procfork::fork() };
        assert!(pid >= 0, "fork failed");
        if pid == 0 {
            unsafe {
                for p in live {
                    oracle.free(p); // content checks run on every free
                }
                for i in 0..500usize {
                    let p = oracle.malloc(1 + i * 29 % 2_000);
                    if p.is_null() {
                        sys::_exit(NULL_ALLOC);
                    }
                    oracle.free(p);
                }
                // Mode::Panic would have aborted already; belt and
                // braces, re-verify and check the inner allocator too.
                oracle.verify_all();
                if oracle.violation_count() != 0 {
                    sys::_exit(ORACLE_VIOLATION);
                }
                if !oracle.inner().audit().is_clean() {
                    sys::_exit(AUDIT_VIOLATION);
                }
                sys::_exit(OK);
            }
        }
        let code = wait_child(pid, "post-fork oracle");
        assert_eq!(code, OK, "child failed (see exit-code constants)");
        // Parent: its copy of the same blocks is still intact.
        unsafe {
            for p in live {
                oracle.free(p);
            }
        }
        assert_eq!(oracle.verify_all(), 0);
        assert_eq!(oracle.violation_count(), 0);
    });
}

/// Under `stats`, the parent records a `Fork` event and the child a
/// `ChildRecover` event with the adopted-record count.
#[cfg(feature = "stats")]
#[test]
fn fork_events_land_in_the_event_ring() {
    let _serial = fork_lock();
    let a = LfMalloc::new_default();
    unsafe {
        let p = a.malloc(64);
        assert!(!p.is_null());
        a.free(p);
    }
    let pid = unsafe { procfork::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        unsafe {
            let p = a.malloc(64);
            if p.is_null() {
                sys::_exit(NULL_ALLOC);
            }
            a.free(p);
        }
        let ok = a.take_events().iter().any(|e| e.kind == EventKind::ChildRecover);
        unsafe { sys::_exit(if ok { OK } else { HEALTH_MISMATCH }) };
    }
    let code = wait_child(pid, "fork events");
    assert_eq!(code, OK, "child saw no ChildRecover event");
    let saw_fork = a.take_events().iter().any(|e| e.kind == EventKind::Fork);
    assert!(saw_fork, "parent saw no Fork event");
}
