//! Memory-pressure resilience, end to end through the public
//! malloc/free API:
//!
//! * a pressure burst up to a byte cap, a full drain, and
//!   [`LfMalloc::trim`] must hand essentially everything back to the OS
//!   (within one hyperblock of zero live bytes);
//! * a total OS outage ([`FlakySource::fail_next`]) must degrade to null
//!   returns — never a panic — while frees keep succeeding, and service
//!   must recover on its own once the outage drains;
//! * the emergency descriptor reserve must keep the free path (and its
//!   EMPTY-superblock bookkeeping) alive after the source dies;
//! * construction is fallible ([`LfMalloc::try_with_config_and_source`])
//!   and lazy: an allocator over a dead source builds fine and reports
//!   OOM per-call.
//!
//! Every scenario ends in a clean [`LfMalloc::audit`]. See DESIGN.md §7
//! and EXPERIMENTS.md ("OOM torture") for the policy and repro commands.

use lfmalloc_repro::prelude::*;
use malloc_api::testkit;
use osmem::{CountingSource, FlakySource, PageSource, SystemSource};
use std::sync::Arc;

/// One hyperblock: the trim watermark's natural resolution.
const HYPERBLOCK: usize = 1 << 20;

fn assert_clean<S: osmem::PageSource + Send + Sync>(a: &LfMalloc<S>, scenario: &str, seed: u64) {
    let rep = a.audit();
    assert!(rep.is_clean(), "audit violations (scenario {scenario}, seed {seed:#x}):\n{rep}");
}

/// Mixed small/medium/large request sizes.
fn burst_size(rng: &mut testkit::TestRng) -> usize {
    match rng.range(0, 10) {
        0..=5 => rng.range(8, 256),
        6..=8 => rng.range(256, 8192),
        _ => rng.range(8192, 40_000),
    }
}

#[test]
fn trim_returns_a_pressure_burst_to_the_os() {
    testkit::for_each_seed("pressure burst + trim", &[0x7212_0001, 0x7212_0002], |seed| {
        let src = Arc::new(CountingSource::new(SystemSource::new()));
        let a = LfMalloc::with_config_and_source(Config::with_heaps(2), Arc::clone(&src));
        let mut rng = testkit::TestRng::new(seed);
        let mut live: Vec<(*mut u8, usize)> = Vec::new();

        // Burst: allocate mixed sizes until 32 MiB is held.
        const CAP: usize = 32 << 20;
        let mut held = 0usize;
        unsafe {
            while held < CAP {
                let sz = burst_size(&mut rng);
                let p = a.malloc(sz);
                assert!(!p.is_null(), "system source denied a burst alloc (seed {seed:#x})");
                testkit::fill(p, sz);
                live.push((p, sz));
                held += sz;
            }
            assert!(src.stats().live_bytes >= CAP / 2, "burst never reached the OS");

            // Drain and trim: everything must come back.
            for (p, sz) in live.drain(..) {
                testkit::check_fill(p, sz);
                a.free(p);
            }
            let released = a.trim();
            assert!(released > 0, "trim released nothing after a full drain (seed {seed:#x})");
        }
        let after = src.stats().live_bytes;
        assert!(
            after <= HYPERBLOCK,
            "trim left {after} OS bytes live (> one hyperblock; seed {seed:#x})"
        );
        assert_clean(&a, "post-trim", seed);

        // The trimmed allocator must be fully serviceable.
        unsafe {
            let p = a.malloc(4096);
            assert!(!p.is_null());
            testkit::fill(p, 4096);
            testkit::check_fill(p, 4096);
            a.free(p);
        }
        assert_clean(&a, "post-trim reuse", seed);
    });
}

#[test]
fn trim_to_watermark_keeps_a_warm_cache() {
    let src = Arc::new(CountingSource::new(SystemSource::new()));
    let a = LfMalloc::with_config_and_source(Config::with_heaps(1), Arc::clone(&src));
    unsafe {
        let blocks: Vec<*mut u8> = (0..20_000).map(|_| a.malloc(64)).collect();
        for p in blocks {
            assert!(!p.is_null());
            a.free(p);
        }
        // Keep up to two hyperblocks of superblock cache for the next
        // burst; release the rest.
        a.trim_to(2 * HYPERBLOCK);
    }
    let kept = a.hyperblock_count();
    assert!(kept <= 2, "watermark ignored: {kept} hyperblocks");
    assert_clean(&a, "trim_to watermark", 0);
    // The retained cache serves the next burst without mapping a fresh
    // hyperblock. (A 16 KiB descriptor slab may be re-carved — trim
    // releases fully-free slabs too — so count hyperblocks, not calls.)
    unsafe {
        let p = a.malloc(64);
        assert!(!p.is_null());
        a.free(p);
    }
    assert_eq!(a.hyperblock_count(), kept, "warm hyperblock cache was not used");
}

#[test]
fn full_outage_yields_nulls_then_recovers() {
    testkit::for_each_seed("full outage + recovery", &[0x0, 0xDEAD_BEEF, 0x5CA1_AB1E], |seed| {
        let src = Arc::new(FlakySource::reliable(CountingSource::new(SystemSource::new())));
        let a = LfMalloc::with_config_and_source(Config::with_heaps(2), Arc::clone(&src));

        // Warm up: some small blocks stay cached across the outage.
        let warm: Vec<*mut u8> = unsafe { (0..512).map(|_| a.malloc(64)).collect() };
        assert!(warm.iter().all(|p| !p.is_null()));

        // Total outage, deeper than the retry budget can absorb.
        let denials_before = src.denials();
        src.fail_next(400);

        unsafe {
            // Large blocks go straight to the OS: with the source dark,
            // they must come back null — not panic, not spin forever.
            let mut nulls = 0;
            for _ in 0..8 {
                let p = a.malloc(HYPERBLOCK);
                if p.is_null() {
                    nulls += 1;
                } else {
                    a.free(p);
                }
            }
            assert!(nulls > 0, "outage never surfaced as null (seed {seed:#x})");
            assert!(src.denials() > denials_before, "outage plan never fired");

            // Frees never touch the source: draining the warm set must
            // succeed mid-outage, and the recycled blocks keep small
            // mallocs serviceable from cache while the OS is dark.
            for p in warm {
                a.free(p);
            }
            let cached = a.malloc(64);
            assert!(!cached.is_null(), "cached superblocks must serve during an outage");
            a.free(cached);

            // Recovery: keep asking until the outage drains. Each
            // attempt consumes at most 1 + oom_retries denials, so the
            // bound below is generous.
            let mut recovered = false;
            for _ in 0..200 {
                let p = a.malloc(HYPERBLOCK);
                if !p.is_null() {
                    a.free(p);
                    recovered = true;
                    break;
                }
            }
            assert!(recovered, "service never recovered after the outage (seed {seed:#x})");
        }
        assert_clean(&a, "outage + recovery", seed);

        // After recovery, trim still reconciles to (near) zero.
        unsafe { a.trim() };
        let after = src.stats().live_bytes;
        assert!(after <= HYPERBLOCK, "post-recovery trim left {after} bytes (seed {seed:#x})");
        assert_clean(&a, "post-recovery trim", seed);
    });
}

#[test]
fn descriptor_reserve_keeps_frees_alive_after_source_death() {
    // A tight budget: a few hyperblocks' worth of OS grants, then the
    // source dies for good (no outage recovery, no refill).
    let src = Arc::new(FlakySource::new(CountingSource::new(SystemSource::new()), 6));
    let a = LfMalloc::with_config_and_source(Config::with_heaps(1), Arc::clone(&src));

    let mut live: Vec<*mut u8> = Vec::new();
    unsafe {
        // Allocate until the allocator reports OOM (bounded: 6 grants
        // can back at most a few hundred thousand 64-byte blocks).
        for _ in 0..1_000_000 {
            let p = a.malloc(64);
            if p.is_null() {
                break;
            }
            live.push(p);
        }
    }
    assert!(!live.is_empty(), "budget of 6 grants served nothing");
    assert!(src.denials() > 0, "the source never went dry");
    assert!(
        a.descriptor_reserve_len() > 0,
        "no emergency descriptors on hand at exhaustion"
    );

    // Every free — including the EMPTY-superblock transitions they
    // trigger — must succeed with the source dead.
    unsafe {
        for p in live.drain(..) {
            a.free(p);
        }
        // And the recycled memory serves new requests without the OS.
        let p = a.malloc(64);
        assert!(!p.is_null(), "recycled memory unusable after source death");
        a.free(p);
    }
    assert_clean(&a, "dead-source drain", 0);
}

#[test]
fn construction_is_fallible_and_lazy() {
    // try_* constructors report failure as a value...
    let a = LfMalloc::try_new_default().expect("healthy construction must succeed");
    drop(a);

    // ...and construction over a dead source succeeds because no pages
    // are mapped until the first malloc, which then fails per-call.
    let dead = Arc::new(FlakySource::new(SystemSource::new(), 0));
    let a = LfMalloc::try_with_config_and_source(Config::with_heaps(1), Arc::clone(&dead))
        .expect("construction must not touch the page source");
    unsafe {
        assert!(a.malloc(64).is_null());
        assert!(a.malloc(4 << 20).is_null());
        a.free(core::ptr::null_mut()); // free(NULL) is a no-op, even now
    }
    assert!(dead.denials() > 0);
    assert_clean(&a, "dead source from birth", 0);
}
