//! End-to-end tests of the heap-profiling subsystem through the public
//! API: sampler determinism, planted-leak attribution through the
//! retention report, latency percentiles in both human and JSON
//! surfaces, the fragmentation time series, and the OpenMetrics
//! exporter (rendered and scraped over HTTP).

#![cfg(feature = "stats")]

use lfmalloc_repro::prelude::*;

#[cfg(feature = "profile")]
mod profile {
    use super::*;
    use lfmalloc::ProfileParams;
    use malloc_api::testkit::for_each_seed;

    /// Runs a fixed single-threaded allocation sequence on a fresh
    /// instance and returns the multiset of sampled *requested sizes*
    /// (pointer values differ between runs; the unique sizes identify
    /// which allocations of the sequence were sampled).
    fn sampled_sizes(seed: u64) -> Vec<u64> {
        let a = LfMalloc::with_config(
            Config::with_heaps(1).with_profile(ProfileParams::new(2048, seed)),
        );
        let mut live = Vec::new();
        unsafe {
            for i in 0..3000usize {
                let p = a.malloc(17 + i); // unique size per allocation
                assert!(!p.is_null());
                live.push(p);
            }
        }
        let mut sizes: Vec<u64> =
            a.profile().live.iter().map(|s| s.requested as u64).collect();
        sizes.sort_unstable();
        unsafe {
            for p in live {
                a.free(p);
            }
        }
        assert_eq!(a.profile().live.len(), 0, "frees must unsample");
        sizes
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        // Same seed + same sequence => byte-for-byte identical sample
        // sets across fresh instances; the stride estimator also pins
        // the expected sample count to allocated_bytes / stride.
        for_each_seed("profile-determinism", &[1, 0xDEAD_BEEF, u64::MAX / 7], |seed| {
            let first = sampled_sizes(seed);
            let second = sampled_sizes(seed);
            assert!(!first.is_empty(), "stride 2048 over ~4.5MB must sample");
            assert_eq!(first, second, "sampling must be deterministic for seed {seed}");
        });
        // Distinct seeds see distinct byte offsets: at least one pair
        // of the three must differ (they cover different residues).
        let a = sampled_sizes(1);
        let b = sampled_sizes(2);
        let c = sampled_sizes(3);
        assert!(a != b || b != c, "distinct seeds never diverged");
    }

    /// One allocation site behind a `#[track_caller]` shim: the
    /// reported location is the *match arm*, giving the test 64 real,
    /// distinct call sites in the source.
    #[track_caller]
    fn alloc_at(a: &LfMalloc, size: usize) -> *mut u8 {
        unsafe { a.malloc(size) }
    }

    #[rustfmt::skip]
    fn alloc_site(a: &LfMalloc, which: usize, size: usize) -> *mut u8 {
        match which {
            0 => alloc_at(a, size),
            1 => alloc_at(a, size),
            2 => alloc_at(a, size),
            3 => alloc_at(a, size),
            4 => alloc_at(a, size),
            5 => alloc_at(a, size),
            6 => alloc_at(a, size),
            7 => alloc_at(a, size),
            8 => alloc_at(a, size),
            9 => alloc_at(a, size),
            10 => alloc_at(a, size),
            11 => alloc_at(a, size),
            12 => alloc_at(a, size),
            13 => alloc_at(a, size),
            14 => alloc_at(a, size),
            15 => alloc_at(a, size),
            16 => alloc_at(a, size),
            17 => alloc_at(a, size),
            18 => alloc_at(a, size),
            19 => alloc_at(a, size),
            20 => alloc_at(a, size),
            21 => alloc_at(a, size),
            22 => alloc_at(a, size),
            23 => alloc_at(a, size),
            24 => alloc_at(a, size),
            25 => alloc_at(a, size),
            26 => alloc_at(a, size),
            27 => alloc_at(a, size),
            28 => alloc_at(a, size),
            29 => alloc_at(a, size),
            30 => alloc_at(a, size),
            31 => alloc_at(a, size),
            32 => alloc_at(a, size),
            33 => alloc_at(a, size),
            34 => alloc_at(a, size),
            35 => alloc_at(a, size),
            36 => alloc_at(a, size),
            37 => alloc_at(a, size),
            38 => alloc_at(a, size),
            39 => alloc_at(a, size),
            40 => alloc_at(a, size),
            41 => alloc_at(a, size),
            42 => alloc_at(a, size),
            43 => alloc_at(a, size),
            44 => alloc_at(a, size),
            45 => alloc_at(a, size),
            46 => alloc_at(a, size),
            47 => alloc_at(a, size),
            48 => alloc_at(a, size),
            49 => alloc_at(a, size),
            50 => alloc_at(a, size),
            51 => alloc_at(a, size),
            52 => alloc_at(a, size),
            53 => alloc_at(a, size),
            54 => alloc_at(a, size),
            55 => alloc_at(a, size),
            56 => alloc_at(a, size),
            57 => alloc_at(a, size),
            58 => alloc_at(a, size),
            59 => alloc_at(a, size),
            60 => alloc_at(a, size),
            61 => alloc_at(a, size),
            62 => alloc_at(a, size),
            63 => alloc_at(a, size),
            _ => unreachable!(),
        }
    }

    const LEAK_SITE: usize = 13;
    const LEAK_SIZE: usize = 3333;

    #[test]
    fn planted_leak_ranks_first_among_64_sites() {
        // 64 distinct call sites; 63 keep a token working set, one
        // (LEAK_SITE) retains ~100x more. The ranked retention report
        // must put the leaking site first — the acceptance criterion —
        // and its per-site aggregates must carry the leak's signature
        // sizes so the attribution is provably the right line.
        let a = LfMalloc::with_config(
            Config::with_heaps(2).with_profile(ProfileParams::new(1024, 0x517E)),
        );
        let mut live = Vec::new();
        for site in 0..64usize {
            if site == LEAK_SITE {
                for _ in 0..256 {
                    let p = alloc_site(&a, site, LEAK_SIZE);
                    assert!(!p.is_null());
                    live.push(p); // never freed during the run: the leak
                }
            } else {
                for round in 0..32 {
                    let p = alloc_site(&a, site, 500);
                    assert!(!p.is_null());
                    if round < 8 {
                        live.push(p); // small retained working set
                    } else {
                        unsafe { a.free(p) };
                    }
                }
            }
        }

        let report = a.retention_report();
        assert!(
            report.len() >= 16,
            "track_caller must yield distinct sites per match arm, got {}",
            report.len()
        );
        let top = &report[0];
        assert!(
            top.live_samples > 0 && top.requested_bytes / top.live_samples as u64 == LEAK_SIZE as u64,
            "top site must be the planted {LEAK_SIZE}-byte leak, got {} ({} bytes over {} samples)",
            top.site,
            top.requested_bytes,
            top.live_samples
        );
        assert!(
            report[1..].iter().all(|r| r.live_bytes <= top.live_bytes),
            "report must be ranked by live bytes descending"
        );
        // The leak dominates: more estimated live bytes than all other
        // sites combined.
        let rest: u64 = report[1..].iter().map(|r| r.live_bytes).sum();
        assert!(top.live_bytes > rest, "leak site must dominate retention");
        // The snapshot embeds the same report in stats JSON.
        let json = a.stats().to_json();
        assert!(json.contains("\"profile\":{"), "stats JSON must embed the profile");
        assert!(json.contains("profiling.rs"), "sites must carry source attribution");

        for p in live {
            unsafe { a.free(p) };
        }
    }
}

#[test]
fn latency_percentiles_surface_in_dump_and_json() {
    let a = LfMalloc::with_config(Config::with_heaps(1));
    unsafe {
        let mut live = Vec::new();
        for i in 0..10_000usize {
            live.push(a.malloc(16 + i % 1000));
        }
        let big = a.malloc(1 << 20);
        for p in live {
            a.free(p);
        }
        a.free(big);
    }
    a.maintain(MaintenanceBudget::light());

    let mut buf = Vec::new();
    a.dump_stats(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("latency"), "dump must have a latency section:\n{text}");
    assert!(text.contains("p99"), "dump must print p99 columns");
    assert!(text.contains("malloc_fast"), "fast-path malloc row missing");
    assert!(text.contains("fragmentation"), "dump must have a fragmentation section");

    let snap = a.stats();
    assert!(snap.latency.malloc_fast.count() > 0, "fast-path mallocs must be timed");
    assert!(snap.latency.malloc_large.count() >= 1, "large alloc must be timed");
    assert!(snap.latency.free_large.count() >= 1, "large free must be timed");
    assert!(snap.latency.maintain.count() >= 1, "maintenance pass must be timed");
    let p99 = snap.latency.malloc_fast.percentile(0.99);
    assert!(p99 > 0, "p99 of a timed path cannot be zero");
    assert!(p99 >= snap.latency.malloc_fast.percentile(0.50), "p99 < p50");

    let json = snap.to_json();
    assert!(json.contains("\"latency\":{"), "JSON must embed latency: {json}");
    assert!(json.contains("\"malloc_fast\":{\"count\":"), "per-path object missing");
    assert!(json.contains("\"p99\":"), "p99 missing from JSON");
    assert!(json.contains("\"fragmentation\":{"), "fragmentation missing from JSON");
}

#[test]
fn maintenance_feeds_the_fragmentation_series() {
    let a = LfMalloc::with_config(Config::with_heaps(1));
    let mut live = Vec::new();
    unsafe {
        for _ in 0..5000 {
            live.push(a.malloc(100));
        }
        // Free every other block: committed superblocks stay, live
        // bytes halve — visible external fragmentation.
        for (i, p) in live.iter().enumerate() {
            if i % 2 == 0 {
                a.free(*p);
            }
        }
    }
    for _ in 0..3 {
        a.maintain(MaintenanceBudget::light());
    }
    let series = a.take_frag_series();
    assert!(series.len() >= 3, "each maintenance pass must append a sample");
    let last = series.last().unwrap();
    assert!(last.small_committed_bytes > 0, "committed bytes must be tracked");
    assert!(
        last.small_live_bytes < last.small_committed_bytes,
        "half-freed heap must show live < committed"
    );
    assert!(last.external_frag_permille > 0, "fragmentation must be non-zero");
    assert!(
        series.windows(2).all(|w| w[0].nanos <= w[1].nanos),
        "series must be time-ordered"
    );
    unsafe {
        for (i, p) in live.iter().enumerate() {
            if i % 2 == 1 {
                a.free(*p);
            }
        }
    }
}

#[test]
fn openmetrics_round_trips_through_the_checker_and_http() {
    use std::io::{Read as _, Write as _};

    let a = LfMalloc::with_config(Config::with_heaps(2));
    unsafe {
        let mut live = Vec::new();
        for i in 0..2000usize {
            live.push(a.malloc(32 + i % 512));
        }
        for p in live {
            a.free(p);
        }
    }
    a.maintain(MaintenanceBudget::light());

    let text = a.render_openmetrics();
    lfmalloc::metrics::check_openmetrics(&text).expect("rendered exposition is well-formed");
    for needle in [
        "lfmalloc_mallocs_total{path=\"fast\"}",
        "lfmalloc_events_dropped",
        "lfmalloc_degraded 0",
        "lfmalloc_malloc_latency_seconds_bucket",
        "lfmalloc_frag_external_permille",
        "# EOF",
    ] {
        assert!(text.contains(needle), "missing {needle} in exposition");
    }

    // Scrape the same content over the HTTP endpoint.
    let addr = a.serve_metrics("127.0.0.1:0").expect("bind");
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.0 200 OK"));
    let body = resp.split("\r\n\r\n").nth(1).expect("http body");
    lfmalloc::metrics::check_openmetrics(body).expect("scraped exposition is well-formed");
    assert!(a.stop_metrics());
}
