//! Heavier stress and invariant tests for the lock-free allocator,
//! run end-to-end through the public API.

use lfmalloc_repro::prelude::*;
use malloc_api::testkit::{self, TestRng};
use std::sync::Arc;

#[test]
fn mixed_size_mixed_thread_torture() {
    // 4 threads, sizes spanning every size class plus the large path,
    // random free order, data integrity on every block.
    let a = Arc::new(LfMalloc::new_default());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let a = Arc::clone(&a);
        handles.push(std::thread::spawn(move || {
            let mut rng = TestRng::new(0x7011 + t);
            let mut live: Vec<(*mut u8, usize)> = Vec::new();
            for i in 0..30_000usize {
                if !live.is_empty() && (live.len() > 100 || rng.range(0, 2) == 0) {
                    let k = rng.range(0, live.len());
                    let (p, sz) = live.swap_remove(k);
                    unsafe {
                        testkit::check_fill(p, sz.min(512));
                        a.free(p);
                    }
                } else {
                    // Mostly small, occasionally large.
                    let sz = if i % 501 == 0 {
                        rng.range(9_000, 100_000)
                    } else {
                        rng.range(1, 2_048)
                    };
                    unsafe {
                        let p = a.malloc(sz);
                        assert!(!p.is_null());
                        testkit::fill(p, sz.min(512));
                        live.push((p, sz));
                    }
                }
            }
            for (p, sz) in live {
                unsafe {
                    testkit::check_fill(p, sz.min(512));
                    a.free(p);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn space_blowup_is_bounded() {
    // The paper claims space blowup bounded by a constant factor. Keep a
    // steady live set of B bytes through heavy churn and verify the OS
    // peak stays within a small multiple of B.
    let a = LfMalloc::new_default();
    let mut rng = TestRng::new(3);
    let slots = 2_000;
    let mut live: Vec<(*mut u8, usize)> = Vec::new();
    let mut live_bytes = 0usize;
    unsafe {
        for _ in 0..slots {
            let sz = rng.range(16, 128);
            live.push((a.malloc(sz), sz));
            live_bytes += sz;
        }
        // Churn 50k replacements without growing the live set.
        for _ in 0..50_000 {
            let k = rng.range(0, slots);
            let (p, old_sz) = live[k];
            a.free(p);
            let sz = rng.range(16, 128);
            live[k] = (a.malloc(sz), sz);
            live_bytes = live_bytes - old_sz + sz;
        }
        let peak = a.os_stats().peak_bytes;
        // Generous constant: superblock slack + hyperblock granularity
        // (1 MiB floor) dominates at this scale.
        let bound = live_bytes * 16 + (4 << 20);
        assert!(
            peak <= bound,
            "peak {peak} exceeds constant-factor bound {bound} for ~{live_bytes} live bytes"
        );
        for (p, _) in live {
            a.free(p);
        }
    }
}

#[test]
fn empty_superblocks_are_recycled_not_leaked() {
    let a = LfMalloc::new_default();
    unsafe {
        for _round in 0..50 {
            // Fill and drain two whole superblocks' worth of one class.
            let blocks: Vec<*mut u8> = (0..2_048).map(|_| a.malloc(8)).collect();
            for p in blocks {
                a.free(p);
            }
        }
        assert!(
            a.hyperblock_count() <= 2,
            "{} hyperblocks after steady churn",
            a.hyperblock_count()
        );
    }
}

#[test]
fn all_configurations_survive_producer_consumer() {
    use lfmalloc_repro::workloads::producer_consumer::{run, Params};
    let params = Params { database_size: 20_000, tasks: 1_000, work: 50, seed: 5 };
    let configs = [
        Config::detect(),
        Config::uniprocessor(),
        Config::with_heaps(8),
        Config { partial_mode: PartialMode::Lifo, ..Config::detect() },
        Config { partial_mode: PartialMode::List, ..Config::detect() },
        Config::detect().with_max_credits(1),
        Config::detect().with_max_credits(7),
    ];
    for cfg in configs {
        let a = Arc::new(LfMalloc::with_config(cfg));
        let r = run(a, 3, params);
        assert_eq!(r.ops, 1_000, "{cfg:?}");
    }
}

#[test]
fn thread_lifecycle_churn() {
    // Many short-lived threads each doing a little allocation: exercises
    // hazard-record adoption and thread-id reuse paths.
    let a = Arc::new(LfMalloc::new_default());
    for wave in 0..20 {
        let mut handles = Vec::new();
        for t in 0..8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || unsafe {
                let mut ps = Vec::new();
                for i in 0..200 {
                    ps.push(a.malloc(8 + (wave * 8 + t + i) % 256));
                }
                for p in ps {
                    a.free(p);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
