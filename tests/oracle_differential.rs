//! The shadow-heap differential suite.
//!
//! The same generated traces replay against every allocator in the
//! workspace (lfmalloc, hardened lfmalloc, hoard, ptmalloc, dlheap)
//! under the content-checking oracle; any violation localizes a bug to
//! one allocator. The failpoint-gated module at the bottom proves the
//! pipeline end to end: a planted double-hand-out bug in lfmalloc is
//! caught by the oracle, auto-shrunk to a tiny trace, and replays to
//! the same violation deterministically.
//!
//! Failing seeds always print via `testkit::for_each_seed`, and any
//! failing generated trace can be serialized with `Trace::to_string`
//! and checked into `tests/corpus/` (see EXPERIMENTS.md).

use lfmalloc_repro::prelude::*;
use malloc_api::testkit::for_each_seed;
use oracle::{all_subjects, replay, Trace};
use std::sync::Arc;

const SEEDS: [u64; 5] = [0x11, 0x2002, 0x3_0003, 0x44, 0xDEAD_BEEF];

/// With no bug planted, 5 subjects x 5 seeds must replay with zero
/// oracle violations and clean audits — the acceptance bar for the
/// whole differential harness.
#[test]
fn differential_suite_is_clean_across_subjects_and_seeds() {
    for_each_seed("differential suite", &SEEDS, |seed| {
        let trace = Trace::generate(seed, 4, 500);
        for s in all_subjects() {
            let out = s.replay(&trace);
            assert!(
                out.is_clean(),
                "{} violated the heap contract: {:?}",
                s.name(),
                out.violations
            );
            assert_eq!(out.executed_ops, 500, "{}", s.name());
            assert_ne!(s.audit_clean(), Some(false), "{} failed its audit", s.name());
        }
    });
}

/// The oracle itself must be safe to hammer from many threads: all
/// checks stay silent under a legitimate concurrent workload with
/// cross-thread (remote) frees.
#[test]
fn concurrent_oracle_churn_with_remote_frees() {
    #[cfg(feature = "failpoints")]
    let _quiet = malloc_api::failpoints::scenario(0); // no sites armed

    let oracle = Arc::new(oracle::OracleMalloc::new(LfMalloc::new_default()));
    let threads = 4;
    let per_thread = 2_000usize;
    let (txs, rxs): (Vec<_>, Vec<_>) =
        (0..threads).map(|_| std::sync::mpsc::channel::<usize>()).unzip();
    let txs = Arc::new(txs);
    std::thread::scope(|scope| {
        for (t, rx) in rxs.into_iter().enumerate() {
            let oracle = Arc::clone(&oracle);
            let txs = Arc::clone(&txs);
            scope.spawn(move || {
                let mut local = Vec::new();
                for i in 0..per_thread {
                    let size = 8 + (i * 61 + t * 13) % 3000;
                    let p = unsafe { oracle.malloc(size) };
                    assert!(!p.is_null());
                    if i % 3 == 0 {
                        // Hand the block to the next thread to free.
                        txs[(t + 1) % threads].send(p as usize).unwrap();
                    } else {
                        local.push(p);
                    }
                    if local.len() > 32 {
                        unsafe { oracle.free(local.swap_remove(i % 32)) };
                    }
                    while let Ok(remote) = rx.try_recv() {
                        unsafe { oracle.free(remote as *mut u8) };
                    }
                }
                drop(txs);
                for p in local {
                    unsafe { oracle.free(p) };
                }
                while let Ok(remote) = rx.recv() {
                    unsafe { oracle.free(remote as *mut u8) };
                }
            });
        }
        drop(txs);
    });
    assert_eq!(oracle.violation_count(), 0);
    assert_eq!(oracle.verify_all(), 0);
    assert_eq!(oracle.live_blocks(), 0);
    assert!(oracle.inner().audit().is_clean());
}

/// A recorded workload run survives serialize -> parse -> replay, and
/// the replay is clean on a *different* allocator than it was recorded
/// on (the differential property the trace format exists for).
#[test]
fn recorded_trace_round_trips_through_text() {
    let (_, trace) = workloads::record::threadtest_recorded(
        Arc::new(LfMalloc::new_default()),
        2,
        3,
        150,
    );
    let text = trace.to_string();
    let parsed = Trace::parse(&text).expect("recorded trace must parse back");
    assert_eq!(trace, parsed);
    for s in all_subjects() {
        let out = s.replay(&parsed);
        assert!(out.is_clean(), "{}: {:?}", s.name(), out.violations);
    }
}

/// Oracle-backed realloc content preservation on every allocator:
/// min(old, new) bytes survive shrinks, in-place growth, and
/// cross-size-class moves. The oracle verifies the pattern internally;
/// any loss panics via Mode::Panic.
#[test]
fn realloc_preserves_contents_on_all_subjects() {
    #[cfg(feature = "failpoints")]
    let _quiet = malloc_api::failpoints::scenario(0);

    for s in all_subjects() {
        let o = oracle::OracleMalloc::new(s.as_raw());
        unsafe {
            for (old, new) in
                [(64, 24), (40, 40), (24, 25), (100, 5_000), (5_000, 96), (300, 100_000), (100_000, 512)]
            {
                let p = o.malloc(old);
                assert!(!p.is_null(), "{}", s.name());
                let q = o.realloc(p, old, new);
                assert!(!q.is_null(), "{}", s.name());
                o.free(q);
            }
        }
        assert_eq!(o.violation_count(), 0, "{}", s.name());
        assert_eq!(o.live_blocks(), 0, "{}", s.name());
    }
}

/// Oracle-backed calloc contract on every allocator: zeroing of every
/// shape (verified byte-by-byte by the wrapper) and a null return on
/// any overflowing multiply.
#[test]
fn calloc_contract_on_all_subjects() {
    #[cfg(feature = "failpoints")]
    let _quiet = malloc_api::failpoints::scenario(0);

    for s in all_subjects() {
        let o = oracle::OracleMalloc::new(s.as_raw());
        unsafe {
            for (count, size) in [(1, 1), (7, 24), (100, 10), (1, 4096), (13, 1000), (1, 1 << 20)] {
                let p = o.calloc(count, size);
                assert!(!p.is_null(), "{} calloc({count}, {size})", s.name());
                o.free(p);
            }
            for (count, size) in [(usize::MAX, 2), (2, usize::MAX), (usize::MAX / 2 + 1, 2)] {
                assert!(o.calloc(count, size).is_null(), "{} must reject overflow", s.name());
            }
        }
        assert_eq!(o.violation_count(), 0, "{}", s.name());
    }
}

/// Replay determinism without fault injection: identical outcomes on
/// repeated runs against fresh instances.
#[test]
fn replay_is_deterministic_across_runs() {
    for_each_seed("replay determinism", &[0xA, 0xB], |seed| {
        let trace = Trace::generate(seed, 3, 300);
        let outs: Vec<_> =
            (0..3).map(|_| replay(&LfMalloc::new_default(), &trace)).collect();
        for o in &outs {
            assert!(o.is_clean(), "{:?}", o.violations);
            assert_eq!(o.executed_ops, outs[0].executed_ops);
            assert_eq!(o.drained, outs[0].drained);
        }
    });
}

/// Record mode keeps working under the oracle when the caller, not the
/// oracle, owns block contents (fill checks off) — exercised by the
/// recorded larson run with its remote-free handoff.
#[test]
fn recorded_larson_replays_on_every_subject() {
    let (_, trace) =
        workloads::record::larson_recorded(Arc::new(LfMalloc::new_default()), 2, 48, 150, 0x1A);
    for s in all_subjects() {
        let out = s.replay(&trace);
        assert!(out.is_clean(), "{}: {:?}", s.name(), out.violations);
        assert_ne!(s.audit_clean(), Some(false), "{}", s.name());
    }
}

/// The end-to-end acceptance pipeline for the planted bug: catch,
/// shrink, deterministic replay. Requires `--features failpoints`.
#[cfg(feature = "failpoints")]
mod planted_bug {
    use super::*;
    use oracle::{shrink, subjects::replay_named, Expectation, FpActionSpec, FpPlan, FpTriggerSpec, Violation};

    /// A trace whose failpoint plan makes lfmalloc re-hand-out the
    /// previous same-class small block on every 7th `malloc_small`.
    fn bugged_trace(seed: u64) -> Trace {
        let mut t = Trace::generate(seed, 3, 400);
        t.allocator = "lfmalloc".into();
        t.failpoints.push(FpPlan {
            site: "alloc.double_handout".into(),
            action: FpActionSpec::Retry,
            trigger: FpTriggerSpec::Nth(7),
            budget: None,
        });
        t
    }

    fn is_double_handout(v: &Violation) -> bool {
        matches!(v, Violation::DoubleHandOut { .. })
    }

    #[test]
    fn planted_double_handout_is_caught_shrunk_and_replayed() {
        // 1. Caught: the oracle sees the duplicate before any write.
        let trace = bugged_trace(0x5EED);
        let (out, _) = replay_named("lfmalloc", &trace);
        assert!(
            out.violations.iter().any(is_double_handout),
            "planted bug must be caught; saw {:?}",
            out.violations
        );

        // 2. Shrunk: delta debugging brings the repro to <= 50 ops.
        let small = shrink(&trace, |cand| {
            replay_named("lfmalloc", cand).0.violations.iter().any(is_double_handout)
        });
        assert!(
            small.ops.len() <= 50,
            "shrunk repro still has {} ops:\n{small}",
            small.ops.len()
        );
        assert_eq!(small.expect, Expectation::Violation);

        // 3. Deterministic: three consecutive replays of the minimized
        //    trace yield the identical first violation.
        let runs: Vec<_> = (0..3).map(|_| replay_named("lfmalloc", &small).0).collect();
        for r in &runs {
            assert!(!r.violations.is_empty(), "minimized trace must still fail");
            assert!(r.failpoints_armed);
            assert_eq!(
                r.violations[0], runs[0].violations[0],
                "replay must reproduce the identical violation"
            );
        }
        assert!(is_double_handout(&runs[0].violations[0]));

        // The minimized repro serializes and parses back identically,
        // i.e. it is corpus-ready.
        let reparsed = Trace::parse(&small.to_string()).unwrap();
        assert_eq!(small, reparsed);
    }

    #[test]
    fn handcrafted_minimal_repro_fires() {
        // The theoretical minimum: hit #7 of the site must hand out the
        // block slot 5 still owns. Six mallocs advance the hit counter,
        // the seventh gets slot 0's pointer again.
        let text = "\
# oracle-trace v1
allocator lfmalloc
threads 1
seed 0x1
expect violation
fp alloc.double_handout retry nth:7
op 0 t=0 malloc slot=0 size=64
op 1 t=0 malloc slot=1 size=64
op 2 t=0 malloc slot=2 size=64
op 3 t=0 malloc slot=3 size=64
op 4 t=0 malloc slot=4 size=64
op 5 t=0 malloc slot=5 size=64
op 6 t=0 malloc slot=6 size=64
";
        let trace = Trace::parse(text).unwrap();
        let (out, _) = replay_named("lfmalloc", &trace);
        assert!(out.violations.iter().any(is_double_handout), "{:?}", out.violations);
    }

    /// The same trace with the failpoint plan stripped must be clean on
    /// every subject — the bug lives behind the failpoint, not in the
    /// allocator.
    #[test]
    fn without_the_plan_the_trace_is_clean() {
        let mut trace = bugged_trace(0x5EED);
        trace.failpoints.clear();
        for s in all_subjects() {
            let out = s.replay(&trace);
            assert!(out.is_clean(), "{}: {:?}", s.name(), out.violations);
        }
    }
}
