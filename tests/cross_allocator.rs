//! Cross-crate integration: every allocator in the workspace satisfies
//! the same contract and runs every §4.1 workload.

use lfmalloc_repro::prelude::*;
use lfmalloc_repro::workloads::producer_consumer::Params;
use lfmalloc_repro::workloads::{
    false_sharing, larson, linux_scalability, producer_consumer, threadtest,
};
use malloc_api::testkit;
use std::sync::Arc;

type Dyn = Arc<dyn RawMalloc + Send + Sync>;

fn all_allocators() -> Vec<Dyn> {
    vec![
        Arc::new(LfMalloc::new_default()),
        Arc::new(Hoard::new(3)),
        Arc::new(Ptmalloc::new()),
        Arc::new(LockedHeap::new()),
    ]
}

#[test]
fn conformance_battery_every_allocator() {
    for a in all_allocators() {
        let name = a.name().to_string();
        let wrapped = Arc::new(a);
        testkit::check_basic(&*wrapped);
        testkit::check_zero_size(&*wrapped);
        testkit::check_free_orders(&*wrapped, 0xC0DE);
        testkit::check_concurrent_churn(Arc::clone(&wrapped), 3, 1_500);
        testkit::check_remote_free(wrapped, 2, 400);
        println!("{name}: ok");
    }
}

#[test]
fn linux_scalability_on_every_allocator() {
    for a in all_allocators() {
        let r = linux_scalability::run(Arc::new(a), 3, 5_000);
        assert_eq!(r.ops, 15_000);
    }
}

#[test]
fn threadtest_on_every_allocator() {
    for a in all_allocators() {
        let r = threadtest::run(Arc::new(a), 2, 3, 2_000);
        assert_eq!(r.ops, 12_000);
    }
}

#[test]
fn false_sharing_workloads_on_every_allocator() {
    for a in all_allocators() {
        let a = Arc::new(a);
        let r = false_sharing::run_active(Arc::clone(&a), 2, 200, 10);
        assert_eq!(r.ops, 400);
        let r = false_sharing::run_passive(a, 2, 200, 10);
        assert_eq!(r.ops, 400);
    }
}

#[test]
fn larson_on_every_allocator() {
    for a in all_allocators() {
        let r = larson::run(Arc::new(a), 3, 256, 3_000, 99);
        assert_eq!(r.ops, 9_000);
    }
}

#[test]
fn producer_consumer_on_every_allocator() {
    let params = Params { database_size: 50_000, tasks: 1_500, work: 50, seed: 11 };
    for a in all_allocators() {
        let r = producer_consumer::run(Arc::new(a), 3, params);
        assert_eq!(r.ops, 1_500);
    }
}

#[test]
fn hardened_lfmalloc_rejects_foreign_allocator_pointers() {
    // A block from another allocator freed into a hardened lfmalloc
    // must be detected as an invalid free — not corrupt either heap —
    // and must remain freeable by its real owner.
    use lfmalloc_repro::lfmalloc::MisuseKind;
    let lf = LfMalloc::with_config(Config::detect().with_hardening(Hardening::Detect));
    let hoard = Hoard::new(2);
    unsafe {
        let p = hoard.malloc(64);
        assert!(!p.is_null());
        testkit::fill(p, 64);
        lf.free(p);
        assert_eq!(lf.misuse_counters().count(MisuseKind::InvalidFree), 1);
        assert_eq!(lf.misuse_counters().total(), 1);
        // Both heaps are unharmed: lfmalloc audits clean, the hoard
        // block still carries its data and goes back to hoard.
        assert!(lf.audit().is_clean(), "{:?}", lf.audit());
        testkit::check_fill(p, 64);
        hoard.free(p);
        assert_eq!(hoard.misuse_count(), 0);
        // And lfmalloc keeps serving allocations afterwards.
        let q = lf.malloc(64);
        assert!(!q.is_null());
        lf.free(q);
    }
    lf.flush_quarantine();
    assert!(lf.audit().is_clean());
}

#[test]
fn blocks_from_different_allocators_are_independent() {
    // Interleave blocks from all four allocators; data must never
    // cross-contaminate and each block must go back to its own origin.
    let allocs = all_allocators();
    unsafe {
        let mut live: Vec<(usize, *mut u8, usize)> = Vec::new();
        for round in 0..200 {
            let ai = round % allocs.len();
            let sz = 16 + (round * 7) % 400;
            let p = allocs[ai].malloc(sz);
            assert!(!p.is_null());
            testkit::fill(p, sz);
            live.push((ai, p, sz));
        }
        for (ai, p, sz) in live {
            testkit::check_fill(p, sz);
            allocs[ai].free(p);
        }
    }
}
