//! The sequential heap: segments, split/coalesce, direct OS blocks.

use crate::bins::Bins;
use crate::chunk::{request_to_chunk_size, Chunk, CINUSE, MIN_CHUNK, MMAPPED, PINUSE};
use osmem::source::{pages_for, PAGE_SIZE};
use osmem::PageSource;
use std::sync::Arc;

/// Default growth unit: 1 MiB segments (comparable to the lock-free
/// allocator's hyperblocks, keeping the OS-call economics similar).
pub const SEGMENT_SIZE: usize = 1 << 20;

/// Requests at or above this bypass the bins and map directly.
pub const DIRECT_THRESHOLD: usize = 256 * 1024;

/// Per-segment bookkeeping, stored at the segment base.
#[repr(C)]
struct SegHeader {
    next: usize,
    size: usize,
    _pad: usize, // keeps the first chunk at base + 24 ≡ 8 (mod 16)
}

const SEG_OVERHEAD: usize = core::mem::size_of::<SegHeader>() + 8; // header + end sentinel

/// Aggregate figures from [`SerialHeap::check_integrity`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapReport {
    /// Segments walked.
    pub segments: usize,
    /// Chunks currently allocated.
    pub in_use_chunks: usize,
    /// Bytes in allocated chunks (headers included).
    pub in_use_bytes: usize,
    /// Free chunks in bins.
    pub free_chunks: usize,
    /// Bytes in free chunks.
    pub free_bytes: usize,
}

/// A single-threaded dlmalloc-style heap.
///
/// Thread-unsafe by design: the libc baseline wraps it in one mutex
/// ([`crate::LockedHeap`]); Ptmalloc wraps one per arena.
///
/// # Example
///
/// ```
/// use dlheap::SerialHeap;
/// use osmem::SystemSource;
/// use std::sync::Arc;
///
/// let mut h = SerialHeap::new(Arc::new(SystemSource::new()));
/// unsafe {
///     let p = h.malloc(100);
///     assert!(!p.is_null());
///     h.free(p);
/// }
/// ```
pub struct SerialHeap<S: PageSource> {
    bins: Bins,
    segments: usize,
    source: Arc<S>,
    segment_size: usize,
    /// Frees rejected by the boundary-tag sanity check in [`free`](Self::free).
    misuse: u64,
    /// Free chunks split by malloc (plain `u64`s: the heap is serial
    /// by contract, every call holds `&mut self`).
    #[cfg(feature = "stats")]
    splits: u64,
    /// Neighbour merges performed by free (each direction counts one).
    #[cfg(feature = "stats")]
    coalesces: u64,
}

/// Snapshot of [`SerialHeap`]'s split/coalesce counters.
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SerialHeapStats {
    /// Free chunks split by malloc to serve a smaller request.
    pub splits: u64,
    /// Boundary-tag merges performed by free (forward and backward
    /// each count one).
    pub coalesces: u64,
}

unsafe impl<S: PageSource + Send + Sync> Send for SerialHeap<S> {}

impl<S: PageSource> SerialHeap<S> {
    /// An empty heap drawing pages from `source`.
    pub fn new(source: Arc<S>) -> Self {
        Self::with_segment_size(source, SEGMENT_SIZE)
    }

    /// Custom growth unit (tests use small segments to force growth
    /// paths).
    pub fn with_segment_size(source: Arc<S>, segment_size: usize) -> Self {
        SerialHeap {
            bins: Bins::new(),
            segments: 0,
            source,
            segment_size,
            misuse: 0,
            #[cfg(feature = "stats")]
            splits: 0,
            #[cfg(feature = "stats")]
            coalesces: 0,
        }
    }

    /// Split/coalesce counters.
    #[cfg(feature = "stats")]
    pub fn op_stats(&self) -> SerialHeapStats {
        SerialHeapStats { splits: self.splits, coalesces: self.coalesces }
    }

    /// Frees rejected because the chunk header failed sanity checks
    /// (CINUSE already clear — the common double free — or an illegal
    /// size word). Known gaps, inherent to boundary tags: a double free
    /// whose first free coalesced backward leaves a stale header that
    /// may still look in-use, and a double free of an `MMAPPED` block
    /// touches unmapped memory before any check can run.
    pub fn misuse_count(&self) -> u64 {
        self.misuse
    }

    /// The page source (shared with the owner for stats).
    pub fn source(&self) -> &Arc<S> {
        &self.source
    }

    /// Allocates `size` bytes (16-aligned).
    ///
    /// # Safety
    ///
    /// Caller must serialize all access to this heap and uphold the
    /// standard malloc contract.
    pub unsafe fn malloc(&mut self, size: usize) -> *mut u8 {
        if size >= DIRECT_THRESHOLD {
            return unsafe { self.direct_malloc(size) };
        }
        let need = request_to_chunk_size(size);
        if let Some((c, csize)) = unsafe { self.bins.take_fit(need) } {
            return unsafe { self.split_and_use(c, csize, need) };
        }
        if !unsafe { self.grow(need) } {
            return core::ptr::null_mut();
        }
        match unsafe { self.bins.take_fit(need) } {
            Some((c, csize)) => unsafe { self.split_and_use(c, csize, need) },
            None => core::ptr::null_mut(),
        }
    }

    /// Frees a block from [`malloc`](Self::malloc), coalescing with free
    /// neighbours.
    ///
    /// # Safety
    ///
    /// `ptr` must be a live block of this heap; access serialized.
    pub unsafe fn free(&mut self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        let c = Chunk::from_user_ptr(ptr);
        unsafe {
            if c.mmapped() {
                let total = c.size();
                let base = (c.0 - 8) as *mut u8;
                self.source.dealloc_pages(base, total, PAGE_SIZE);
                return;
            }
            // Boundary-tag sanity before touching any neighbour: a
            // chunk freed once has CINUSE clear (the header rewrite in
            // the previous free), and a wild pointer rarely presents a
            // legal size word.
            let size = c.size();
            if !c.cinuse() || size < MIN_CHUNK || size % 16 != 0 {
                self.misuse += 1;
                return;
            }
            let mut start = c;
            let mut size = size;
            // Coalesce forward.
            let n = c.next();
            if !n.cinuse() {
                let nsize = n.size();
                self.bins.unlink(n, nsize);
                size += nsize;
                #[cfg(feature = "stats")]
                {
                    self.coalesces += 1;
                }
            }
            // Coalesce backward (footer of the free predecessor).
            if !c.pinuse() {
                let p = c.prev();
                let psize = p.size();
                self.bins.unlink(p, psize);
                start = p;
                size += psize;
                #[cfg(feature = "stats")]
                {
                    self.coalesces += 1;
                }
            }
            let pinuse_flag = start.header() & PINUSE;
            start.set_header(size | pinuse_flag);
            start.set_footer(size);
            // The chunk after the merged span sees a free predecessor.
            let after = Chunk(start.0 + size);
            after.set_header(after.header() & !PINUSE);
            self.bins.insert(start, size);
        }
    }

    /// Takes `need` bytes out of free chunk `c` (of `csize`), splitting
    /// off a remainder when it is worth a chunk.
    unsafe fn split_and_use(&mut self, c: Chunk, csize: usize, need: usize) -> *mut u8 {
        unsafe {
            let pinuse_flag = c.header() & PINUSE;
            if csize - need >= MIN_CHUNK {
                #[cfg(feature = "stats")]
                {
                    self.splits += 1;
                }
                let rem = Chunk(c.0 + need);
                let rem_size = csize - need;
                rem.set_header(rem_size | PINUSE); // c is now in use
                rem.set_footer(rem_size);
                self.bins.insert(rem, rem_size);
                c.set_header(need | CINUSE | pinuse_flag);
                // The chunk after `rem` keeps PINUSE clear (rem is free)
                // — it was already clear because `c` was free.
            } else {
                c.set_header(csize | CINUSE | pinuse_flag);
                let n = c.next();
                n.set_header(n.header() | PINUSE);
            }
            c.user_ptr()
        }
    }

    /// Maps one more segment big enough for `need`, adding its span to
    /// the bins. Returns false if the OS refuses.
    unsafe fn grow(&mut self, need: usize) -> bool {
        let bytes = pages_for((need + SEG_OVERHEAD).max(self.segment_size));
        let base = unsafe { self.source.alloc_pages(bytes, PAGE_SIZE) };
        if base.is_null() {
            return false;
        }
        unsafe {
            let header = base as *mut SegHeader;
            (*header).next = self.segments;
            (*header).size = bytes;
            self.segments = base as usize;
            // Carve the free span: first chunk after the header, end
            // sentinel in the last 8 bytes.
            let first = Chunk(base as usize + core::mem::size_of::<SegHeader>());
            let span = bytes - SEG_OVERHEAD;
            debug_assert_eq!(first.0 % 16, 8, "chunks must start ≡ 8 (mod 16)");
            debug_assert!(span >= MIN_CHUNK && span % 16 == 0);
            first.set_header(span | PINUSE); // nothing before it
            first.set_footer(span);
            let sentinel = Chunk(first.0 + span);
            sentinel.set_header(CINUSE); // size 0, in use: stops coalescing
            self.bins.insert(first, span);
        }
        true
    }

    /// Direct OS path for huge requests.
    unsafe fn direct_malloc(&mut self, size: usize) -> *mut u8 {
        let Some(padded) = size.checked_add(16 + PAGE_SIZE - 1) else {
            return core::ptr::null_mut();
        };
        let total = pages_for(padded & !(PAGE_SIZE - 1));
        let base = unsafe { self.source.alloc_pages(total, PAGE_SIZE) };
        if base.is_null() {
            return core::ptr::null_mut();
        }
        let c = Chunk(base as usize + 8);
        unsafe { c.set_header(total | CINUSE | PINUSE | MMAPPED) };
        c.user_ptr()
    }

    /// Walks every segment verifying the boundary-tag invariants; used
    /// by tests and debug assertions. Returns aggregate figures.
    ///
    /// Checked invariants:
    ///
    /// * chunk sizes are legal (aligned, ≥ [`MIN_CHUNK`]) and chunks
    ///   tile each segment exactly, ending at the sentinel;
    /// * each chunk's `PINUSE` flag equals the previous chunk's
    ///   `CINUSE`;
    /// * every free chunk carries a correct footer;
    /// * no two adjacent chunks are both free (coalescing is complete).
    ///
    /// # Panics
    ///
    /// Panics with a description on the first violated invariant.
    pub fn check_integrity(&self) -> HeapReport {
        let mut report = HeapReport::default();
        let mut s = self.segments;
        while s != 0 {
            unsafe {
                let header = s as *const SegHeader;
                let seg_size = (*header).size;
                report.segments += 1;
                let first = s + core::mem::size_of::<SegHeader>();
                let end = s + seg_size - 8; // sentinel address
                let mut c = Chunk(first);
                let mut prev_cinuse = true; // segment start acts as in-use
                let mut prev_free = false;
                while c.0 < end {
                    let size = c.size();
                    assert!(
                        size >= MIN_CHUNK && size % 16 == 0,
                        "illegal chunk size {size:#x} at {:#x}",
                        c.0
                    );
                    assert!(c.0 + size <= end, "chunk at {:#x} overruns its segment", c.0);
                    assert_eq!(
                        c.pinuse(),
                        prev_cinuse,
                        "PINUSE desync at {:#x} (prev in-use={prev_cinuse})",
                        c.0
                    );
                    if c.cinuse() {
                        report.in_use_chunks += 1;
                        report.in_use_bytes += size;
                        prev_free = false;
                    } else {
                        assert!(
                            !prev_free,
                            "two adjacent free chunks at {:#x}: coalescing missed",
                            c.0
                        );
                        let footer = *((c.0 + size - 8) as *const usize);
                        assert_eq!(footer, size, "footer mismatch at {:#x}", c.0);
                        report.free_chunks += 1;
                        report.free_bytes += size;
                        prev_free = true;
                    }
                    prev_cinuse = c.cinuse();
                    c = Chunk(c.0 + size);
                }
                assert_eq!(c.0, end, "chunks do not tile segment ending at {end:#x}");
                let sentinel = Chunk(end);
                assert!(sentinel.cinuse(), "segment sentinel lost its CINUSE flag");
                s = (*header).next;
            }
        }
        report
    }

    /// Number of segments currently mapped (diagnostics).
    pub fn segment_count(&self) -> usize {
        let mut n = 0;
        let mut s = self.segments;
        while s != 0 {
            n += 1;
            s = unsafe { (*(s as *const SegHeader)).next };
        }
        n
    }
}

impl<S: PageSource> Drop for SerialHeap<S> {
    fn drop(&mut self) {
        let mut s = self.segments;
        while s != 0 {
            unsafe {
                let header = s as *const SegHeader;
                let next = (*header).next;
                let size = (*header).size;
                self.source.dealloc_pages(s as *mut u8, size, PAGE_SIZE);
                s = next;
            }
        }
    }
}

impl<S: PageSource> core::fmt::Debug for SerialHeap<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SerialHeap")
            .field("segments", &self.segment_count())
            .field("segment_size", &self.segment_size)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmem::{CountingSource, SystemSource};

    fn heap() -> SerialHeap<CountingSource<SystemSource>> {
        SerialHeap::new(Arc::new(CountingSource::new(SystemSource::new())))
    }

    #[test]
    fn malloc_free_roundtrip() {
        let mut h = heap();
        unsafe {
            let p = h.malloc(100);
            assert!(!p.is_null());
            assert_eq!(p as usize % 16, 0);
            core::ptr::write_bytes(p, 0xAA, 100);
            h.free(p);
        }
    }

    #[test]
    fn coalescing_reassembles_the_segment() {
        let mut h = heap();
        unsafe {
            // Allocate the whole small range in pieces, free all, then a
            // big allocation must fit without a new segment.
            let blocks: Vec<*mut u8> = (0..100).map(|_| h.malloc(1000)).collect();
            assert_eq!(h.segment_count(), 1);
            for p in blocks {
                h.free(p);
            }
            // After full coalescing one huge chunk exists again.
            let big = h.malloc(200_000);
            assert!(!big.is_null());
            assert_eq!(h.segment_count(), 1, "coalescing failed: needed a new segment");
            h.free(big);
        }
    }

    #[test]
    fn split_reuses_remainders() {
        let mut h = heap();
        unsafe {
            let a = h.malloc(10_000);
            h.free(a);
            // Splitting the 10k chunk must serve many smaller ones
            // without growth.
            let before = h.segment_count();
            let blocks: Vec<*mut u8> = (0..8).map(|_| h.malloc(1000)).collect();
            assert_eq!(h.segment_count(), before);
            for p in blocks {
                h.free(p);
            }
        }
    }

    #[test]
    fn direct_blocks_bypass_segments() {
        let mut h = heap();
        unsafe {
            let p = h.malloc(DIRECT_THRESHOLD + 123);
            assert!(!p.is_null());
            assert_eq!(h.segment_count(), 0, "direct blocks must not create segments");
            core::ptr::write_bytes(p, 1, DIRECT_THRESHOLD + 123);
            h.free(p);
        }
        assert_eq!(h.source().stats().live_bytes, 0);
    }

    #[test]
    fn data_integrity_under_interleaving() {
        let mut h = heap();
        let mut rng = malloc_api::testkit::TestRng::new(99);
        unsafe {
            let mut live: Vec<(*mut u8, usize)> = Vec::new();
            for _ in 0..2_000 {
                if live.len() > 64 || (!live.is_empty() && rng.range(0, 2) == 0) {
                    let i = rng.range(0, live.len());
                    let (p, sz) = live.swap_remove(i);
                    malloc_api::testkit::check_fill(p, sz);
                    h.free(p);
                } else {
                    let sz = rng.range(1, 2048);
                    let p = h.malloc(sz);
                    assert!(!p.is_null());
                    malloc_api::testkit::fill(p, sz);
                    live.push((p, sz));
                }
            }
            for (p, sz) in live {
                malloc_api::testkit::check_fill(p, sz);
                h.free(p);
            }
        }
    }

    #[test]
    fn double_free_is_rejected_not_corrupting() {
        let mut h = heap();
        unsafe {
            let p = h.malloc(100);
            let q = h.malloc(100);
            h.free(p);
            // Second free: CINUSE is clear, so the free is counted and
            // dropped instead of corrupting the bins.
            h.free(p);
            assert_eq!(h.misuse_count(), 1);
            h.check_integrity();
            // A wild interior pointer presents block data as a header
            // (zeroed here so the check is deterministic).
            core::ptr::write_bytes(q, 0, 100);
            h.free(q.add(24));
            assert_eq!(h.misuse_count(), 2);
            h.free(q);
            h.check_integrity();
        }
    }

    #[test]
    fn drop_releases_segments() {
        let src = Arc::new(CountingSource::new(SystemSource::new()));
        {
            let mut h = SerialHeap::new(Arc::clone(&src));
            unsafe {
                let p = h.malloc(100);
                h.free(p);
            }
            assert!(src.stats().live_bytes > 0);
        }
        assert_eq!(src.stats().live_bytes, 0, "drop must unmap all segments");
    }

    #[test]
    fn growth_respects_huge_requests() {
        let src = Arc::new(CountingSource::new(SystemSource::new()));
        // Tiny segment size: a 100 KiB request must still be satisfied.
        let mut h = SerialHeap::with_segment_size(Arc::clone(&src), 16 * 1024);
        unsafe {
            let p = h.malloc(100_000);
            assert!(!p.is_null());
            core::ptr::write_bytes(p, 3, 100_000);
            h.free(p);
        }
    }

    #[test]
    fn exhausted_source_yields_null_not_panic() {
        use osmem::FlakySource;

        // Dead source: small (segment growth) and direct (mmap) paths
        // must both report OOM as null, never panic.
        let dead = Arc::new(FlakySource::new(SystemSource::new(), 0));
        let mut h = SerialHeap::new(Arc::clone(&dead));
        unsafe {
            assert!(h.malloc(100).is_null());
            assert!(h.malloc(4 << 20).is_null());
        }
        assert!(dead.denials() >= 2);

        // One segment of budget: drain it, then frees must succeed and
        // the coalesced memory must be reusable with the source dead.
        let tight = Arc::new(FlakySource::new(SystemSource::new(), 1));
        let mut h = SerialHeap::new(Arc::clone(&tight));
        let mut live = Vec::new();
        unsafe {
            loop {
                let p = h.malloc(4096);
                if p.is_null() {
                    break;
                }
                live.push(p as usize);
            }
            assert!(!live.is_empty());
            assert!(tight.denials() > 0);
            for &p in &live {
                h.free(p as *mut u8);
            }
            let before = tight.denials();
            let big = h.malloc(100_000);
            assert!(!big.is_null(), "coalesced segment must serve a big block");
            assert_eq!(tight.denials(), before, "reuse must not touch the source");
            h.free(big);
        }
    }
}
