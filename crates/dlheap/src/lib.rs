//! A sequential dlmalloc-style heap, and the serial "libc malloc"
//! baseline built from it.
//!
//! The PLDI 2004 paper evaluates against two lock-based designs whose
//! sequential core is Doug Lea's `dlmalloc`: the default AIX libc malloc
//! (treated as a serial allocator behind coarse locking; the paper
//! observes it externally) and Ptmalloc ("based on Doug Lea's dlmalloc
//! sequential allocator"). This crate supplies that sequential core:
//!
//! * [`SerialHeap`] — a single-threaded boundary-tag heap with
//!   segregated free-list bins, split/coalesce, and direct OS handling
//!   of very large requests. Not thread-safe by itself.
//! * [`LockedHeap`] — `SerialHeap` behind one mutex: the stand-in for
//!   "libc malloc" in every experiment (Table 1 and all of Figure 8
//!   normalize against its contention-free run).
//!
//! The `ptmalloc` crate builds its arenas from [`SerialHeap`].

pub mod bins;
pub mod chunk;
pub mod heap;
pub mod locked;

pub use heap::SerialHeap;
pub use locked::LockedHeap;
#[cfg(feature = "stats")]
pub use heap::SerialHeapStats;
#[cfg(feature = "stats")]
pub use locked::LockedHeapStats;
