//! The serial "libc malloc" baseline: one heap, one lock.
//!
//! The paper's baseline — AIX 5.1 libc malloc — behaves as a serial
//! allocator whose throughput collapses under multithreading ("Libc
//! malloc does not scale at all, its speedup drops to 0.4 on two
//! processors", §4.2.2). A boundary-tag heap behind a single mutex
//! reproduces exactly that role: excellent single-thread latency, full
//! serialization under contention, preemption-sensitive (a thread
//! holding the lock that loses its time slice blocks everyone — the
//! failure mode lock-freedom eliminates).

use crate::heap::SerialHeap;
use malloc_api::{AllocStats, RawMalloc};
use osmem::{CountingSource, PageSource, SystemSource};
use malloc_api::sync::Mutex;
use std::sync::Arc;

/// A [`SerialHeap`] behind one mutex — the "libc malloc" stand-in.
///
/// # Example
///
/// ```
/// use dlheap::LockedHeap;
/// use malloc_api::RawMalloc;
///
/// let a = LockedHeap::new();
/// unsafe {
///     let p = a.malloc(64);
///     assert!(!p.is_null());
///     a.free(p);
/// }
/// ```
#[derive(Debug)]
pub struct LockedHeap<S: PageSource = CountingSource<SystemSource>> {
    heap: Mutex<SerialHeap<S>>,
    source: Arc<S>,
    #[cfg(feature = "stats")]
    locks: malloc_api::telemetry::Counter,
}

/// Snapshot of [`LockedHeap`]'s lock and heap-operation counters.
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockedHeapStats {
    /// Global mutex acquisitions (one per malloc and per free — every
    /// operation serializes here; the baseline's defining cost).
    pub lock_acquisitions: u64,
    /// Free chunks split by malloc.
    pub splits: u64,
    /// Boundary-tag merges performed by free.
    pub coalesces: u64,
}

impl LockedHeap<CountingSource<SystemSource>> {
    /// A locked heap over a counting system source (stats enabled).
    pub fn new() -> Self {
        Self::with_source(Arc::new(CountingSource::new(SystemSource::new())))
    }
}

impl Default for LockedHeap<CountingSource<SystemSource>> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: PageSource> LockedHeap<S> {
    /// A locked heap over an injected source.
    pub fn with_source(source: Arc<S>) -> Self {
        LockedHeap {
            heap: Mutex::new(SerialHeap::new(Arc::clone(&source))),
            source,
            #[cfg(feature = "stats")]
            locks: malloc_api::telemetry::Counter::new(),
        }
    }

    /// Lock and split/coalesce counters.
    ///
    /// Named `lock_stats` (not `stats`) so it does not shadow
    /// [`RawMalloc::stats`] on the concrete type.
    #[cfg(feature = "stats")]
    pub fn lock_stats(&self) -> LockedHeapStats {
        let ops = self.heap.lock().op_stats();
        LockedHeapStats {
            lock_acquisitions: self.locks.get(),
            splits: ops.splits,
            coalesces: ops.coalesces,
        }
    }

    /// The page source (for external stats queries).
    pub fn source(&self) -> &Arc<S> {
        &self.source
    }

    /// Runs the boundary-tag integrity walk under the lock.
    ///
    /// # Panics
    ///
    /// Panics on the first violated heap invariant (see
    /// [`SerialHeap::check_integrity`]).
    pub fn check_integrity(&self) -> crate::heap::HeapReport {
        self.heap.lock().check_integrity()
    }

    /// Makes this heap fork-safe for the lifetime of the returned
    /// guard, by registering [`malloc_api::procfork`] hooks that hold
    /// the heap mutex across `fork`: prepare locks it, parent and child
    /// both release it. Without this, a fork racing another thread's
    /// malloc can snapshot the mutex *locked by a thread that does not
    /// exist in the child*, deadlocking the child's first allocation
    /// forever.
    ///
    /// The guard must not outlive the heap (enforced by the borrow) and
    /// unregisters the hooks on drop. Only forks that run the procfork
    /// hook protocol ([`malloc_api::procfork::fork`], or raw `fork(2)`
    /// after [`malloc_api::procfork::install`]) are covered.
    pub fn atfork_guard(&self) -> AtforkGuard<'_, S>
    where
        S: 'static,
    {
        let stash = Box::into_raw(Box::new(AtforkStash {
            heap: self as *const LockedHeap<S>,
            guard: core::cell::UnsafeCell::new(None),
        }));
        let token = malloc_api::procfork::register(malloc_api::procfork::HookSet {
            prepare: Some(atfork_prepare::<S>),
            parent: Some(atfork_release::<S>),
            child: Some(atfork_release::<S>),
            data: stash as usize,
        });
        AtforkGuard { token, stash, _heap: core::marker::PhantomData }
    }
}

/// Hook-side state of one [`LockedHeap::atfork_guard`] registration.
/// Boxed so the hooks get one stable `usize`; only the forking thread
/// touches `guard`, under the procfork registry lock.
struct AtforkStash<S: PageSource + 'static> {
    heap: *const LockedHeap<S>,
    guard: core::cell::UnsafeCell<Option<malloc_api::sync::MutexGuard<'static, SerialHeap<S>>>>,
}

unsafe fn atfork_prepare<S: PageSource + 'static>(data: usize) {
    let stash = unsafe { &*(data as *const AtforkStash<S>) };
    let guard = unsafe { (*stash.heap).heap.lock() };
    // Lifetime erasure only: the guard is released by `atfork_release`
    // on this same thread before the registry lock is dropped, and the
    // heap outlives the registration (AtforkGuard borrows it).
    let guard: malloc_api::sync::MutexGuard<'static, SerialHeap<S>> =
        unsafe { core::mem::transmute(guard) };
    unsafe { *stash.guard.get() = Some(guard) };
}

/// Parent and child both just unlock: the forking thread took the lock
/// in prepare, so in both processes the heap is consistent and the
/// mutex is ours to release.
unsafe fn atfork_release<S: PageSource + 'static>(data: usize) {
    let stash = unsafe { &*(data as *const AtforkStash<S>) };
    drop(unsafe { (*stash.guard.get()).take() });
}

/// RAII registration handle returned by [`LockedHeap::atfork_guard`];
/// unregisters the hooks (and frees the hook stash) on drop.
pub struct AtforkGuard<'a, S: PageSource + 'static> {
    token: Option<malloc_api::procfork::HookToken>,
    stash: *mut AtforkStash<S>,
    _heap: core::marker::PhantomData<&'a LockedHeap<S>>,
}

impl<S: PageSource + 'static> AtforkGuard<'_, S> {
    /// False when the procfork registry was full and no hooks could be
    /// installed (the guard is inert; fork safety is not provided).
    pub fn is_armed(&self) -> bool {
        self.token.is_some()
    }
}

impl<S: PageSource + 'static> Drop for AtforkGuard<'_, S> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            // Blocks on the registry lock until any in-flight fork's
            // hooks have run, so the stash is quiescent when freed.
            malloc_api::procfork::unregister(token);
        }
        drop(unsafe { Box::from_raw(self.stash) });
    }
}

unsafe impl<S: PageSource + Send + Sync> RawMalloc for LockedHeap<S> {
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        #[cfg(feature = "stats")]
        self.locks.inc();
        unsafe { self.heap.lock().malloc(size) }
    }

    unsafe fn free(&self, ptr: *mut u8) {
        #[cfg(feature = "stats")]
        self.locks.inc();
        unsafe { self.heap.lock().free(ptr) }
    }

    fn name(&self) -> &str {
        "libc-serial"
    }

    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        // User pointers are naturally 16-aligned; stronger alignments
        // are overallocated-and-aligned via the direct path.
        if align <= 16 {
            unsafe { self.malloc(size) }
        } else {
            core::ptr::null_mut()
        }
    }

    fn stats(&self) -> AllocStats {
        self.source.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malloc_api::testkit;

    #[test]
    fn full_conformance_battery() {
        let a = Arc::new(LockedHeap::new());
        testkit::check_all(a);
    }

    #[test]
    fn stats_track_usage() {
        let a = LockedHeap::new();
        let p = unsafe { a.malloc(1000) };
        assert!(a.stats().peak_bytes > 0);
        unsafe { a.free(p) };
    }

    #[cfg(feature = "stats")]
    #[test]
    fn counters_track_lock_and_boundary_tag_traffic() {
        let a = LockedHeap::new();
        unsafe {
            // Carve three blocks out of one segment (splits), then free
            // them in reverse so neighbours merge back (coalesces).
            let p1 = a.malloc(64);
            let p2 = a.malloc(64);
            let p3 = a.malloc(64);
            a.free(p3);
            a.free(p2);
            a.free(p1);
        }
        let s = a.lock_stats();
        assert_eq!(s.lock_acquisitions, 6, "got {s:?}");
        assert!(s.splits >= 3, "got {s:?}");
        assert!(s.coalesces >= 2, "got {s:?}");
    }

    #[test]
    fn atfork_guard_registers_and_unregisters() {
        let a = LockedHeap::new();
        let before = malloc_api::procfork::registered_count();
        let g = a.atfork_guard();
        assert!(g.is_armed());
        assert_eq!(malloc_api::procfork::registered_count(), before + 1);
        drop(g);
        assert_eq!(malloc_api::procfork::registered_count(), before);
    }

    #[test]
    fn sixteen_byte_alignment_is_free() {
        let a = LockedHeap::new();
        unsafe {
            let p = a.malloc_aligned(100, 16);
            assert!(!p.is_null());
            assert_eq!(p as usize % 16, 0);
            a.free(p);
        }
    }
}
