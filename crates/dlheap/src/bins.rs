//! Segregated free-list bins with a first-set bitmap.
//!
//! Small chunks (< 1 KiB) get exact-size bins at 16-byte granularity;
//! larger chunks share logarithmic bins (two per power of two) up to
//! 1 MiB, with one overflow bin above. A bitmap of non-empty bins makes
//! "smallest chunk ≥ n" searches O(1) + list walk, the structure
//! dlmalloc calls its bin map.

use crate::chunk::{Chunk, MIN_CHUNK};

/// Exact bins cover `[MIN_CHUNK, SMALL_LIMIT)` at 16-byte steps.
const SMALL_LIMIT: usize = 1024;
const SMALL_BINS: usize = (SMALL_LIMIT - MIN_CHUNK) / 16; // 62
/// Log bins: 2 per octave from 1 KiB to 1 MiB, plus one overflow.
const LOG_OCTAVES: usize = 10; // 2^10 .. 2^20
/// Total bin count.
pub const NBINS: usize = SMALL_BINS + LOG_OCTAVES * 2 + 1; // 83

/// Maps a legal chunk size to its bin index.
///
/// # Example
///
/// ```
/// use dlheap::bins::bin_index;
/// assert_eq!(bin_index(32), 0);
/// assert_eq!(bin_index(48), 1);
/// assert!(bin_index(2048) > bin_index(1024));
/// ```
#[inline]
pub fn bin_index(size: usize) -> usize {
    debug_assert!(size >= MIN_CHUNK && size % 16 == 0);
    if size < SMALL_LIMIT {
        (size - MIN_CHUNK) / 16
    } else if size >= (1 << 20) {
        NBINS - 1 // overflow bin
    } else {
        let log = (usize::BITS - 1 - size.leading_zeros()) as usize; // floor(log2), 10..=19
        let octave = log - 10;
        // The bit below the MSB picks the half-octave: keeps the index
        // monotone in size within and across octaves.
        let half = (size >> (log - 1)) & 1;
        SMALL_BINS + octave * 2 + half
    }
}

/// The bin array: intrusive doubly-linked lists of free chunks plus a
/// non-empty bitmap.
#[derive(Debug)]
pub struct Bins {
    heads: [Chunk; NBINS],
    bitmap: [u64; NBINS.div_ceil(64)],
}

impl Default for Bins {
    fn default() -> Self {
        Self::new()
    }
}

impl Bins {
    /// All bins empty.
    pub const fn new() -> Self {
        Bins { heads: [Chunk::null(); NBINS], bitmap: [0; NBINS.div_ceil(64)] }
    }

    #[inline]
    fn mark(&mut self, i: usize) {
        self.bitmap[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn unmark(&mut self, i: usize) {
        self.bitmap[i / 64] &= !(1 << (i % 64));
    }

    /// Smallest non-empty bin with index ≥ `from`, if any.
    #[inline]
    pub fn first_nonempty_from(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut mask = !0u64 << (from % 64);
        while word < self.bitmap.len() {
            let bits = self.bitmap[word] & mask;
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            mask = !0;
        }
        None
    }

    /// Pushes a free chunk of `size` onto its bin (front).
    ///
    /// # Safety
    ///
    /// `c` must be a free chunk of `size` bytes owned by the caller and
    /// absent from every bin.
    pub unsafe fn insert(&mut self, c: Chunk, size: usize) {
        let i = bin_index(size);
        let head = self.heads[i];
        unsafe {
            c.set_fd(head);
            c.set_bk(Chunk::null());
            if !head.is_null() {
                head.set_bk(c);
            }
        }
        self.heads[i] = c;
        self.mark(i);
    }

    /// Unlinks a specific free chunk of `size` from its bin (used when
    /// coalescing absorbs a neighbour).
    ///
    /// # Safety
    ///
    /// `c` must currently be in the bin for `size`.
    pub unsafe fn unlink(&mut self, c: Chunk, size: usize) {
        let i = bin_index(size);
        let (fd, bk) = unsafe { (c.fd(), c.bk()) };
        if bk.is_null() {
            debug_assert_eq!(self.heads[i], c, "chunk not at bin head it claims");
            self.heads[i] = fd;
        } else {
            unsafe { bk.set_fd(fd) };
        }
        if !fd.is_null() {
            unsafe { fd.set_bk(bk) };
        }
        if self.heads[i].is_null() {
            self.unmark(i);
        }
    }

    /// Removes and returns a free chunk with size ≥ `need`, preferring
    /// smaller bins (best-fit across bins, first-fit within a bin).
    /// Returns the chunk and its actual size.
    ///
    /// # Safety
    ///
    /// Bin contents must be valid free chunks of the owning heap.
    pub unsafe fn take_fit(&mut self, need: usize) -> Option<(Chunk, usize)> {
        let mut i = bin_index(need);
        loop {
            i = self.first_nonempty_from(i)?;
            // Within the bin, walk for the first chunk that fits (log
            // bins mix sizes; exact bins always fit).
            let mut c = self.heads[i];
            while !c.is_null() {
                let size = unsafe { c.size() };
                if size >= need {
                    unsafe { self.unlink(c, size) };
                    return Some((c, size));
                }
                c = unsafe { c.fd() };
            }
            // Nothing in this bin fits (possible only for log bins);
            // move up.
            i += 1;
            if i >= NBINS {
                return None;
            }
        }
    }

    /// True if every bin is empty.
    pub fn is_empty(&self) -> bool {
        self.bitmap.iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malloc_api::testkit::TestRng;

    // Helper: materialize a fake free chunk in a buffer.
    struct Arena {
        _buf: Vec<u8>,
        cursor: usize,
        end: usize,
    }

    impl Arena {
        fn new(bytes: usize) -> Self {
            let buf = vec![0u8; bytes + 32];
            let base = (buf.as_ptr() as usize + 15) & !15;
            Arena { cursor: base + 8, end: base + bytes, _buf: buf }
        }

        fn chunk(&mut self, size: usize) -> Chunk {
            assert!(self.cursor + size <= self.end, "test arena exhausted");
            let c = Chunk(self.cursor);
            self.cursor += size;
            unsafe {
                c.set_header(size | crate::chunk::PINUSE);
                c.set_footer(size);
            }
            c
        }
    }

    #[test]
    fn bin_index_is_monotone() {
        let mut last = 0;
        let mut size = MIN_CHUNK;
        while size <= 4 << 20 {
            let i = bin_index(size);
            assert!(i >= last, "bin_index not monotone at {size}");
            assert!(i < NBINS);
            last = i;
            size += 16;
        }
    }

    #[test]
    fn exact_bins_are_exact() {
        // Below SMALL_LIMIT, all chunks in one bin share a size.
        assert_eq!(bin_index(32), bin_index(32));
        assert_ne!(bin_index(32), bin_index(48));
        assert_ne!(bin_index(992), bin_index(1008));
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut arena = Arena::new(4096);
        let mut bins = Bins::new();
        let c = arena.chunk(64);
        unsafe {
            bins.insert(c, 64);
            assert!(!bins.is_empty());
            let (got, size) = bins.take_fit(64).unwrap();
            assert_eq!(got, c);
            assert_eq!(size, 64);
            assert!(bins.is_empty());
            assert!(bins.take_fit(32).is_none());
        }
    }

    #[test]
    fn take_fit_prefers_smallest_adequate() {
        let mut arena = Arena::new(16384);
        let mut bins = Bins::new();
        let big = arena.chunk(512);
        let small = arena.chunk(64);
        let tiny = arena.chunk(32);
        unsafe {
            bins.insert(big, 512);
            bins.insert(small, 64);
            bins.insert(tiny, 32);
            let (got, size) = bins.take_fit(48).unwrap();
            assert_eq!(got, small, "should pick 64, not 512");
            assert_eq!(size, 64);
        }
    }

    #[test]
    fn unlink_from_middle() {
        let mut arena = Arena::new(4096);
        let mut bins = Bins::new();
        let a = arena.chunk(64);
        let b = arena.chunk(64);
        let c = arena.chunk(64);
        unsafe {
            bins.insert(a, 64);
            bins.insert(b, 64);
            bins.insert(c, 64); // list: c -> b -> a
            bins.unlink(b, 64);
            let (x, _) = bins.take_fit(64).unwrap();
            let (y, _) = bins.take_fit(64).unwrap();
            assert_eq!((x, y), (c, a));
            assert!(bins.take_fit(64).is_none());
        }
    }

    #[test]
    fn log_bins_fit_across_octaves() {
        let mut arena = Arena::new(1 << 20);
        let mut bins = Bins::new();
        let big = arena.chunk(300_000 & !15);
        unsafe {
            bins.insert(big, 300_000 & !15);
            // A request far below still finds it.
            let (got, _) = bins.take_fit(2048).unwrap();
            assert_eq!(got, big);
        }
    }

    #[test]
    fn every_legal_size_has_a_bin() {
        let mut rng = TestRng::new(0xB145);
        for _ in 0..8192 {
            let size = rng.range(MIN_CHUNK / 16, 1 << 18) * 16;
            assert!(bin_index(size) < NBINS);
        }
    }

    #[test]
    fn take_fit_never_returns_too_small() {
        let mut rng = TestRng::new(0xB146);
        for _ in 0..256 {
            let sizes: Vec<usize> =
                (0..rng.range(1, 20)).map(|_| rng.range(2, 64) * 16).collect();
            let need = rng.range(2, 64) * 16;
            let mut arena = Arena::new(1 << 20);
            let mut bins = Bins::new();
            for &s in &sizes {
                let c = arena.chunk(s);
                unsafe { bins.insert(c, s) };
            }
            if let Some((_, got)) = unsafe { bins.take_fit(need) } {
                assert!(got >= need);
            } else {
                assert!(sizes.iter().all(|&s| s < need));
            }
        }
    }
}
