//! Boundary-tag chunks (the dlmalloc memory layout).
//!
//! ```text
//! in-use chunk:  [ header: size|P|C ][ user data ... ]
//! free chunk:    [ header: size|P   ][ fd ][ bk ][ ... ][ footer: size ]
//! ```
//!
//! * `size` includes the 8-byte header and is a multiple of 16.
//! * `C` ([`CINUSE`]): this chunk is in use.
//! * `P` ([`PINUSE`]): the *previous* chunk is in use — set so `free`
//!   can decide whether to coalesce backward without touching the
//!   neighbour's interior.
//! * The footer (a copy of `size` in the chunk's last word) exists only
//!   while the chunk is free; backward coalescing reads it to find the
//!   previous chunk's start.
//! * `M` ([`MMAPPED`]): the block was allocated directly from the OS and
//!   bypasses the bins entirely.
//!
//! Chunks start at addresses ≡ 8 (mod 16) so user pointers are
//! 16-aligned, exactly as in dlmalloc.

/// This chunk is in use.
pub const CINUSE: usize = 0b001;
/// The previous (lower-address) chunk is in use.
pub const PINUSE: usize = 0b010;
/// Directly OS-allocated block (not part of any segment).
pub const MMAPPED: usize = 0b100;

const FLAG_MASK: usize = 0b111;

/// Chunk sizes are multiples of this.
pub const CHUNK_ALIGN: usize = 16;
/// Header bytes preceding user data.
pub const CHUNK_HEADER: usize = 8;
/// Smallest chunk: header + fd + bk + footer.
pub const MIN_CHUNK: usize = 32;

/// Raw chunk accessor. A thin unsafe view over a chunk's base address;
/// all safety obligations sit with the owning heap, which guarantees
/// addresses point into its segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk(pub usize);

impl Chunk {
    /// The user pointer for this chunk.
    #[inline]
    pub fn user_ptr(self) -> *mut u8 {
        (self.0 + CHUNK_HEADER) as *mut u8
    }

    /// The chunk owning `user` (inverse of [`user_ptr`](Self::user_ptr)).
    #[inline]
    pub fn from_user_ptr(user: *mut u8) -> Chunk {
        Chunk(user as usize - CHUNK_HEADER)
    }

    /// Reads the raw header word.
    ///
    /// # Safety
    ///
    /// The chunk must lie in memory owned by the calling heap.
    #[inline]
    pub unsafe fn header(self) -> usize {
        unsafe { *(self.0 as *const usize) }
    }

    /// Writes the raw header word.
    ///
    /// # Safety
    ///
    /// As [`header`](Self::header), plus exclusive access.
    #[inline]
    pub unsafe fn set_header(self, v: usize) {
        unsafe { *(self.0 as *mut usize) = v };
    }

    /// Chunk size in bytes (flags masked off).
    ///
    /// # Safety
    ///
    /// As [`header`](Self::header).
    #[inline]
    pub unsafe fn size(self) -> usize {
        (unsafe { self.header() }) & !FLAG_MASK
    }

    /// Whether this chunk is in use.
    ///
    /// # Safety
    ///
    /// As [`header`](Self::header).
    #[inline]
    pub unsafe fn cinuse(self) -> bool {
        (unsafe { self.header() }) & CINUSE != 0
    }

    /// Whether the previous chunk is in use.
    ///
    /// # Safety
    ///
    /// As [`header`](Self::header).
    #[inline]
    pub unsafe fn pinuse(self) -> bool {
        (unsafe { self.header() }) & PINUSE != 0
    }

    /// Whether this block came straight from the OS.
    ///
    /// # Safety
    ///
    /// As [`header`](Self::header).
    #[inline]
    pub unsafe fn mmapped(self) -> bool {
        (unsafe { self.header() }) & MMAPPED != 0
    }

    /// The next (higher-address) chunk.
    ///
    /// # Safety
    ///
    /// As [`header`](Self::header); the result is valid only within a
    /// segment (the end sentinel stops traversal).
    #[inline]
    pub unsafe fn next(self) -> Chunk {
        Chunk(self.0 + unsafe { self.size() })
    }

    /// The previous chunk, via the footer — valid only when `!pinuse()`.
    ///
    /// # Safety
    ///
    /// The previous chunk must be free (its footer present).
    #[inline]
    pub unsafe fn prev(self) -> Chunk {
        let prev_size = unsafe { *((self.0 - 8) as *const usize) };
        Chunk(self.0 - prev_size)
    }

    /// Writes the free-chunk footer (copy of `size` in the last word).
    ///
    /// # Safety
    ///
    /// Chunk must be free and sized `size`.
    #[inline]
    pub unsafe fn set_footer(self, size: usize) {
        unsafe { *((self.0 + size - 8) as *mut usize) = size };
    }

    /// Free-list forward link (free chunks only).
    ///
    /// # Safety
    ///
    /// Chunk must be free and at least [`MIN_CHUNK`] bytes.
    #[inline]
    pub unsafe fn fd(self) -> Chunk {
        Chunk(unsafe { *((self.0 + 8) as *const usize) })
    }

    /// Sets the forward link.
    ///
    /// # Safety
    ///
    /// As [`fd`](Self::fd).
    #[inline]
    pub unsafe fn set_fd(self, c: Chunk) {
        unsafe { *((self.0 + 8) as *mut usize) = c.0 };
    }

    /// Free-list backward link (0 when the chunk is first in its bin).
    ///
    /// # Safety
    ///
    /// As [`fd`](Self::fd).
    #[inline]
    pub unsafe fn bk(self) -> Chunk {
        Chunk(unsafe { *((self.0 + 16) as *const usize) })
    }

    /// Sets the backward link.
    ///
    /// # Safety
    ///
    /// As [`fd`](Self::fd).
    #[inline]
    pub unsafe fn set_bk(self, c: Chunk) {
        unsafe { *((self.0 + 16) as *mut usize) = c.0 };
    }

    /// True for the null chunk (list terminator).
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The null chunk.
    #[inline]
    pub const fn null() -> Chunk {
        Chunk(0)
    }
}

/// Rounds a user request up to a legal chunk size.
///
/// # Example
///
/// ```
/// use dlheap::chunk::{request_to_chunk_size, MIN_CHUNK};
/// assert_eq!(request_to_chunk_size(1), MIN_CHUNK);
/// assert_eq!(request_to_chunk_size(24), 32);
/// assert_eq!(request_to_chunk_size(25), 48);
/// assert_eq!(request_to_chunk_size(100), 112);
/// ```
#[inline]
pub fn request_to_chunk_size(req: usize) -> usize {
    let raw = req.saturating_add(CHUNK_HEADER);
    let aligned = (raw + (CHUNK_ALIGN - 1)) & !(CHUNK_ALIGN - 1);
    aligned.max(MIN_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_flag_roundtrip() {
        let mut buf = vec![0u8; 128];
        // Carve a chunk at offset 8 (addresses ≡ 8 mod 16).
        let base = (buf.as_mut_ptr() as usize + 15) & !15;
        let c = Chunk(base + 8);
        unsafe {
            c.set_header(64 | CINUSE | PINUSE);
            assert_eq!(c.size(), 64);
            assert!(c.cinuse());
            assert!(c.pinuse());
            assert!(!c.mmapped());
            assert_eq!(c.next().0, c.0 + 64);
        }
        drop(buf);
    }

    #[test]
    fn footer_enables_prev() {
        let mut buf = vec![0u8; 256];
        let base = (buf.as_mut_ptr() as usize + 15) & !15;
        let a = Chunk(base + 8);
        unsafe {
            a.set_header(64 | PINUSE); // free
            a.set_footer(64);
            let b = a.next();
            b.set_header(32 | CINUSE); // in use, pinuse clear
            assert!(!b.pinuse());
            assert_eq!(b.prev(), a);
        }
        drop(buf);
    }

    #[test]
    fn links_roundtrip() {
        let mut buf = vec![0u8; 128];
        let base = (buf.as_mut_ptr() as usize + 15) & !15;
        let c = Chunk(base + 8);
        unsafe {
            c.set_header(MIN_CHUNK | PINUSE);
            c.set_fd(Chunk(0x100));
            c.set_bk(Chunk(0x200));
            assert_eq!(c.fd().0, 0x100);
            assert_eq!(c.bk().0, 0x200);
        }
        drop(buf);
    }

    #[test]
    fn user_ptr_roundtrip_and_alignment() {
        let c = Chunk(0x1008);
        let u = c.user_ptr();
        assert_eq!(u as usize, 0x1010);
        assert_eq!(u as usize % 16, 0, "user pointers are 16-aligned");
        assert_eq!(Chunk::from_user_ptr(u), c);
    }

    #[test]
    fn request_rounding_honors_min_and_align() {
        assert_eq!(request_to_chunk_size(0), MIN_CHUNK);
        for req in 1..500 {
            let sz = request_to_chunk_size(req);
            assert!(sz >= req + CHUNK_HEADER);
            assert_eq!(sz % CHUNK_ALIGN, 0);
            assert!(sz >= MIN_CHUNK);
        }
    }
}
