//! Property tests: the boundary-tag invariants survive arbitrary
//! malloc/free interleavings.

use dlheap::heap::HeapReport;
use dlheap::{LockedHeap, SerialHeap};
use malloc_api::testkit::TestRng;
use malloc_api::RawMalloc;
use osmem::{CountingSource, SystemSource};
use std::sync::Arc;

fn fresh() -> SerialHeap<CountingSource<SystemSource>> {
    SerialHeap::new(Arc::new(CountingSource::new(SystemSource::new())))
}

#[test]
fn empty_heap_reports_nothing() {
    let h = fresh();
    assert_eq!(h.check_integrity(), HeapReport::default());
}

#[test]
fn integrity_after_full_free_shows_one_chunk_per_segment() {
    let mut h = fresh();
    unsafe {
        let blocks: Vec<*mut u8> = (0..500).map(|_| h.malloc(700)).collect();
        for p in blocks {
            h.free(p);
        }
    }
    let r = h.check_integrity();
    assert_eq!(r.in_use_chunks, 0);
    assert_eq!(
        r.free_chunks, r.segments,
        "full coalescing must leave exactly one free chunk per segment"
    );
}

#[test]
fn integrity_under_random_churn() {
    let mut h = fresh();
    let mut rng = TestRng::new(0xD1);
    let mut live: Vec<(*mut u8, usize)> = Vec::new();
    unsafe {
        for step in 0..5_000 {
            if !live.is_empty() && (live.len() > 80 || rng.range(0, 2) == 0) {
                let i = rng.range(0, live.len());
                let (p, _) = live.swap_remove(i);
                h.free(p);
            } else {
                let sz = rng.range(1, 3_000);
                let p = h.malloc(sz);
                assert!(!p.is_null());
                live.push((p, sz));
            }
            if step % 500 == 0 {
                let r = h.check_integrity();
                assert_eq!(r.in_use_chunks, live.len());
            }
        }
        let r = h.check_integrity();
        assert_eq!(r.in_use_chunks, live.len());
        for (p, _) in live {
            h.free(p);
        }
    }
    assert_eq!(h.check_integrity().in_use_chunks, 0);
}

#[test]
fn locked_heap_integrity_after_concurrent_churn() {
    let a = Arc::new(LockedHeap::new());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let a = Arc::clone(&a);
        handles.push(std::thread::spawn(move || {
            let mut rng = TestRng::new(t + 1);
            let mut live = Vec::new();
            for _ in 0..3_000 {
                unsafe {
                    if !live.is_empty() && rng.range(0, 2) == 0 {
                        let i = rng.range(0, live.len());
                        a.free(live.swap_remove(i));
                    } else {
                        live.push(a.malloc(rng.range(1, 1_000)));
                    }
                }
            }
            for p in live {
                unsafe { a.free(p) };
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let r = a.check_integrity();
    assert_eq!(r.in_use_chunks, 0, "all blocks freed; report: {r:?}");
}

#[test]
fn invariants_hold_for_random_programs() {
    for case in 0..32u64 {
        let mut rng = TestRng::new(0x1A7E_0000 + case);
        let ops: Vec<(usize, usize)> = (0..rng.range(1, 400))
            .map(|_| (rng.range(0, 3), rng.range(1, 4_096)))
            .collect();
        let mut h = fresh();
        let mut live: Vec<*mut u8> = Vec::new();
        unsafe {
            for (op, sz) in ops {
                match op {
                    0 | 1 => {
                        let p = h.malloc(sz);
                        assert!(!p.is_null());
                        live.push(p);
                    }
                    _ => {
                        if !live.is_empty() {
                            let p = live.swap_remove(sz % live.len());
                            h.free(p);
                        }
                    }
                }
            }
            let r = h.check_integrity();
            assert_eq!(r.in_use_chunks, live.len(), "case {case}");
            for p in live {
                h.free(p);
            }
            assert_eq!(h.check_integrity().in_use_chunks, 0, "case {case}");
        }
    }
}
