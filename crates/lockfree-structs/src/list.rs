//! Michael's lock-free ordered linked list (list-based set).
//!
//! This is the structure of "High performance dynamic lock-free hash
//! tables and list-based sets" (SPAA 2002), cited by the allocator paper
//! as [16]: §3.2.6 proposes managing each size class's partial list with
//! "the simpler version in [19] of the lock-free linked list algorithm
//! in [16] ... with the possibility of removing descriptors from the
//! middle of the list". The `PartialMode::List` configuration of
//! lfmalloc uses exactly that.
//!
//! Keys are ordered `usize` values (for the allocator: descriptor
//! addresses). Deletion is two-phase: a CAS sets the *mark bit* in the
//! victim's `next` pointer (logical delete), then the node is physically
//! unlinked — by the deleter or by any later traversal that encounters
//! the mark — and retired through the hazard domain.
//!
//! Hazard slots 0, 1 and 2 protect `curr`, `next`, and the previous
//! node during traversal, per Michael's original scheme.

use crate::queue::SLOT_FREE;
use crate::stack::{HpStack, Intrusive};
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use hazard::{HazardDomain, Slot};
use std::alloc::{GlobalAlloc, Layout, System};

const SLOT_CURR: Slot = Slot(0);
const SLOT_NEXT: Slot = Slot(1);
const SLOT_PREV: Slot = Slot(2);

/// List node: key + mark-carrying next pointer.
#[repr(C)]
#[derive(Debug)]
pub struct ListNode {
    /// Marked next pointer (low bit = logically deleted).
    next: AtomicUsize,
    /// Immutable while linked.
    key: AtomicUsize,
    /// Free-list link (disjoint lifetime from `next` usage).
    pool_link: AtomicPtr<ListNode>,
}

unsafe impl Intrusive for ListNode {
    fn next_link(&self) -> &AtomicPtr<ListNode> {
        &self.pool_link
    }
}

const MARK: usize = 1;

#[inline]
fn unmarked(p: usize) -> *mut ListNode {
    (p & !MARK) as *mut ListNode
}

#[inline]
fn is_marked(p: usize) -> bool {
    p & MARK != 0
}

const NODES_PER_SLAB: usize = 64;

#[repr(C)]
struct SlabHeader {
    next: *mut SlabHeader,
}

fn slab_layout() -> Layout {
    Layout::new::<SlabHeader>()
        .extend(Layout::array::<ListNode>(NODES_PER_SLAB).unwrap())
        .unwrap()
        .0
        .pad_to_align()
}

/// A lock-free sorted set of `usize` keys, embeddable like
/// [`RawQueue`](crate::queue::RawQueue): the caller owns the hazard
/// domain and guarantees address stability.
#[derive(Debug)]
pub struct RawList {
    head: AtomicUsize, // marked pointer representation (mark unused at head)
    free: HpStack<ListNode>,
    slabs: AtomicPtr<SlabHeader>,
}

unsafe impl Send for RawList {}
unsafe impl Sync for RawList {}

/// Result of the internal `find`.
struct FindResult {
    found: bool,
    /// Address of the link that points at `curr` (the head or a node's
    /// `next` field).
    prev_link: *const AtomicUsize,
    curr: *mut ListNode,
}

impl RawList {
    /// Creates an empty list (no allocation until first insert).
    pub const fn new() -> Self {
        RawList {
            head: AtomicUsize::new(0),
            free: HpStack::new(),
            slabs: AtomicPtr::new(core::ptr::null_mut()),
        }
    }

    unsafe fn alloc_node(&self, domain: &HazardDomain) -> *mut ListNode {
        if let Some(n) = unsafe { self.free.pop(domain, SLOT_FREE) } {
            return n;
        }
        let layout = slab_layout();
        let raw = unsafe { System.alloc(layout) };
        assert!(!raw.is_null(), "list node slab allocation failed");
        let header = raw as *mut SlabHeader;
        let mut head = self.slabs.load(Ordering::Acquire);
        loop {
            unsafe { (*header).next = head };
            match self.slabs.compare_exchange_weak(
                head,
                header,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => head = observed,
            }
        }
        let nodes = unsafe { raw.add(core::mem::size_of::<SlabHeader>()) } as *mut ListNode;
        for i in 0..NODES_PER_SLAB {
            let n = unsafe { nodes.add(i) };
            unsafe {
                n.write(ListNode {
                    next: AtomicUsize::new(0),
                    key: AtomicUsize::new(0),
                    pool_link: AtomicPtr::new(core::ptr::null_mut()),
                });
            }
            if i != 0 {
                unsafe { self.free.push(n) };
            }
        }
        nodes
    }

    unsafe fn retire_node(&self, domain: &HazardDomain, node: *mut ListNode) {
        unsafe fn reclaim(ctx: *mut u8, ptr: *mut u8) {
            let list = unsafe { &*(ctx as *const RawList) };
            unsafe { list.free.push(ptr as *mut ListNode) };
        }
        unsafe { domain.retire(node as *mut u8, self as *const _ as *mut u8, reclaim) };
    }

    /// Michael's `Find`: positions hazard-protected (`prev_link`,
    /// `curr`) such that `curr` is the first unmarked node with
    /// `key >= target`, unlinking marked nodes along the way.
    ///
    /// # Safety
    ///
    /// `domain` must be this list's domain; slots 0–2 are clobbered.
    unsafe fn find(&self, domain: &HazardDomain, target: usize) -> FindResult {
        'retry: loop {
            let mut prev_link: *const AtomicUsize = &self.head;
            let mut curr = unmarked(unsafe { (*prev_link).load(Ordering::Acquire) });
            domain.clear(SLOT_PREV);
            loop {
                if curr.is_null() {
                    return FindResult { found: false, prev_link, curr };
                }
                // Protect curr, validating against prev_link.
                domain.set(SLOT_CURR, curr);
                if unmarked(unsafe { (*prev_link).load(Ordering::Acquire) }) != curr {
                    continue 'retry;
                }
                let next_word = unsafe { (*curr).next.load(Ordering::Acquire) };
                let next = unmarked(next_word);
                domain.set(SLOT_NEXT, next);
                if unsafe { (*curr).next.load(Ordering::Acquire) } != next_word {
                    continue 'retry;
                }
                if is_marked(next_word) {
                    // curr is logically deleted: try to unlink it.
                    let prev_atomic = unsafe { &*prev_link };
                    if prev_atomic
                        .compare_exchange(
                            curr as usize,
                            next as usize,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        unsafe { self.retire_node(domain, curr) };
                    } else {
                        continue 'retry;
                    }
                    curr = next;
                    continue;
                }
                let ckey = unsafe { (*curr).key.load(Ordering::Acquire) };
                if ckey >= target {
                    return FindResult { found: ckey == target, prev_link, curr };
                }
                // Advance: curr becomes the new prev; keep it protected.
                domain.set(SLOT_PREV, curr);
                prev_link = unsafe { &(*curr).next } as *const AtomicUsize;
                // SLOT_CURR will be re-set at loop top for the new curr.
                curr = next;
            }
        }
    }

    /// Inserts `key`; returns false if already present.
    ///
    /// # Safety
    ///
    /// `domain` must be this list's domain for its whole lifetime, and
    /// `self` must be address-stable.
    pub unsafe fn insert(&self, domain: &HazardDomain, key: usize) -> bool {
        debug_assert_eq!(key & MARK, 0, "keys must have a zero low bit");
        let node = unsafe { self.alloc_node(domain) };
        unsafe { (*node).key.store(key, Ordering::Relaxed) };
        loop {
            let f = unsafe { self.find(domain, key) };
            if f.found {
                // Already present: recycle the unused node (never
                // published, safe to push directly? It WAS popped from
                // the free stack, so flow through retire).
                unsafe { self.retire_node(domain, node) };
                domain.clear_all();
                return false;
            }
            unsafe { (*node).next.store(f.curr as usize, Ordering::Relaxed) };
            let prev_atomic = unsafe { &*f.prev_link };
            if prev_atomic
                .compare_exchange(
                    f.curr as usize,
                    node as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                domain.clear_all();
                return true;
            }
        }
    }

    /// Removes `key`; returns false if absent.
    ///
    /// # Safety
    ///
    /// As [`insert`](Self::insert).
    pub unsafe fn remove(&self, domain: &HazardDomain, key: usize) -> bool {
        loop {
            let f = unsafe { self.find(domain, key) };
            if !f.found {
                domain.clear_all();
                return false;
            }
            let curr = f.curr;
            let next_word = unsafe { (*curr).next.load(Ordering::Acquire) };
            if is_marked(next_word) {
                continue; // someone else is deleting it; re-find
            }
            // Logical delete: set the mark.
            if unsafe { &(*curr).next }
                .compare_exchange(
                    next_word,
                    next_word | MARK,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // Physical delete: best effort; find() cleans up otherwise.
            let prev_atomic = unsafe { &*f.prev_link };
            if prev_atomic
                .compare_exchange(
                    curr as usize,
                    unmarked(next_word) as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                unsafe { self.retire_node(domain, curr) };
            } else {
                let _ = unsafe { self.find(domain, key) };
            }
            domain.clear_all();
            return true;
        }
    }

    /// Membership test.
    ///
    /// # Safety
    ///
    /// As [`insert`](Self::insert).
    pub unsafe fn contains(&self, domain: &HazardDomain, key: usize) -> bool {
        let f = unsafe { self.find(domain, key) };
        domain.clear_all();
        f.found
    }

    /// Removes and returns the smallest key, or `None` if empty.
    ///
    /// # Safety
    ///
    /// As [`insert`](Self::insert).
    pub unsafe fn pop_first(&self, domain: &HazardDomain) -> Option<usize> {
        unsafe { self.remove_first_where(domain, |_| true) }
    }

    /// Removes and returns the smallest key satisfying `pred`
    /// (`ListRemoveEmptyDesc`'s mid-list removal shape), or `None`.
    ///
    /// # Safety
    ///
    /// As [`insert`](Self::insert). `pred` must not touch this list.
    pub unsafe fn remove_first_where(
        &self,
        domain: &HazardDomain,
        pred: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        'retry: loop {
            let mut prev_link: *const AtomicUsize = &self.head;
            let mut curr = unmarked(unsafe { (*prev_link).load(Ordering::Acquire) });
            domain.clear(SLOT_PREV);
            loop {
                if curr.is_null() {
                    domain.clear_all();
                    return None;
                }
                domain.set(SLOT_CURR, curr);
                if unmarked(unsafe { (*prev_link).load(Ordering::Acquire) }) != curr {
                    continue 'retry;
                }
                let next_word = unsafe { (*curr).next.load(Ordering::Acquire) };
                let next = unmarked(next_word);
                domain.set(SLOT_NEXT, next);
                if unsafe { (*curr).next.load(Ordering::Acquire) } != next_word {
                    continue 'retry;
                }
                let key = unsafe { (*curr).key.load(Ordering::Acquire) };
                if !is_marked(next_word) && pred(key) {
                    // Try to take it: logical then physical delete.
                    if unsafe { &(*curr).next }
                        .compare_exchange(
                            next_word,
                            next_word | MARK,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        let prev_atomic = unsafe { &*prev_link };
                        if prev_atomic
                            .compare_exchange(
                                curr as usize,
                                next as usize,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            unsafe { self.retire_node(domain, curr) };
                        } else {
                            let _ = unsafe { self.find(domain, key) };
                        }
                        domain.clear_all();
                        return Some(key);
                    }
                    continue 'retry;
                }
                // Skip marked or non-matching node.
                domain.set(SLOT_PREV, curr);
                prev_link = unsafe { &(*curr).next } as *const AtomicUsize;
                curr = next;
            }
        }
    }

    /// Best-effort emptiness check.
    pub fn is_empty_hint(&self) -> bool {
        unmarked(self.head.load(Ordering::Acquire)).is_null()
    }

    /// Quiescent snapshot: the unmarked keys currently in the list, in
    /// order. Bounded by a cycle guard so a corrupt chain terminates.
    ///
    /// # Safety
    ///
    /// No concurrent mutation; intended for offline auditing.
    pub unsafe fn snapshot(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut steps = 0usize;
        let mut curr = unmarked(self.head.load(Ordering::Acquire));
        while !curr.is_null() && steps < (1 << 24) {
            steps += 1;
            let next_word = unsafe { (*curr).next.load(Ordering::Acquire) };
            if !is_marked(next_word) {
                out.push(unsafe { (*curr).key.load(Ordering::Relaxed) });
            }
            curr = unmarked(next_word);
        }
        out
    }
}

impl Default for RawList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for RawList {
    fn drop(&mut self) {
        let mut p = *self.slabs.get_mut();
        let layout = slab_layout();
        while !p.is_null() {
            let next = unsafe { (*p).next };
            unsafe { System.dealloc(p as *mut u8, layout) };
            p = next;
        }
    }
}

/// Safe, self-contained wrapper (own domain, boxed for stability).
///
/// # Example
///
/// ```
/// use lockfree_structs::list::OrderedSet;
///
/// let s = OrderedSet::new();
/// assert!(s.insert(16));
/// assert!(!s.insert(16));
/// assert!(s.contains(16));
/// assert!(s.remove(16));
/// assert!(!s.contains(16));
/// ```
#[derive(Debug)]
pub struct OrderedSet {
    inner: Box<(HazardDomain, RawList)>,
}

impl Default for OrderedSet {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderedSet {
    /// Creates an empty set. Keys must have a zero low bit (they are
    /// stored alongside the mark bit's name space; for pointers this is
    /// any alignment ≥ 2).
    pub fn new() -> Self {
        OrderedSet { inner: Box::new((HazardDomain::new(), RawList::new())) }
    }

    /// Inserts `key`; false if already present.
    pub fn insert(&self, key: usize) -> bool {
        unsafe { self.inner.1.insert(&self.inner.0, key) }
    }

    /// Removes `key`; false if absent.
    pub fn remove(&self, key: usize) -> bool {
        unsafe { self.inner.1.remove(&self.inner.0, key) }
    }

    /// Membership test.
    pub fn contains(&self, key: usize) -> bool {
        unsafe { self.inner.1.contains(&self.inner.0, key) }
    }

    /// Removes and returns the smallest key.
    pub fn pop_first(&self) -> Option<usize> {
        unsafe { self.inner.1.pop_first(&self.inner.0) }
    }

    /// Removes and returns the smallest key satisfying `pred`.
    pub fn remove_first_where(&self, pred: impl Fn(usize) -> bool) -> Option<usize> {
        unsafe { self.inner.1.remove_first_where(&self.inner.0, pred) }
    }

    /// Best-effort emptiness check.
    pub fn is_empty_hint(&self) -> bool {
        self.inner.1.is_empty_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn set_semantics() {
        let s = OrderedSet::new();
        assert!(s.is_empty_hint());
        assert!(s.insert(10));
        assert!(s.insert(20));
        assert!(!s.insert(10), "duplicate insert must fail");
        assert!(s.contains(10));
        assert!(!s.contains(30));
        assert!(s.remove(10));
        assert!(!s.remove(10), "double remove must fail");
        assert!(!s.contains(10));
        assert!(s.contains(20));
    }

    #[test]
    fn ordered_pop_first() {
        let s = OrderedSet::new();
        for k in [50usize, 10, 40, 20, 30] {
            s.insert(k);
        }
        assert_eq!(s.pop_first(), Some(10));
        assert_eq!(s.pop_first(), Some(20));
        assert_eq!(s.pop_first(), Some(30));
        assert_eq!(s.pop_first(), Some(40));
        assert_eq!(s.pop_first(), Some(50));
        assert_eq!(s.pop_first(), None);
    }

    #[test]
    fn remove_first_where_skips_nonmatching() {
        let s = OrderedSet::new();
        for k in [10usize, 20, 30, 40] {
            s.insert(k);
        }
        // Remove the first key divisible by 20: that's 20, mid-list.
        assert_eq!(s.remove_first_where(|k| k % 20 == 0), Some(20));
        assert!(s.contains(10) && s.contains(30) && s.contains(40));
        assert!(!s.contains(20));
        // No key matches: None, nothing removed.
        assert_eq!(s.remove_first_where(|k| k > 1000), None);
        assert!(s.contains(10));
    }

    #[test]
    fn nodes_are_recycled() {
        let s = OrderedSet::new();
        for round in 0..100 {
            for i in 0..50usize {
                s.insert((round * 50 + i) * 2 + 2);
            }
            while s.pop_first().is_some() {}
        }
        // 5000 inserts with recycling: slab count stays small.
        let mut p = s.inner.1.slabs.load(Ordering::Acquire);
        let mut slabs = 0;
        while !p.is_null() {
            slabs += 1;
            p = unsafe { (*p).next };
        }
        assert!(slabs <= 8, "{slabs} slabs suggests no node recycling");
    }

    #[test]
    fn concurrent_insert_remove_conservation() {
        const PER_THREAD: usize = 2_000;
        let s = Arc::new(OrderedSet::new());
        let mut handles = Vec::new();
        for t in 0..4usize {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                // Disjoint key ranges per thread; every key inserted then
                // removed; all operations must report success exactly once.
                let base = (t + 1) << 24;
                for i in 0..PER_THREAD {
                    let k = base + i * 2;
                    assert!(s.insert(k), "insert {k:#x} failed");
                }
                for i in 0..PER_THREAD {
                    let k = base + i * 2;
                    assert!(s.contains(k));
                    assert!(s.remove(k), "remove {k:#x} failed");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.is_empty_hint());
    }

    #[test]
    fn concurrent_contention_on_same_keys() {
        // All threads fight over the same small key space; each
        // successful insert is eventually matched by exactly one
        // successful remove.
        let s = Arc::new(OrderedSet::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut state = t + 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut net = 0i64; // inserts minus removes that succeeded
                for _ in 0..5_000 {
                    let r = next();
                    let k = ((r as usize % 32) + 1) * 2;
                    if r & (1 << 40) == 0 {
                        if s.insert(k) {
                            net += 1;
                        }
                    } else if s.remove(k) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Drain what's left; it must equal the net insertions.
        let mut left = HashSet::new();
        while let Some(k) = s.pop_first() {
            assert!(left.insert(k), "duplicate key {k} in set");
        }
        assert_eq!(left.len() as i64, net, "insert/remove accounting broken");
    }
}
