//! Lock-free LIFO stacks (IBM free-list / Treiber stacks).
//!
//! Two variants, matching the two ABA defenses the paper employs:
//!
//! * [`TaggedStack`] — head is a [`TagPtr`] bumped on every pop (the
//!   "classic IBM tag mechanism" [8]). Used where nodes are large,
//!   strongly aligned, and **never unmapped** (the page pool's
//!   superblock free list), so a stale traversal reads valid memory and
//!   the tag stops a stale CAS.
//! * [`HpStack`] — head is a plain pointer; pops are protected by hazard
//!   pointers and nodes must be re-inserted only through
//!   [`HazardDomain::retire`]. This is the paper's `DescAvail`
//!   descriptor list, where `SafeCAS` "use[s] the hazard pointer
//!   methodology ... to prevent the ABA problem for this structure"
//!   (§3.2.5).

use crate::backoff::Backoff;
use crate::tagptr::TagPtr;
use core::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use hazard::{HazardDomain, Slot};

/// A lock-free LIFO stack of raw, `2^SHIFT`-aligned memory regions.
///
/// The word at byte offset `OFFSET` (default 0: the first word) of each
/// free region is used as the intrusive next link.
/// ABA is prevented by a tag packed into the head word.
///
/// # Safety model
///
/// All regions ever pushed must remain readable for the stack's lifetime
/// (they may be *reused* while popped — a racing `pop` may read the first
/// word of a region another thread owns, which is why the link is read
/// with an atomic load — but they may never be unmapped). The page pool
/// satisfies this by construction: it never returns memory to the OS,
/// like the paper's descriptor superblocks.
#[derive(Debug)]
pub struct TaggedStack<const SHIFT: u32, const OFFSET: usize = 0> {
    head: AtomicU64,
}

impl<const SHIFT: u32, const OFFSET: usize> Default for TaggedStack<SHIFT, OFFSET> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const SHIFT: u32, const OFFSET: usize> TaggedStack<SHIFT, OFFSET> {
    /// Creates an empty stack.
    pub const fn new() -> Self {
        TaggedStack { head: AtomicU64::new(0) }
    }

    /// Pushes the region at `node`.
    ///
    /// # Safety
    ///
    /// `node` must be non-zero, aligned to `2^SHIFT`, point to at least
    /// one writable word, not currently be in the stack, and satisfy the
    /// never-unmapped rule above.
    pub unsafe fn push(&self, node: usize) {
        debug_assert_ne!(node, 0);
        let link = unsafe { &*((node + OFFSET) as *const AtomicUsize) };
        let mut backoff = Backoff::new();
        let mut head = TagPtr::<SHIFT>::from_raw(self.head.load(Ordering::Acquire));
        loop {
            link.store(head.addr(), Ordering::Relaxed);
            let new = head.with_addr(node);
            match self.head.compare_exchange_weak(
                head.raw(),
                new.raw(),
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => {
                    crate::cas_retry!(STACK_PUSH_RETRIES);
                    head = TagPtr::from_raw(observed);
                    backoff.spin();
                }
            }
        }
    }

    /// Pops a region, or `None` if the stack is empty.
    ///
    /// # Safety
    ///
    /// Same stack-wide rules as [`push`](Self::push).
    pub unsafe fn pop(&self) -> Option<usize> {
        let mut backoff = Backoff::new();
        let mut head = TagPtr::<SHIFT>::from_raw(self.head.load(Ordering::Acquire));
        loop {
            if head.is_null() {
                return None;
            }
            // The region may be concurrently owned by someone who won an
            // earlier race and have been overwritten with arbitrary
            // bytes; the atomic load makes reading it benign, and the
            // tag check makes the value harmless: if the region left the
            // stack, the tag moved and the CAS below must fail. The
            // masked pack keeps the garbage representable instead of
            // tripping `pack`'s alignment assert on a value the CAS is
            // about to reject anyway.
            let next =
                unsafe { &*((head.addr() + OFFSET) as *const AtomicUsize) }.load(Ordering::Relaxed);
            let new = head.with_addr_masked(next).bump_tag();
            match self.head.compare_exchange_weak(
                head.raw(),
                new.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head.addr()),
                Err(observed) => {
                    crate::cas_retry!(STACK_POP_RETRIES);
                    head = TagPtr::from_raw(observed);
                    backoff.spin();
                }
            }
        }
    }

    /// True if the stack was empty at the time of the load.
    pub fn is_empty(&self) -> bool {
        TagPtr::<SHIFT>::from_raw(self.head.load(Ordering::Acquire)).is_null()
    }

    /// Quiescent snapshot: the regions currently in the stack, top
    /// first. Bounded by a cycle guard so a corrupt chain terminates.
    ///
    /// # Safety
    ///
    /// No concurrent push/pop; intended for offline auditing.
    pub unsafe fn snapshot(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut p = TagPtr::<SHIFT>::from_raw(self.head.load(Ordering::Acquire)).addr();
        while p != 0 && out.len() < (1 << 24) {
            out.push(p);
            p = unsafe { &*((p + OFFSET) as *const AtomicUsize) }.load(Ordering::Relaxed);
        }
        out
    }
}

/// A node type usable in an [`HpStack`]: exposes one intrusive link.
///
/// # Safety
///
/// `next_link` must return a stable `AtomicPtr` embedded in the node that
/// the stack may use exclusively while the node is free.
pub unsafe trait Intrusive: Sized {
    /// The node's intrusive next link.
    fn next_link(&self) -> &AtomicPtr<Self>;
}

/// A lock-free LIFO stack protected by hazard pointers instead of tags.
///
/// This is the paper's descriptor free list: `DescRetire` is a plain
/// push, `DescAlloc` is a pop whose CAS is made ABA-safe by publishing a
/// hazard pointer to the observed head ("SafeCAS").
///
/// # ABA discipline
///
/// Hazard pointers only prevent ABA if a popped node cannot re-enter the
/// stack while some thread still protects it. Therefore **nodes must be
/// re-inserted only via [`HazardDomain::retire`]** with a reclaim
/// function that performs the [`push`](HpStack::push); pushing a
/// previously popped node directly is unsound under concurrency.
/// Fresh nodes (never popped) may be pushed directly.
#[derive(Debug)]
pub struct HpStack<T: Intrusive> {
    head: AtomicPtr<T>,
}

unsafe impl<T: Intrusive + Send> Send for HpStack<T> {}
unsafe impl<T: Intrusive + Send> Sync for HpStack<T> {}

impl<T: Intrusive> Default for HpStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Intrusive> HpStack<T> {
    /// Creates an empty stack.
    pub const fn new() -> Self {
        HpStack { head: AtomicPtr::new(core::ptr::null_mut()) }
    }

    /// Pushes `node`.
    ///
    /// # Safety
    ///
    /// `node` must be valid, not in the stack, and either never popped
    /// before or flowing through `retire` (see ABA discipline above).
    pub unsafe fn push(&self, node: *mut T) {
        debug_assert!(!node.is_null());
        let mut backoff = Backoff::new();
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            unsafe { (*node).next_link().store(head, Ordering::Relaxed) };
            match self.head.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => {
                    crate::cas_retry!(STACK_PUSH_RETRIES);
                    head = observed;
                    backoff.spin();
                }
            }
        }
    }

    /// Pops a node, protecting the traversal with hazard `slot` of
    /// `domain`.
    ///
    /// # Safety
    ///
    /// All nodes in the stack must remain allocated while any thread may
    /// be inside `pop` (retire-mediated recycling guarantees this).
    pub unsafe fn pop(&self, domain: &HazardDomain, slot: Slot) -> Option<*mut T> {
        let mut backoff = Backoff::new();
        loop {
            let p = domain.protect(slot, &self.head);
            if p.is_null() {
                domain.clear(slot);
                return None;
            }
            // p is protected: it cannot be reclaimed-and-reused, so its
            // link is stable if p is still the head.
            let next = unsafe { (*p).next_link().load(Ordering::Acquire) };
            if self
                .head
                .compare_exchange(p, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                domain.clear(slot);
                return Some(p);
            }
            crate::cas_retry!(STACK_POP_RETRIES);
            backoff.spin();
        }
    }

    /// True if the stack was empty at the time of the load.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Quiescent snapshot: the nodes currently in the stack, top first.
    /// Bounded by a cycle guard so a corrupt chain terminates.
    ///
    /// # Safety
    ///
    /// No concurrent push/pop; intended for offline auditing.
    pub unsafe fn snapshot(&self) -> Vec<*mut T> {
        let mut out = Vec::new();
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() && out.len() < (1 << 24) {
            out.push(p);
            p = unsafe { (*p).next_link().load(Ordering::Relaxed) };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    // ---- TaggedStack ----

    const SHIFT: u32 = 6; // 64-byte aligned test nodes

    fn alloc_region() -> usize {
        let l = Layout::from_size_align(64, 64).unwrap();
        let p = unsafe { System.alloc(l) } as usize;
        assert_ne!(p, 0);
        p
    }

    unsafe fn free_region(p: usize) {
        let l = Layout::from_size_align(64, 64).unwrap();
        unsafe { System.dealloc(p as *mut u8, l) };
    }

    #[test]
    fn tagged_lifo_order() {
        let s = TaggedStack::<SHIFT>::new();
        assert!(s.is_empty());
        let (a, b, c) = (alloc_region(), alloc_region(), alloc_region());
        unsafe {
            s.push(a);
            s.push(b);
            s.push(c);
            assert!(!s.is_empty());
            assert_eq!(s.pop(), Some(c));
            assert_eq!(s.pop(), Some(b));
            assert_eq!(s.pop(), Some(a));
            assert_eq!(s.pop(), None);
            free_region(a);
            free_region(b);
            free_region(c);
        }
    }

    #[test]
    fn tagged_concurrent_conservation() {
        // N regions circulate among threads; each pop/push pair checks an
        // exclusive-ownership canary, so ABA or duplication panics.
        const REGIONS: usize = 32;
        const OPS: usize = 10_000;
        let s = Arc::new(TaggedStack::<SHIFT>::new());
        let regions: Vec<usize> = (0..REGIONS).map(|_| alloc_region()).collect();
        for &r in &regions {
            // Second word is the canary (first is the link).
            unsafe { *(r as *mut [usize; 2]) = [0, 0] };
            unsafe { s.push(r) };
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    if let Some(r) = unsafe { s.pop() } {
                        unsafe {
                            malloc_api::testkit::canary_claim_release(
                                r + 8,
                                "region popped by two threads at once (ABA!)",
                            );
                            s.push(r);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut drained = 0;
        while let Some(r) = unsafe { s.pop() } {
            drained += 1;
            unsafe { free_region(r) };
        }
        assert_eq!(drained, REGIONS, "regions lost or duplicated");
    }

    #[test]
    fn tagged_pop_survives_owner_scribbling_link_word() {
        // Regression test for a debug-only crash: a racing `pop` reads
        // the link word of a region whose new owner has already
        // overwritten it with arbitrary (misaligned, non-canonical)
        // bytes. The tag-checked CAS rejects the stale value by design,
        // but the speculative `TagPtr` built from it used to trip
        // `pack`'s alignment assert before the CAS could fail. Owners
        // here scribble worst-case garbage into the first word the
        // moment they get a region, making the read-garbage window easy
        // to hit.
        const REGIONS: usize = 8;
        const OPS: usize = 20_000;
        let s = Arc::new(TaggedStack::<SHIFT>::new());
        let regions: Vec<usize> = (0..REGIONS).map(|_| alloc_region()).collect();
        for &r in &regions {
            unsafe { s.push(r) };
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ t;
                for _ in 0..OPS {
                    if let Some(r) = unsafe { s.pop() } {
                        // Owner's prerogative: the region is ours now, and
                        // real users overwrite it immediately. Misaligned
                        // and top-bit-heavy patterns are the ones the
                        // assert choked on.
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        unsafe {
                            (*(r as *const AtomicUsize))
                                .store(x as usize | 0x3, Ordering::Relaxed);
                        }
                        unsafe { s.push(r) };
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut drained = 0;
        while unsafe { s.pop() }.is_some() {
            drained += 1;
        }
        assert_eq!(drained, REGIONS, "regions lost or duplicated");
        for r in regions {
            unsafe { free_region(r) };
        }
    }

    // ---- HpStack ----

    #[repr(align(64))]
    struct TestNode {
        next: AtomicPtr<TestNode>,
        claimed: AtomicBool,
    }

    unsafe impl Intrusive for TestNode {
        fn next_link(&self) -> &AtomicPtr<TestNode> {
            &self.next
        }
    }

    fn new_node() -> *mut TestNode {
        Box::into_raw(Box::new(TestNode {
            next: AtomicPtr::new(core::ptr::null_mut()),
            claimed: AtomicBool::new(false),
        }))
    }

    #[test]
    fn hp_lifo_order() {
        let d = HazardDomain::new();
        let s = HpStack::<TestNode>::new();
        let (a, b) = (new_node(), new_node());
        unsafe {
            s.push(a);
            s.push(b);
            assert_eq!(s.pop(&d, Slot(0)), Some(b));
            assert_eq!(s.pop(&d, Slot(0)), Some(a));
            assert_eq!(s.pop(&d, Slot(0)), None);
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    // Reclaim = push back onto the stack (the descriptor-recycling shape).
    unsafe fn reclaim_to_stack(ctx: *mut u8, ptr: *mut u8) {
        let stack = unsafe { &*(ctx as *const HpStack<TestNode>) };
        unsafe { stack.push(ptr as *mut TestNode) };
    }

    #[test]
    fn hp_concurrent_recycling_no_aba() {
        const NODES: usize = 16;
        const OPS: usize = 10_000;
        struct Shared {
            stack: HpStack<TestNode>,
            domain: HazardDomain,
        }
        let shared = Arc::new(Shared { stack: HpStack::new(), domain: HazardDomain::new() });
        let nodes: Vec<*mut TestNode> = (0..NODES).map(|_| new_node()).collect();
        for &n in &nodes {
            unsafe { shared.stack.push(n) };
        }
        let addrs: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();

        let mut handles = Vec::new();
        for _ in 0..4 {
            let sh = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    if let Some(n) = unsafe { sh.stack.pop(&sh.domain, Slot(0)) } {
                        let node = unsafe { &*n };
                        assert!(
                            !node.claimed.swap(true, Ordering::AcqRel),
                            "node popped twice concurrently (ABA!)"
                        );
                        node.claimed.store(false, Ordering::Release);
                        // Recycle through retire, per the ABA discipline.
                        unsafe {
                            sh.domain.retire(
                                n as *mut u8,
                                &sh.stack as *const _ as *mut u8,
                                reclaim_to_stack,
                            )
                        };
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Flush every thread's retired nodes back (main thread's record
        // plus domain drop cover the rest); then count.
        shared.domain.flush();
        // Drain what is present; the retired-but-unflushed remainder is
        // released when the domain drops, so just verify no duplicates.
        let mut seen = std::collections::HashSet::new();
        unsafe {
            while let Some(n) = shared.stack.pop(&shared.domain, Slot(0)) {
                assert!(seen.insert(n as usize), "duplicate node in stack");
                assert!(addrs.contains(&(n as usize)), "foreign node in stack");
            }
        }
        drop(shared);
        for n in nodes {
            unsafe { drop(Box::from_raw(n)) };
        }
    }
}
