//! Pointer + ABA tag packed into a single 64-bit CAS-able word.
//!
//! This is the "classic IBM tag mechanism" the paper uses to make its
//! `Anchor` pops ABA-safe (§3.2.3): every mutation that could re-expose
//! an old pointer value also bumps a tag, so a delayed CAS whose expected
//! pointer has been popped and re-pushed still fails.
//!
//! Because 64-bit architectures only provide 64-bit CAS (the paper
//! laments the absence of wider CAS), the tag must share the word with
//! the pointer. We exploit alignment: a pointer aligned to `2^SHIFT` has
//! `SHIFT` low zero bits, and canonical user addresses fit in 57 bits
//! (x86-64 five-level paging upper bound), so packing
//! `addr >> SHIFT` into the high bits leaves `7 + SHIFT` bits of tag.
//! For the 16 KiB-aligned superblocks of the page pool that is a 21-bit
//! tag (2M wrap-around); the paper's own 42-bit anchor tag carries the
//! same practical-impossibility argument.

/// Number of address bits assumed significant (x86-64 LA57 upper bound).
pub const ADDR_BITS: u32 = 57;

/// A `(pointer, tag)` pair packed into `u64`, parameterized by the
/// pointer's guaranteed alignment `2^SHIFT`.
///
/// # Example
///
/// ```
/// use lockfree_structs::TagPtr;
///
/// // 64-byte aligned pointers: 13 tag bits.
/// let p = TagPtr::<6>::pack(0x1_0000, 5);
/// assert_eq!(p.addr(), 0x1_0000);
/// assert_eq!(p.tag(), 5);
/// let q = p.with_addr(0x2_0000).bump_tag();
/// assert_eq!(q.addr(), 0x2_0000);
/// assert_eq!(q.tag(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TagPtr<const SHIFT: u32>(u64);

impl<const SHIFT: u32> TagPtr<SHIFT> {
    /// Bits available for the tag.
    pub const TAG_BITS: u32 = 64 - (ADDR_BITS - SHIFT);
    /// Mask extracting the tag from the packed word.
    pub const TAG_MASK: u64 = (1u64 << Self::TAG_BITS) - 1;

    /// Packs an address (aligned to `2^SHIFT`) and a tag (wraps at
    /// `2^TAG_BITS`).
    ///
    /// # Panics
    ///
    /// Debug-panics if `addr` is misaligned or exceeds [`ADDR_BITS`].
    #[inline]
    pub fn pack(addr: usize, tag: u64) -> Self {
        debug_assert_eq!(addr & ((1 << SHIFT) - 1), 0, "misaligned addr {addr:#x}");
        debug_assert!(addr < (1usize << ADDR_BITS), "non-canonical addr {addr:#x}");
        TagPtr((((addr as u64) >> SHIFT) << Self::TAG_BITS) | (tag & Self::TAG_MASK))
    }

    /// Packs a *possibly garbage* address read through a benign race,
    /// masking it to alignment and [`ADDR_BITS`] instead of asserting.
    ///
    /// `TaggedStack::pop` reads the link word of a region that a racing
    /// pop may already own and have overwritten with arbitrary bytes;
    /// the algorithm stays correct because the tag-checked CAS fails
    /// whenever that happened. The speculative value built from the
    /// garbage must therefore be *representable*, not *valid* — it is
    /// only ever handed to a CAS that is guaranteed to reject it, and
    /// never dereferenced. Release-mode [`pack`](Self::pack) already
    /// drops the same bits via shifting; this makes the debug build
    /// match instead of dying on an assert the design explicitly
    /// tolerates.
    #[inline]
    pub fn pack_masked(addr: usize, tag: u64) -> Self {
        let clean = addr & !((1usize << SHIFT) - 1) & ((1usize << ADDR_BITS) - 1);
        Self::pack(clean, tag)
    }

    /// [`with_addr`](Self::with_addr) for racy reads: masks instead of
    /// asserting (see [`pack_masked`](Self::pack_masked)).
    #[inline]
    pub fn with_addr_masked(self, addr: usize) -> Self {
        Self::pack_masked(addr, self.tag())
    }

    /// Reinterprets a raw packed word (e.g. loaded from an `AtomicU64`).
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        TagPtr(raw)
    }

    /// The raw packed word (for storing into an `AtomicU64`).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The pointer component.
    #[inline]
    pub const fn addr(self) -> usize {
        ((self.0 >> Self::TAG_BITS) << SHIFT) as usize
    }

    /// The tag component.
    #[inline]
    pub const fn tag(self) -> u64 {
        self.0 & Self::TAG_MASK
    }

    /// True if the pointer component is zero.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.addr() == 0
    }

    /// Same tag, different address.
    #[inline]
    pub fn with_addr(self, addr: usize) -> Self {
        Self::pack(addr, self.tag())
    }

    /// Same address, tag incremented (wrapping) — the ABA bump.
    #[inline]
    pub fn bump_tag(self) -> Self {
        Self::pack(self.addr(), self.tag().wrapping_add(1))
    }

    /// The null pointer with tag zero.
    #[inline]
    pub const fn null() -> Self {
        TagPtr(0)
    }
}

impl<const SHIFT: u32> core::fmt::Debug for TagPtr<SHIFT> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TagPtr(addr={:#x}, tag={})", self.addr(), self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* (see `malloc_api::testkit::TestRng`); local copy so
    /// this crate's tests need no dev-dependencies.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    #[test]
    fn null_is_null() {
        let p = TagPtr::<14>::null();
        assert!(p.is_null());
        assert_eq!(p.addr(), 0);
        assert_eq!(p.tag(), 0);
    }

    #[test]
    fn tag_bits_depend_on_alignment() {
        assert_eq!(TagPtr::<14>::TAG_BITS, 21); // 16 KiB superblocks
        assert_eq!(TagPtr::<6>::TAG_BITS, 13); // 64 B descriptors
        assert_eq!(TagPtr::<12>::TAG_BITS, 19); // 4 KiB pages
    }

    #[test]
    fn tag_wraps_without_touching_addr() {
        let max_tag = TagPtr::<14>::TAG_MASK;
        let p = TagPtr::<14>::pack(0x4000, max_tag);
        let q = p.bump_tag();
        assert_eq!(q.tag(), 0, "tag must wrap");
        assert_eq!(q.addr(), 0x4000, "addr must survive tag wrap");
    }

    #[test]
    fn distinct_tags_give_distinct_words() {
        let a = TagPtr::<14>::pack(0x4000, 1);
        let b = TagPtr::<14>::pack(0x4000, 2);
        assert_ne!(a.raw(), b.raw(), "ABA protection requires distinct raw words");
    }

    #[test]
    fn pack_unpack_roundtrip_sb() {
        let mut rng = Rng(0x7A97);
        for _ in 0..4096 {
            let addr = ((rng.next() as usize) & ((1usize << 43) - 1)) << 14;
            let tag = rng.next() & ((1 << 21) - 1);
            let p = TagPtr::<14>::pack(addr, tag);
            assert_eq!(p.addr(), addr);
            assert_eq!(p.tag(), tag);
            // raw <-> from_raw roundtrip
            assert_eq!(TagPtr::<14>::from_raw(p.raw()), p);
        }
    }

    #[test]
    fn pack_unpack_roundtrip_desc() {
        let mut rng = Rng(0x7A98);
        for _ in 0..4096 {
            let addr = ((rng.next() as usize) & ((1usize << 51) - 1)) << 6;
            let tag = rng.next() & ((1 << 13) - 1);
            let p = TagPtr::<6>::pack(addr, tag);
            assert_eq!(p.addr(), addr);
            assert_eq!(p.tag(), tag);
        }
    }

    #[test]
    fn with_addr_preserves_tag() {
        let mut rng = Rng(0x7A99);
        for _ in 0..4096 {
            let a1 = ((rng.next() as usize) & ((1usize << 40) - 1)) << 14;
            let a2 = ((rng.next() as usize) & ((1usize << 40) - 1)) << 14;
            let tag = rng.next() & ((1 << 21) - 1);
            let p = TagPtr::<14>::pack(a1, tag);
            let q = p.with_addr(a2);
            assert_eq!(q.tag(), tag);
            assert_eq!(q.addr(), a2);
        }
    }
}
