//! Cache-line padding.
//!
//! The paper's processor-heap array is laid out so heaps do not share
//! cache lines (false sharing between processors would defeat the whole
//! design; cf. Torrellas et al., cited as [22]). [`CachePadded`] is the
//! standard wrapper: it aligns and pads its contents to the cache-line
//! size.

/// Assumed cache-line size in bytes (64 on x86-64 and most AArch64;
/// PowerPC, the paper's platform, used 128 — the padding only needs to be
/// an upper bound for correctness of the *performance* property).
pub const CACHE_LINE: usize = 64;

/// Pads and aligns `T` to [`CACHE_LINE`] bytes.
///
/// # Example
///
/// ```
/// use lockfree_structs::pad::{CachePadded, CACHE_LINE};
/// use std::sync::atomic::AtomicUsize;
///
/// let counters: [CachePadded<AtomicUsize>; 2] = Default::default();
/// assert!(core::mem::size_of_val(&counters[0]) >= CACHE_LINE);
/// assert_eq!(core::mem::align_of_val(&counters[0]), CACHE_LINE);
/// counters[0].store(1, std::sync::atomic::Ordering::Relaxed);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_size_and_align() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), CACHE_LINE);
        assert!(core::mem::size_of::<CachePadded<u8>>() >= CACHE_LINE);
        // A type larger than a line is padded to a multiple of it.
        assert_eq!(core::mem::size_of::<CachePadded<[u8; 65]>>() % CACHE_LINE, 0);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn array_elements_do_not_share_lines() {
        let arr: [CachePadded<u64>; 4] = Default::default();
        for w in arr.windows(2) {
            let a = &w[0] as *const _ as usize;
            let b = &w[1] as *const _ as usize;
            assert!(b - a >= CACHE_LINE);
        }
    }
}
