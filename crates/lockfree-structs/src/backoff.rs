//! Bounded exponential backoff for CAS retry loops.
//!
//! Lock-free loops under heavy contention waste bus bandwidth retrying
//! failed CASes back-to-back. A short, bounded spin between retries
//! preserves lock-freedom (no waiting on any *particular* thread) while
//! smoothing contention; the paper's benchmarks run at exactly the
//! contention levels where this matters.

use core::hint;

/// Exponential backoff: spins `2^n` pause-hints, doubling per step,
/// capped at `2^`[`Backoff::MAX_SHIFT`].
///
/// # Example
///
/// ```
/// use lockfree_structs::Backoff;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let a = AtomicUsize::new(0);
/// let mut b = Backoff::new();
/// loop {
///     match a.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Relaxed) {
///         Ok(_) => break,
///         Err(_) => b.spin(),
///     }
/// }
/// assert_eq!(a.load(Ordering::Relaxed), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Backoff {
    shift: u32,
}

impl Backoff {
    /// Spin count never exceeds `2^MAX_SHIFT` pause-hints per step.
    pub const MAX_SHIFT: u32 = 8;

    /// Starts at the minimum backoff.
    pub const fn new() -> Self {
        Backoff { shift: 0 }
    }

    /// Spins for the current step and doubles the next one (up to the
    /// cap).
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..(1u32 << self.shift) {
            hint::spin_loop();
        }
        if self.shift < Self::MAX_SHIFT {
            self.shift += 1;
        }
    }

    /// Resets to the minimum step (call after a success).
    #[inline]
    pub fn reset(&mut self) {
        self.shift = 0;
    }

    /// Current step exponent (for tests/diagnostics).
    pub fn shift(&self) -> u32 {
        self.shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_grows_and_caps() {
        let mut b = Backoff::new();
        assert_eq!(b.shift(), 0);
        for _ in 0..20 {
            b.spin();
        }
        assert_eq!(b.shift(), Backoff::MAX_SHIFT);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        assert!(b.shift() > 0);
        b.reset();
        assert_eq!(b.shift(), 0);
    }
}
