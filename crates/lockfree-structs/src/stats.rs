//! CAS-retry telemetry for the lock-free building blocks.
//!
//! Compiled only under the `stats` feature. The counters are
//! process-wide statics rather than per-structure fields so that
//! enabling telemetry changes no structure's size or cache layout — the
//! queues and stacks here are embedded inside allocator hot structures
//! whose geometry the tests pin. A retry is one failed CAS (or failed
//! head/tail validation) inside a push/pop/enqueue/dequeue loop; the
//! first, successful attempt is not counted.

use malloc_api::telemetry::Counter;

/// Michael–Scott queue: enqueue-loop retries.
pub static QUEUE_ENQUEUE_RETRIES: Counter = Counter::new();
/// Michael–Scott queue: dequeue-loop retries.
pub static QUEUE_DEQUEUE_RETRIES: Counter = Counter::new();
/// Treiber/HP stacks: push-loop retries.
pub static STACK_PUSH_RETRIES: Counter = Counter::new();
/// Treiber/HP stacks: pop-loop retries.
pub static STACK_POP_RETRIES: Counter = Counter::new();

/// Snapshot of the process-wide CAS-retry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StructsCasStats {
    /// Failed CAS attempts in queue enqueue loops.
    pub queue_enqueue_retries: u64,
    /// Failed CAS attempts in queue dequeue loops.
    pub queue_dequeue_retries: u64,
    /// Failed CAS attempts in stack push loops.
    pub stack_push_retries: u64,
    /// Failed CAS attempts in stack pop loops.
    pub stack_pop_retries: u64,
}

/// Reads all four counters (racy but monotone: each field never
/// decreases between snapshots).
pub fn snapshot() -> StructsCasStats {
    StructsCasStats {
        queue_enqueue_retries: QUEUE_ENQUEUE_RETRIES.get(),
        queue_dequeue_retries: QUEUE_DEQUEUE_RETRIES.get(),
        stack_push_retries: STACK_PUSH_RETRIES.get(),
        stack_pop_retries: STACK_POP_RETRIES.get(),
    }
}
