//! Bounded multi-producer/multi-consumer ring (Vyukov's array queue).
//!
//! The hardened allocator's quarantine needs a fixed-capacity FIFO that
//! many freeing threads can push to and any thread can evict from, with
//! no allocation after construction (the buffer comes from the *system*
//! allocator, never the allocator under construction — the same
//! no-recursion rule as every other structure in this crate).
//!
//! Each cell carries a sequence number: producers claim a cell when
//! `seq == tail`, consumers when `seq == head + 1`; after use each side
//! bumps the cell's sequence a full lap ahead for the other. One caveat
//! inherited from the original design: the queue is *not* strictly
//! lock-free — a producer that claims a cell and stalls before
//! publishing delays the consumer of that cell (every other cell stays
//! usable). That is acceptable for the quarantine, a best-effort debug
//! aid that is off on the default hot path; the allocator's correctness
//! structures (stacks, queue, lists) remain the lock-free ones.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::alloc::{GlobalAlloc, Layout, System};

struct Cell<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A fixed-capacity MPMC FIFO. See the module docs.
///
/// # Example
///
/// ```
/// use lockfree_structs::BoundedQueue;
///
/// let q: BoundedQueue<u32> = BoundedQueue::new(4).unwrap();
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct BoundedQueue<T> {
    buf: *mut Cell<T>,
    mask: usize,
    head: crate::CachePadded<AtomicUsize>,
    tail: crate::CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for BoundedQueue<T> {}
unsafe impl<T: Send> Sync for BoundedQueue<T> {}

impl<T> BoundedQueue<T> {
    /// A queue holding up to `capacity` items (rounded up to a power of
    /// two, minimum 2). Returns `None` if the system allocator refuses
    /// the buffer.
    pub fn new(capacity: usize) -> Option<Self> {
        let cap = capacity.max(2).next_power_of_two();
        let layout = Layout::array::<Cell<T>>(cap).ok()?;
        let buf = unsafe { System.alloc(layout) } as *mut Cell<T>;
        if buf.is_null() {
            return None;
        }
        for i in 0..cap {
            unsafe {
                (*buf.add(i)).seq = AtomicUsize::new(i);
                // val stays uninitialized until a producer claims the cell.
            }
        }
        Some(BoundedQueue {
            buf,
            mask: cap - 1,
            head: crate::CachePadded::new(AtomicUsize::new(0)),
            tail: crate::CachePadded::new(AtomicUsize::new(0)),
        })
    }

    /// Capacity after power-of-two rounding.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently queued (a racy snapshot, exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the queue is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `v`, or hands it back if the queue is full.
    pub fn push(&self, v: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = unsafe { &*self.buf.add(pos & self.mask) };
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos {
                if self
                    .tail
                    .compare_exchange_weak(pos, pos + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    unsafe { (*cell.val.get()).write(v) };
                    cell.seq.store(pos + 1, Ordering::Release);
                    return Ok(());
                }
                pos = self.tail.load(Ordering::Relaxed);
            } else if seq < pos {
                // The cell still holds an item a full lap behind: full.
                return Err(v);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let cell = unsafe { &*self.buf.add(pos & self.mask) };
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                if self
                    .head
                    .compare_exchange_weak(pos, pos + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let v = unsafe { (*cell.val.get()).assume_init_read() };
                    cell.seq.store(pos + self.mask + 1, Ordering::Release);
                    return Some(v);
                }
                pos = self.head.load(Ordering::Relaxed);
            } else if seq <= pos {
                // Not yet published for this lap: empty.
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
        let layout = Layout::array::<Cell<T>>(self.mask + 1).expect("validated in new");
        unsafe { System.dealloc(self.buf as *mut u8, layout) };
    }
}

impl<T> core::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let q: BoundedQueue<usize> = BoundedQueue::new(8).unwrap();
        assert_eq!(q.capacity(), 8);
        for i in 0..8 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99), "full queue hands the item back");
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i), "FIFO order");
        }
        assert_eq!(q.pop(), None);
        // Wraps around: reusable after a full drain.
        assert!(q.push(42).is_ok());
        assert_eq!(q.pop(), Some(42));
    }

    #[test]
    fn capacity_rounds_up() {
        let q: BoundedQueue<u8> = BoundedQueue::new(5).unwrap();
        assert_eq!(q.capacity(), 8);
        let q: BoundedQueue<u8> = BoundedQueue::new(0).unwrap();
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn drop_releases_undrained_items() {
        // Drop with items still queued must drop them (Arc counts prove it).
        let probe = Arc::new(());
        {
            let q: BoundedQueue<Arc<()>> = BoundedQueue::new(4).unwrap();
            for _ in 0..3 {
                assert!(q.push(Arc::clone(&probe)).is_ok());
            }
            assert_eq!(Arc::strong_count(&probe), 4);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn concurrent_conservation() {
        // 2 producers push distinct values, 2 consumers drain; every value
        // comes out exactly once.
        const PER_THREAD: usize = 20_000;
        let q = Arc::new(BoundedQueue::<usize>::new(64).unwrap());
        let seen = Arc::new((0..2 * PER_THREAD).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let consumed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..2 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let mut v = t * PER_THREAD + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            let consumed = Arc::clone(&consumed);
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::Acquire) < 2 * PER_THREAD {
                    if let Some(v) = q.pop() {
                        assert_eq!(seen[v].fetch_add(1, Ordering::AcqRel), 0, "duplicate {v}");
                        consumed.fetch_add(1, Ordering::AcqRel);
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (v, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Acquire), 1, "value {v} lost");
        }
    }
}
