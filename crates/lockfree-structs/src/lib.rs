//! Lock-free building blocks used by the PLDI 2004 allocator
//! reproduction.
//!
//! The paper composes its allocator from a handful of classic lock-free
//! structures, all of which are implemented here from scratch:
//!
//! * [`tagptr`] — the "classic IBM tag mechanism" (System/370 Principles
//!   of Operation) packing a pointer and an ABA-prevention tag into one
//!   CAS-able word. The allocator uses it for the `Anchor` field and for
//!   page-pool free lists.
//! * [`stack`] — Treiber/IBM-freelist LIFO stacks: a tag-protected
//!   variant ([`stack::TaggedStack`]) and a hazard-pointer-protected
//!   variant ([`stack::HpStack`], the paper's `DescAvail` list with
//!   `SafeCAS`).
//! * [`queue`] — the Michael–Scott FIFO queue (PODC 1996) with
//!   hazard-pointer memory management, "with optimized memory
//!   management" (§3.2.6): nodes come from an internal never-unmapped
//!   slab pool, so the queue itself needs no general-purpose malloc —
//!   which would be circular inside an allocator.
//! * [`list`] — Michael's lock-free ordered list / list-based set
//!   (SPAA 2002, the paper's ref [16]) with hazard-pointer reclamation
//!   and mid-list removal — the basis of the paper's LIFO partial-list
//!   variant and of lock-free hash tables.
//! * [`mpmc`] — Vyukov's bounded MPMC array queue, the fixed-capacity
//!   ring behind the hardened allocator's free-block quarantine (not
//!   strictly lock-free; see the module docs for the caveat).
//! * [`backoff`] — bounded exponential backoff for CAS retry loops.
//! * [`pad`] — cache-line padding to keep unrelated hot words from
//!   false sharing.
//!
//! None of this code allocates through the Rust global allocator; slab
//! refills call `std::alloc::System` directly (the moral equivalent of
//! the paper's `mmap` slow path).

/// Failpoint shim: the `malloc-api` dependency exists only under the
/// `failpoints` feature, so the real registry is reached through this
/// function; with the feature off it returns a constant struct whose
/// `false` fields let the optimizer fold every site away.
#[cfg(feature = "failpoints")]
#[inline]
pub(crate) fn fp(name: &'static str) -> malloc_api::failpoints::FpSignal {
    malloc_api::failpoints::hit(name)
}

#[cfg(not(feature = "failpoints"))]
#[derive(Clone, Copy)]
pub(crate) struct FpNone {
    pub retry: bool,
    #[allow(dead_code)]
    pub kill: bool,
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn fp(_name: &'static str) -> FpNone {
    FpNone { retry: false, kill: false }
}

/// CAS-retry telemetry shim (the `stats` analogue of [`fp`]): with the
/// feature on, expands to an increment of the named process-wide counter
/// in [`stats`]; with it off, expands to nothing — the loops carry zero
/// telemetry code in default builds.
#[cfg(feature = "stats")]
macro_rules! cas_retry {
    ($which:ident) => {
        crate::stats::$which.inc()
    };
}

#[cfg(not(feature = "stats"))]
macro_rules! cas_retry {
    ($which:ident) => {};
}

pub(crate) use cas_retry;

pub mod backoff;
pub mod list;
pub mod mpmc;
pub mod pad;
pub mod queue;
pub mod stack;
#[cfg(feature = "stats")]
pub mod stats;
pub mod tagptr;

pub use backoff::Backoff;
pub use list::OrderedSet;
pub use mpmc::BoundedQueue;
pub use pad::CachePadded;
pub use queue::Queue;
pub use stack::{HpStack, Intrusive, TaggedStack};
pub use tagptr::TagPtr;
