//! Michael–Scott lock-free FIFO queue with hazard-pointer memory
//! management.
//!
//! The paper manages each size class's list of partial superblocks with
//! "a version of the lock-free FIFO queue algorithm in [20] with
//! optimized memory management" (§3.2.6): FIFO order reduces contention
//! and false sharing versus a LIFO list, and queue nodes are allocated
//! "in a manner similar but simpler than allocating descriptors" — i.e.
//! from internal slabs, not from a general-purpose malloc (which would
//! be circular inside an allocator).
//!
//! This module provides:
//!
//! * [`RawQueue`] — the embeddable engine: caller supplies the
//!   [`HazardDomain`] and guarantees address stability. Used by
//!   `lfmalloc` for its per-size-class partial lists.
//! * [`Queue`] — a safe, self-contained wrapper (own domain, boxed for
//!   address stability) used by tests and by the producer–consumer
//!   benchmark of §4.1.
//!
//! Nodes are 16 bytes (`next` + `value`), matching the "fixed size queue
//! node (16 bytes)" the paper's producer–consumer benchmark allocates.

use crate::stack::{HpStack, Intrusive};
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use hazard::{HazardDomain, Slot};
use std::alloc::{GlobalAlloc, Layout, System};

/// Hazard slot used for the queue head / enqueue tail.
pub const SLOT_HEAD: Slot = Slot(0);
/// Hazard slot used for the dequeued node's successor.
pub const SLOT_NEXT: Slot = Slot(1);
/// Hazard slot used by the node free-list pop.
pub const SLOT_FREE: Slot = Slot(2);

/// Queue node: intrusive link + payload word.
#[repr(C)]
#[derive(Debug)]
pub struct Node {
    next: AtomicPtr<Node>,
    value: AtomicUsize,
}

unsafe impl Intrusive for Node {
    fn next_link(&self) -> &AtomicPtr<Node> {
        &self.next
    }
}

const NODES_PER_SLAB: usize = 64;

/// Header prepended to each slab of nodes; slabs form an append-only
/// list freed when the pool drops.
#[repr(C)]
struct SlabHeader {
    next: *mut SlabHeader,
}

fn slab_layout() -> Layout {
    Layout::new::<SlabHeader>()
        .extend(Layout::array::<Node>(NODES_PER_SLAB).unwrap())
        .unwrap()
        .0
        .pad_to_align()
}

/// A never-shrinking pool of queue nodes backed by system-allocator
/// slabs. Free nodes sit on a hazard-protected stack; recycling flows
/// through [`HazardDomain::retire`] so node reuse is ABA-safe.
#[derive(Debug)]
pub struct NodePool {
    free: HpStack<Node>,
    slabs: AtomicPtr<SlabHeader>,
}

unsafe impl Send for NodePool {}
unsafe impl Sync for NodePool {}

impl NodePool {
    /// Creates an empty pool (no slab is allocated until first use).
    pub const fn new() -> Self {
        NodePool { free: HpStack::new(), slabs: AtomicPtr::new(core::ptr::null_mut()) }
    }

    /// Pops a free node, refilling from a fresh slab when empty.
    ///
    /// # Safety
    ///
    /// `domain` must be the one domain used for all operations on this
    /// pool.
    pub unsafe fn alloc_node(&self, domain: &HazardDomain) -> *mut Node {
        if let Some(n) = unsafe { self.free.pop(domain, SLOT_FREE) } {
            return n;
        }
        // Refill: one slab, first node returned, rest pushed free.
        let layout = slab_layout();
        let raw = unsafe { System.alloc(layout) };
        assert!(!raw.is_null(), "queue node slab allocation failed");
        let header = raw as *mut SlabHeader;
        // Register the slab (lock-free prepend; only Drop pops).
        let mut head = self.slabs.load(Ordering::Acquire);
        loop {
            unsafe { (*header).next = head };
            match self.slabs.compare_exchange_weak(
                head,
                header,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => head = observed,
            }
        }
        let nodes = unsafe { raw.add(core::mem::size_of::<SlabHeader>()) } as *mut Node;
        for i in 0..NODES_PER_SLAB {
            let n = unsafe { nodes.add(i) };
            unsafe {
                n.write(Node {
                    next: AtomicPtr::new(core::ptr::null_mut()),
                    value: AtomicUsize::new(0),
                });
            }
            if i != 0 {
                // Fresh nodes may be pushed directly (never popped yet).
                unsafe { self.free.push(n) };
            }
        }
        nodes
    }

    /// Hands a detached node to the domain; it returns to the free stack
    /// once unprotected.
    ///
    /// # Safety
    ///
    /// `node` must be detached from the queue, and `self` must be
    /// address-stable until the domain is dropped.
    pub unsafe fn retire_node(&self, domain: &HazardDomain, node: *mut Node) {
        unsafe fn reclaim(ctx: *mut u8, ptr: *mut u8) {
            let pool = unsafe { &*(ctx as *const NodePool) };
            unsafe { pool.free.push(ptr as *mut Node) };
        }
        unsafe { domain.retire(node as *mut u8, self as *const _ as *mut u8, reclaim) };
    }

    /// Number of slabs allocated so far (diagnostics: bounded reuse).
    pub fn slab_count(&self) -> usize {
        let mut n = 0;
        let mut p = self.slabs.load(Ordering::Acquire);
        while !p.is_null() {
            n += 1;
            p = unsafe { (*p).next };
        }
        n
    }
}

impl Default for NodePool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        let mut p = *self.slabs.get_mut();
        let layout = slab_layout();
        while !p.is_null() {
            let next = unsafe { (*p).next };
            unsafe { System.dealloc(p as *mut u8, layout) };
            p = next;
        }
    }
}

/// The embeddable Michael–Scott queue engine.
///
/// The caller owns the [`HazardDomain`] (letting many queues share one
/// domain, as lfmalloc's size classes do) and must keep both the queue
/// and the domain at stable addresses between `init` and drop.
#[derive(Debug)]
pub struct RawQueue {
    head: AtomicPtr<Node>,
    tail: AtomicPtr<Node>,
    pool: NodePool,
}

unsafe impl Send for RawQueue {}
unsafe impl Sync for RawQueue {}

impl RawQueue {
    /// Creates an uninitialized queue; call [`init`](Self::init) before
    /// any enqueue/dequeue.
    pub const fn new() -> Self {
        RawQueue {
            head: AtomicPtr::new(core::ptr::null_mut()),
            tail: AtomicPtr::new(core::ptr::null_mut()),
            pool: NodePool::new(),
        }
    }

    /// Allocates the dummy node. Must be called exactly once, before any
    /// concurrent use.
    ///
    /// # Safety
    ///
    /// Single-threaded call; `self` must not move afterwards.
    pub unsafe fn init(&self, domain: &HazardDomain) {
        let dummy = unsafe { self.pool.alloc_node(domain) };
        unsafe { (*dummy).next.store(core::ptr::null_mut(), Ordering::Relaxed) };
        self.head.store(dummy, Ordering::Release);
        self.tail.store(dummy, Ordering::Release);
    }

    /// Appends `value` at the tail.
    ///
    /// # Safety
    ///
    /// `init` must have completed with this same `domain`.
    pub unsafe fn enqueue(&self, domain: &HazardDomain, value: usize) {
        let node = unsafe { self.pool.alloc_node(domain) };
        unsafe {
            (*node).next.store(core::ptr::null_mut(), Ordering::Relaxed);
            (*node).value.store(value, Ordering::Relaxed);
        }
        loop {
            if crate::fp("queue.enqueue").retry {
                continue; // forced retry arm (kill has no legal meaning here)
            }
            let t = domain.protect(SLOT_HEAD, &self.tail);
            let next = unsafe { (*t).next.load(Ordering::Acquire) };
            if self.tail.load(Ordering::Acquire) != t {
                crate::cas_retry!(QUEUE_ENQUEUE_RETRIES);
                continue;
            }
            if !next.is_null() {
                // Tail is lagging: help swing it forward.
                let _ = self.tail.compare_exchange(t, next, Ordering::Release, Ordering::Relaxed);
                crate::cas_retry!(QUEUE_ENQUEUE_RETRIES);
                continue;
            }
            if unsafe { &(*t).next }
                .compare_exchange(
                    core::ptr::null_mut(),
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                let _ = self.tail.compare_exchange(t, node, Ordering::Release, Ordering::Relaxed);
                domain.clear(SLOT_HEAD);
                return;
            }
            crate::cas_retry!(QUEUE_ENQUEUE_RETRIES);
        }
    }

    /// Removes and returns the value at the head, or `None` if empty.
    ///
    /// # Safety
    ///
    /// `init` must have completed with this same `domain`.
    pub unsafe fn dequeue(&self, domain: &HazardDomain) -> Option<usize> {
        loop {
            if crate::fp("queue.dequeue").retry {
                continue;
            }
            let h = domain.protect(SLOT_HEAD, &self.head);
            let t = self.tail.load(Ordering::Acquire);
            let next = unsafe { (*h).next.load(Ordering::Acquire) };
            domain.set(SLOT_NEXT, next);
            if self.head.load(Ordering::Acquire) != h {
                crate::cas_retry!(QUEUE_DEQUEUE_RETRIES);
                continue; // validation of both h and next failed
            }
            if next.is_null() {
                domain.clear(SLOT_HEAD);
                domain.clear(SLOT_NEXT);
                return None;
            }
            if h == t {
                // Tail lagging behind a non-empty queue: help.
                let _ = self.tail.compare_exchange(t, next, Ordering::Release, Ordering::Relaxed);
                crate::cas_retry!(QUEUE_DEQUEUE_RETRIES);
                continue;
            }
            // `next` is protected; read the value before unlinking `h`.
            let value = unsafe { (*next).value.load(Ordering::Acquire) };
            if self
                .head
                .compare_exchange(h, next, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                domain.clear(SLOT_HEAD);
                domain.clear(SLOT_NEXT);
                unsafe { self.pool.retire_node(domain, h) };
                return Some(value);
            }
            crate::cas_retry!(QUEUE_DEQUEUE_RETRIES);
        }
    }

    /// Best-effort emptiness check (exact only while quiescent).
    pub fn is_empty_hint(&self) -> bool {
        let h = self.head.load(Ordering::Acquire);
        if h.is_null() {
            return true; // not yet initialized
        }
        unsafe { (*h).next.load(Ordering::Acquire).is_null() }
    }

    /// Slab count of the internal node pool (diagnostics).
    pub fn slab_count(&self) -> usize {
        self.pool.slab_count()
    }

    /// Quiescent snapshot: the values currently queued, head first.
    /// Bounded by a cycle guard so a corrupt chain terminates.
    ///
    /// # Safety
    ///
    /// No concurrent enqueue/dequeue; intended for offline auditing.
    pub unsafe fn snapshot(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let h = self.head.load(Ordering::Acquire);
        if h.is_null() {
            return out;
        }
        // The head node is the dummy; real values start at head.next.
        let mut p = unsafe { (*h).next.load(Ordering::Acquire) };
        while !p.is_null() && out.len() < (1 << 24) {
            out.push(unsafe { (*p).value.load(Ordering::Relaxed) });
            p = unsafe { (*p).next.load(Ordering::Acquire) };
        }
        out
    }
}

impl Default for RawQueue {
    fn default() -> Self {
        Self::new()
    }
}

struct QueueInner {
    // Field order is drop order: the domain must drop first so its
    // retired nodes are pushed back into the pool before the pool frees
    // its slabs.
    domain: HazardDomain,
    raw: RawQueue,
}

/// A safe, self-contained MPMC lock-free FIFO queue of `usize` values.
///
/// # Example
///
/// ```
/// use lockfree_structs::Queue;
///
/// let q = Queue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct Queue {
    inner: Box<QueueInner>,
}

impl core::fmt::Debug for QueueInner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QueueInner").finish_non_exhaustive()
    }
}

impl Default for Queue {
    fn default() -> Self {
        Self::new()
    }
}

impl Queue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let inner = Box::new(QueueInner { domain: HazardDomain::new(), raw: RawQueue::new() });
        // The Box pins the addresses RawQueue and the reclaim context
        // depend on.
        unsafe { inner.raw.init(&inner.domain) };
        Queue { inner }
    }

    /// Appends `value` at the tail.
    pub fn push(&self, value: usize) {
        unsafe { self.inner.raw.enqueue(&self.inner.domain, value) }
    }

    /// Removes and returns the head value, or `None` if empty.
    pub fn pop(&self) -> Option<usize> {
        unsafe { self.inner.raw.dequeue(&self.inner.domain) }
    }

    /// Best-effort emptiness check.
    pub fn is_empty_hint(&self) -> bool {
        self.inner.raw.is_empty_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = Queue::new();
        assert!(q.is_empty_hint());
        for i in 0..100 {
            q.push(i);
        }
        assert!(!q.is_empty_hint());
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty_hint());
    }

    #[test]
    fn interleaved_push_pop() {
        let q = Queue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        q.push(3);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        q.push(4);
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn node_reuse_keeps_slab_count_bounded() {
        let q = Queue::new();
        for round in 0..50 {
            for i in 0..200 {
                q.push(round * 200 + i);
            }
            for _ in 0..200 {
                assert!(q.pop().is_some());
            }
        }
        // 10k ops through the queue: without recycling this would need
        // ~160 slabs; with hazard-mediated recycling it stays small.
        assert!(
            q.inner.raw.slab_count() <= 8,
            "slab count {} suggests nodes are not recycled",
            q.inner.raw.slab_count()
        );
    }

    #[test]
    fn mpmc_stress_conserves_values_and_per_producer_order() {
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 5_000;
        let q = Arc::new(Queue::new());
        let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));

        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    // Encode (producer, seq) in one word.
                    q.push((p << 32) | i);
                }
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            consumers.push(std::thread::spawn(move || {
                let mut got: Vec<usize> = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => got.push(v),
                        None => {
                            if done.load(Ordering::SeqCst) == PRODUCERS && q.pop().is_none() {
                                // Double-check after producers finished.
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        // Residual items (raced with the final None check).
        while let Some(v) = q.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER, "values lost or duplicated");
        // Per-producer FIFO order must hold in each consumer's local
        // sequence; globally we check the multiset and that each
        // producer's items are all present exactly once.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for v in all {
            *counts.entry(v).or_default() += 1;
        }
        for p in 0..PRODUCERS {
            for i in 0..PER_PRODUCER {
                assert_eq!(counts.get(&((p << 32) | i)), Some(&1));
            }
        }
    }

    use core::sync::atomic::Ordering;

    #[test]
    fn raw_queue_shared_domain() {
        // Two queues sharing one domain (the lfmalloc configuration).
        let domain = Box::new(HazardDomain::new());
        let q1 = Box::new(RawQueue::new());
        let q2 = Box::new(RawQueue::new());
        unsafe {
            q1.init(&domain);
            q2.init(&domain);
            q1.enqueue(&domain, 10);
            q2.enqueue(&domain, 20);
            assert_eq!(q1.dequeue(&domain), Some(10));
            assert_eq!(q2.dequeue(&domain), Some(20));
            assert_eq!(q1.dequeue(&domain), None);
        }
        // Domain must drop before the queues' pools.
        drop(domain);
        drop(q1);
        drop(q2);
    }
}
