//! Per-thread hazard records and their thread-local cache.
//!
//! A [`Record`] holds one thread's hazard slots and retired list for one
//! [`HazardDomain`](crate::HazardDomain). Records are allocated from the
//! system allocator, linked into the domain's append-only list, and
//! handed out to threads via a try-lock (`active`) flag so a record freed
//! up by a finished thread is adopted — retired list included — by the
//! next thread that needs one (Michael's scheme for thread-count
//! independence).
//!
//! Records are **never deallocated**: when a domain is dropped its
//! records are drained and leaked. This keeps thread-local caches (which
//! may outlive the domain) pointing at valid memory, at the cost of a few
//! hundred bytes per (domain × thread) — the same trade the PLDI 2004
//! paper makes for superblock descriptors, which "are not reused as
//! regular blocks and cannot be returned to the OS".

use crate::sysvec::SysVec;
use crate::{HazardDomain, Retired, SLOTS_PER_RECORD};
use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;

/// One thread's hazard slots + retired list within one domain.
#[repr(C)]
#[derive(Debug)]
pub(crate) struct Record {
    /// Published hazard pointers; single writer (owning thread), many
    /// readers (scanning threads).
    pub hazards: [AtomicPtr<u8>; SLOTS_PER_RECORD],
    /// Next record in the domain's append-only list (immutable once
    /// linked).
    pub next: *mut Record,
    /// Try-lock: true while some thread owns this record.
    active: AtomicBool,
    /// Process generation (`malloc_api::procfork::generation()`) of the
    /// record's owner. A record whose stamp lags the current generation
    /// belongs to a pre-fork parent thread that does not exist in this
    /// (child) process; `HazardDomain::adopt_orphans` claims such
    /// records — stamp CAS as the claim token — and drains their retired
    /// lists. The ordinary adoption path skips stale-stamped records so
    /// claiming and adopting can never race to two owners.
    gen: AtomicU64,
    /// Nodes retired by the owning thread, awaiting scan. Only the owner
    /// touches this, which is what makes the `UnsafeCell` sound.
    retired: UnsafeCell<SysVec<Retired>>,
}

unsafe impl Send for Record {}
unsafe impl Sync for Record {}

impl Record {
    /// Takes the retired list out (owner thread only).
    pub fn take_retired(&self) -> SysVec<Retired> {
        unsafe { core::mem::take(&mut *self.retired.get()) }
    }

    /// Puts a retired list back (owner thread only).
    pub fn put_retired(&self, v: SysVec<Retired>) {
        unsafe { *self.retired.get() = v };
    }

    /// Appends one retired node and reports the new length (owner only).
    /// `None` means the retired list could not grow and `r` was *not*
    /// stored — the caller must dispose of it another way.
    pub fn push_retired(&self, r: Retired) -> Option<usize> {
        unsafe {
            let v = &mut *self.retired.get();
            if !v.try_push(r) {
                return None;
            }
            Some(v.len())
        }
    }

    /// Racy length snapshot for diagnostics.
    pub fn retired_len(&self) -> usize {
        unsafe { (*self.retired.get()).len() }
    }

    /// Tries to take ownership of this record via the `active` try-lock.
    /// On success the caller is the record's sole owner (hazard slots and
    /// retired list) until it calls [`deactivate`](Self::deactivate).
    pub fn try_adopt(&self) -> bool {
        !self.active.load(Ordering::Relaxed)
            && self
                .active
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Releases ownership so another thread can adopt this record.
    pub unsafe fn deactivate(&self) {
        for h in &self.hazards {
            h.store(core::ptr::null_mut(), Ordering::Release);
        }
        self.active.store(false, Ordering::Release);
    }

    /// The owner's process-generation stamp.
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Re-stamps the record with generation `g` (owner thread, or the
    /// single-threaded forked child, only).
    pub fn set_generation(&self, g: u64) {
        self.gen.store(g, Ordering::Release);
    }

    /// Claims an orphaned record by advancing its generation stamp
    /// `old → new`. The CAS is the claim token: exactly one claimant per
    /// fork generation wins, even racing other recovery threads.
    pub fn claim_generation(&self, old: u64, new: u64) -> bool {
        self.gen
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Nulls every hazard slot of a record whose owner died in a fork.
    /// Only sound after winning [`claim_generation`](Self::claim_generation)
    /// on a record that stayed `active` across the fork — the dead owner
    /// can never publish again.
    pub unsafe fn clear_dead_hazards(&self) {
        for h in &self.hazards {
            h.store(core::ptr::null_mut(), Ordering::Release);
        }
    }
}

/// Acquires a record in `domain` for the calling thread: first tries to
/// adopt an inactive record, then allocates and links a fresh one.
pub(crate) fn acquire_record(domain: &HazardDomain) -> *mut Record {
    let cur = malloc_api::procfork::generation();
    // Pass 1: adopt an inactive record. Records stamped with an older
    // process generation are skipped — they are claimed exclusively by
    // `HazardDomain::adopt_orphans` (stamp CAS), which re-publishes them
    // for normal adoption once drained. Checking the stamp *before* the
    // try-lock means a live thread never owns a stale-stamped record, so
    // the orphan claimer can treat "active + stale" as "owner is dead".
    let mut p = domain.record_head().load(Ordering::Acquire);
    while !p.is_null() {
        let rec = unsafe { &*p };
        if rec.generation() == cur && rec.try_adopt() {
            return p;
        }
        p = rec.next;
    }
    // Pass 2: allocate and push a fresh record.
    let layout = Layout::new::<Record>();
    let raw = unsafe { System.alloc(layout) } as *mut Record;
    assert!(!raw.is_null(), "hazard: record allocation failed");
    unsafe {
        raw.write(Record {
            hazards: Default::default(),
            next: core::ptr::null_mut(),
            active: AtomicBool::new(true),
            gen: AtomicU64::new(cur),
            retired: UnsafeCell::new(SysVec::new()),
        });
    }
    let head = domain.record_head();
    let mut cur = head.load(Ordering::Acquire);
    loop {
        unsafe { (*raw).next = cur };
        match head.compare_exchange_weak(cur, raw, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return raw,
            Err(observed) => cur = observed,
        }
    }
}

/// Frees a record's memory. Only safe from `HazardDomain::drop` — and we
/// deliberately do *not* call it there (records leak; see module docs).
/// Kept for completeness and unit tests of record layout.
#[allow(dead_code)]
pub(crate) unsafe fn free_record(p: *mut Record) {
    unsafe {
        core::ptr::drop_in_place(p);
        System.dealloc(p as *mut u8, Layout::new::<Record>());
    }
}

/// One thread's cached (domain id → record) associations.
struct TlsCache {
    entries: SysVec<(u64, usize)>,
}

impl Drop for TlsCache {
    fn drop(&mut self) {
        // Records are never freed, so these pointers are always valid;
        // release them for adoption by other threads.
        while let Some((_id, rec)) = self.entries.pop() {
            unsafe { (*(rec as *mut Record)).deactivate() };
        }
    }
}

thread_local! {
    static CACHE: RefCell<TlsCache> = const { RefCell::new(TlsCache { entries: SysVec::new() }) };
}

/// Re-stamps the calling thread's cached record for `domain` with the
/// current process generation. The forking thread calls this (via
/// `HazardDomain::restamp_current_thread`) in the child, while still
/// single-threaded, *before* any `adopt_orphans` pass runs — its record
/// survived the fork with the thread, and the fresh stamp keeps the
/// orphan claimer's hands off it.
pub(crate) fn restamp_cached(domain: &HazardDomain) {
    let cur = malloc_api::procfork::generation();
    let _ = CACHE.try_with(|cell| {
        let cache = cell.borrow();
        let id = domain.domain_id();
        for i in 0..cache.entries.len() {
            let (eid, rec) = cache.entries.get(i).unwrap();
            if eid == id {
                unsafe { (*(rec as *mut Record)).set_generation(cur) };
            }
        }
    });
}

/// Returns the calling thread's record for `domain`, acquiring and
/// caching one on first use. `None` when thread-local storage is
/// unavailable (thread teardown) — callers fall back to a transient
/// acquire/release.
pub(crate) fn cached_record(domain: &HazardDomain) -> Option<*mut Record> {
    CACHE
        .try_with(|cell| {
            let mut cache = cell.borrow_mut();
            let id = domain.domain_id();
            for i in 0..cache.entries.len() {
                let (eid, rec) = cache.entries.get(i).unwrap();
                if eid == id {
                    return rec as *mut Record;
                }
            }
            let rec = acquire_record(domain);
            cache.entries.push((id, rec as usize));
            rec
        })
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_creates_then_adopts() {
        let d = HazardDomain::new();
        let r1 = acquire_record(&d);
        assert_eq!(d.record_count(), 1);
        unsafe { (*r1).deactivate() };
        let r2 = acquire_record(&d);
        assert_eq!(r2, r1, "inactive record should be adopted, not reallocated");
        assert_eq!(d.record_count(), 1);
        unsafe { (*r2).deactivate() };
    }

    #[test]
    fn active_record_is_not_adopted() {
        let d = HazardDomain::new();
        let r1 = acquire_record(&d);
        let r2 = acquire_record(&d);
        assert_ne!(r1, r2);
        assert_eq!(d.record_count(), 2);
        unsafe {
            (*r1).deactivate();
            (*r2).deactivate();
        }
    }

    #[test]
    fn retired_list_survives_adoption() {
        unsafe fn nop(_c: *mut u8, _p: *mut u8) {}
        let d = HazardDomain::new();
        let r1 = acquire_record(&d);
        unsafe {
            (*r1).push_retired(Retired {
                ptr: 0x1000 as *mut u8,
                ctx: core::ptr::null_mut(),
                reclaim: nop,
            });
            (*r1).deactivate();
        }
        let r2 = acquire_record(&d);
        assert_eq!(r2, r1);
        assert_eq!(unsafe { (*r2).retired_len() }, 1);
        // Drain so domain drop doesn't "reclaim" the fake pointer.
        let _ = unsafe { (*r2).take_retired() };
        unsafe { (*r2).deactivate() };
    }

    #[test]
    fn hazards_start_null() {
        let d = HazardDomain::new();
        let r = acquire_record(&d);
        for h in unsafe { &(*r).hazards } {
            assert!(h.load(Ordering::SeqCst).is_null());
        }
        unsafe { (*r).deactivate() };
    }
}
