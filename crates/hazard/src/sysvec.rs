//! A growable array backed directly by `std::alloc::System`.
//!
//! The hazard-pointer machinery runs inside a memory allocator that may
//! itself be the Rust global allocator, so it must never allocate through
//! `Box`/`Vec` (that would recurse into the allocator being built).
//! [`SysVec`] is the minimal `Vec` replacement used for hazard snapshots
//! and retired lists; it restricts `T: Copy` so dropping never needs to
//! run element destructors.

use std::alloc::{GlobalAlloc, Layout, System};

/// A `Vec<T>`-like growable buffer allocated from the *system* allocator,
/// immune to global-allocator reentrancy.
#[derive(Debug)]
pub struct SysVec<T: Copy> {
    ptr: *mut T,
    len: usize,
    cap: usize,
}

unsafe impl<T: Copy + Send> Send for SysVec<T> {}

impl<T: Copy> Default for SysVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> SysVec<T> {
    /// Creates an empty vector without allocating.
    pub const fn new() -> Self {
        SysVec { ptr: core::ptr::null_mut(), len: 0, cap: 0 }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value`, growing geometrically when full.
    ///
    /// # Panics
    ///
    /// Panics if the system allocator cannot supply the grown buffer.
    /// Callers that must stay alive under memory pressure (the hazard
    /// retirement path) use [`try_push`](Self::try_push) instead.
    pub fn push(&mut self, value: T) {
        assert!(self.try_push(value), "SysVec: system allocation failed");
    }

    /// Appends `value` if capacity exists or can be grown; returns
    /// `false` (leaving the vector unchanged) when the system allocator
    /// refuses to grow the buffer.
    #[must_use]
    pub fn try_push(&mut self, value: T) -> bool {
        if self.len == self.cap && !self.try_grow() {
            return false;
        }
        unsafe { self.ptr.add(self.len).write(value) };
        self.len += 1;
        true
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            Some(unsafe { self.ptr.add(self.len).read() })
        }
    }

    /// Returns element `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<T> {
        if i < self.len {
            Some(unsafe { self.ptr.add(i).read() })
        } else {
            None
        }
    }

    /// Removes all elements (capacity is retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// View of the elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            &[]
        } else {
            unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == 0 {
            &mut []
        } else {
            unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
        }
    }

    /// Doubles capacity; `false` means the buffer is unchanged and still
    /// valid (a failed `System.realloc` leaves the old allocation live).
    fn try_grow(&mut self) -> bool {
        let new_cap = if self.cap == 0 { 16 } else { self.cap * 2 };
        let Ok(new_layout) = Layout::array::<T>(new_cap) else {
            return false; // capacity overflow: treat as exhaustion
        };
        let new_ptr = unsafe {
            if self.cap == 0 {
                System.alloc(new_layout)
            } else {
                let old_layout = Layout::array::<T>(self.cap).unwrap();
                System.realloc(self.ptr as *mut u8, old_layout, new_layout.size())
            }
        } as *mut T;
        if new_ptr.is_null() {
            return false;
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
        true
    }
}

impl<T: Copy + Ord> SysVec<T> {
    /// Sorts the elements (unstable, in place).
    pub fn sort_unstable(&mut self) {
        self.as_mut_slice().sort_unstable();
    }

    /// Binary search over a sorted vector; returns whether `value` occurs.
    pub fn binary_search(&self, value: &T) -> bool {
        self.as_slice().binary_search(value).is_ok()
    }
}

impl<T: Copy> Drop for SysVec<T> {
    fn drop(&mut self) {
        if self.cap != 0 {
            let layout = Layout::array::<T>(self.cap).unwrap();
            unsafe { System.dealloc(self.ptr as *mut u8, layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let mut v: SysVec<usize> = SysVec::new();
        assert!(v.is_empty());
        for i in 0..100 {
            v.push(i);
        }
        assert_eq!(v.len(), 100);
        for i in (0..100).rev() {
            assert_eq!(v.pop(), Some(i));
        }
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn get_and_clear() {
        let mut v: SysVec<u32> = SysVec::new();
        v.push(5);
        v.push(6);
        assert_eq!(v.get(0), Some(5));
        assert_eq!(v.get(1), Some(6));
        assert_eq!(v.get(2), None);
        v.clear();
        assert!(v.is_empty());
        // Capacity reuse after clear.
        v.push(9);
        assert_eq!(v.get(0), Some(9));
    }

    #[test]
    fn sort_and_search() {
        let mut v: SysVec<usize> = SysVec::new();
        for x in [5, 1, 9, 3, 7] {
            v.push(x);
        }
        v.sort_unstable();
        assert_eq!(v.as_slice(), &[1, 3, 5, 7, 9]);
        assert!(v.binary_search(&7));
        assert!(!v.binary_search(&4));
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let mut v: SysVec<u64> = SysVec::new();
        for i in 0..10_000u64 {
            v.push(i);
        }
        assert_eq!(v.len(), 10_000);
        assert_eq!(v.get(9_999), Some(9_999));
        assert_eq!(v.get(0), Some(0));
    }

    #[test]
    fn empty_slice_is_empty() {
        let v: SysVec<u8> = SysVec::new();
        assert_eq!(v.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn try_push_reports_success() {
        let mut v: SysVec<usize> = SysVec::new();
        for i in 0..1_000 {
            assert!(v.try_push(i), "system allocator should satisfy small growth");
        }
        assert_eq!(v.len(), 1_000);
    }

    #[test]
    fn failed_growth_preserves_existing_elements() {
        // try_grow leaves the old buffer valid on failure (System.realloc
        // contract); with a healthy allocator we can only check the
        // success side of that contract: contents survive every growth.
        let mut v: SysVec<u64> = SysVec::new();
        for i in 0..100u64 {
            assert!(v.try_push(i));
        }
        assert_eq!(v.as_slice(), (0..100u64).collect::<Vec<_>>().as_slice());
    }
}
