//! Hazard pointers: safe memory reclamation and ABA prevention for
//! lock-free data structures.
//!
//! This is an implementation of Michael's hazard-pointer methodology
//! (PODC 2002 / IEEE TPDS 2004), which the PLDI 2004 allocator paper uses
//! for its descriptor free list ("SafeCAS", §3.2.5) and for the
//! Michael–Scott FIFO queues backing the size-class partial lists
//! (§3.2.6).
//!
//! # How it works
//!
//! Each participating thread owns a *record* holding a small, fixed
//! number of single-writer/multi-reader *hazard slots*. Before a thread
//! dereferences a shared node it publishes the node's address in one of
//! its slots and re-validates the source pointer; from that point until
//! the slot is cleared, no other thread may reuse or free that node.
//! Removed nodes are *retired* rather than freed; each thread's retired
//! set is periodically *scanned* against all published hazards, and only
//! nodes not protected by any hazard are handed to their reclamation
//! function.
//!
//! Reclamation here is a caller-supplied function pointer plus context
//! (not a closure), so reclaiming can mean "push back onto the
//! allocator's descriptor free list" — which is exactly how the PLDI 2004
//! allocator recycles descriptors without ABA.
//!
//! # Allocator-reentrancy discipline
//!
//! This crate is used *inside* a memory allocator that may be installed
//! as the Rust global allocator, so none of its internal bookkeeping may
//! allocate through the global allocator. All internal storage comes
//! from [`sysvec::SysVec`], which calls `std::alloc::System` directly.
//!
//! # Example
//!
//! ```
//! use hazard::{HazardDomain, Slot};
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let domain = HazardDomain::new();
//! let node = Box::into_raw(Box::new(42u64));
//! let shared = AtomicPtr::new(node);
//!
//! // Reader: protect before dereferencing.
//! let p = domain.protect(Slot(0), &shared);
//! assert_eq!(unsafe { *p }, 42);
//! domain.clear(Slot(0));
//!
//! // Remover: detach, then retire with a reclamation function.
//! let detached = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! unsafe fn reclaim(_ctx: *mut u8, p: *mut u8) {
//!     drop(unsafe { Box::from_raw(p as *mut u64) });
//! }
//! unsafe { domain.retire(detached as *mut u8, std::ptr::null_mut(), reclaim) };
//! drop(domain); // flushes all retired nodes
//! ```

pub mod record;
pub mod sysvec;

/// Failpoint shim (see `lockfree_structs::fp`): reaches the registry in
/// `malloc-api` only under the `failpoints` feature; otherwise a no-op
/// the optimizer removes. Hazard sites only honour yield/delay — retire
/// and scan have no point at which abandoning is legal without breaking
/// the reclamation bound.
#[cfg(feature = "failpoints")]
#[inline]
fn fp(name: &'static str) {
    let _ = malloc_api::failpoints::hit(name);
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn fp(_name: &'static str) {}

/// Reclamation telemetry, one set per [`HazardDomain`] (`stats` feature
/// only): how often the retired set is scanned, how much each scan
/// frees, and how deep any thread's retired queue has ever grown.
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HazardStats {
    /// Hazard-slot scans performed (threshold-triggered and explicit).
    pub scans: u64,
    /// Retired nodes handed to their reclamation function, cumulatively.
    pub reclaimed: u64,
    /// High-water mark of any single record's retired-queue depth.
    pub retired_high_water: u64,
    /// Histogram of nodes freed per scan (power-of-two buckets:
    /// 0, 1, 2–3, 4–7, ..., 64+).
    pub frees_per_scan: [u64; malloc_api::telemetry::RETRY_BUCKETS],
}

/// The live counters behind [`HazardStats`].
#[cfg(feature = "stats")]
#[derive(Debug, Default)]
struct DomainStats {
    scans: malloc_api::telemetry::Counter,
    reclaimed: malloc_api::telemetry::Counter,
    retired_hwm: malloc_api::telemetry::MaxGauge,
    frees_per_scan:
        malloc_api::telemetry::Histogram<{ malloc_api::telemetry::RETRY_BUCKETS }>,
}

use core::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use record::Record;
use sysvec::SysVec;

/// Number of hazard slots per thread record.
///
/// The allocator needs one slot (descriptor free-list pop); the
/// Michael–Scott queue needs three live at once (head, tail, next). Four
/// leaves one spare for composed structures.
pub const SLOTS_PER_RECORD: usize = 4;

/// Retire this many nodes between scans of the hazard slots.
///
/// Must comfortably exceed the expected number of published hazards so
/// each scan reclaims a constant fraction of the retired set (amortized
/// O(1) per retire).
pub const SCAN_THRESHOLD: usize = 64;

/// Index of a hazard slot within the calling thread's record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot(pub usize);

/// A node awaiting reclamation: address + context + reclamation function.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Retired {
    pub ptr: *mut u8,
    pub ctx: *mut u8,
    pub reclaim: unsafe fn(*mut u8, *mut u8),
}

// Retired nodes move between threads only inside the domain's records,
// which serialize ownership; the raw pointers are inert data here.
unsafe impl Send for Retired {}

static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

/// A reclamation domain: one set of hazard slots plus retired lists.
///
/// Distinct lock-free structures may share a domain (slots are
/// per-thread, not per-structure) as long as they never need more than
/// [`SLOTS_PER_RECORD`] simultaneous protections per thread.
///
/// Dropping the domain reclaims every retired node unconditionally — by
/// then no thread may hold references into the protected structures
/// (enforced by the usual `&self` borrow discipline of the owner).
#[derive(Debug)]
pub struct HazardDomain {
    /// Unique id used to validate thread-local record caches across
    /// domain creation/destruction cycles.
    id: u64,
    /// Head of the append-only list of records (never shrinks until drop).
    head: AtomicPtr<Record>,
    /// Nodes intentionally leaked because the retired list could not
    /// grow *and* the node was still hazard-protected (see `retire`).
    /// Bounded by memory-pressure incidents, not by workload size.
    leaked: AtomicUsize,
    /// Reclamation telemetry (`stats` feature only).
    #[cfg(feature = "stats")]
    stats: DomainStats,
}

unsafe impl Send for HazardDomain {}
unsafe impl Sync for HazardDomain {}

impl Default for HazardDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl HazardDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        HazardDomain {
            id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
            head: AtomicPtr::new(core::ptr::null_mut()),
            leaked: AtomicUsize::new(0),
            #[cfg(feature = "stats")]
            stats: DomainStats::default(),
        }
    }

    /// Snapshot of this domain's reclamation telemetry.
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> HazardStats {
        HazardStats {
            scans: self.stats.scans.get(),
            reclaimed: self.stats.reclaimed.get(),
            retired_high_water: self.stats.retired_hwm.get(),
            frees_per_scan: self.stats.frees_per_scan.snapshot(),
        }
    }

    /// Publishes `src`'s current value in slot `slot` and returns it once
    /// the publication is guaranteed visible before any re-read of `src`.
    ///
    /// Loops until the value read from `src` is stable across the
    /// publication (the standard hazard-pointer validation handshake).
    /// The returned pointer (if non-null) is safe to dereference until
    /// [`clear`](Self::clear) or a subsequent `protect`/[`set`](Self::set)
    /// on the same slot.
    pub fn protect<T>(&self, slot: Slot, src: &AtomicPtr<T>) -> *mut T {
        self.with_record(|rec| {
            let mut p = src.load(Ordering::Acquire);
            loop {
                rec.hazards[slot.0].store(p as *mut u8, Ordering::SeqCst);
                let q = src.load(Ordering::Acquire);
                if q == p {
                    return p;
                }
                p = q;
            }
        })
    }

    /// Publishes an already-loaded pointer in slot `slot` *without*
    /// validation. The caller must re-validate the source afterwards
    /// (used by algorithms that validate with a tag or a second load).
    pub fn set<T>(&self, slot: Slot, ptr: *mut T) {
        self.with_record(|rec| rec.hazards[slot.0].store(ptr as *mut u8, Ordering::SeqCst));
    }

    /// Clears slot `slot`, allowing the previously protected node to be
    /// reclaimed by future scans.
    pub fn clear(&self, slot: Slot) {
        self.with_record(|rec| {
            rec.hazards[slot.0].store(core::ptr::null_mut(), Ordering::Release)
        });
    }

    /// Clears every slot of the calling thread's record.
    pub fn clear_all(&self) {
        self.with_record(|rec| {
            for h in &rec.hazards {
                h.store(core::ptr::null_mut(), Ordering::Release);
            }
        });
    }

    /// Hands a detached node to the domain for deferred reclamation.
    ///
    /// `reclaim(ctx, ptr)` runs once no hazard slot holds `ptr`; it may
    /// free the node or recycle it (e.g. push it back on a free list —
    /// the PLDI 2004 descriptor pattern).
    ///
    /// # Safety
    ///
    /// * `ptr` must have been removed from every shared structure in this
    ///   domain, so no *new* protections of it can be created.
    /// * `reclaim` must be safe to call with (`ctx`, `ptr`) at any later
    ///   time on any thread, including during domain drop.
    /// Additionally, `retire` never aborts: if the retired list cannot
    /// grow (system allocator exhausted), the node is either reclaimed
    /// inline — legal exactly when no hazard slot holds it, the same
    /// condition `scan` checks after the node is already detached — or,
    /// if still protected, intentionally leaked and counted in
    /// [`leaked_count`](Self::leaked_count).
    pub unsafe fn retire(&self, ptr: *mut u8, ctx: *mut u8, reclaim: unsafe fn(*mut u8, *mut u8)) {
        fp("hazard.retire");
        self.with_record(|rec| {
            let node = Retired { ptr, ctx, reclaim };
            match rec.push_retired(node) {
                Some(len) => {
                    #[cfg(feature = "stats")]
                    self.stats.retired_hwm.observe(len as u64);
                    if len >= SCAN_THRESHOLD {
                        self.scan(rec);
                    }
                }
                None => {
                    // The retired list is full and cannot grow. Shed
                    // unprotected nodes, then retry once.
                    self.scan(rec);
                    if rec.push_retired(node).is_none() {
                        if self.is_protected(ptr) {
                            self.leaked.fetch_add(1, Ordering::Relaxed);
                        } else {
                            unsafe { (reclaim)(ctx, ptr) };
                        }
                    }
                }
            }
        });
    }

    /// Attempts to reclaim the calling thread's retired nodes now.
    ///
    /// Nodes still protected by some hazard stay retired.
    pub fn flush(&self) {
        self.with_record(|rec| {
            self.scan(rec);
        });
    }

    /// Scans *every* record's retired list, not just the calling
    /// thread's. Nodes still protected by some hazard stay retired.
    ///
    /// # Safety
    ///
    /// Requires quiescence: no other thread may be inside any operation
    /// on this domain (retired lists are single-owner; this walks all of
    /// them). Intended for trim/teardown-style maintenance.
    pub unsafe fn flush_all(&self) {
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            let rec = unsafe { &*p };
            self.scan(rec);
            p = rec.next;
        }
    }

    /// Adopts each inactive record in turn — via the same `active`
    /// try-lock that hands records to new threads — scans its retired
    /// list, and releases it again. This drains nodes orphaned by exited
    /// threads *without* requiring quiescence: while adopted, the record
    /// has exactly one owner (the caller), which is all `scan` needs, and
    /// an inactive record's hazard slots are already null (cleared by the
    /// previous owner's `deactivate`). Records owned by live threads are
    /// skipped; their owners scan for themselves. Safe to call
    /// concurrently with every other domain operation. Returns the number
    /// of nodes reclaimed.
    pub fn reap_inactive(&self) -> usize {
        let mut reclaimed = 0usize;
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            let rec = unsafe { &*p };
            if rec.try_adopt() {
                let before = rec.retired_len();
                self.scan(rec);
                reclaimed += before.saturating_sub(rec.retired_len());
                unsafe { rec.deactivate() };
            }
            p = rec.next;
        }
        reclaimed
    }

    /// Re-stamps the calling thread's cached record with the current
    /// process generation. The forking thread must call this in the
    /// child — while still single-threaded, before [`adopt_orphans`]
    /// runs — so the orphan claimer never mistakes the one surviving
    /// thread's record for a dead parent thread's.
    ///
    /// [`adopt_orphans`]: Self::adopt_orphans
    pub fn restamp_current_thread(&self) {
        record::restamp_cached(self);
    }

    /// Claims every record stamped with an older process generation —
    /// records owned by parent threads that do not exist in this forked
    /// child — drains their retired lists, and releases them for normal
    /// adoption. Returns the number of records claimed.
    ///
    /// The claim token is a CAS on the record's generation stamp, so
    /// concurrent recovery passes partition the orphans cleanly. A
    /// stale-stamped record that is still `active` necessarily belongs
    /// to a dead thread (live threads only ever own current-stamped
    /// records: fresh records are stamped at creation, adoption skips
    /// stale stamps, and the forking thread re-stamps its own record via
    /// [`restamp_current_thread`](Self::restamp_current_thread) before
    /// this runs), so its hazard slots are force-cleared: the dead owner
    /// can never publish again, and whatever it was protecting died with
    /// it mid-operation — exactly the thread-kill case hazard pointers
    /// already tolerate.
    pub fn adopt_orphans(&self) -> usize {
        let cur = malloc_api::procfork::generation();
        let mut claimed = 0usize;
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            let rec = unsafe { &*p };
            let g = rec.generation();
            if g != cur && rec.claim_generation(g, cur) {
                claimed += 1;
                if !rec.try_adopt() {
                    // Active across the fork: the owner died holding it.
                    unsafe { rec.clear_dead_hazards() };
                }
                self.scan(rec);
                unsafe { rec.deactivate() };
            }
            p = rec.next;
        }
        claimed
    }

    /// Nodes abandoned (leaked) because memory pressure prevented both
    /// retiring and inline reclamation. Always safe, ideally zero.
    pub fn leaked_count(&self) -> usize {
        self.leaked.load(Ordering::Relaxed)
    }

    /// True if any record's hazard slot currently publishes `ptr`.
    fn is_protected(&self, ptr: *mut u8) -> bool {
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            let rec = unsafe { &*p };
            if rec.hazards.iter().any(|h| h.load(Ordering::SeqCst) == ptr) {
                return true;
            }
            p = rec.next;
        }
        false
    }

    /// Number of records ever created in this domain (diagnostics).
    pub fn record_count(&self) -> usize {
        let mut n = 0;
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            n += 1;
            p = unsafe { (*p).next };
        }
        n
    }

    /// Total retired-but-unreclaimed nodes across all records
    /// (diagnostics; racy snapshot).
    pub fn retired_count(&self) -> usize {
        let mut n = 0;
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            n += unsafe { (*p).retired_len() };
            p = unsafe { (*p).next };
        }
        n
    }

    /// Runs `f` with the calling thread's record, acquiring one (from the
    /// thread-local cache, an inactive record, or a fresh allocation) as
    /// needed. Falls back to a transient acquire/release pair when the
    /// thread-local key is unavailable (thread teardown).
    fn with_record<R>(&self, f: impl FnOnce(&Record) -> R) -> R {
        if let Some(rec) = record::cached_record(self) {
            return f(unsafe { &*rec });
        }
        // TLS unavailable (e.g. global allocator called during thread
        // destruction): acquire a record just for this operation.
        let rec = record::acquire_record(self);
        let out = f(unsafe { &*rec });
        unsafe { (*rec).deactivate() };
        out
    }

    /// Partitions `rec`'s retired list against the union of all hazard
    /// slots; reclaims the unprotected ones. Returns `false` if the scan
    /// had to abort because its own bookkeeping could not allocate (the
    /// retired list is then left intact — reclaiming against an
    /// incomplete hazard snapshot would be unsound).
    fn scan(&self, rec: &Record) -> bool {
        fp("hazard.scan");
        // Stage 1: snapshot all published hazards.
        let mut hazards: SysVec<usize> = SysVec::new();
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            let r = unsafe { &*p };
            for h in &r.hazards {
                let v = h.load(Ordering::SeqCst) as usize;
                if v != 0 && !hazards.try_push(v) {
                    return false;
                }
            }
            p = r.next;
        }
        hazards.sort_unstable();
        // Stage 2: reclaim retired nodes not in the hazard snapshot.
        let mut retired = rec.take_retired();
        let mut kept: SysVec<Retired> = SysVec::new();
        let mut _freed: u64 = 0;
        while let Some(node) = retired.pop() {
            if hazards.binary_search(&(node.ptr as usize)) {
                if !kept.try_push(node) {
                    // Can't track it separately; stop scanning. The node
                    // goes straight back into `retired`, whose capacity
                    // it just vacated.
                    let ok = retired.try_push(node);
                    debug_assert!(ok, "pop retains capacity");
                    break;
                }
            } else {
                unsafe { (node.reclaim)(node.ctx, node.ptr) };
                _freed += 1;
            }
        }
        #[cfg(feature = "stats")]
        {
            self.stats.scans.inc();
            self.stats.reclaimed.add(_freed);
            self.stats.frees_per_scan.record(_freed);
        }
        // Merge survivors back. Every kept node came out of `retired`,
        // so its buffer has room for all of them.
        while let Some(node) = kept.pop() {
            let ok = retired.try_push(node);
            debug_assert!(ok, "pop retains capacity");
        }
        rec.put_retired(retired);
        true
    }

    pub(crate) fn domain_id(&self) -> u64 {
        self.id
    }

    pub(crate) fn record_head(&self) -> &AtomicPtr<Record> {
        &self.head
    }
}

impl Drop for HazardDomain {
    fn drop(&mut self) {
        // Exclusive access: no thread can be inside protect/retire now,
        // so every retired node is reclaimable. The record shells
        // themselves are intentionally leaked — thread-local caches may
        // still point at them (see `record` module docs).
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            let rec = unsafe { &*p };
            let next = rec.next;
            let mut retired = rec.take_retired();
            while let Some(node) = retired.pop() {
                unsafe { (node.reclaim)(node.ctx, node.ptr) };
            }
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    static RECLAIMED: AtomicUsize = AtomicUsize::new(0);

    unsafe fn count_reclaim(_ctx: *mut u8, p: *mut u8) {
        RECLAIMED.fetch_add(1, Ordering::SeqCst);
        drop(unsafe { Box::from_raw(p as *mut u64) });
    }

    #[test]
    fn protect_returns_current_value() {
        let d = HazardDomain::new();
        let n = Box::into_raw(Box::new(7u64));
        let a = AtomicPtr::new(n);
        let p = d.protect(Slot(0), &a);
        assert_eq!(p, n);
        assert_eq!(unsafe { *p }, 7);
        d.clear(Slot(0));
        unsafe { drop(Box::from_raw(n)) };
    }

    #[test]
    fn protected_node_is_not_reclaimed_until_cleared() {
        let d = HazardDomain::new();
        let n = Box::into_raw(Box::new(1u64));
        let a = AtomicPtr::new(n);
        let p = d.protect(Slot(0), &a);
        assert!(!p.is_null());

        let before = RECLAIMED.load(Ordering::SeqCst);
        unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
        d.flush();
        // Still protected: not reclaimed.
        assert_eq!(RECLAIMED.load(Ordering::SeqCst), before);

        d.clear(Slot(0));
        d.flush();
        assert_eq!(RECLAIMED.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn drop_reclaims_everything() {
        let d = HazardDomain::new();
        let before = RECLAIMED.load(Ordering::SeqCst);
        for _ in 0..10 {
            let n = Box::into_raw(Box::new(0u64));
            unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
        }
        drop(d);
        assert!(RECLAIMED.load(Ordering::SeqCst) >= before + 10);
    }

    #[test]
    fn scan_threshold_triggers_reclamation() {
        let d = HazardDomain::new();
        let before = RECLAIMED.load(Ordering::SeqCst);
        for _ in 0..(SCAN_THRESHOLD + 8) {
            let n = Box::into_raw(Box::new(0u64));
            unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
        }
        // At least one automatic scan must have fired.
        assert!(RECLAIMED.load(Ordering::SeqCst) > before);
        drop(d);
    }

    #[test]
    fn records_are_reused_across_domains_per_thread() {
        let d1 = HazardDomain::new();
        d1.set(Slot(0), 0x10 as *mut u8);
        d1.clear(Slot(0));
        assert_eq!(d1.record_count(), 1);
        drop(d1);
        let d2 = HazardDomain::new();
        d2.set(Slot(0), 0x20 as *mut u8);
        d2.clear(Slot(0));
        assert_eq!(d2.record_count(), 1);
    }

    #[test]
    fn flush_all_scans_every_records_retired_list() {
        let d = HazardDomain::new();
        let before = RECLAIMED.load(Ordering::SeqCst);
        // Retire below the scan threshold from two threads → two records,
        // each holding unreclaimed nodes.
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..5 {
                    let n = Box::into_raw(Box::new(0u64));
                    unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
                }
            });
        });
        for _ in 0..5 {
            let n = Box::into_raw(Box::new(0u64));
            unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
        }
        // flush() only reaches the calling thread's record; flush_all
        // must drain the other thread's too.
        unsafe { d.flush_all() };
        assert!(RECLAIMED.load(Ordering::SeqCst) >= before + 10);
        assert_eq!(d.retired_count(), 0);
        assert_eq!(d.leaked_count(), 0, "no pressure, no leaks");
    }

    #[test]
    fn reap_inactive_drains_dead_thread_records() {
        let d = HazardDomain::new();
        let before = RECLAIMED.load(Ordering::SeqCst);
        // An exited thread leaves its record inactive with nodes still
        // retired (below the scan threshold, so nothing auto-drained).
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..7 {
                    let n = Box::into_raw(Box::new(0u64));
                    unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
                }
            });
        });
        assert_eq!(d.retired_count(), 7, "orphaned nodes await a reaper");
        let reaped = d.reap_inactive();
        assert_eq!(reaped, 7);
        assert_eq!(d.retired_count(), 0);
        assert_eq!(RECLAIMED.load(Ordering::SeqCst), before + 7);
    }

    #[test]
    fn reap_inactive_skips_live_owners() {
        let d = HazardDomain::new();
        // The calling thread's own record is active (cached); nodes it
        // retired must not be double-scanned out from under it.
        let n = Box::into_raw(Box::new(5u64));
        let a = AtomicPtr::new(n);
        let p = d.protect(Slot(0), &a);
        assert!(!p.is_null());
        unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
        let before = RECLAIMED.load(Ordering::SeqCst);
        assert_eq!(d.reap_inactive(), 0, "active record is skipped");
        assert_eq!(RECLAIMED.load(Ordering::SeqCst), before);
        d.clear(Slot(0));
        d.flush();
    }

    #[test]
    fn adopt_orphans_claims_stale_inactive_record() {
        let d = HazardDomain::new();
        let before = RECLAIMED.load(Ordering::SeqCst);
        // An exited thread leaves an inactive record holding retired
        // nodes; forge a stale stamp, as if the record predated a fork.
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..5 {
                    let n = Box::into_raw(Box::new(0u64));
                    unsafe { d.retire(n as *mut u8, core::ptr::null_mut(), count_reclaim) };
                }
            });
        });
        let rec = unsafe { &*d.head.load(Ordering::Acquire) };
        rec.set_generation(u64::MAX);
        assert_eq!(d.adopt_orphans(), 1);
        assert_eq!(d.retired_count(), 0);
        assert_eq!(RECLAIMED.load(Ordering::SeqCst), before + 5);
        // Drained and re-stamped: normal adoption works again.
        assert_eq!(d.adopt_orphans(), 0, "second pass finds nothing");
        let r2 = record::acquire_record(&d);
        assert_eq!(r2, rec as *const _ as *mut _, "record is adoptable again");
        unsafe { (*r2).deactivate() };
    }

    #[test]
    fn adopt_orphans_force_claims_dead_active_record() {
        unsafe fn nop(_c: *mut u8, _p: *mut u8) {}
        let d = HazardDomain::new();
        // Simulate a thread that died in a fork mid-operation: its
        // record is still active, a hazard is still published, nodes are
        // still retired, and its stamp predates the current generation.
        let rec = record::acquire_record(&d);
        unsafe {
            (*rec).hazards[0].store(0x2000 as *mut u8, Ordering::SeqCst);
            (*rec).push_retired(Retired {
                ptr: 0x1000 as *mut u8,
                ctx: core::ptr::null_mut(),
                reclaim: nop,
            });
            (*rec).set_generation(u64::MAX);
        }
        assert_eq!(d.adopt_orphans(), 1);
        let rec = unsafe { &*rec };
        assert!(rec.hazards.iter().all(|h| h.load(Ordering::SeqCst).is_null()));
        assert_eq!(rec.retired_len(), 0, "dead thread's retired list drained");
        assert!(rec.try_adopt(), "record released for reuse");
        unsafe { rec.deactivate() };
    }

    #[test]
    fn restamp_shields_survivor_record_from_orphan_claim() {
        let d = HazardDomain::new();
        // Create this thread's cached record and forge a stale stamp on
        // it (as the fork would), then restamp — the claimer must skip it.
        let n = Box::into_raw(Box::new(3u64));
        let a = AtomicPtr::new(n);
        let p = d.protect(Slot(0), &a);
        assert!(!p.is_null());
        let rec = unsafe { &*d.head.load(Ordering::Acquire) };
        rec.set_generation(u64::MAX);
        d.restamp_current_thread();
        assert_eq!(d.adopt_orphans(), 0, "survivor's record left alone");
        assert_eq!(rec.hazards[0].load(Ordering::SeqCst), n as *mut u8);
        d.clear(Slot(0));
        unsafe { drop(Box::from_raw(n)) };
    }

    #[test]
    fn stale_records_are_skipped_by_normal_adoption() {
        let d = HazardDomain::new();
        std::thread::scope(|s| {
            s.spawn(|| d.set(Slot(0), core::ptr::null_mut::<u8>()));
        });
        // One inactive record exists; forge a stale stamp.
        let rec = d.head.load(Ordering::Acquire);
        unsafe { (*rec).set_generation(u64::MAX) };
        let fresh = record::acquire_record(&d);
        assert_ne!(fresh, rec, "stale record must not be adopted");
        unsafe { (*fresh).deactivate() };
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        // Writers repeatedly swap in new nodes and retire the old ones;
        // readers protect and dereference. Any premature reclamation
        // shows up as a read of freed memory under tools, and as a
        // canary mismatch here.
        const ITERS: usize = 2_000;
        let d = Arc::new(HazardDomain::new());
        let shared = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(0xABCDu64))));

        unsafe fn free_u64(_ctx: *mut u8, p: *mut u8) {
            drop(unsafe { Box::from_raw(p as *mut u64) });
        }

        let mut handles = Vec::new();
        for _ in 0..2 {
            let d = Arc::clone(&d);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for i in 0..ITERS {
                    let new = Box::into_raw(Box::new(0xABCDu64 + (i as u64 % 3)));
                    let old = shared.swap(new, Ordering::AcqRel);
                    unsafe { d.retire(old as *mut u8, core::ptr::null_mut(), free_u64) };
                }
            }));
        }
        for _ in 0..2 {
            let d = Arc::clone(&d);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    let p = d.protect(Slot(1), &shared);
                    if !p.is_null() {
                        let v = unsafe { *p };
                        assert!((0xABCD..=0xABCF).contains(&v), "read {v:#x} from freed node");
                    }
                    d.clear(Slot(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let last = shared.load(Ordering::Acquire);
        unsafe { drop(Box::from_raw(last)) };
    }
}
