//! Conformance + stress battery for the lock-free allocator, using the
//! shared `malloc_api::testkit` contract (the same battery the three
//! baseline allocators run).

use lfmalloc::{Config, HeapMode, LfMalloc, PartialMode};
use malloc_api::testkit;
use malloc_api::RawMalloc;
use std::sync::Arc;

#[test]
fn basic_contract() {
    let a = LfMalloc::new_default();
    testkit::check_basic(&a);
    testkit::check_zero_size(&a);
    testkit::check_large(&a);
}

#[test]
fn free_orders() {
    let a = LfMalloc::new_default();
    testkit::check_free_orders(&a, 0xFEED);
}

#[test]
fn churn_single_thread() {
    let a = LfMalloc::new_default();
    testkit::check_churn(&a, 128, 5_000, 1);
}

#[test]
fn churn_concurrent() {
    let a = Arc::new(LfMalloc::new_default());
    testkit::check_concurrent_churn(a, 4, 3_000);
}

#[test]
fn remote_free_producer_consumer() {
    let a = Arc::new(LfMalloc::new_default());
    testkit::check_remote_free(a, 3, 1_000);
}

#[test]
fn full_battery_single_heap() {
    // The §4.2.4 uniprocessor configuration must satisfy the same
    // contract.
    let a = Arc::new(LfMalloc::with_config(Config::uniprocessor()));
    testkit::check_all(a);
}

#[test]
fn full_battery_many_heaps() {
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(8)));
    testkit::check_all(a);
}

#[test]
fn full_battery_lifo_partial_lists() {
    // The A1 ablation configuration.
    let cfg = Config {
        heap_mode: HeapMode::PerCpu(4),
        partial_mode: PartialMode::Lifo,
        ..Config::detect()
    };
    let a = Arc::new(LfMalloc::with_config(cfg));
    testkit::check_all(a);
}

#[test]
fn full_battery_ordered_list_partial_lists() {
    // The §3.2.6 "linked list with mid-removal" organization.
    let cfg = Config {
        heap_mode: HeapMode::PerCpu(4),
        partial_mode: PartialMode::List,
        ..Config::detect()
    };
    let a = Arc::new(LfMalloc::with_config(cfg));
    testkit::check_all(a);
}

#[test]
fn superblock_recycling_bounds_memory() {
    // Allocate and free 10_000 blocks repeatedly: the allocator must
    // reuse superblocks rather than map new hyperblocks each round.
    let a = LfMalloc::new_default();
    for _ in 0..20 {
        let blocks: Vec<*mut u8> = (0..10_000).map(|_| unsafe { a.malloc(64) }).collect();
        for p in &blocks {
            assert!(!p.is_null());
        }
        for p in blocks {
            unsafe { a.free(p) };
        }
    }
    assert!(
        a.hyperblock_count() <= 2,
        "hyperblock count {} suggests superblocks are not recycled",
        a.hyperblock_count()
    );
}

#[test]
fn distinct_size_classes_do_not_interfere() {
    let a = LfMalloc::new_default();
    unsafe {
        let mut blocks = Vec::new();
        for round in 0..3 {
            for sz in [8usize, 24, 100, 500, 1000, 4000, 8000] {
                let p = a.malloc(sz);
                assert!(!p.is_null());
                testkit::fill(p, sz);
                blocks.push((p, sz));
            }
            if round == 1 {
                // Free half mid-stream.
                for (p, sz) in blocks.drain(..blocks.len() / 2) {
                    testkit::check_fill(p, sz);
                    a.free(p);
                }
            }
        }
        for (p, sz) in blocks {
            testkit::check_fill(p, sz);
            a.free(p);
        }
    }
}

#[test]
fn aligned_allocations() {
    let a = LfMalloc::new_default();
    unsafe {
        for &align in &[8usize, 16, 32, 64, 128, 1024, 4096, 1 << 15] {
            for &sz in &[1usize, 17, 100, 1000, 9000] {
                let p = a.malloc_aligned(sz, align);
                assert!(!p.is_null(), "malloc_aligned({sz}, {align})");
                assert_eq!(p as usize % align, 0, "misaligned ({sz}, {align})");
                testkit::fill(p, sz);
                testkit::check_fill(p, sz);
                a.free(p);
            }
        }
    }
}

#[test]
fn stats_report_peak_usage() {
    let a = LfMalloc::new_default();
    let before = a.os_stats();
    let blocks: Vec<*mut u8> = (0..1000).map(|_| unsafe { a.malloc(128) }).collect();
    let during = a.os_stats();
    assert!(during.peak_bytes > before.peak_bytes);
    assert!(during.live_bytes >= 1000 * 128);
    for p in blocks {
        unsafe { a.free(p) };
    }
}

#[test]
fn drop_returns_all_memory() {
    // The instance must release everything on drop (checked indirectly:
    // building and dropping many instances must not accumulate).
    for _ in 0..10 {
        let a = LfMalloc::new_default();
        let blocks: Vec<*mut u8> = (0..500).map(|_| unsafe { a.malloc(100) }).collect();
        for p in blocks {
            unsafe { a.free(p) };
        }
        assert!(a.os_stats().live_bytes > 0, "pool retains superblocks while alive");
        drop(a);
    }
}

#[test]
fn usable_size_covers_request_and_class_rounding() {
    let a = LfMalloc::new_default();
    unsafe {
        // Small path: 8-byte request + 8-byte prefix → 16-byte class,
        // usable = 8.
        let p = a.malloc(8);
        assert_eq!(a.usable_size(p), 8);
        a.free(p);
        // 100-byte request + prefix → 112-byte class, usable = 104.
        let p = a.malloc(100);
        assert_eq!(a.usable_size(p), 104);
        a.free(p);
        // Large path: usable ≥ request.
        let p = a.malloc(100_000);
        assert!(a.usable_size(p) >= 100_000);
        a.free(p);
        // Aligned path: usable accounts for the in-block offset.
        let p = a.malloc_aligned(100, 64);
        assert!(a.usable_size(p) >= 100, "usable {}", a.usable_size(p));
        a.free(p);
    }
}

#[test]
fn realloc_grows_in_place_within_class_and_moves_across() {
    let a = LfMalloc::new_default();
    unsafe {
        let p = a.malloc(40); // class 48: usable 40
        testkit::fill(p, 40);
        let snapshot: Vec<u8> = core::slice::from_raw_parts(p, 40).to_vec();
        // Same class: stays put.
        let q = a.realloc(p, 40, a.usable_size(p));
        assert_eq!(q, p, "in-place growth expected within the class");
        testkit::check_fill(q, 40);
        // Bigger: moves, preserving content byte-for-byte.
        let r = a.realloc(q, 40, 5_000);
        assert!(!r.is_null());
        assert_ne!(r, q, "5 KB cannot stay in the 48-byte class");
        assert_eq!(core::slice::from_raw_parts(r, 40), &snapshot[..]);
        a.free(r);
        // Null ptr behaves as malloc.
        let s = a.realloc(core::ptr::null_mut(), 0, 64);
        assert!(!s.is_null());
        a.free(s);
    }
}
