//! Offline heap-integrity auditing.
//!
//! [`LfMalloc::audit`] walks every allocator structure and cross-checks
//! the paper's invariants, returning a structured [`AuditReport`]. It is
//! the oracle for the fault-injection torture suite: after any schedule
//! of mallocs, frees, injected CAS failures, simulated thread kills and
//! OS allocation failures, the heap must still audit clean.
//!
//! # What "clean" means under kills
//!
//! The paper's lock-freedom guarantees that a thread killed inside
//! malloc/free leaks at most a bounded amount (one block, descriptor or
//! superblock per kill) but never corrupts shared structures. The audit
//! therefore checks *one-directional* invariants that survive legal
//! leaks:
//!
//! * Every descriptor linked from a heap `Active` word, a heap partial
//!   slot or a size-class partial list lies inside a descriptor slab, is
//!   not simultaneously on `DescAvail`, and is linked from exactly one
//!   place.
//! * A linked descriptor's geometry matches its size class
//!   (`sz == CLASS_SIZES[ci]`, `maxcount == SB_SIZE / sz`), its
//!   superblock pointer lies inside a mapped hyperblock at superblock
//!   alignment, and its anchor state is legal for its location (an
//!   installed active descriptor is `ACTIVE`; slot/list members are
//!   `PARTIAL` or `EMPTY`).
//! * The superblock free list holds **at least** `count` (+
//!   `credits + 1` for the installed active superblock) distinct,
//!   in-range blocks — walked by following the in-block next indices
//!   from `anchor.avail`. Kills may leak blocks, which makes the free
//!   list *longer* than the anchor accounts for (leaked reservations)
//!   or leaves allocated blocks unreachable, but never shorter and
//!   never cyclic.
//! * `EMPTY` descriptors record `count == maxcount - 1` (all blocks
//!   free except the conceptual one being freed); their superblock may
//!   already be recycled, so it is not walked.
//! * The hazard domain's retired backlog respects the Michael-2004
//!   reclamation bound (`R ≤ records * (SCAN_THRESHOLD + H)`).
//! * OS-level accounting reconciles:
//!   `live_bytes == superblock hyperblocks + descriptor slabs + live
//!   large-block bytes`.
//!
//! # Concurrency
//!
//! The audit is designed for quiescent instances (no concurrent
//! malloc/free), which is how the torture tests call it. Running it
//! concurrently is memory-safe — every pointer it follows stays inside
//! never-unmapped slabs — but may report spurious violations from torn
//! logical snapshots.

use crate::anchor::SbState;
use crate::config::SB_SIZE;
use crate::descriptor::Descriptor;
use crate::heap::ProcHeap;
use crate::instance::{Inner, LfMalloc};
use crate::size_classes::NUM_CLASSES;
use core::sync::atomic::Ordering;
use hazard::{SCAN_THRESHOLD, SLOTS_PER_RECORD};
use osmem::PageSource;
use std::collections::{HashMap, HashSet};

/// One failed invariant check.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// Stable dotted identifier of the check (e.g. `sb.freelist-short`).
    pub check: &'static str,
    /// Human-readable context: which descriptor/heap/class, observed vs
    /// expected values.
    pub detail: String,
}

impl core::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Structured result of a heap walk: coverage counters plus every
/// violation found. Counters let tests assert the audit actually
/// traversed something, not just vacuously passed.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Descriptor slots in all slabs.
    pub descriptors_total: usize,
    /// Descriptors on the `DescAvail` free stack.
    pub descriptors_free: usize,
    /// Descriptors linked from actives, heap slots or class lists.
    pub descriptors_linked: usize,
    /// Descriptors neither free nor linked: `FULL` superblocks' owners
    /// plus anything legally leaked by kills.
    pub descriptors_floating: usize,
    /// Free blocks visited across all superblock free-list walks.
    pub free_blocks_walked: usize,
    /// Retired pointers awaiting hazard reclamation.
    pub retired_pending: usize,
    /// Live large blocks.
    pub large_live: usize,
    /// Every failed check.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl core::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "audit: {} descriptors ({} free, {} linked, {} floating), \
             {} free blocks walked, {} retired pending, {} large live, {} violation(s)",
            self.descriptors_total,
            self.descriptors_free,
            self.descriptors_linked,
            self.descriptors_floating,
            self.free_blocks_walked,
            self.retired_pending,
            self.large_live,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// The audit's OS-byte reconciliation, broken out per component so
/// reports can show where live bytes actually sit (superblock
/// hyperblocks vs descriptor slabs vs large blocks). Computed by
/// [`Inner::reconcile_bytes`] — the single source of truth shared by
/// [`LfMalloc::audit`] and the `stats` snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByteReconciliation {
    /// Bytes mapped for superblock hyperblocks.
    pub superblock_bytes: usize,
    /// Bytes mapped for descriptor slabs.
    pub descriptor_slab_bytes: usize,
    /// Bytes backing live large blocks.
    pub large_bytes: usize,
    /// What the counting page source believes is live.
    pub source_live_bytes: usize,
}

impl ByteReconciliation {
    /// Sum of the per-component byte counts.
    pub fn expected(&self) -> usize {
        self.superblock_bytes + self.descriptor_slab_bytes + self.large_bytes
    }

    /// True when the source agrees with the component sum.
    pub fn reconciles(&self) -> bool {
        self.source_live_bytes == self.expected()
    }
}

impl<S: PageSource> Inner<S> {
    /// Gathers the OS-byte reconciliation components (see
    /// [`ByteReconciliation`]).
    pub(crate) fn reconcile_bytes(&self) -> ByteReconciliation {
        ByteReconciliation {
            superblock_bytes: self.sb_pool.mapped_bytes(),
            descriptor_slab_bytes: self.desc_pool.mapped_bytes(),
            large_bytes: self.large_bytes.load(Ordering::Relaxed),
            source_live_bytes: self.source.stats().live_bytes,
        }
    }
}

/// Where a linked descriptor was found.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LinkKind {
    Active,
    HeapSlot,
    ClassList,
}

struct Link {
    desc: *mut Descriptor,
    kind: LinkKind,
    class: usize,
    /// Credits of the Active word (installed actives only).
    credits: Option<u32>,
    /// Owning heap (installed actives only) for the back-reference check.
    heap: Option<*const ProcHeap>,
    place: String,
}

impl<S: PageSource> LfMalloc<S> {
    /// Walks the whole instance and checks the paper's structural
    /// invariants; see the [module docs](crate::audit) for the list.
    ///
    /// Call while quiescent (no concurrent malloc/free). Concurrent use
    /// is memory-safe but may report spurious violations.
    pub fn audit(&self) -> AuditReport {
        let rep = audit_inner(self.inner());
        // A full audit is the authoritative integrity verdict: record it
        // so `health()` (and `is_degraded`) reflect the latest outcome.
        self.inner().health.note_full_audit(rep.violations.len() as u64);
        rep
    }
}

fn audit_inner<S: PageSource>(inner: &Inner<S>) -> AuditReport {
    let mut rep = AuditReport::default();

    // -- Descriptor universe: every slab slot, and the free subset. ----
    let all = inner.desc_pool.all_descriptors();
    let all_set: HashSet<usize> = all.iter().map(|d| *d as usize).collect();
    // The free universe is DescAvail plus the emergency reserve — both
    // hold descriptors that are linked into no allocator structure.
    let mut free = unsafe { inner.desc_pool.free_descriptors() };
    free.extend(unsafe { inner.desc_pool.reserve_descriptors() });
    let mut free_set: HashSet<usize> = HashSet::new();
    for d in &free {
        let a = *d as usize;
        if !all_set.contains(&a) {
            rep.violations.push(AuditViolation {
                check: "desc.free-foreign",
                detail: format!("DescAvail entry {a:#x} outside every descriptor slab"),
            });
        }
        if !free_set.insert(a) {
            rep.violations.push(AuditViolation {
                check: "desc.free-cycle",
                detail: format!("DescAvail entry {a:#x} appears twice"),
            });
            break; // the stack is cyclic; stop counting
        }
    }
    rep.descriptors_total = all.len();
    rep.descriptors_free = free_set.len();

    // -- Collect every linked descriptor. ------------------------------
    let mut links: Vec<Link> = Vec::new();
    for ci in 0..NUM_CLASSES {
        for h in 0..inner.nheaps {
            let heap = unsafe { &*inner.heaps.add(ci * inner.nheaps + h) };
            let active = heap.load_active();
            if !active.is_null() {
                links.push(Link {
                    desc: active.desc(),
                    kind: LinkKind::Active,
                    class: ci,
                    credits: Some(active.credits()),
                    heap: Some(heap as *const ProcHeap),
                    place: format!("active[class {ci}, heap {h}]"),
                });
            }
            let slot = heap.load_partial();
            if !slot.is_null() {
                links.push(Link {
                    desc: slot,
                    kind: LinkKind::HeapSlot,
                    class: ci,
                    credits: None,
                    heap: None,
                    place: format!("partial slot[class {ci}, heap {h}]"),
                });
            }
        }
        for desc in unsafe { inner.classes[ci].partial.snapshot() } {
            links.push(Link {
                desc,
                kind: LinkKind::ClassList,
                class: ci,
                credits: None,
                heap: None,
                place: format!("partial list[class {ci}]"),
            });
        }
    }

    // -- Membership and disjointness. ----------------------------------
    let mut seen: HashMap<usize, String> = HashMap::new();
    for l in &links {
        let a = l.desc as usize;
        if !all_set.contains(&a) {
            rep.violations.push(AuditViolation {
                check: "desc.linked-foreign",
                detail: format!("{} holds {a:#x}, outside every descriptor slab", l.place),
            });
            continue;
        }
        if free_set.contains(&a) {
            rep.violations.push(AuditViolation {
                check: "desc.linked-free",
                detail: format!("{} holds {a:#x}, which is also on DescAvail", l.place),
            });
        }
        if let Some(prev) = seen.insert(a, l.place.clone()) {
            rep.violations.push(AuditViolation {
                check: "desc.linked-twice",
                detail: format!("{a:#x} linked from both {prev} and {}", l.place),
            });
        }
    }
    rep.descriptors_linked = seen.len();

    // -- Per-descriptor invariants + free-list walks. ------------------
    let sb_regions = inner.sb_pool.hyperblocks();
    for l in &links {
        if !all_set.contains(&(l.desc as usize)) {
            continue; // foreign pointer: do not dereference
        }
        check_linked_desc(inner, l, &sb_regions, &mut rep);
    }

    // -- Floating descriptors: in use but linked nowhere. --------------
    // Legal residents: owners of FULL superblocks and anything leaked by
    // simulated kills. Their geometry must still be sane.
    for d in &all {
        let a = *d as usize;
        if free_set.contains(&a) || seen.contains_key(&a) {
            continue;
        }
        rep.descriptors_floating += 1;
        let desc = unsafe { &**d };
        let (sz, maxc) = (desc.sz(), desc.maxcount());
        if sz == 0 {
            continue; // never initialized since slab carve
        }
        if maxc as usize * sz as usize > SB_SIZE {
            rep.violations.push(AuditViolation {
                check: "desc.geometry",
                detail: format!("floating {a:#x}: maxcount {maxc} * sz {sz} exceeds SB_SIZE"),
            });
            continue;
        }
        let anchor = desc.load_anchor();
        if anchor.count() >= maxc {
            rep.violations.push(AuditViolation {
                check: "desc.count-range",
                detail: format!(
                    "floating {a:#x}: count {} >= maxcount {maxc}",
                    anchor.count()
                ),
            });
        }
    }

    // -- Hazard-pointer reclamation bound (Michael 2004). --------------
    let records = inner.domain.record_count();
    let retired = inner.domain.retired_count();
    rep.retired_pending = retired;
    let bound = records * (SCAN_THRESHOLD + records * SLOTS_PER_RECORD);
    if retired > bound {
        rep.violations.push(AuditViolation {
            check: "hazard.retired-bound",
            detail: format!("{retired} retired pointers exceed bound {bound} ({records} records)"),
        });
    }

    // -- OS accounting reconciliation. ---------------------------------
    let rec = inner.reconcile_bytes();
    let large_bytes = rec.large_bytes;
    if !rec.reconciles() {
        rep.violations.push(AuditViolation {
            check: "bytes.reconcile",
            detail: format!(
                "source live_bytes {} != superblocks {} + desc slabs {} + large {large_bytes}",
                rec.source_live_bytes, rec.superblock_bytes, rec.descriptor_slab_bytes
            ),
        });
    }
    rep.large_live = inner.large_live.load(Ordering::Relaxed);
    if (rep.large_live == 0) != (large_bytes == 0) {
        rep.violations.push(AuditViolation {
            check: "large.reconcile",
            detail: format!("large_live {} vs large_bytes {large_bytes}", rep.large_live),
        });
    }

    rep
}

fn check_linked_desc<S: PageSource>(
    inner: &Inner<S>,
    l: &Link,
    sb_regions: &[(*mut u8, usize)],
    rep: &mut AuditReport,
) {
    let desc = unsafe { &*l.desc };
    let a = l.desc as usize;
    let sz = desc.sz();
    let maxc = desc.maxcount();
    let class_sz = inner.classes[l.class].sz;
    if sz != class_sz {
        rep.violations.push(AuditViolation {
            check: "desc.class-size",
            detail: format!("{}: desc {a:#x} sz {sz} != class sz {class_sz}", l.place),
        });
        return;
    }
    if sz == 0 || maxc as usize != SB_SIZE / sz as usize {
        rep.violations.push(AuditViolation {
            check: "desc.geometry",
            detail: format!("{}: desc {a:#x} sz {sz}, maxcount {maxc}", l.place),
        });
        return;
    }

    let anchor = desc.load_anchor();
    let state = anchor.state();
    let state_ok = match l.kind {
        // An installed active descriptor is always in ACTIVE state: it
        // is only published after the Figure 5 CAS that sets ACTIVE, and
        // no transition away from ACTIVE happens while installed (frees
        // cannot empty it — the Active word always accounts for at
        // least one outstanding reservation).
        LinkKind::Active => state == SbState::Active,
        // Slot/list members arrive PARTIAL and may drain to EMPTY while
        // parked; they can never be ACTIVE or FULL in place.
        LinkKind::HeapSlot | LinkKind::ClassList => {
            state == SbState::Partial || state == SbState::Empty
        }
    };
    if !state_ok {
        rep.violations.push(AuditViolation {
            check: "desc.state",
            detail: format!("{}: desc {a:#x} in illegal state {state:?}", l.place),
        });
        return;
    }

    if state == SbState::Empty {
        // The superblock may already be recycled (free's dealloc runs
        // before the descriptor leaves the lists), so only the anchor
        // is checkable: an EMPTY anchor records all blocks free.
        if anchor.count() != maxc - 1 {
            rep.violations.push(AuditViolation {
                check: "desc.empty-count",
                detail: format!(
                    "{}: EMPTY desc {a:#x} count {} != maxcount-1 {}",
                    l.place,
                    anchor.count(),
                    maxc - 1
                ),
            });
        }
        return;
    }

    // Superblock pointer: inside a mapped hyperblock, superblock-aligned.
    let sb = desc.sb() as usize;
    let in_pool = sb % SB_SIZE == 0
        && sb_regions
            .iter()
            .any(|&(base, bytes)| sb >= base as usize && sb + SB_SIZE <= base as usize + bytes);
    if !in_pool {
        rep.violations.push(AuditViolation {
            check: "desc.sb-range",
            detail: format!("{}: desc {a:#x} superblock {sb:#x} not in the page pool", l.place),
        });
        return;
    }

    // Installed actives: the descriptor's heap back-reference must name
    // the heap it is installed in.
    if let Some(h) = l.heap {
        if desc.heap() as *const ProcHeap != h {
            rep.violations.push(AuditViolation {
                check: "desc.heap-backref",
                detail: format!(
                    "{}: desc {a:#x} heap back-reference {:?} != {h:?}",
                    l.place,
                    desc.heap()
                ),
            });
        }
    }

    // Credit conservation upper bound: blocks the anchor + Active word
    // account for can never exceed the superblock population.
    let reserved = l.credits.map_or(0, |c| c as usize + 1);
    let expected = anchor.count() as usize + reserved;
    if expected > maxc as usize {
        rep.violations.push(AuditViolation {
            check: "desc.overcommit",
            detail: format!(
                "{}: desc {a:#x} count {} + reserved {reserved} > maxcount {maxc}",
                l.place,
                anchor.count()
            ),
        });
        return;
    }

    // Free-list walk: at least `expected` distinct in-range blocks must
    // be reachable from `anchor.avail`. Kills may leak *extra* blocks
    // onto the list (abandoned reservations), so the walk stops after
    // `expected` — a longer list is legal, a shorter or cyclic one is
    // corruption.
    let hardened = inner.config.hardening != crate::harden::Hardening::Off;
    let mut visited: HashSet<u64> = HashSet::new();
    let mut idx = anchor.avail() as u64;
    for step in 0..expected {
        if idx >= maxc as u64 {
            rep.violations.push(AuditViolation {
                check: "sb.freelist-short",
                detail: format!(
                    "{}: desc {a:#x} free list ended at {step}/{expected} (next index {idx})",
                    l.place
                ),
            });
            break;
        }
        if !visited.insert(idx) {
            rep.violations.push(AuditViolation {
                check: "sb.freelist-cycle",
                detail: format!(
                    "{}: desc {a:#x} free list revisits block {idx} at {step}/{expected}",
                    l.place
                ),
            });
            break;
        }
        // Hardened cross-check: a block on the free list must not be
        // marked allocated in the descriptor's bitmap (the bit is
        // cleared before the anchor push and set before the pointer
        // escapes malloc).
        if hardened && desc.alloc_bit(idx as usize) {
            rep.violations.push(AuditViolation {
                check: "harden.bitmap-free-set",
                detail: format!(
                    "{}: desc {a:#x} free-listed block {idx} has its allocation bit set",
                    l.place
                ),
            });
        }
        // The first word of a free block is its next-free index (written
        // by the superblock carve or by free); quiescent free blocks
        // always hold a value <= maxcount.
        idx = unsafe { *((sb + idx as usize * sz as usize) as *const u64) };
    }
    rep.free_blocks_walked += visited.len();

    // Hardened cross-check: allocated bits + free blocks accounted by
    // the anchor/Active word can never exceed the population. One-
    // directional (kills leak blocks with their bits clear, quarantined
    // blocks are counted by neither side), so it survives any legal
    // schedule.
    if hardened {
        let bits = desc.alloc_bit_count() as usize;
        if bits + expected > maxc as usize {
            rep.violations.push(AuditViolation {
                check: "harden.bitmap-overcommit",
                detail: format!(
                    "{}: desc {a:#x} allocated bits {bits} + anchor-accounted {expected} \
                     > maxcount {maxc}",
                    l.place
                ),
            });
        }
    }
}
