//! Fork/exec safety: atfork hooks, child-side heap recovery, and the
//! async-signal reentrancy guard. DESIGN.md §12 is the narrative spec.
//!
//! `fork(2)` copies the whole address space but only the calling
//! thread. For this allocator that leaves three kinds of wreckage in
//! the child:
//!
//! * every other thread's hazard record is orphaned — `active`, maybe
//!   holding published hazards and a retired backlog nobody will drain;
//! * the TLS thread-id registry still holds parent-era ids, and the
//!   background reaper's `JoinHandle` refers to a thread that no longer
//!   exists (joining it would block forever);
//! * none of it is corrupted: every cross-thread structure is lock-free,
//!   so the snapshot the child inherits is some linearizable state.
//!
//! Recovery therefore needs no heap surgery, only ownership repair, and
//! runs in two tiers:
//!
//! 1. **Hooked (eager)** — when [`Config::atfork`](crate::Config) is on
//!    (default), the instance registers prepare/parent/child hooks with
//!    [`malloc_api::procfork`]. Prepare pins the reaper handle box (so
//!    the fork cannot snapshot it mid-update), parent releases it, and
//!    the child clears the dead reaper, runs [`recover`], and respawns
//!    the reaper with its pre-fork config.
//! 2. **Lazy** — every allocator entry point compares the instance's
//!    recovered generation against [`malloc_api::procfork::generation`]
//!    (one relaxed load on the fast path). A child that forked through
//!    `procfork::fork` without hooks recovers on its first
//!    malloc/free. A *raw* `fork(2)` with neither hooks nor
//!    [`malloc_api::procfork::install`] bumps no generation; such a
//!    child must call [`malloc_api::procfork::child_after_raw_fork`]
//!    before touching the allocator (the POSIX contract is stricter
//!    still: only async-signal-safe calls are allowed between a
//!    multithreaded fork and exec).
//!
//! The recovery claim is a CAS on the instance's generation stamp, so
//! exactly one thread recovers per fork; losers proceed immediately —
//! lock-freedom of the entry points is preserved.
//!
//! # Signal-safety contract
//!
//! The malloc/free fast paths are CAS loops over process-shared atomics
//! — no locks, no reentrant-unsafe library calls — so an allocation in
//! a signal handler that interrupted *non-allocator* code completes
//! normally. The one unsafe case is a handler allocating while the
//! interrupted frame is already inside this allocator on the same
//! thread (the classic `malloc`-in-handler deadlock shape). A
//! per-thread flag turns that case into a detected failure instead:
//! the nested call is counted as [`MisuseKind::ReentrantAlloc`] and
//! fails fast (null from `malloc`, leak from `free`) — it never
//! self-deadlocks and never corrupts heap state. Paths that *do* take
//! locks (reaper start/stop, `trim`, `dump_stats`) are not
//! async-signal-safe and are documented as such.

use crate::harden::{MisuseKind, MisuseReport};
use crate::instance::Inner;
use crate::maintain::{ReaperBox, ReaperConfig};
use core::cell::{Cell, UnsafeCell};
use core::sync::atomic::{AtomicU64, Ordering};
use malloc_api::procfork::{self, HookSet, HookToken};
use osmem::PageSource;

/// Per-instance fork bookkeeping, embedded in `Inner`.
#[derive(Debug)]
pub(crate) struct ForkState {
    /// Process generation this instance has recovered to. Lagging
    /// [`procfork::generation`] means a fork happened and child-side
    /// recovery is still owed; the CAS that advances it is the
    /// single-recoverer claim token.
    proc_gen: AtomicU64,
    /// Registration token of the instance's atfork hooks (`None` when
    /// `Config::atfork` is off or the registry was full).
    token: Cell<Option<HookToken>>,
    /// The reaper handle-box guard carried across a hooked fork:
    /// written by the prepare hook, taken by exactly one of the
    /// parent/child hooks. Only the forking thread touches it, under
    /// the procfork registry lock — that protocol, not a type, is what
    /// makes the `UnsafeCell` (and the `Sync` impl) sound.
    stash: UnsafeCell<Option<std::sync::MutexGuard<'static, ReaperBox>>>,
}

unsafe impl Send for ForkState {}
unsafe impl Sync for ForkState {}

impl ForkState {
    pub(crate) fn new() -> Self {
        ForkState {
            proc_gen: AtomicU64::new(procfork::generation()),
            token: Cell::new(None),
            stash: UnsafeCell::new(None),
        }
    }

    /// The generation this instance last recovered to (telemetry).
    pub(crate) fn recovered_generation(&self) -> u64 {
        self.proc_gen.load(Ordering::Acquire)
    }
}

/// Registers the instance's atfork hooks. Called once from the
/// constructor (when `Config::atfork`); the data word is the `Inner`
/// pointer, which is address-stable for the instance's lifetime.
pub(crate) fn register_instance<S: PageSource>(inner: &Inner<S>) {
    let token = procfork::register(HookSet {
        prepare: Some(hook_prepare::<S>),
        parent: Some(hook_parent::<S>),
        child: Some(hook_child::<S>),
        data: inner as *const Inner<S> as usize,
    });
    // A full registry (token = None) degrades to lazy-only recovery.
    inner.fork.token.set(token);
}

/// Unregisters the instance's hooks. Must run before any teardown
/// (first step of `LfMalloc::drop`): `procfork::unregister` serializes
/// on the registry lock, which an in-flight fork holds from prepare to
/// parent/child, so once this returns no hook can see the dying
/// instance.
pub(crate) fn unregister_instance<S: PageSource>(inner: &Inner<S>) {
    if let Some(token) = inner.fork.token.take() {
        procfork::unregister(token);
    }
}

/// Prepare hook: pin the reaper handle box across the fork. Holding its
/// mutex guarantees the child's copy of the mutex is unlocked-or-ours
/// (never snapshotted mid-update by a third thread) and that no
/// start/stop is joining or spawning while the address space is
/// duplicated.
pub(crate) unsafe fn hook_prepare<S: PageSource>(data: usize) {
    let inner = unsafe { &*(data as *const Inner<S>) };
    let guard = inner.reaper.lock_handle();
    // Lifetime erasure only: the guard is dropped by the parent/child
    // hook on this same thread before the registry lock is released,
    // and the instance cannot be dropped in between (unregister blocks
    // on the registry lock).
    let guard: std::sync::MutexGuard<'static, ReaperBox> =
        unsafe { core::mem::transmute(guard) };
    unsafe { *inner.fork.stash.get() = Some(guard) };
}

/// Parent hook: the fork is over, release the reaper box.
pub(crate) unsafe fn hook_parent<S: PageSource>(data: usize) {
    let inner = unsafe { &*(data as *const Inner<S>) };
    drop(unsafe { (*inner.fork.stash.get()).take() });
    crate::stat_event!(inner, Fork, 0, procfork::generation());
}

/// Child hook: clear the dead reaper through the still-held guard, run
/// recovery, respawn the reaper the parent had running.
pub(crate) unsafe fn hook_child<S: PageSource>(data: usize) {
    let inner = unsafe { &*(data as *const Inner<S>) };
    let cur = procfork::generation();
    let mut dead_cfg = None;
    if let Some(mut boxed) = unsafe { (*inner.fork.stash.get()).take() } {
        dead_cfg = inner.reaper.clear_dead(&mut boxed, cur);
    }
    maybe_recover(inner);
    if let Some(cfg) = dead_cfg {
        respawn(inner, cfg);
    }
}

/// Fast-path fork check: one relaxed load comparing the instance's
/// recovered generation against the process generation. Inlined into
/// every entry point; the mismatch path is a cold call.
#[inline]
pub(crate) fn maybe_recover<S: PageSource>(inner: &Inner<S>) {
    let cur = procfork::generation();
    if inner.fork.proc_gen.load(Ordering::Relaxed) != cur {
        recover(inner, cur);
    }
}

/// Child-side heap recovery. The generation CAS elects one recoverer;
/// losing threads return immediately and proceed with their allocation
/// (everything below is repair of *idle* state, not a prerequisite for
/// correctness of the lock-free paths).
#[cold]
fn recover<S: PageSource>(inner: &Inner<S>, cur: u64) {
    let prev = inner.fork.proc_gen.load(Ordering::Acquire);
    if prev == cur
        || inner
            .fork
            .proc_gen
            .compare_exchange(prev, cur, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
    {
        return;
    }
    // The forking thread's own hazard record crossed the fork with it:
    // restamp it first so the orphan pass below keeps its hands off.
    // (Per POSIX the child is single-threaded until recovery is done,
    // so "the current thread" is the only surviving owner.)
    inner.domain.restamp_current_thread();
    // Adopt every parent-era record: drain its retired backlog, null
    // hazards its dead owner published, release it for re-adoption.
    let adopted = inner.domain.adopt_orphans();
    inner.domain.reap_inactive();
    // The reaper thread (if any) died in the fork. On the hooked path
    // the child hook already cleared it; this covers lazy recovery.
    if let Some(cfg) = crate::maintain::reaper_reconcile(inner) {
        respawn(inner, cfg);
    }
    inner.health.note_fork_recovery();
    crate::stat_event!(inner, ChildRecover, 0, adopted as u64);
    let _ = adopted;
}

/// Restarts the reaper through the monomorphized trampoline stored by
/// `start_reaper_with` (fork recovery only has `S: PageSource`, not the
/// `Send + Sync + 'static` spawning bounds).
fn respawn<S: PageSource>(inner: &Inner<S>, cfg: ReaperConfig) {
    let thunk = inner.reaper.respawn_thunk();
    if thunk != 0 {
        let thunk: unsafe fn(*mut (), ReaperConfig) -> bool =
            unsafe { core::mem::transmute(thunk) };
        unsafe { thunk(inner as *const Inner<S> as *mut () as *mut (), cfg) };
    }
}

thread_local! {
    /// True while this thread is inside an allocator entry point. A
    /// `Cell<bool>` with const init: no lazy-init allocation, no drop
    /// registration — safe to touch from the malloc path itself.
    static IN_ALLOC: Cell<bool> = const { Cell::new(false) };
}

/// RAII release of the reentrancy flag. `armed == false` means the flag
/// was never set (TLS unavailable during thread teardown) and must not
/// be cleared — the teardown call simply runs unguarded.
pub(crate) struct AllocGuard {
    armed: bool,
}

impl Drop for AllocGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = IN_ALLOC.try_with(|flag| flag.set(false));
        }
    }
}

/// Enters an allocator entry point. `None` means the calling thread is
/// *already* inside one — a signal handler re-entered the allocator —
/// and the caller must fail fast instead of proceeding.
#[inline]
pub(crate) fn enter_alloc() -> Option<AllocGuard> {
    match IN_ALLOC.try_with(|flag| {
        if flag.get() {
            false
        } else {
            flag.set(true);
            true
        }
    }) {
        Ok(true) => Some(AllocGuard { armed: true }),
        Ok(false) => None,
        // TLS teardown: cannot track reentrancy, proceed unguarded (the
        // thread is running destructors, not signal handlers' malloc).
        Err(_) => Some(AllocGuard { armed: false }),
    }
}

/// Whether the calling thread is currently inside an allocator entry
/// point. Read-only and async-signal-safe (one TLS flag read): the
/// crash reporter uses it to say whether the fault interrupted the
/// allocator itself or plain application code.
#[cfg(feature = "forensics")]
pub(crate) fn in_allocator() -> bool {
    IN_ALLOC.try_with(|flag| flag.get()).unwrap_or(false)
}

/// Counts a rejected reentrant entry. Recorded regardless of hardening
/// mode (there is no "trusting" answer to reentrancy — the call is
/// rejected either way); `Hardening::Abort` escalates to fail-stop like
/// every other misuse class.
#[cold]
pub(crate) fn reject_reentrant<S: PageSource>(inner: &Inner<S>, ptr: usize) {
    crate::harden::report(
        inner,
        MisuseReport {
            kind: MisuseKind::ReentrantAlloc,
            ptr,
            size_class: None,
            heap: 0,
            tid: crate::heap::thread_id(),
        },
    );
}

/// Test-only: simulates being inside an allocator entry point on the
/// calling thread, so tests can exercise the reentrancy rejection path
/// deterministically (without arranging a real signal to land inside
/// the fast path). Panics if the thread is already inside one.
#[doc(hidden)]
pub fn hold_reentrancy_guard_for_testing() -> impl Drop {
    enter_alloc().expect("thread already inside an allocator entry point")
}
