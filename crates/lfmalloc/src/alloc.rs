//! The malloc paths — a faithful transcription of the paper's Figure 4.
//!
//! `malloc` tries, in order: (1) the heap's active superblock, (2) a
//! partial superblock, (3) a new superblock, looping on transient
//! failures ("the thread tries the following in order until it allocates
//! a block").
//!
//! All functions here return **block start addresses**; the caller
//! ([`malloc_small`]) writes the descriptor prefix and applies the user
//! offset. This is the one structural generalization over the paper
//! (which hardcodes `addr + EIGHTBYTES`) and exists to support Rust
//! `Layout` alignments above 8 — at offset 8 the code is byte-for-byte
//! the paper's.

use crate::active::Active;
use crate::anchor::{SbState, MAX_BLOCKS};
use crate::config::{PREFIX_SIZE, SB_SIZE};
use crate::descriptor::Descriptor;
use crate::health::{watch, WatchSite};
use crate::heap::ProcHeap;
use crate::instance::Inner;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use osmem::PageSource;

/// Outcome of `MallocFromNewSB`.
enum NewSb {
    /// Allocation finished: `Some((block, descriptor))`, or `None` when
    /// the OS is out of memory.
    Done(Option<(usize, *const Descriptor)>),
    /// Lost the install race ("a new active superblock must have been
    /// installed by another thread"); retry the whole ladder.
    Lost,
}

/// Small-block malloc: the `while(1)` ladder of Figure 4's `malloc`.
///
/// `off` is the user-data offset inside the block (`>= PREFIX_SIZE`);
/// the descriptor prefix lands at `block + off - 8`.
///
/// # Safety
///
/// `ci` must be a valid class index and `off + 1 <= CLASS_SIZES[ci]`.
pub(crate) unsafe fn malloc_small<S: PageSource>(
    inner: &Inner<S>,
    ci: usize,
    off: usize,
) -> *mut u8 {
    // Intentionally planted bug, reachable only when the
    // `alloc.double_handout` failpoint is armed: hand out the previous
    // allocation of the same size class a second time — the observable
    // shape of a lost Active-word CAS that pops a stale reservation.
    // The shadow-heap oracle (crates/oracle) must catch this at the
    // duplicate insert, before the caller ever writes to the block.
    #[cfg(feature = "failpoints")]
    {
        if malloc_api::fail_point!("alloc.double_handout").retry {
            let stale = inner.bug_stash.load(Ordering::Relaxed);
            if stale != 0 && inner.bug_stash_ci.load(Ordering::Relaxed) == ci {
                return stale as *mut u8;
            }
        }
    }
    #[cfg(feature = "failpoints")]
    let stash = |p: *mut u8| {
        if !p.is_null() {
            inner.bug_stash_ci.store(ci, Ordering::Relaxed);
            inner.bug_stash.store(p as usize, Ordering::Relaxed);
        }
        p
    };
    #[cfg(not(feature = "failpoints"))]
    let stash = |p: *mut u8| p;
    let heap = inner.heap_for(ci);
    // Latency classification follows the serving arm: Active hits are
    // the fast path, partial/new-superblock hits the slow path.
    let t0 = crate::lat_start!();
    loop {
        if let Some((block, desc)) = unsafe { malloc_from_active(inner, heap) } {
            crate::stat!(inner, heap, malloc_fast);
            crate::stat_lat!(inner, lat_malloc_fast, t0);
            unsafe { note_alloc(inner, block, desc) };
            return stash(unsafe { finish_block(block, desc, off) });
        }
        if let Some((block, desc)) = unsafe { malloc_from_partial(inner, heap) } {
            crate::stat!(inner, heap, malloc_slow);
            crate::stat_lat!(inner, lat_malloc_slow, t0);
            unsafe { note_alloc(inner, block, desc) };
            return stash(unsafe { finish_block(block, desc, off) });
        }
        match unsafe { malloc_from_new_sb(inner, heap) } {
            NewSb::Done(Some((block, desc))) => {
                crate::stat!(inner, heap, malloc_newsb);
                crate::stat_lat!(inner, lat_malloc_slow, t0);
                unsafe { note_alloc(inner, block, desc) };
                return stash(unsafe { finish_block(block, desc, off) });
            }
            NewSb::Done(None) => return core::ptr::null_mut(),
            NewSb::Lost => continue,
        }
    }
}

/// Hardened-mode bookkeeping for a freshly obtained block: set its
/// allocation bit before the pointer can escape to the application (the
/// bit is this thread's exclusive property until `finish_block`
/// returns, so the set cannot race a legitimate free).
#[inline]
unsafe fn note_alloc<S: PageSource>(inner: &Inner<S>, block: usize, desc: *const Descriptor) {
    if inner.config.hardening == crate::harden::Hardening::Off {
        return;
    }
    let d = unsafe { &*desc };
    let idx = (block - d.sb() as usize) / d.sz() as usize;
    d.set_alloc_bit(idx);
}

/// Performs ONLY the first step of `MallocFromActive` — reserving a
/// credit — and then abandons the operation, simulating a thread that
/// was killed between the paper's lines 6 and 8. Returns true if a
/// reservation was abandoned (false if the heap had no active
/// superblock, in which case nothing observable happened).
///
/// The abandoned reservation permanently leaks one block — exactly what
/// a kill does — but, per the paper's kill-tolerance claim, must never
/// impede any other thread. Used by crash-tolerance tests only.
pub(crate) unsafe fn abandon_reservation<S: PageSource>(
    inner: &Inner<S>,
    ci: usize,
) -> bool {
    let heap = inner.heap_for(ci);
    let mut oldactive = heap.load_active();
    loop {
        if oldactive.is_null() {
            return false;
        }
        let newactive = if oldactive.credits() == 0 {
            Active::null()
        } else {
            oldactive.take_credit()
        };
        match heap.cas_active(oldactive, newactive) {
            Ok(()) => return true, // ...and die here, reservation in hand
            Err(observed) => oldactive = observed,
        }
    }
}

/// Writes the descriptor prefix at `block + off - 8` and returns the
/// user pointer `block + off` (paper line 21: `*addr = desc; return
/// addr+EIGHTBYTES`).
#[inline]
unsafe fn finish_block(block: usize, desc: *const Descriptor, off: usize) -> *mut u8 {
    unsafe {
        (*((block + off - PREFIX_SIZE) as *const AtomicUsize))
            .store(desc as usize, Ordering::Relaxed);
    }
    (block + off) as *mut u8
}

/// `MallocFromActive` (Figure 4): the common case. Two atomic steps:
/// reserve a credit from the `Active` word, then pop the reserved block
/// from the superblock's LIFO free list.
///
/// Returns the *block start* and descriptor, or `None` if the heap has
/// no active superblock.
unsafe fn malloc_from_active<S: PageSource>(
    inner: &Inner<S>,
    heap: &ProcHeap,
) -> Option<(usize, *const Descriptor)> {
    // -- First step: reserve block ------------------------------------
    // `reserve_tries`/`pop_tries` feed the CAS-retry histograms *and*
    // the liveness watchdog; forced-retry failpoint iterations count
    // too, so a seeded storm is indistinguishable from a real one.
    let mut reserve_tries: u64 = 0;
    let mut oldactive = heap.load_active();
    let reserved = loop {
        if oldactive.is_null() {
            return None; // line 2
        }
        let fp = malloc_api::fail_point!("active.reserve");
        if fp.kill {
            return None; // died before the reservation CAS: nothing taken
        }
        if fp.retry {
            reserve_tries += 1;
            watch(inner, heap, WatchSite::ActiveReserve, reserve_tries);
            oldactive = heap.load_active();
            continue;
        }
        let newactive = if oldactive.credits() == 0 {
            Active::null() // line 4: taking the last credit
        } else {
            oldactive.take_credit() // line 5
        };
        match heap.cas_active(oldactive, newactive) {
            Ok(()) => break oldactive, // line 6 success
            Err(observed) => {
                reserve_tries += 1;
                watch(inner, heap, WatchSite::ActiveReserve, reserve_tries);
                oldactive = observed;
            }
        }
    };
    crate::stat_hist!(inner, heap, active_cas, reserve_tries);
    // After this CAS we are *guaranteed* a block in this superblock;
    // the state may meanwhile become FULL, PARTIAL, or even the active
    // superblock of a different heap — but never EMPTY (paper §3.2.3).
    if malloc_api::fail_point!("active.reserved").kill {
        // The paper's canonical kill window (between lines 6 and 8):
        // the reservation leaks one block, same as `abandon_reservation`.
        return None;
    }
    let desc_ptr = reserved.desc();
    let desc = unsafe { &*desc_ptr };

    // -- Second step: pop block (lock-free LIFO pop with ABA tag) -----
    let mut pop_tries: u64 = 0;
    let mut morecredits = 0;
    let (block, oldanchor) = loop {
        if malloc_api::fail_point!("active.pop").retry {
            // Forced CAS-failure arm of the pop loop; counted so the
            // watchdog sees seeded storms.
            pop_tries += 1;
            watch(inner, heap, WatchSite::ActivePop, pop_tries);
            continue;
        }
        let oldanchor = desc.load_anchor(); // line 8
        let sb = desc.sb() as usize;
        let sz = desc.sz() as usize;
        let block = sb + oldanchor.avail() as usize * sz; // line 9
        // line 10: read the next free index from the block body. Atomic:
        // a racing thread may have already allocated this block and be
        // writing user data; the tag CAS below rejects that case.
        let next = unsafe { (*(block as *const AtomicU64)).load(Ordering::Acquire) };
        let mut newanchor = oldanchor
            .with_avail(next as u32 & (MAX_BLOCKS - 1)) // line 11 (masked: garbage is rejected by the CAS)
            .with_tag_bump(); // line 12
        if reserved.credits() == 0 {
            // line 13: we took the last credit; state must be ACTIVE.
            if oldanchor.count() == 0 {
                newanchor = newanchor.with_state(SbState::Full); // line 15
            } else {
                // lines 16-17: move as many credits as possible from the
                // anchor's count to the Active word.
                morecredits = oldanchor.count().min(inner.config.max_credits);
                newanchor = newanchor.with_count(oldanchor.count() - morecredits);
            }
        }
        if desc.cas_anchor(oldanchor, newanchor).is_ok() {
            break (block, oldanchor); // line 18
        }
        pop_tries += 1;
        watch(inner, heap, WatchSite::ActivePop, pop_tries);
    };
    crate::stat_hist!(inner, heap, anchor_cas, pop_tries);
    if reserved.credits() == 0 && oldanchor.count() > 0 {
        unsafe { update_active(inner, heap, desc_ptr, morecredits) }; // lines 19-20
    }
    Some((block, desc_ptr))
}

/// `UpdateActive` (Figure 4): try to reinstall `desc` as the active
/// superblock with `morecredits - 1` credits; if another superblock got
/// installed meanwhile, return the credits to the anchor and make the
/// superblock PARTIAL.
pub(crate) unsafe fn update_active<S: PageSource>(
    inner: &Inner<S>,
    heap: &ProcHeap,
    desc_ptr: *const Descriptor,
    morecredits: u32,
) {
    debug_assert!(morecredits >= 1);
    if malloc_api::fail_point!("active.update").kill {
        // Died holding `morecredits` reserved blocks: they leak, the
        // superblock floats unreferenced — legal per the paper's
        // availability argument.
        return;
    }
    let newactive = Active::pack(desc_ptr, morecredits - 1); // lines 1-2
    if heap.cas_active(Active::null(), newactive).is_ok() {
        return; // line 3
    }
    // Someone installed another active sb: return credits, go PARTIAL.
    let desc = unsafe { &*desc_ptr };
    let mut tries: u64 = 0;
    loop {
        let old = desc.load_anchor(); // line 4
        let new = old.with_count(old.count() + morecredits).with_state(SbState::Partial); // 5-6
        if desc.cas_anchor(old, new).is_ok() {
            break; // line 7
        }
        tries += 1;
        watch(inner, heap, WatchSite::UpdateActive, tries);
    }
    crate::stat_hist!(inner, heap, anchor_cas, tries);
    unsafe { heap_put_partial(inner, desc_ptr as *mut Descriptor) }; // line 8
}

/// `HeapPutPartial` (Figure 6): swap `desc` into the owning heap's
/// most-recently-used Partial slot; the displaced occupant (if any)
/// goes to the size class's partial list.
pub(crate) unsafe fn heap_put_partial<S: PageSource>(inner: &Inner<S>, desc: *mut Descriptor) {
    if malloc_api::fail_point!("partial.put").kill {
        // Died before re-linking: the descriptor (and its partial
        // superblock) leak, reachable from no structure.
        return;
    }
    let heap = unsafe { &*(*desc).heap() };
    crate::stat!(inner, heap, partial_push);
    let prev = heap.swap_partial(desc); // lines 1-2 (swap == CAS loop)
    if !prev.is_null() {
        let ci = heap.class();
        unsafe { inner.classes[ci].partial.put(&inner.domain, prev) }; // line 3
    }
}

/// `HeapGetPartial` (Figure 4): take the heap's Partial slot, falling
/// back to the size class's partial list.
unsafe fn heap_get_partial<S: PageSource>(
    inner: &Inner<S>,
    heap: &ProcHeap,
) -> Option<*mut Descriptor> {
    let mut tries: u64 = 0;
    loop {
        let fp = malloc_api::fail_point!("partial.get");
        if fp.kill {
            return None; // died before taking anything
        }
        if fp.retry {
            tries += 1;
            watch(inner, heap, WatchSite::PartialPop, tries);
            continue;
        }
        let desc = heap.load_partial(); // line 1
        if desc.is_null() {
            // line 3: ListGetPartial
            let got = unsafe { inner.classes[heap.class()].partial.get(&inner.domain) };
            if got.is_some() {
                crate::stat!(inner, heap, partial_pop);
            }
            return got;
        }
        if heap.cas_partial(desc, core::ptr::null_mut()) {
            crate::stat!(inner, heap, partial_pop);
            return Some(desc); // lines 4-5
        }
        tries += 1;
        watch(inner, heap, WatchSite::PartialPop, tries);
    }
}

/// `MallocFromPartial` (Figure 4): reserve `morecredits + 1` blocks from
/// a partial superblock in one CAS, pop one for the caller, and deposit
/// the rest in the Active word.
unsafe fn malloc_from_partial<S: PageSource>(
    inner: &Inner<S>,
    heap: &ProcHeap,
) -> Option<(usize, *const Descriptor)> {
    'retry: loop {
        let desc_ptr = unsafe { heap_get_partial(inner, heap) }?; // line 1-2
        if malloc_api::fail_point!("partial.reserve").kill {
            // Died holding a descriptor plucked from the partial list:
            // the descriptor and its superblock leak.
            return None;
        }
        let desc = unsafe { &*desc_ptr };
        desc.set_heap(heap as *const _ as *mut ProcHeap); // line 3

        // -- Reserve blocks (lines 4-10) -------------------------------
        let mut reserve_tries: u64 = 0;
        let morecredits = loop {
            let old = desc.load_anchor();
            if old.state() == SbState::Empty {
                // line 5-6: raced with the emptying free; recycle and
                // try another partial superblock.
                unsafe { inner.desc_pool.retire(&inner.domain, desc_ptr) };
                continue 'retry;
            }
            // "oldanchor state must be PARTIAL; oldanchor count must be > 0"
            debug_assert_eq!(old.state(), SbState::Partial);
            debug_assert!(old.count() > 0);
            let mc = (old.count() - 1).min(inner.config.max_credits); // line 7
            let new = old
                .with_count(old.count() - (mc + 1)) // line 8
                .with_state(if mc > 0 { SbState::Active } else { SbState::Full }); // line 9
            if desc.cas_anchor(old, new).is_ok() {
                break mc; // line 10
            }
            reserve_tries += 1;
            watch(inner, heap, WatchSite::PartialReserve, reserve_tries);
        };
        crate::stat_hist!(inner, heap, anchor_cas, reserve_tries);

        // -- Pop reserved block (lines 11-15) ---------------------------
        let mut pop_tries: u64 = 0;
        let block = loop {
            let old = desc.load_anchor();
            let sb = desc.sb() as usize;
            let sz = desc.sz() as usize;
            let block = sb + old.avail() as usize * sz; // line 12
            let next = unsafe { (*(block as *const AtomicU64)).load(Ordering::Acquire) };
            let new = old.with_avail(next as u32 & (MAX_BLOCKS - 1)).with_tag_bump(); // 13-14
            if desc.cas_anchor(old, new).is_ok() {
                break block; // line 15
            }
            pop_tries += 1;
            watch(inner, heap, WatchSite::PartialPop, pop_tries);
        };
        crate::stat_hist!(inner, heap, anchor_cas, pop_tries);
        if morecredits > 0 {
            unsafe { update_active(inner, heap, desc_ptr, morecredits) }; // lines 16-17
        }
        crate::stat!(inner, heap, partial_reuse);
        return Some((block, desc_ptr));
    }
}

/// `MallocFromNewSB` (Figure 4): build a fresh superblock and try to
/// install it as the heap's active superblock. On a lost race the
/// superblock and descriptor are recycled ("we prefer to deallocate the
/// superblock rather than take a block from it", §3.2.3).
unsafe fn malloc_from_new_sb<S: PageSource>(inner: &Inner<S>, heap: &ProcHeap) -> NewSb {
    let ci = heap.class();
    let sz = inner.classes[ci].sz as usize;
    let retries = inner.config.oom_retries;
    // line 1, with bounded backoff: a transient source outage (or a
    // momentarily drained reserve) should not surface as spurious OOM.
    let desc_ptr = crate::retry::with_backoff(retries, || {
        let p = unsafe { inner.desc_pool.alloc(&inner.domain, &inner.source) as *mut u8 };
        if p.is_null() {
            crate::stat_global!(inner, oom_backoffs);
        }
        p
    }) as *mut Descriptor;
    if desc_ptr.is_null() {
        crate::stat_event!(inner, OomBackoff, ci, 0);
        return NewSb::Done(None); // OS exhausted
    }
    let desc = unsafe { &*desc_ptr };
    // line 2, same retry policy.
    let sb = crate::retry::with_backoff(retries, || {
        let p = inner.sb_pool.alloc(&inner.source);
        if p.is_null() {
            crate::stat_global!(inner, oom_backoffs);
        }
        p
    });
    if sb.is_null() {
        unsafe { inner.desc_pool.retire(&inner.domain, desc_ptr) };
        crate::stat_event!(inner, OomBackoff, ci, 0);
        return NewSb::Done(None);
    }
    let maxcount = (SB_SIZE / sz) as u32;
    // line 3: organize blocks in a linked list starting with index 0.
    for i in 0..maxcount {
        unsafe {
            (*((sb as usize + i as usize * sz) as *const AtomicU64))
                .store(i as u64 + 1, Ordering::Relaxed);
        }
    }
    desc.set_heap(heap as *const _ as *mut ProcHeap); // line 4
    desc.set_sb(sb);
    desc.set_sz(sz as u32); // line 6
    desc.set_maxcount(maxcount); // line 7
    if inner.config.hardening != crate::harden::Hardening::Off {
        // A recycled descriptor can carry stale allocation bits from
        // blocks leaked on its previous superblock (kill-injected
        // frees); this superblock starts with every block free.
        desc.reset_alloc_bits();
    }
    let credits = (maxcount - 1).min(inner.config.max_credits) - 1; // line 9
    let count = (maxcount - 1) - (credits + 1); // line 10
    // lines 5, 10, 11 — preserving the descriptor's tag sequence across
    // reuse keeps the ABA argument intact.
    let anchor = desc
        .load_anchor()
        .with_avail(1)
        .with_count(count)
        .with_state(SbState::Active)
        .with_tag_bump();
    desc.store_anchor(anchor); // line 12's fence == this release store
    let newactive = Active::pack(desc_ptr, credits);
    if heap.cas_active(Active::null(), newactive).is_ok() {
        // line 13 success: block 0 is ours.
        crate::stat_event!(inner, SbAcquire, ci, sb as usize);
        NewSb::Done(Some((sb as usize, desc_ptr)))
    } else {
        // lines 16-17: lost the race; recycle everything.
        unsafe {
            inner.sb_pool.dealloc(sb);
            inner.desc_pool.retire(&inner.domain, desc_ptr);
        }
        NewSb::Lost
    }
}
