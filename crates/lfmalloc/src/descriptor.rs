//! Superblock descriptors and their lock-free recycling pool.
//!
//! Paper, Figure 3:
//!
//! ```text
//! typedef descriptor :
//!     anchor Anchor;     // fits in one atomic block
//!     descriptor* Next;
//!     void* sb;          // pointer to superblock
//!     procheap* heap;    // pointer to owner procheap
//!     unsigned sz;       // block size
//!     unsigned maxcount; // superblock size/sz
//! ```
//!
//! Descriptors are allocated from 16 KiB descriptor superblocks and
//! recycled through `DescAvail`, a lock-free LIFO whose pop is made
//! ABA-safe with hazard pointers ("SafeCAS", §3.2.5, Figure 7).
//! "In the current implementation, superblock descriptors are not reused
//! as regular blocks and cannot be returned to the OS. This is
//! acceptable as descriptors constitute on average less than 1% of
//! allocated memory" — we reproduce that: descriptor slabs live until
//! the allocator instance is torn down.

use crate::anchor::Anchor;
use crate::config::SB_SHIFT;
use crate::heap::ProcHeap;
use core::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use hazard::{HazardDomain, Slot};
use lockfree_structs::{HpStack, Intrusive};
use osmem::{PagePool, PageSource};

/// Hazard slot reserved for `DescAvail` pops (slots 0–2 belong to the
/// partial-list queues).
pub const SLOT_DESC: Slot = Slot(3);

/// A superblock descriptor (64-byte aligned so the `Active` word can
/// pack credits into the pointer's low bits).
#[repr(C, align(64))]
#[derive(Debug)]
pub struct Descriptor {
    /// The packed `(avail, count, state, tag)` word; every state change
    /// of the superblock is one CAS on this field.
    anchor: AtomicU64,
    /// `DescAvail` free-list link (also used by the LIFO partial-list
    /// ablation; the two uses are mutually exclusive in time).
    next: AtomicPtr<Descriptor>,
    /// Base address of the described superblock.
    sb: AtomicPtr<u8>,
    /// The processor heap that most recently owned this superblock.
    heap: AtomicPtr<ProcHeap>,
    /// Block size (total, prefix included).
    sz: AtomicU32,
    /// Blocks per superblock (`sbsize / sz`).
    maxcount: AtomicU32,
}

unsafe impl Intrusive for Descriptor {
    fn next_link(&self) -> &AtomicPtr<Descriptor> {
        &self.next
    }
}

impl Descriptor {
    /// Loads the anchor with acquire ordering (pairs with the release
    /// CAS of every anchor update).
    #[inline]
    pub fn load_anchor(&self) -> Anchor {
        Anchor::from_raw(self.anchor.load(Ordering::Acquire))
    }

    /// One CAS attempt on the anchor: the paper's
    /// `until CAS(&desc->Anchor, oldanchor, newanchor)` step.
    ///
    /// Release on success publishes the free-list link written before a
    /// free (paper's memory fence, free line 17); acquire on both
    /// outcomes keeps the retry loop reading fresh state.
    #[inline]
    pub fn cas_anchor(&self, old: Anchor, new: Anchor) -> Result<(), Anchor> {
        match self.anchor.compare_exchange(
            old.raw(),
            new.raw(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(observed) => Err(Anchor::from_raw(observed)),
        }
    }

    /// Stores the anchor outside of any race (superblock construction).
    #[inline]
    pub fn store_anchor(&self, a: Anchor) {
        self.anchor.store(a.raw(), Ordering::Release);
    }

    /// Superblock base address.
    #[inline]
    pub fn sb(&self) -> *mut u8 {
        self.sb.load(Ordering::Relaxed)
    }

    /// Sets the superblock base (construction only).
    #[inline]
    pub fn set_sb(&self, sb: *mut u8) {
        self.sb.store(sb, Ordering::Relaxed);
    }

    /// Owning heap (the heap the superblock last belonged to).
    #[inline]
    pub fn heap(&self) -> *mut ProcHeap {
        self.heap.load(Ordering::Acquire)
    }

    /// Reassigns the owning heap (`MallocFromPartial` line 3 /
    /// `MallocFromNewSB` line 4).
    #[inline]
    pub fn set_heap(&self, heap: *mut ProcHeap) {
        self.heap.store(heap, Ordering::Release);
    }

    /// Total block size.
    #[inline]
    pub fn sz(&self) -> u32 {
        self.sz.load(Ordering::Relaxed)
    }

    /// Sets the block size (construction only).
    #[inline]
    pub fn set_sz(&self, sz: u32) {
        self.sz.store(sz, Ordering::Relaxed);
    }

    /// Blocks per superblock.
    #[inline]
    pub fn maxcount(&self) -> u32 {
        self.maxcount.load(Ordering::Relaxed)
    }

    /// Sets the block count (construction only).
    #[inline]
    pub fn set_maxcount(&self, n: u32) {
        self.maxcount.store(n, Ordering::Relaxed);
    }
}

/// Descriptors per 16 KiB descriptor superblock.
pub const DESC_PER_SLAB: usize = (1 << SB_SHIFT) / core::mem::size_of::<Descriptor>();

/// The descriptor allocation pool: `DescAvail` plus slab refill
/// (Figure 7's `DescAlloc`/`DescRetire`).
#[derive(Debug)]
pub struct DescriptorPool {
    avail: HpStack<Descriptor>,
    /// Descriptor superblocks; never released until instance teardown.
    slabs: PagePool<SB_SHIFT>,
}

impl DescriptorPool {
    /// Creates an empty pool.
    pub const fn new() -> Self {
        DescriptorPool { avail: HpStack::new(), slabs: PagePool::new(1) }
    }

    /// `DescAlloc`: pops an available descriptor, refilling from a fresh
    /// descriptor superblock when empty.
    ///
    /// Deviation from Figure 7: on refill the paper installs the whole
    /// remainder chain with one `CAS(&DescAvail, NULL, ...)` and gives
    /// the slab back if it loses the race; we push the remainder
    /// individually (unconditionally correct, at worst a few extra slabs
    /// under a cold-start race).
    ///
    /// # Safety
    ///
    /// `domain` must be this pool's domain for the instance's lifetime.
    pub unsafe fn alloc<S: PageSource>(
        &self,
        domain: &HazardDomain,
        source: &S,
    ) -> *mut Descriptor {
        let fp = malloc_api::fail_point!("desc.alloc");
        if fp.kill {
            return core::ptr::null_mut(); // the caller sees OOM
        }
        if !fp.retry {
            // `retry` skips the `DescAvail` fast path once, forcing the
            // slab-refill slow path even when descriptors are available.
            if let Some(d) = unsafe { self.avail.pop(domain, SLOT_DESC) } {
                return d;
            }
        }
        let slab = self.slabs.alloc(source);
        if slab.is_null() {
            // OS exhausted; one more look at the free list.
            return unsafe { self.avail.pop(domain, SLOT_DESC) }
                .unwrap_or(core::ptr::null_mut());
        }
        // The slab arrives zeroed (mmap semantics): all-zero bytes are a
        // valid Descriptor (null pointers, zero anchor).
        let descs = slab as *mut Descriptor;
        for i in 1..DESC_PER_SLAB {
            // Fresh descriptors were never popped; direct push is safe.
            unsafe { self.avail.push(descs.add(i)) };
        }
        descs
    }

    /// `DescRetire`: hands the descriptor to the hazard domain; it
    /// returns to `DescAvail` once no thread protects it. This is what
    /// makes the pop's CAS ABA-safe.
    ///
    /// # Safety
    ///
    /// `desc` must be unreachable from every allocator structure, and
    /// `self` must be address-stable until the domain drops.
    pub unsafe fn retire(&self, domain: &HazardDomain, desc: *mut Descriptor) {
        if malloc_api::fail_point!("desc.retire").kill {
            return; // died before retiring: the descriptor leaks
        }
        unsafe fn reclaim(ctx: *mut u8, ptr: *mut u8) {
            let pool = unsafe { &*(ctx as *const DescriptorPool) };
            unsafe { pool.avail.push(ptr as *mut Descriptor) };
        }
        unsafe { domain.retire(desc as *mut u8, self as *const _ as *mut u8, reclaim) };
    }

    /// Number of descriptor slabs mapped (diagnostics; "less than 1% of
    /// allocated memory" in the paper's accounting).
    pub fn slab_count(&self) -> usize {
        self.slabs.hyperblock_count()
    }

    /// Bytes mapped for descriptor slabs (audit accounting).
    pub fn mapped_bytes(&self) -> usize {
        self.slabs.mapped_bytes()
    }

    /// Every descriptor slot in every slab, whether handed out or still
    /// on `DescAvail`. The slab registry is append-only, so this is a
    /// valid prefix even under concurrency.
    pub fn all_descriptors(&self) -> Vec<*mut Descriptor> {
        let mut out = Vec::new();
        for (base, bytes) in self.slabs.hyperblocks() {
            let n = bytes / core::mem::size_of::<Descriptor>();
            let descs = base as *mut Descriptor;
            for i in 0..n {
                out.push(unsafe { descs.add(i) });
            }
        }
        out
    }

    /// Descriptors currently free on `DescAvail`.
    ///
    /// # Safety
    ///
    /// Requires quiescence: no concurrent `alloc`/`retire`.
    pub unsafe fn free_descriptors(&self) -> Vec<*mut Descriptor> {
        unsafe { self.avail.snapshot() }
    }

    /// Releases all descriptor slabs.
    ///
    /// # Safety
    ///
    /// Exclusive quiescence; every descriptor becomes dangling.
    pub unsafe fn release_all<S: PageSource>(&self, source: &S) {
        unsafe { self.slabs.release_all(source) };
    }
}

impl Default for DescriptorPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::SbState;
    use osmem::SystemSource;

    #[test]
    fn descriptor_is_64_bytes_and_64_aligned() {
        assert_eq!(core::mem::size_of::<Descriptor>(), 64);
        assert_eq!(core::mem::align_of::<Descriptor>(), 64);
        assert_eq!(DESC_PER_SLAB, 256);
    }

    #[test]
    fn pool_allocates_distinct_aligned_descriptors() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        let mut seen = std::collections::HashSet::new();
        unsafe {
            for _ in 0..DESC_PER_SLAB * 2 + 3 {
                let d = pool.alloc(&domain, &src);
                assert!(!d.is_null());
                assert_eq!(d as usize % 64, 0);
                assert!(seen.insert(d as usize), "descriptor handed out twice");
            }
        }
        assert_eq!(pool.slab_count(), 3);
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn retired_descriptor_is_recycled() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            let first = pool.alloc(&domain, &src);
            pool.retire(&domain, first);
            domain.flush();
            // With one slab of fresh descriptors available the recycled
            // one sits on top of the LIFO.
            let again = pool.alloc(&domain, &src);
            assert_eq!(again, first, "retired descriptor should be reused first");
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn anchor_cas_failure_returns_observed() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            let d = &*pool.alloc(&domain, &src);
            let a0 = d.load_anchor();
            let a1 = a0.with_count(5).with_state(SbState::Partial);
            d.cas_anchor(a0, a1).unwrap();
            // Stale CAS must fail and report the current value.
            let err = d.cas_anchor(a0, a0.with_count(9)).unwrap_err();
            assert_eq!(err.raw(), a1.raw());
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn fresh_descriptor_fields_are_zero() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            let d = &*pool.alloc(&domain, &src);
            assert!(d.sb().is_null());
            assert!(d.heap().is_null());
            assert_eq!(d.sz(), 0);
            assert_eq!(d.load_anchor().raw(), 0);
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }
}
