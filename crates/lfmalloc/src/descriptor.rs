//! Superblock descriptors and their lock-free recycling pool.
//!
//! Paper, Figure 3:
//!
//! ```text
//! typedef descriptor :
//!     anchor Anchor;     // fits in one atomic block
//!     descriptor* Next;
//!     void* sb;          // pointer to superblock
//!     procheap* heap;    // pointer to owner procheap
//!     unsigned sz;       // block size
//!     unsigned maxcount; // superblock size/sz
//! ```
//!
//! Descriptors are allocated from 16 KiB descriptor superblocks and
//! recycled through `DescAvail`, a lock-free LIFO whose pop is made
//! ABA-safe with hazard pointers ("SafeCAS", §3.2.5, Figure 7).
//! "In the current implementation, superblock descriptors are not reused
//! as regular blocks and cannot be returned to the OS. This is
//! acceptable as descriptors constitute on average less than 1% of
//! allocated memory" — we reproduce that: descriptor slabs live until
//! the allocator instance is torn down.

use crate::anchor::Anchor;
use crate::config::SB_SHIFT;
use crate::heap::ProcHeap;
use core::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use hazard::{HazardDomain, Slot};
use lockfree_structs::{HpStack, Intrusive};
use osmem::{PagePool, PageSource};

/// Hazard slot reserved for `DescAvail` pops (slots 0–2 belong to the
/// partial-list queues).
pub const SLOT_DESC: Slot = Slot(3);

/// Words in the hardened-mode allocation bitmap: one bit per block,
/// sized for the smallest class (16-byte blocks, prefix included →
/// `SB_SIZE / 16` = 1024 blocks per superblock).
pub const BITMAP_WORDS: usize = (1 << SB_SHIFT) / 16 / 64;

/// A superblock descriptor (64-byte aligned so the `Active` word can
/// pack credits into the pointer's low bits).
#[repr(C, align(64))]
#[derive(Debug)]
pub struct Descriptor {
    /// The packed `(avail, count, state, tag)` word; every state change
    /// of the superblock is one CAS on this field.
    anchor: AtomicU64,
    /// `DescAvail` free-list link (also used by the LIFO partial-list
    /// ablation; the two uses are mutually exclusive in time).
    next: AtomicPtr<Descriptor>,
    /// Base address of the described superblock.
    sb: AtomicPtr<u8>,
    /// The processor heap that most recently owned this superblock.
    heap: AtomicPtr<ProcHeap>,
    /// Block size (total, prefix included).
    sz: AtomicU32,
    /// Blocks per superblock (`sbsize / sz`).
    maxcount: AtomicU32,
    /// Hardened-mode allocation bitmap: bit `i` is set while block `i`
    /// is handed out to the application. All zero (and untouched on the
    /// hot paths) when hardening is off; the double-free arbiter when it
    /// is on. Grows the descriptor from 64 to 192 bytes — the paper's
    /// "less than 1% of allocated memory" bound still holds.
    bitmap: [AtomicU64; BITMAP_WORDS],
}

unsafe impl Intrusive for Descriptor {
    fn next_link(&self) -> &AtomicPtr<Descriptor> {
        &self.next
    }
}

impl Descriptor {
    /// Loads the anchor with acquire ordering (pairs with the release
    /// CAS of every anchor update).
    #[inline]
    pub fn load_anchor(&self) -> Anchor {
        Anchor::from_raw(self.anchor.load(Ordering::Acquire))
    }

    /// One CAS attempt on the anchor: the paper's
    /// `until CAS(&desc->Anchor, oldanchor, newanchor)` step.
    ///
    /// Release on success publishes the free-list link written before a
    /// free (paper's memory fence, free line 17); acquire on both
    /// outcomes keeps the retry loop reading fresh state.
    #[inline]
    pub fn cas_anchor(&self, old: Anchor, new: Anchor) -> Result<(), Anchor> {
        match self.anchor.compare_exchange(
            old.raw(),
            new.raw(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(observed) => Err(Anchor::from_raw(observed)),
        }
    }

    /// Stores the anchor outside of any race (superblock construction).
    #[inline]
    pub fn store_anchor(&self, a: Anchor) {
        self.anchor.store(a.raw(), Ordering::Release);
    }

    /// Superblock base address.
    #[inline]
    pub fn sb(&self) -> *mut u8 {
        self.sb.load(Ordering::Relaxed)
    }

    /// Sets the superblock base (construction only).
    #[inline]
    pub fn set_sb(&self, sb: *mut u8) {
        self.sb.store(sb, Ordering::Relaxed);
    }

    /// Owning heap (the heap the superblock last belonged to).
    #[inline]
    pub fn heap(&self) -> *mut ProcHeap {
        self.heap.load(Ordering::Acquire)
    }

    /// Reassigns the owning heap (`MallocFromPartial` line 3 /
    /// `MallocFromNewSB` line 4).
    #[inline]
    pub fn set_heap(&self, heap: *mut ProcHeap) {
        self.heap.store(heap, Ordering::Release);
    }

    /// Total block size.
    #[inline]
    pub fn sz(&self) -> u32 {
        self.sz.load(Ordering::Relaxed)
    }

    /// Sets the block size (construction only).
    #[inline]
    pub fn set_sz(&self, sz: u32) {
        self.sz.store(sz, Ordering::Relaxed);
    }

    /// Blocks per superblock.
    #[inline]
    pub fn maxcount(&self) -> u32 {
        self.maxcount.load(Ordering::Relaxed)
    }

    /// Sets the block count (construction only).
    #[inline]
    pub fn set_maxcount(&self, n: u32) {
        self.maxcount.store(n, Ordering::Relaxed);
    }

    /// Marks block `idx` allocated (hardened mode); returns `false` if
    /// the bit was already set — an accounting violation, since the
    /// caller holds exclusive rights to a freshly obtained block.
    #[inline]
    pub fn set_alloc_bit(&self, idx: usize) -> bool {
        let prev = self.bitmap[idx / 64].fetch_or(1 << (idx % 64), Ordering::AcqRel);
        prev & (1 << (idx % 64)) == 0
    }

    /// Clears block `idx`'s allocated bit; returns `true` iff this call
    /// cleared it. Concurrent double frees race on this `fetch_and`:
    /// exactly one caller wins, every loser learns the block was already
    /// free — without ever touching the anchor.
    #[inline]
    pub fn clear_alloc_bit(&self, idx: usize) -> bool {
        let prev = self.bitmap[idx / 64].fetch_and(!(1 << (idx % 64)), Ordering::AcqRel);
        prev & (1 << (idx % 64)) != 0
    }

    /// Whether block `idx` is currently marked allocated.
    #[inline]
    pub fn alloc_bit(&self, idx: usize) -> bool {
        self.bitmap[idx / 64].load(Ordering::Acquire) & (1 << (idx % 64)) != 0
    }

    /// Number of blocks marked allocated (audit cross-check).
    pub fn alloc_bit_count(&self) -> u32 {
        self.bitmap.iter().map(|w| w.load(Ordering::Acquire).count_ones()).sum()
    }

    /// Zeroes the bitmap (superblock construction: a recycled descriptor
    /// can carry stale bits from kill-injected frees on its previous
    /// superblock).
    pub fn reset_alloc_bits(&self) {
        for w in &self.bitmap {
            w.store(0, Ordering::Relaxed);
        }
    }
}

/// Descriptors per 16 KiB descriptor superblock.
pub const DESC_PER_SLAB: usize = (1 << SB_SHIFT) / core::mem::size_of::<Descriptor>();

/// Size of the emergency descriptor reserve (see [`DescriptorPool`]).
///
/// `free()` never allocates a descriptor, but EMPTY-transition
/// processing and partial-list maintenance retire and re-acquire them;
/// 64 descriptors (one quarter slab, 4 KiB) comfortably covers every
/// in-flight descriptor need of a burst of threads while user memory is
/// exhausted.
pub const DESC_RESERVE_TARGET: usize = 64;

/// The descriptor allocation pool: `DescAvail` plus slab refill
/// (Figure 7's `DescAlloc`/`DescRetire`).
#[derive(Debug)]
pub struct DescriptorPool {
    avail: HpStack<Descriptor>,
    /// Emergency reserve, consulted only when both `avail` and the slab
    /// refill path come up empty. Topped back up opportunistically from
    /// fresh slabs and from retired descriptors, so descriptor
    /// allocation keeps succeeding during an OS outage.
    reserve: HpStack<Descriptor>,
    /// Approximate occupancy of `reserve` (monotone counters around the
    /// pushes/pops; small transient undercounts are harmless — they only
    /// bias a descriptor toward the reserve).
    reserve_len: AtomicUsize,
    /// Descriptor superblocks; never released until instance teardown.
    slabs: PagePool<SB_SHIFT>,
}

impl DescriptorPool {
    /// Creates an empty pool.
    pub const fn new() -> Self {
        DescriptorPool {
            avail: HpStack::new(),
            reserve: HpStack::new(),
            reserve_len: AtomicUsize::new(0),
            slabs: PagePool::new(1),
        }
    }

    /// `DescAlloc`: pops an available descriptor, refilling from a fresh
    /// descriptor superblock when empty.
    ///
    /// Deviation from Figure 7: on refill the paper installs the whole
    /// remainder chain with one `CAS(&DescAvail, NULL, ...)` and gives
    /// the slab back if it loses the race; we push the remainder
    /// individually (unconditionally correct, at worst a few extra slabs
    /// under a cold-start race).
    ///
    /// # Safety
    ///
    /// `domain` must be this pool's domain for the instance's lifetime.
    pub unsafe fn alloc<S: PageSource>(
        &self,
        domain: &HazardDomain,
        source: &S,
    ) -> *mut Descriptor {
        let fp = malloc_api::fail_point!("desc.alloc");
        if fp.kill {
            return core::ptr::null_mut(); // the caller sees OOM
        }
        if !fp.retry {
            // `retry` skips the `DescAvail` fast path once, forcing the
            // slab-refill slow path even when descriptors are available.
            if let Some(d) = unsafe { self.avail.pop(domain, SLOT_DESC) } {
                return d;
            }
        }
        let slab = self.slabs.alloc(source);
        if slab.is_null() {
            // OS exhausted; one more look at the free list, then the
            // emergency reserve — this is the path that keeps EMPTY-
            // transition processing alive while user memory is gone.
            if let Some(d) = unsafe { self.avail.pop(domain, SLOT_DESC) } {
                return d;
            }
            if let Some(d) = unsafe { self.reserve.pop(domain, SLOT_DESC) } {
                self.reserve_len.fetch_sub(1, Ordering::Relaxed);
                return d;
            }
            return core::ptr::null_mut();
        }
        // The slab arrives zeroed (mmap semantics): all-zero bytes are a
        // valid Descriptor (null pointers, zero anchor). Top up the
        // emergency reserve first, then feed `DescAvail`.
        let descs = slab as *mut Descriptor;
        for i in 1..DESC_PER_SLAB {
            // Fresh descriptors were never popped; direct push is safe.
            if self.reserve_len.load(Ordering::Relaxed) < DESC_RESERVE_TARGET {
                unsafe { self.reserve.push(descs.add(i)) };
                self.reserve_len.fetch_add(1, Ordering::Relaxed);
            } else {
                unsafe { self.avail.push(descs.add(i)) };
            }
        }
        descs
    }

    /// `DescRetire`: hands the descriptor to the hazard domain; it
    /// returns to `DescAvail` once no thread protects it. This is what
    /// makes the pop's CAS ABA-safe.
    ///
    /// # Safety
    ///
    /// `desc` must be unreachable from every allocator structure, and
    /// `self` must be address-stable until the domain drops.
    pub unsafe fn retire(&self, domain: &HazardDomain, desc: *mut Descriptor) {
        if malloc_api::fail_point!("desc.retire").kill {
            return; // died before retiring: the descriptor leaks
        }
        unsafe fn reclaim(ctx: *mut u8, ptr: *mut u8) {
            let pool = unsafe { &*(ctx as *const DescriptorPool) };
            // Refill the emergency reserve before the general free list,
            // so an outage-depleted reserve recovers as load continues.
            if pool.reserve_len.load(Ordering::Relaxed) < DESC_RESERVE_TARGET {
                unsafe { pool.reserve.push(ptr as *mut Descriptor) };
                pool.reserve_len.fetch_add(1, Ordering::Relaxed);
            } else {
                unsafe { pool.avail.push(ptr as *mut Descriptor) };
            }
        }
        unsafe { domain.retire(desc as *mut u8, self as *const _ as *mut u8, reclaim) };
    }

    /// Number of descriptor slabs mapped (diagnostics; "less than 1% of
    /// allocated memory" in the paper's accounting).
    pub fn slab_count(&self) -> usize {
        self.slabs.hyperblock_count()
    }

    /// Bytes mapped for descriptor slabs (audit accounting).
    pub fn mapped_bytes(&self) -> usize {
        self.slabs.mapped_bytes()
    }

    /// Lifetime number of descriptor slabs carved from the OS.
    #[cfg(feature = "stats")]
    pub fn carve_count(&self) -> u64 {
        self.slabs.carve_count()
    }

    /// Every descriptor slot in every slab, whether handed out or still
    /// on `DescAvail`. The slab registry is append-only, so this is a
    /// valid prefix even under concurrency.
    pub fn all_descriptors(&self) -> Vec<*mut Descriptor> {
        let mut out = Vec::new();
        for (base, bytes) in self.slabs.hyperblocks() {
            let n = bytes / core::mem::size_of::<Descriptor>();
            let descs = base as *mut Descriptor;
            for i in 0..n {
                out.push(unsafe { descs.add(i) });
            }
        }
        out
    }

    /// Calls `f` with every descriptor slot without allocating — the
    /// crash-forensics variant of
    /// [`all_descriptors`](Self::all_descriptors). The slab registry
    /// walk is the same lock-free chain as [`owns`](Self::owns), so
    /// this is safe from a signal handler; slot *contents* are as
    /// untrusted as ever.
    pub fn for_each_descriptor(&self, mut f: impl FnMut(*mut Descriptor)) {
        self.slabs.for_each_region(|base, bytes| {
            let n = bytes / core::mem::size_of::<Descriptor>();
            let descs = base as *mut Descriptor;
            for i in 0..n {
                f(unsafe { descs.add(i) });
            }
        });
    }

    /// Whether `addr` lies anywhere inside this pool's slab mappings —
    /// coarser than [`owns`](Self::owns) (no slot-stride requirement):
    /// the "is this descriptor metadata?" question `describe_ptr` asks
    /// about arbitrary addresses. Lock-free and allocation-free.
    pub fn owns_addr(&self, addr: usize) -> bool {
        self.slabs.owning_region(addr).is_some()
    }

    /// Descriptors currently free on `DescAvail`.
    ///
    /// # Safety
    ///
    /// Requires quiescence: no concurrent `alloc`/`retire`.
    pub unsafe fn free_descriptors(&self) -> Vec<*mut Descriptor> {
        unsafe { self.avail.snapshot() }
    }

    /// Descriptors currently parked in the emergency reserve.
    ///
    /// # Safety
    ///
    /// Requires quiescence: no concurrent `alloc`/`retire`.
    pub unsafe fn reserve_descriptors(&self) -> Vec<*mut Descriptor> {
        unsafe { self.reserve.snapshot() }
    }

    /// Approximate emergency-reserve occupancy (diagnostics).
    pub fn reserve_len(&self) -> usize {
        self.reserve_len.load(Ordering::Relaxed)
    }

    /// Whether `desc` points at a valid descriptor slot inside one of
    /// this pool's slabs — the provenance question a hardened free asks
    /// about the pointer recovered from a block prefix *before*
    /// dereferencing it. Lock-free and allocation-free.
    pub fn owns(&self, desc: *const Descriptor) -> bool {
        let addr = desc as usize;
        match self.slabs.owning_region(addr) {
            None => false,
            Some((base, _)) => {
                // Slabs tile the hyperblock; descriptors tile each slab
                // at `size_of::<Descriptor>()` stride, with unusable
                // slack past `DESC_PER_SLAB` slots.
                let slab_off = (addr - base) % (1 << SB_SHIFT);
                slab_off % core::mem::size_of::<Descriptor>() == 0
                    && slab_off / core::mem::size_of::<Descriptor>() < DESC_PER_SLAB
            }
        }
    }

    /// Unmaps descriptor slabs whose [`DESC_PER_SLAB`] slots are all
    /// free, returning the bytes released. Surviving free descriptors are re-stacked
    /// reserve-first so the emergency reserve stays topped up.
    ///
    /// # Safety
    ///
    /// Requires quiescence: no concurrent operation on this pool or its
    /// hazard `domain` (retired descriptors must already be flushed back
    /// — call `HazardDomain::flush_all` first), and `source` must be the
    /// pool's page source.
    pub unsafe fn trim<S: PageSource>(&self, domain: &HazardDomain, source: &S) -> usize {
        // Drain both free stacks. Under quiescence pop cannot ABA, and
        // every popped descriptor re-enters only by the direct pushes
        // below (fresh-push discipline holds: no concurrent pops exist).
        let mut free: Vec<*mut Descriptor> = Vec::new();
        while let Some(d) = unsafe { self.avail.pop(domain, SLOT_DESC) } {
            free.push(d);
        }
        while let Some(d) = unsafe { self.reserve.pop(domain, SLOT_DESC) } {
            free.push(d);
        }
        self.reserve_len.store(0, Ordering::Relaxed);
        // A slab is a trim victim iff every one of its slots is free.
        let mut victims: Vec<(usize, usize)> = Vec::new();
        for (base, bytes) in self.slabs.hyperblocks() {
            let (base, n) = (base as usize, bytes / core::mem::size_of::<Descriptor>());
            let free_here =
                free.iter().filter(|&&d| (d as usize) >= base && (d as usize) < base + bytes).count();
            if free_here == n {
                victims.push((base, bytes));
            }
        }
        for &(base, bytes) in &victims {
            free.retain(|&d| (d as usize) < base || (d as usize) >= base + bytes);
            unsafe { self.slabs.dealloc(base as *mut u8) };
        }
        // Re-stack survivors, reserve first.
        for d in free {
            if self.reserve_len.load(Ordering::Relaxed) < DESC_RESERVE_TARGET {
                unsafe { self.reserve.push(d) };
                self.reserve_len.fetch_add(1, Ordering::Relaxed);
            } else {
                unsafe { self.avail.push(d) };
            }
        }
        unsafe { self.slabs.trim(source) }
    }

    /// Releases all descriptor slabs.
    ///
    /// # Safety
    ///
    /// Exclusive quiescence; every descriptor becomes dangling.
    pub unsafe fn release_all<S: PageSource>(&self, source: &S) {
        unsafe { self.slabs.release_all(source) };
    }
}

impl Default for DescriptorPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::SbState;
    use osmem::SystemSource;

    #[test]
    fn descriptor_is_cacheline_aligned_with_bitmap() {
        // 40 bytes of paper fields + 128 bytes of allocation bitmap,
        // rounded to the 64-byte alignment the Active word needs.
        assert_eq!(core::mem::size_of::<Descriptor>(), 192);
        assert_eq!(core::mem::align_of::<Descriptor>(), 64);
        assert_eq!(DESC_PER_SLAB, 85);
        // The bitmap covers the densest class: 16-byte blocks.
        assert_eq!(BITMAP_WORDS * 64, (1 << SB_SHIFT) / 16);
    }

    #[test]
    fn alloc_bits_set_clear_and_race_semantics() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            let d = &*pool.alloc(&domain, &src);
            assert_eq!(d.alloc_bit_count(), 0, "fresh descriptor starts clear");
            assert!(d.set_alloc_bit(0));
            assert!(d.set_alloc_bit(1023), "highest 16-byte-class index");
            assert!(!d.set_alloc_bit(0), "re-set reports the violation");
            assert_eq!(d.alloc_bit_count(), 2);
            assert!(d.alloc_bit(0) && d.alloc_bit(1023) && !d.alloc_bit(7));
            assert!(d.clear_alloc_bit(0), "first clear wins");
            assert!(!d.clear_alloc_bit(0), "second clear is the double free");
            d.reset_alloc_bits();
            assert_eq!(d.alloc_bit_count(), 0);
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn pool_owns_exactly_its_descriptor_slots() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        assert!(!pool.owns(core::ptr::null()), "empty pool owns nothing");
        unsafe {
            let d = pool.alloc(&domain, &src);
            assert!(pool.owns(d));
            // Misaligned interior pointer: inside the slab, wrong stride.
            assert!(!pool.owns((d as usize + 8) as *const Descriptor));
            // Slack past the last whole descriptor slot.
            let (base, _) = pool
                .slabs
                .owning_region(d as usize)
                .expect("slab registered");
            let slack = base + DESC_PER_SLAB * core::mem::size_of::<Descriptor>();
            assert!(!pool.owns(slack as *const Descriptor));
            // Memory the pool never mapped.
            let local = 0usize;
            assert!(!pool.owns(&local as *const usize as *const Descriptor));
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn pool_allocates_distinct_aligned_descriptors() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        let mut seen = std::collections::HashSet::new();
        unsafe {
            for _ in 0..DESC_PER_SLAB * 2 + 3 {
                let d = pool.alloc(&domain, &src);
                assert!(!d.is_null());
                assert_eq!(d as usize % 64, 0);
                assert!(seen.insert(d as usize), "descriptor handed out twice");
            }
        }
        assert_eq!(pool.slab_count(), 3);
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn retired_descriptor_is_recycled() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            let first = pool.alloc(&domain, &src);
            pool.retire(&domain, first);
            domain.flush();
            // With one slab of fresh descriptors available the recycled
            // one sits on top of the LIFO.
            let again = pool.alloc(&domain, &src);
            assert_eq!(again, first, "retired descriptor should be reused first");
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn anchor_cas_failure_returns_observed() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            let d = &*pool.alloc(&domain, &src);
            let a0 = d.load_anchor();
            let a1 = a0.with_count(5).with_state(SbState::Partial);
            d.cas_anchor(a0, a1).unwrap();
            // Stale CAS must fail and report the current value.
            let err = d.cas_anchor(a0, a0.with_count(9)).unwrap_err();
            assert_eq!(err.raw(), a1.raw());
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn reserve_keeps_alloc_alive_when_source_is_dead() {
        use osmem::FlakySource;
        let src = FlakySource::new(SystemSource::new(), 1);
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            // First slab succeeds and seeds the reserve.
            let d = pool.alloc(&domain, &src);
            assert!(!d.is_null());
            assert_eq!(pool.reserve_len(), DESC_RESERVE_TARGET);
            // Exhaust DescAvail (the fresh slab minus the reserve minus
            // the one handed out), with the source now dead.
            for _ in 0..(DESC_PER_SLAB - 1 - DESC_RESERVE_TARGET) {
                assert!(!pool.alloc(&domain, &src).is_null());
            }
            // The reserve now carries allocation through the outage.
            for i in 0..DESC_RESERVE_TARGET {
                assert!(!pool.alloc(&domain, &src).is_null(), "reserve pop {i} failed");
            }
            assert_eq!(pool.reserve_len(), 0);
            assert!(pool.alloc(&domain, &src).is_null(), "everything truly exhausted");
            assert!(src.denials() > 0);
            // Retired descriptors refill the reserve first.
            pool.retire(&domain, d);
            domain.flush();
            assert_eq!(pool.reserve_len(), 1);
            assert!(!pool.alloc(&domain, &src).is_null());
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn trim_releases_fully_free_slabs_and_restacks_reserve_first() {
        use osmem::{CountingSource, SystemSource};
        let src = CountingSource::new(SystemSource::new());
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            // Two slabs: hold one descriptor from the first slab live.
            let _held = pool.alloc(&domain, &src);
            let mut handed = Vec::new();
            for _ in 0..DESC_PER_SLAB {
                let d = pool.alloc(&domain, &src);
                assert!(!d.is_null());
                handed.push(d);
            }
            assert_eq!(pool.slab_count(), 2);
            // Retire everything except `held`, flush, then trim: the
            // second slab becomes fully free and is unmapped; the first
            // survives because of `held`.
            for d in handed {
                pool.retire(&domain, d);
            }
            domain.flush_all();
            let released = pool.trim(&domain, &src);
            assert_eq!(released, 1 << SB_SHIFT, "one slab released");
            assert_eq!(pool.slab_count(), 1);
            assert_eq!(pool.reserve_len(), DESC_RESERVE_TARGET, "reserve re-topped");
            // Pool still functions.
            assert!(!pool.alloc(&domain, &src).is_null());
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
        assert_eq!(src.stats().live_bytes, 0);
    }

    #[test]
    fn fresh_descriptor_fields_are_zero() {
        let src = SystemSource::new();
        let domain = HazardDomain::new();
        let pool = Box::new(DescriptorPool::new());
        unsafe {
            let d = &*pool.alloc(&domain, &src);
            assert!(d.sb().is_null());
            assert!(d.heap().is_null());
            assert_eq!(d.sz(), 0);
            assert_eq!(d.load_anchor().raw(), 0);
        }
        drop(domain);
        unsafe { pool.release_all(&src) };
    }
}
