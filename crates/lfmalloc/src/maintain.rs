//! Incremental self-healing maintenance and the background reaper.
//!
//! The allocator's steady state leaves work behind by design: threads
//! that exit strand retired hazard nodes in their (now inactive)
//! records, hardened frees park blocks in the quarantine, EMPTY
//! descriptors can sit behind a non-empty partial-list head, and freed
//! hyperblocks stay cached until a (quiescent-only) `trim()`. PRs 1–4
//! made each of those pools observable; this module adds the driver
//! that actually drains them, incrementally and concurrently:
//!
//! * [`LfMalloc::maintain`] runs one bounded pass over the reclaimable
//!   backlog under a [`MaintenanceBudget`]. Every phase it runs by
//!   default is **safe under full concurrency** — each reuses an
//!   ownership protocol the hot paths already rely on (the hazard
//!   `active` try-lock, the MPMC quarantine ring, the partial-list
//!   get/put and heap-slot CAS). The one quiescence-only phase, the OS
//!   trim toward a byte watermark, must be opted into through the
//!   `unsafe` [`MaintenanceBudget::with_quiescent_trim`], which carries
//!   the same contract as [`LfMalloc::trim_to`].
//! * [`ReaperConfig`] (via [`Config::reaper`](crate::Config)) spawns an
//!   opt-in background thread that calls `maintain` on a period. The
//!   reaper never touches a malloc/free hot path and takes no locks the
//!   hot paths can see, so the allocator's lock-freedom is preserved:
//!   the reaper is an *additional* thread running ordinary lock-free
//!   operations, not a scheduler dependency. If it is descheduled
//!   forever, the allocator behaves exactly as it did before this PR —
//!   backlog accumulates until someone calls `maintain`/`trim`.
//!
//! The bounded audit slice deserves a caveat: its per-descriptor checks
//! (geometry, anchor count-range) are single-word invariants, but a
//! descriptor being re-initialized for a new size class is briefly
//! inconsistent between `set_sz` and the anchor store, so a concurrent
//! slice can flag a false positive. Slice results are therefore
//! *advisory* — counted in [`HealthSnapshot`](crate::HealthSnapshot)
//! but excluded from [`is_degraded`](crate::HealthSnapshot::is_degraded),
//! which trusts only full (quiescent) `audit()` outcomes.

use crate::anchor::SbState;
use crate::config::SB_SIZE;
use crate::descriptor::Descriptor;
use crate::instance::{Inner, LfMalloc};
use crate::size_classes::NUM_CLASSES;
use core::sync::atomic::{AtomicBool, Ordering};
use core::time::Duration;
use osmem::PageSource;

/// How much work one [`LfMalloc::maintain`] pass may do.
#[derive(Clone, Copy, Debug)]
pub struct MaintenanceBudget {
    /// Adopt-and-scan inactive hazard records (dead-thread reap) and
    /// flush the calling thread's own retired list.
    pub reap_hazard: bool,
    /// Maximum quarantined blocks released back into circulation
    /// (0 = skip; no-op when hardening is off).
    pub quarantine: u32,
    /// Maximum partial-list descriptors inspected per size class while
    /// pruning EMPTY stragglers (0 = skip).
    pub prune_partials: u32,
    /// Descriptors examined by the bounded advisory audit slice
    /// (0 = skip). The cursor persists across passes, so successive
    /// slices cover the whole descriptor universe.
    pub audit_descriptors: u32,
    /// Quiescent-only OS trim target; see
    /// [`with_quiescent_trim`](Self::with_quiescent_trim).
    trim_target: Option<usize>,
}

impl MaintenanceBudget {
    /// The reaper's default: cheap enough to run every period — reap,
    /// a modest quarantine drain, light pruning, a small audit slice.
    pub const fn light() -> Self {
        MaintenanceBudget {
            reap_hazard: true,
            quarantine: 64,
            prune_partials: 8,
            audit_descriptors: 64,
            trim_target: None,
        }
    }

    /// A thorough pass for explicit calls: large (but still bounded,
    /// so a concurrent producer cannot pin the pass forever) caps on
    /// every concurrent-safe phase.
    pub const fn full() -> Self {
        MaintenanceBudget {
            reap_hazard: true,
            quarantine: 4096,
            prune_partials: 1024,
            audit_descriptors: 512,
            trim_target: None,
        }
    }

    /// Overrides the quarantine cap.
    pub const fn with_quarantine(self, n: u32) -> Self {
        MaintenanceBudget { quarantine: n, ..self }
    }

    /// Overrides the per-class partial-prune cap.
    pub const fn with_prune(self, n: u32) -> Self {
        MaintenanceBudget { prune_partials: n, ..self }
    }

    /// Overrides the audit-slice length.
    pub const fn with_audit(self, n: u32) -> Self {
        MaintenanceBudget { audit_descriptors: n, ..self }
    }

    /// Adds the OS-trim phase: after the concurrent phases, run
    /// [`LfMalloc::trim_to`]`(target_bytes)`, releasing fully free
    /// hyperblocks until at most `target_bytes` stay cached.
    ///
    /// # Safety
    ///
    /// The `maintain` call carrying this budget inherits `trim_to`'s
    /// quiescence contract: no concurrent `malloc`/`free`/`trim` on the
    /// instance for the duration of the pass. In particular, a budget
    /// with a trim target must not be handed to the background reaper
    /// unless the process guarantees the allocator is idle every period.
    pub const unsafe fn with_quiescent_trim(self, target_bytes: usize) -> Self {
        MaintenanceBudget { trim_target: Some(target_bytes), ..self }
    }

    /// Whether this budget includes the quiescent OS-trim phase.
    pub fn trims(&self) -> bool {
        self.trim_target.is_some()
    }
}

impl Default for MaintenanceBudget {
    fn default() -> Self {
        Self::light()
    }
}

/// What one maintenance pass accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Retired hazard nodes reclaimed (dead-thread reap + own flush).
    pub reaped_retired: u64,
    /// Quarantined blocks released back into circulation.
    pub quarantine_flushed: u64,
    /// EMPTY descriptors pruned off heap slots and partial lists.
    pub empty_pruned: u64,
    /// Descriptors examined by the audit slice.
    pub audit_checked: u64,
    /// Advisory flags raised by the audit slice.
    pub audit_flagged: u64,
    /// Bytes released to the OS by the trim phase (0 unless the budget
    /// was built with [`MaintenanceBudget::with_quiescent_trim`]).
    pub bytes_trimmed: usize,
}

/// Background-reaper configuration: how often, and with what budget.
#[derive(Clone, Copy, Debug)]
pub struct ReaperConfig {
    /// Sleep between maintenance passes.
    pub period: Duration,
    /// Budget of each pass.
    pub budget: MaintenanceBudget,
}

impl ReaperConfig {
    /// A reaper with the [`light`](MaintenanceBudget::light) budget.
    pub const fn every(period: Duration) -> Self {
        ReaperConfig { period, budget: MaintenanceBudget::light() }
    }

    /// Overrides the per-pass budget.
    pub const fn with_budget(self, budget: MaintenanceBudget) -> Self {
        ReaperConfig { budget, ..self }
    }
}

/// Reaper control plane, embedded in `Inner`. The mutex guards only the
/// join-handle box — it is touched by `start_reaper`/`stop_reaper`/
/// `drop`/the atfork hooks, never by an allocation path, so hot-path
/// lock-freedom is unaffected.
#[derive(Debug)]
pub(crate) struct ReaperState {
    /// Tells the reaper thread to exit at its next wake-up.
    stop: AtomicBool,
    /// True while a reaper thread is installed (start-once latch).
    running: AtomicBool,
    /// Monomorphized respawn trampoline (`respawn_thunk::<S>` as a
    /// `usize`; 0 until the first `start_reaper_with`). Stored where the
    /// `S: Send + Sync + 'static` bounds exist so fork recovery — which
    /// only has `S: PageSource` — can restart the reaper in the child.
    respawn: core::sync::atomic::AtomicUsize,
    handle: std::sync::Mutex<ReaperBox>,
}

/// Mutex-protected reaper bookkeeping: the join handle, the config it
/// was spawned with (for child-side respawn after a fork), and the
/// process generation it was spawned in (a handle from an older
/// generation refers to a thread that died in a fork and must be
/// dropped, never joined).
#[derive(Debug)]
pub(crate) struct ReaperBox {
    pub(crate) handle: Option<std::thread::JoinHandle<()>>,
    pub(crate) cfg: Option<ReaperConfig>,
    pub(crate) spawn_gen: u64,
}

impl ReaperState {
    pub(crate) fn new() -> Self {
        ReaperState {
            stop: AtomicBool::new(false),
            running: AtomicBool::new(false),
            respawn: core::sync::atomic::AtomicUsize::new(0),
            handle: std::sync::Mutex::new(ReaperBox { handle: None, cfg: None, spawn_gen: 0 }),
        }
    }

    /// Locks the handle box (poison-ignoring: a reaper panicking while
    /// holding it must not wedge teardown or fork recovery).
    pub(crate) fn lock_handle(&self) -> std::sync::MutexGuard<'_, ReaperBox> {
        self.handle.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The stored respawn trampoline (0 = reaper never started).
    pub(crate) fn respawn_thunk(&self) -> usize {
        self.respawn.load(Ordering::Acquire)
    }

    /// With the handle box locked, clears state left by a reaper thread
    /// that died in a fork: the stale-generation handle is dropped
    /// (detached) **without joining** — the thread does not exist in
    /// this process — and the start-once latch is released so the
    /// reaper can be respawned. Returns the dead reaper's config when
    /// one was actually running at fork time; `None` when there is
    /// nothing to recover (same generation, or no reaper installed).
    pub(crate) fn clear_dead(&self, boxed: &mut ReaperBox, cur_gen: u64) -> Option<ReaperConfig> {
        if boxed.spawn_gen == cur_gen {
            return None;
        }
        boxed.spawn_gen = cur_gen;
        if !self.running.load(Ordering::Acquire) {
            return None;
        }
        drop(boxed.handle.take());
        self.stop.store(false, Ordering::Release);
        self.running.store(false, Ordering::Release);
        boxed.cfg
    }
}

/// Fork-aware reaper reconciliation: detects a handle spawned in an
/// older process generation (its thread died in the fork) and clears it
/// without joining. `try_lock` keeps this non-blocking — if the box is
/// held (the mutex was copied locked across a raw, un-hooked fork) the
/// reconcile is skipped; the hooked fork path never leaves it locked.
/// Returns the dead reaper's config so callers can respawn it.
pub(crate) fn reaper_reconcile<S: PageSource>(inner: &Inner<S>) -> Option<ReaperConfig> {
    let cur = malloc_api::procfork::generation();
    let mut boxed = match inner.reaper.handle.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => return None,
    };
    inner.reaper.clear_dead(&mut boxed, cur)
}

/// Monomorphized respawn trampoline, stored (as a `usize`) in
/// [`ReaperState::respawn`] by `start_reaper_with`, where the
/// `Send + Sync + 'static` bounds on `S` are available. Fork recovery
/// calls it through the erased pointer to restart the reaper in the
/// child.
///
/// # Safety
///
/// `inner` must point at the live `Inner<S>` instance whose
/// `start_reaper_with` stored this exact monomorphization.
pub(crate) unsafe fn respawn_thunk<S: PageSource + Send + Sync + 'static>(
    inner: *mut (),
    cfg: ReaperConfig,
) -> bool {
    let inner = unsafe { core::ptr::NonNull::new_unchecked(inner as *mut Inner<S>) };
    let shim = unsafe { LfMalloc::<S>::borrow_raw(inner) };
    shim.start_reaper_with(cfg)
}

/// Shuttles the instance pointer into the reaper thread. Sound because
/// `stop_reaper_inner` joins the thread before instance teardown begins
/// (first step of `LfMalloc::drop`), so the pointer outlives every
/// dereference.
struct RawInner<S: PageSource>(core::ptr::NonNull<Inner<S>>);
unsafe impl<S: PageSource + Send + Sync> Send for RawInner<S> {}

impl<S: PageSource> LfMalloc<S> {
    /// Runs one bounded self-healing pass: drains dead-thread retired
    /// queues, releases quarantined blocks, prunes EMPTY descriptors,
    /// advances the advisory audit slice, and (only if the budget was
    /// built with the `unsafe` trim constructor) trims toward the OS
    /// watermark. Safe to call concurrently with `malloc`/`free` for
    /// any budget that doesn't trim; see [`MaintenanceBudget`].
    pub fn maintain(&self, budget: MaintenanceBudget) -> MaintenanceReport {
        self.maintain_impl(budget, false)
    }

    pub(crate) fn maintain_impl(
        &self,
        budget: MaintenanceBudget,
        from_reaper: bool,
    ) -> MaintenanceReport {
        let inner = self.inner();
        let t0 = crate::lat_start!();
        let mut report = MaintenanceReport::default();
        if budget.reap_hazard {
            inner.health.observe_retired(inner.domain.retired_count() as u64);
            let mut reaped = inner.domain.reap_inactive() as u64;
            // Our own record is active, so the reap skipped it; scan it
            // directly. The before/after difference is racy against
            // concurrent retires on other records — harmless, it only
            // feeds a diagnostic counter.
            let before = inner.domain.retired_count();
            inner.domain.flush();
            reaped += before.saturating_sub(inner.domain.retired_count()) as u64;
            report.reaped_retired = reaped;
        }
        if budget.quarantine > 0 {
            report.quarantine_flushed = flush_quarantine_budgeted(inner, budget.quarantine);
        }
        if budget.prune_partials > 0 {
            report.empty_pruned = prune_empty(inner, budget.prune_partials);
        }
        if budget.audit_descriptors > 0 {
            let (checked, flagged) = audit_slice(inner, budget.audit_descriptors);
            report.audit_checked = checked;
            report.audit_flagged = flagged;
        }
        if let Some(target) = budget.trim_target {
            inner.health.note_watermark(target);
            // Safety: the budget's `with_quiescent_trim` constructor put
            // the quiescence obligation on whoever built it.
            report.bytes_trimmed = unsafe { self.trim_to(target) };
        }
        inner.health.note_maintain(
            from_reaper,
            report.reaped_retired,
            report.quarantine_flushed,
            report.empty_pruned,
            report.audit_checked,
            report.audit_flagged,
        );
        crate::stat_event!(
            inner,
            Maintain,
            0,
            report.reaped_retired + report.quarantine_flushed + report.empty_pruned
        );
        crate::stat_lat!(inner, lat_maintain, t0);
        // Every pass contributes one point to the fragmentation time
        // series (allocation-free; the ring evicts its oldest when full).
        #[cfg(feature = "stats")]
        crate::stats::record_frag_sample(inner);
        report
    }

    /// Stops the background reaper (if one is running) and joins it.
    /// Returns true if a reaper was actually stopped. Called implicitly
    /// by `drop`, so teardown never races a maintenance pass.
    pub fn stop_reaper(&self) -> bool {
        stop_reaper_inner(self.inner())
    }
}

impl<S: PageSource + Send + Sync + 'static> LfMalloc<S> {
    /// Spawns the background reaper configured in
    /// [`Config::reaper`](crate::Config). Returns false if the config
    /// has no reaper or one is already running. Instances over the
    /// system page source do this automatically at construction;
    /// custom-source instances (whose `S` may not be `'static`-spawnable
    /// from the constructor) call it explicitly.
    pub fn start_reaper(&self) -> bool {
        match self.inner().config.reaper {
            Some(cfg) => self.start_reaper_with(cfg),
            None => false,
        }
    }

    /// Spawns a background reaper with an explicit configuration,
    /// ignoring [`Config::reaper`](crate::Config). Returns false if one
    /// is already running or the thread could not be spawned.
    pub fn start_reaper_with(&self, cfg: ReaperConfig) -> bool {
        let inner = self.inner();
        // A reaper latch left set by a pre-fork parent must not block
        // the child's (re)start: its thread died in the fork.
        reaper_reconcile(inner);
        if inner
            .reaper
            .running
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        inner.reaper.stop.store(false, Ordering::Release);
        let raw = RawInner::<S>(self.raw_inner());
        let spawned = std::thread::Builder::new()
            .name("lfmalloc-reaper".into())
            .spawn(move || {
                let raw = raw;
                // A borrowed, never-dropped view of the instance; valid
                // until `stop_reaper_inner` joins us.
                let shim = unsafe { LfMalloc::<S>::borrow_raw(raw.0) };
                loop {
                    // Sleep first: a start/stop pair shouldn't pay for a
                    // pass, and `stop` unparks us early.
                    std::thread::park_timeout(cfg.period);
                    if shim.inner().reaper.stop.load(Ordering::Acquire) {
                        break;
                    }
                    shim.maintain_impl(cfg.budget, true);
                }
            });
        match spawned {
            Ok(h) => {
                let mut boxed = inner.reaper.lock_handle();
                boxed.handle = Some(h);
                boxed.cfg = Some(cfg);
                boxed.spawn_gen = malloc_api::procfork::generation();
                drop(boxed);
                inner.reaper.respawn.store(
                    respawn_thunk::<S> as unsafe fn(*mut (), ReaperConfig) -> bool as usize,
                    Ordering::Release,
                );
                true
            }
            Err(_) => {
                inner.reaper.running.store(false, Ordering::Release);
                false
            }
        }
    }
}

/// Stop/join path shared by [`LfMalloc::stop_reaper`] and `drop` (which
/// has no `Send + Sync` bounds on `S`, so this must not require them).
pub(crate) fn stop_reaper_inner<S: PageSource>(inner: &Inner<S>) -> bool {
    // Fork-aware: a reaper that died in a fork is cleared here, never
    // joined (joining a handle whose thread was lost to `fork` would
    // block forever).
    reaper_reconcile(inner);
    if !inner.reaper.running.load(Ordering::Acquire) {
        return false;
    }
    inner.reaper.stop.store(true, Ordering::Release);
    let handle = inner.reaper.lock_handle().handle.take();
    let stopped = match handle {
        Some(h) => {
            h.thread().unpark();
            let _ = h.join();
            true
        }
        None => false,
    };
    inner.reaper.running.store(false, Ordering::Release);
    stopped
}

/// Budgeted version of `flush_quarantine`: pops at most `max` entries
/// across the shards. Same concurrency story as the unbudgeted flush —
/// the rings are MPMC and the release path is an ordinary lock-free
/// free.
fn flush_quarantine_budgeted<S: PageSource>(inner: &Inner<S>, max: u32) -> u64 {
    if inner.quarantine.is_null() {
        return 0;
    }
    let mut released = 0u64;
    'shards: for i in 0..inner.nheaps {
        let shard = unsafe { &*inner.quarantine.add(i) };
        while let Some((block, desc)) = shard.pop() {
            unsafe { crate::harden::release_quarantined(inner, block, desc as *mut Descriptor) };
            released += 1;
            if released >= max as u64 {
                break 'shards;
            }
        }
    }
    released
}

/// Prunes EMPTY descriptors out of the heap partial slots and (budgeted
/// per class) off the partial lists. Both moves reuse hot-path
/// ownership protocols — the heap-slot CAS is `remove_empty_desc`'s,
/// and a popped EMPTY descriptor is exclusively owned (its superblock
/// was already recycled by `free`'s EMPTY transition), exactly the case
/// `malloc_from_partial` handles — so this is concurrent-safe.
fn prune_empty<S: PageSource>(inner: &Inner<S>, per_class: u32) -> u64 {
    let mut pruned = 0u64;
    for ci in 0..NUM_CLASSES {
        for h in 0..inner.nheaps {
            let heap = unsafe { &*inner.heaps.add(ci * inner.nheaps + h) };
            let desc = heap.load_partial();
            if !desc.is_null()
                && unsafe { (*desc).load_anchor() }.state() == SbState::Empty
                && heap.cas_partial(desc, core::ptr::null_mut())
            {
                unsafe { inner.desc_pool.retire(&inner.domain, desc) };
                pruned += 1;
            }
        }
        let list = &inner.classes[ci].partial;
        let mut keep: Vec<*mut Descriptor> = Vec::new();
        let mut budget = per_class;
        while budget > 0 {
            let Some(desc) = (unsafe { list.get(&inner.domain) }) else {
                break;
            };
            if unsafe { (*desc).load_anchor() }.state() == SbState::Empty {
                unsafe { inner.desc_pool.retire(&inner.domain, desc) };
                pruned += 1;
            } else {
                keep.push(desc);
            }
            budget -= 1;
        }
        for desc in keep {
            unsafe { list.put(&inner.domain, desc) };
        }
    }
    pruned
}

/// One advisory audit slice: checks up to `max` descriptors (persistent
/// cursor, so slices rotate through the whole universe) against
/// single-word invariants. See the module docs for why a flag here is
/// advisory, not a verdict.
fn audit_slice<S: PageSource>(inner: &Inner<S>, max: u32) -> (u64, u64) {
    let descs = inner.desc_pool.all_descriptors();
    if descs.is_empty() {
        return (0, 0);
    }
    let n = (max as usize).min(descs.len());
    let start = inner.health.advance_audit_cursor(n, descs.len());
    let mut flagged = 0u64;
    for i in 0..n {
        let desc = unsafe { &*descs[(start + i) % descs.len()] };
        let sz = desc.sz() as usize;
        if sz == 0 {
            // Never initialized (fresh slab zero-fill).
            continue;
        }
        let maxcount = desc.maxcount() as usize;
        let anchor = desc.load_anchor();
        if maxcount == 0 || maxcount * sz > SB_SIZE || (anchor.count() as usize) >= maxcount {
            flagged += 1;
        }
    }
    (n as u64, flagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use malloc_api::RawMalloc;

    #[test]
    fn budgets_compose_const() {
        const B: MaintenanceBudget = MaintenanceBudget::light().with_audit(16).with_prune(2);
        assert!(B.reap_hazard);
        assert_eq!(B.audit_descriptors, 16);
        assert_eq!(B.prune_partials, 2);
        assert!(!B.trims());
        const T: MaintenanceBudget = unsafe { MaintenanceBudget::full().with_quiescent_trim(0) };
        assert!(T.trims());
    }

    #[test]
    fn maintain_reports_and_counts_passes() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let p = a.malloc(64);
            assert!(!p.is_null());
            a.free(p);
        }
        let rep = a.maintain(MaintenanceBudget::full());
        assert!(rep.audit_checked > 0, "descriptors exist, slice must check some");
        assert_eq!(rep.audit_flagged, 0, "quiescent slice must be clean");
        let h = a.health();
        assert_eq!(h.maintain_passes, 1);
        assert_eq!(h.reaper_passes, 0);
        assert!(!h.is_degraded());
    }

    #[test]
    fn maintain_with_trim_reaches_watermark() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let mut ptrs = Vec::new();
            for _ in 0..300 {
                let p = a.malloc(8_000);
                assert!(!p.is_null());
                ptrs.push(p);
            }
            for p in ptrs {
                a.free(p);
            }
        }
        let budget = unsafe { MaintenanceBudget::full().with_quiescent_trim(1 << 20) };
        let rep = a.maintain(budget);
        assert!(rep.bytes_trimmed > 0);
        assert!(a.os_stats().live_bytes <= (1 << 20) + (1 << 18), "watermark respected");
        let h = a.health();
        assert_eq!(h.os_watermark, Some(1 << 20));
        assert!(a.audit().is_clean());
    }

    #[test]
    fn maintain_drains_dead_thread_retired_nodes() {
        let a = std::sync::Arc::new(LfMalloc::with_config(Config::with_heaps(2)));
        // Worker threads allocate and free, then exit: their hazard
        // records go inactive, possibly with retired queue nodes.
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = std::sync::Arc::clone(&a);
                s.spawn(move || unsafe {
                    let mut ptrs = Vec::new();
                    for i in 0..200usize {
                        let p = a.malloc(16 + (i % 256));
                        assert!(!p.is_null());
                        ptrs.push(p);
                    }
                    for p in ptrs {
                        a.free(p);
                    }
                });
            }
        });
        let before = a.inner().domain.retired_count();
        a.maintain(MaintenanceBudget::light());
        let after = a.inner().domain.retired_count();
        assert!(after <= before, "maintain never grows the retired backlog");
        assert_eq!(after, 0, "quiescent reap drains everything");
    }

    #[test]
    fn reaper_runs_and_stops() {
        let cfg = Config::with_heaps(1)
            .with_reaper(ReaperConfig::every(Duration::from_millis(5)));
        let a = LfMalloc::with_config(cfg);
        unsafe {
            let p = a.malloc(128);
            assert!(!p.is_null());
            a.free(p);
        }
        // Construction auto-started the reaper; wait for some passes.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.health().reaper_passes == 0 {
            assert!(std::time::Instant::now() < deadline, "reaper never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(a.stop_reaper());
        let passes = a.health().reaper_passes;
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(a.health().reaper_passes, passes, "stopped reaper must not run");
        assert!(!a.stop_reaper(), "second stop is a no-op");
        assert!(!a.health().is_degraded());
    }

    #[test]
    fn reaper_restart_after_stop() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        assert!(!a.start_reaper(), "no reaper configured");
        assert!(a.start_reaper_with(ReaperConfig::every(Duration::from_millis(5))));
        assert!(!a.start_reaper_with(ReaperConfig::every(Duration::from_millis(5))));
        assert!(a.stop_reaper());
        assert!(a.start_reaper_with(ReaperConfig::every(Duration::from_millis(5))));
        // Drop stops the second reaper implicitly; reaching the end
        // without hanging is the assertion.
    }
}
