//! The superblock `Anchor`: the allocator's central packed word.
//!
//! The paper (Figure 3) packs four subfields into one atomic word so a
//! single CAS can atomically pop a block, adjust the free count, change
//! the superblock state, and bump the ABA tag:
//!
//! ```text
//! typedef anchor : // fits in one atomic block
//!     unsigned avail:10, count:10, state:2, tag:42;
//! ```
//!
//! We widen `avail`/`count` to 12 bits each (tag shrinks to 38): a
//! 16 KiB superblock of 16-byte blocks holds 1024 blocks, which does not
//! fit in 10 bits. 2³⁸ tag values keep "full wraparound practically
//! impossible in a short time", the paper's stated requirement.

/// Bits for the `avail` (first free block index) subfield.
pub const AVAIL_BITS: u32 = 12;
/// Bits for the `count` (unreserved free blocks) subfield.
pub const COUNT_BITS: u32 = 12;
/// Bits for the `state` subfield.
pub const STATE_BITS: u32 = 2;
/// Bits for the ABA `tag` subfield.
pub const TAG_BITS: u32 = 64 - AVAIL_BITS - COUNT_BITS - STATE_BITS;

/// Maximum blocks per superblock representable in the anchor.
pub const MAX_BLOCKS: u32 = 1 << AVAIL_BITS;

const AVAIL_SHIFT: u32 = 0;
const COUNT_SHIFT: u32 = AVAIL_BITS;
const STATE_SHIFT: u32 = AVAIL_BITS + COUNT_BITS;
const TAG_SHIFT: u32 = AVAIL_BITS + COUNT_BITS + STATE_BITS;

const AVAIL_MASK: u64 = (1 << AVAIL_BITS) - 1;
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;
const STATE_MASK: u64 = (1 << STATE_BITS) - 1;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

/// Superblock lifecycle state (§3.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SbState {
    /// The heap's active superblock, or about to be installed as such.
    Active = 0,
    /// All blocks allocated or reserved; linked from no structure — the
    /// first freeing thread re-links it.
    Full = 1,
    /// Not active, has unreserved available blocks; lives in a heap's
    /// `Partial` slot or the size class's partial list.
    Partial = 2,
    /// All blocks free and not active; its superblock may be recycled.
    Empty = 3,
}

impl SbState {
    fn from_bits(b: u64) -> SbState {
        match b {
            0 => SbState::Active,
            1 => SbState::Full,
            2 => SbState::Partial,
            _ => SbState::Empty,
        }
    }
}

/// An immutable snapshot of the packed anchor word.
///
/// All mutators return a new value; the owning
/// [`Descriptor`](crate::descriptor::Descriptor) stores the raw `u64` in
/// an atomic and CASes snapshots in the paper's
/// `do { old = new = load; ... } until CAS(old, new)` pattern.
///
/// # Example
///
/// ```
/// use lfmalloc::anchor::{Anchor, SbState};
///
/// let a = Anchor::new(5, 3, SbState::Active);
/// assert_eq!(a.avail(), 5);
/// assert_eq!(a.count(), 3);
/// let popped = a.with_avail(7).with_tag_bump();
/// assert_eq!(popped.avail(), 7);
/// assert_eq!(popped.tag(), a.tag() + 1);
/// assert_ne!(popped.raw(), a.raw());
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Anchor(u64);

impl Anchor {
    /// Builds an anchor with tag zero.
    pub fn new(avail: u32, count: u32, state: SbState) -> Anchor {
        debug_assert!(avail < MAX_BLOCKS, "avail {avail} out of range");
        debug_assert!((count as u64) <= COUNT_MASK, "count {count} out of range");
        Anchor(
            ((avail as u64) << AVAIL_SHIFT)
                | ((count as u64) << COUNT_SHIFT)
                | ((state as u64) << STATE_SHIFT),
        )
    }

    /// Reinterprets a raw word loaded from the descriptor's atomic.
    #[inline]
    pub const fn from_raw(raw: u64) -> Anchor {
        Anchor(raw)
    }

    /// The raw word for CAS.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Index of the first available block in the superblock's free list.
    #[inline]
    pub fn avail(self) -> u32 {
        ((self.0 >> AVAIL_SHIFT) & AVAIL_MASK) as u32
    }

    /// Number of unreserved available blocks.
    #[inline]
    pub fn count(self) -> u32 {
        ((self.0 >> COUNT_SHIFT) & COUNT_MASK) as u32
    }

    /// Superblock state.
    #[inline]
    pub fn state(self) -> SbState {
        SbState::from_bits((self.0 >> STATE_SHIFT) & STATE_MASK)
    }

    /// ABA tag.
    #[inline]
    pub fn tag(self) -> u64 {
        (self.0 >> TAG_SHIFT) & TAG_MASK
    }

    /// Replaces `avail`.
    #[inline]
    pub fn with_avail(self, avail: u32) -> Anchor {
        debug_assert!(avail < MAX_BLOCKS);
        Anchor((self.0 & !(AVAIL_MASK << AVAIL_SHIFT)) | ((avail as u64) << AVAIL_SHIFT))
    }

    /// Replaces `count`.
    #[inline]
    pub fn with_count(self, count: u32) -> Anchor {
        debug_assert!((count as u64) <= COUNT_MASK);
        Anchor((self.0 & !(COUNT_MASK << COUNT_SHIFT)) | ((count as u64) << COUNT_SHIFT))
    }

    /// Replaces `state`.
    #[inline]
    pub fn with_state(self, state: SbState) -> Anchor {
        Anchor((self.0 & !(STATE_MASK << STATE_SHIFT)) | ((state as u64) << STATE_SHIFT))
    }

    /// Increments the ABA tag (wrapping in its field). The paper bumps
    /// the tag on every pop from the superblock free list.
    #[inline]
    pub fn with_tag_bump(self) -> Anchor {
        let tag = (self.tag().wrapping_add(1)) & TAG_MASK;
        Anchor((self.0 & !(TAG_MASK << TAG_SHIFT)) | (tag << TAG_SHIFT))
    }
}

impl core::fmt::Debug for Anchor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Anchor")
            .field("avail", &self.avail())
            .field("count", &self.count())
            .field("state", &self.state())
            .field("tag", &self.tag())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malloc_api::testkit::TestRng;

    #[test]
    fn field_widths_sum_to_64() {
        assert_eq!(AVAIL_BITS + COUNT_BITS + STATE_BITS + TAG_BITS, 64);
        assert_eq!(TAG_BITS, 38);
    }

    #[test]
    fn max_superblock_population_fits() {
        // 16 KiB / 16 B = 1024 blocks; avail indexes 0..=1023 and the
        // "no next block" sentinel 1024 must be representable.
        assert!(crate::config::SB_SIZE / 16 <= MAX_BLOCKS as usize);
    }

    #[test]
    fn new_starts_with_zero_tag() {
        let a = Anchor::new(1, 2, SbState::Partial);
        assert_eq!(a.tag(), 0);
        assert_eq!(a.state(), SbState::Partial);
    }

    #[test]
    fn state_roundtrip_all_variants() {
        for s in [SbState::Active, SbState::Full, SbState::Partial, SbState::Empty] {
            let a = Anchor::new(0, 0, SbState::Active).with_state(s);
            assert_eq!(a.state(), s);
        }
    }

    #[test]
    fn tag_bump_changes_raw_even_when_fields_equal() {
        // The heart of ABA prevention: same avail/count/state, different
        // raw word.
        let a = Anchor::new(3, 1, SbState::Active);
        let b = a.with_tag_bump();
        assert_eq!(a.avail(), b.avail());
        assert_eq!(a.count(), b.count());
        assert_eq!(a.state(), b.state());
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn tag_wraps_in_field_without_corrupting_others() {
        let mut a = Anchor::from_raw(
            Anchor::new(7, 9, SbState::Full).raw() | (TAG_MASK << TAG_SHIFT), // max tag
        );
        a = a.with_tag_bump();
        assert_eq!(a.tag(), 0);
        assert_eq!(a.avail(), 7);
        assert_eq!(a.count(), 9);
        assert_eq!(a.state(), SbState::Full);
    }

    #[test]
    fn pack_roundtrip_randomized() {
        let mut rng = TestRng::new(0xA2C0);
        for _ in 0..4096 {
            let avail = rng.range(0, MAX_BLOCKS as usize) as u32;
            let count = rng.range(0, 1 << COUNT_BITS) as u32;
            let state = SbState::from_bits(rng.range(0, 4) as u64);
            let a = Anchor::new(avail, count, state);
            assert_eq!(a.avail(), avail);
            assert_eq!(a.count(), count);
            assert_eq!(a.state(), state);
        }
    }

    #[test]
    fn with_fields_are_independent_randomized() {
        let mut rng = TestRng::new(0xA2C1);
        for _ in 0..4096 {
            let avail = rng.range(0, MAX_BLOCKS as usize) as u32;
            let count = rng.range(0, 1 << COUNT_BITS) as u32;
            let new_avail = rng.range(0, MAX_BLOCKS as usize) as u32;
            let new_count = rng.range(0, 1 << COUNT_BITS) as u32;
            let a = Anchor::new(avail, count, SbState::Active)
                .with_tag_bump()
                .with_avail(new_avail)
                .with_count(new_count)
                .with_state(SbState::Empty);
            assert_eq!(a.avail(), new_avail);
            assert_eq!(a.count(), new_count);
            assert_eq!(a.state(), SbState::Empty);
            assert_eq!(a.tag(), 1);
        }
    }
}
