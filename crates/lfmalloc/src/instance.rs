//! The allocator instance: construction, teardown, and the public
//! [`RawMalloc`] surface.
//!
//! All instance state lives in a single system-allocated, address-stable
//! `Inner` block ("On the first call to malloc, the static structures
//! for the size classes and processor heaps (about 16 KB for a 16
//! processor machine) are allocated and initialized", §3.1 — here
//! construction is explicit, and the lazy lock-free first-call
//! initialization lives in [`crate::global`]).
//!
//! Nothing in the malloc/free paths allocates through the Rust global
//! allocator, so an `LfMalloc` can *be* the global allocator.

use crate::config::{Config, PREFIX_SIZE, SB_BATCH, SB_SHIFT};
use crate::descriptor::DescriptorPool;
use crate::heap::{heap_index, ProcHeap};
use crate::partial::PartialList;
use crate::size_classes::{class_index, class_index_aligned, CLASS_SIZES, NUM_CLASSES};
use core::ptr::NonNull;
use core::sync::atomic::{AtomicUsize, Ordering};
use hazard::HazardDomain;
use malloc_api::{AllocStats, RawMalloc};
use osmem::{CountingSource, PagePool, PageSource, SystemSource};
use std::alloc::{GlobalAlloc, Layout, System};

/// Per-size-class state: the partial-superblock list plus the class
/// geometry (paper Figure 3's `sizeclass`).
#[derive(Debug)]
pub(crate) struct SizeClassState {
    /// Partial-superblock list shared by the class's heaps.
    pub partial: PartialList,
    /// Total block size (prefix included).
    pub sz: u32,
}

/// All allocator state; address-stable behind a system allocation.
pub(crate) struct Inner<S: PageSource> {
    // Field order is teardown order (see `LfMalloc::drop`): the hazard
    // domain must drain (pushing retired descriptors and queue nodes
    // back into their pools) before any pool releases memory.
    pub domain: HazardDomain,
    pub desc_pool: DescriptorPool,
    pub sb_pool: PagePool<SB_SHIFT>,
    pub source: CountingSource<S>,
    pub config: Config,
    pub nheaps: usize,
    /// `NUM_CLASSES * nheaps` processor heaps, system-allocated.
    pub heaps: *mut ProcHeap,
    pub classes: [SizeClassState; NUM_CLASSES],
    /// Count of live large blocks (diagnostics).
    pub large_live: AtomicUsize,
    /// Total OS bytes backing live large blocks (audit accounting).
    pub large_bytes: AtomicUsize,
}

impl<S: PageSource> Inner<S> {
    /// The heap the calling thread uses for size class `ci`.
    #[inline]
    pub fn heap_for(&self, ci: usize) -> &ProcHeap {
        let h = heap_index(self.config.heap_mode);
        unsafe { &*self.heaps.add(ci * self.nheaps + h) }
    }

    /// Heap `h` of class `ci` (tests and diagnostics).
    #[cfg(test)]
    pub fn heap_at(&self, ci: usize, h: usize) -> &ProcHeap {
        assert!(ci < NUM_CLASSES && h < self.nheaps);
        unsafe { &*self.heaps.add(ci * self.nheaps + h) }
    }
}

/// The completely lock-free allocator of Michael (PLDI 2004).
///
/// Generic over its OS page source `S` so experiments can inject a
/// counting source; defaults to [`SystemSource`].
///
/// # Example
///
/// ```
/// use lfmalloc::LfMalloc;
/// use malloc_api::RawMalloc;
///
/// let a = LfMalloc::new_default();
/// unsafe {
///     let p = a.malloc(64);
///     assert!(!p.is_null());
///     a.free(p);
/// }
/// ```
///
/// # Teardown
///
/// Dropping the instance returns **all** its memory to the OS and
/// invalidates any still-outstanding blocks (arena semantics). Callers
/// must free or forget outstanding blocks first.
pub struct LfMalloc<S: PageSource = SystemSource> {
    inner: NonNull<Inner<S>>,
}

unsafe impl<S: PageSource + Send + Sync> Send for LfMalloc<S> {}
unsafe impl<S: PageSource + Send + Sync> Sync for LfMalloc<S> {}

impl LfMalloc<SystemSource> {
    /// Paper-shaped defaults: per-CPU heaps, FIFO partial lists, system
    /// page source.
    pub fn new_default() -> Self {
        Self::with_config(Config::detect())
    }

    /// Custom configuration over the system page source.
    pub fn with_config(config: Config) -> Self {
        Self::with_config_and_source(config, SystemSource::new())
    }
}

impl<S: PageSource> LfMalloc<S> {
    /// Builds an instance over an injected page source (e.g. a counting
    /// source for the §4.2.5 space experiment).
    pub fn with_config_and_source(config: Config, source: S) -> Self {
        let nheaps = config.heap_mode.heap_count();
        unsafe {
            let heaps_layout = Layout::array::<ProcHeap>(NUM_CLASSES * nheaps).unwrap();
            let heaps = System.alloc(heaps_layout) as *mut ProcHeap;
            assert!(!heaps.is_null(), "lfmalloc: heap table allocation failed");
            for ci in 0..NUM_CLASSES {
                for h in 0..nheaps {
                    heaps.add(ci * nheaps + h).write(ProcHeap::new(ci));
                }
            }
            let inner_layout = Layout::new::<Inner<S>>();
            let inner = System.alloc(inner_layout) as *mut Inner<S>;
            assert!(!inner.is_null(), "lfmalloc: instance allocation failed");
            inner.write(Inner {
                domain: HazardDomain::new(),
                desc_pool: DescriptorPool::new(),
                sb_pool: PagePool::new(SB_BATCH),
                source: CountingSource::new(source),
                config,
                nheaps,
                heaps,
                classes: core::array::from_fn(|i| SizeClassState {
                    partial: PartialList::new(config.partial_mode),
                    sz: CLASS_SIZES[i],
                }),
                large_live: AtomicUsize::new(0),
                large_bytes: AtomicUsize::new(0),
            });
            // The FIFO partial lists allocate their dummy nodes now that
            // the domain has a stable address.
            for class in &(*inner).classes {
                class.partial.init(&(*inner).domain);
            }
            LfMalloc { inner: NonNull::new_unchecked(inner) }
        }
    }

    #[inline]
    pub(crate) fn inner(&self) -> &Inner<S> {
        unsafe { self.inner.as_ref() }
    }

    /// The active configuration.
    pub fn config(&self) -> Config {
        self.inner().config
    }

    /// OS-level memory accounting (drives the space-efficiency
    /// experiment). Covers superblock hyperblocks, descriptor slabs and
    /// large blocks; excludes only the tiny fixed metadata block and
    /// queue-node slabs.
    pub fn os_stats(&self) -> AllocStats {
        self.inner().source.stats()
    }

    /// Number of superblock hyperblocks mapped (diagnostics).
    pub fn hyperblock_count(&self) -> usize {
        self.inner().sb_pool.hyperblock_count()
    }

    /// Allocates `size` bytes at alignment `align` (any power of two).
    ///
    /// # Safety
    ///
    /// Standard malloc contract; see [`RawMalloc::malloc`].
    pub unsafe fn allocate(&self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(align.is_power_of_two());
        let inner = self.inner();
        let off = align.max(PREFIX_SIZE);
        let Some(total) = size.checked_add(off) else {
            return core::ptr::null_mut();
        };
        let class = if align <= PREFIX_SIZE {
            class_index(total)
        } else {
            class_index_aligned(total, align)
        };
        match class {
            Some(ci) => unsafe { crate::alloc::malloc_small(inner, ci, off) },
            None => unsafe { crate::large::alloc_large(inner, size, align) },
        }
    }

    /// Crash-tolerance test hook: reserves a block from the calling
    /// thread's heap for size class of `size` and abandons the
    /// operation, as if the reserving thread were killed mid-`malloc`
    /// (between Figure 4's lines 6 and 8). Leaks at most one block.
    ///
    /// Returns true if a reservation was actually abandoned.
    #[doc(hidden)]
    pub fn simulate_killed_reservation(&self, size: usize) -> bool {
        let inner = self.inner();
        match class_index(size + PREFIX_SIZE) {
            Some(ci) => unsafe { crate::alloc::abandon_reservation(inner, ci) },
            None => false,
        }
    }

    /// Usable bytes in the block at `ptr` (size-class rounding makes
    /// this ≥ the requested size).
    ///
    /// # Safety
    ///
    /// `ptr` must be a live block of this instance.
    pub unsafe fn block_usable_size(&self, ptr: *mut u8) -> usize {
        let prefix_addr = ptr as usize - PREFIX_SIZE;
        let prefix =
            unsafe { (*(prefix_addr as *const AtomicUsize)).load(Ordering::Relaxed) };
        if prefix & crate::large::LARGE_FLAG != 0 {
            return unsafe { crate::large::usable_size_large(ptr, prefix) };
        }
        let desc = unsafe { &*(prefix as *const crate::descriptor::Descriptor) };
        let sz = desc.sz() as usize;
        let sb = desc.sb() as usize;
        let idx = (prefix_addr - sb) / sz;
        let block_end = sb + (idx + 1) * sz;
        block_end - ptr as usize
    }

    /// Frees a block returned by [`allocate`](Self::allocate) (or by the
    /// `RawMalloc` methods).
    ///
    /// # Safety
    ///
    /// `ptr` must be null or a live block of this instance.
    pub unsafe fn deallocate(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        let inner = self.inner();
        // Read the prefix: a descriptor pointer (even) or the
        // large-block marker (odd).
        let prefix = unsafe {
            (*( (ptr as usize - PREFIX_SIZE) as *const AtomicUsize)).load(Ordering::Relaxed)
        };
        if prefix & crate::large::LARGE_FLAG != 0 {
            unsafe { crate::large::free_large(inner, ptr, prefix) };
        } else {
            unsafe {
                crate::free_impl::free_small(
                    inner,
                    ptr,
                    prefix as *mut crate::descriptor::Descriptor,
                )
            };
        }
    }
}

unsafe impl<S: PageSource + Send + Sync> RawMalloc for LfMalloc<S> {
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        unsafe { self.allocate(size, PREFIX_SIZE) }
    }

    unsafe fn free(&self, ptr: *mut u8) {
        unsafe { self.deallocate(ptr) }
    }

    fn name(&self) -> &str {
        "lfmalloc"
    }

    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        unsafe { self.allocate(size, align) }
    }

    unsafe fn usable_size(&self, ptr: *mut u8) -> usize {
        unsafe { self.block_usable_size(ptr) }
    }

    fn stats(&self) -> AllocStats {
        self.os_stats()
    }
}

impl<S: PageSource> Drop for LfMalloc<S> {
    fn drop(&mut self) {
        unsafe {
            let inner = self.inner.as_ptr();
            // 1. Drain the hazard domain: retired descriptors return to
            //    DescAvail, retired queue nodes to their pools. Contexts
            //    (pools) are still alive.
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).domain));
            // 2. Release bulk memory: superblock hyperblocks, then the
            //    descriptor slabs.
            (*inner).sb_pool.release_all(&(*inner).source);
            (*inner).desc_pool.release_all(&(*inner).source);
            // 3. Drop the remaining owning fields exactly once each.
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).desc_pool));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).sb_pool));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).classes));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).source));
            // 4. Free the heap table and the instance block (plain data).
            let nheaps = (*inner).nheaps;
            let heaps_layout = Layout::array::<ProcHeap>(NUM_CLASSES * nheaps).unwrap();
            System.dealloc((*inner).heaps as *mut u8, heaps_layout);
            System.dealloc(inner as *mut u8, Layout::new::<Inner<S>>());
        }
    }
}

impl<S: PageSource> core::fmt::Debug for LfMalloc<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LfMalloc")
            .field("config", &self.inner().config)
            .field("hyperblocks", &self.hyperblock_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::Active;
    use crate::anchor::SbState;

    #[test]
    fn first_malloc_installs_an_active_superblock() {
        let a = LfMalloc::with_config(Config::with_heaps(2));
        let ci = class_index(16).unwrap();
        unsafe {
            let p = a.malloc(8);
            assert!(!p.is_null());
            // Exactly one heap of the 16-byte class is now active.
            let actives: Vec<Active> =
                (0..2).map(|h| a.inner().heap_at(ci, h).load_active()).collect();
            let installed: Vec<&Active> = actives.iter().filter(|x| !x.is_null()).collect();
            assert_eq!(installed.len(), 1);
            let active = installed[0];
            let desc = &*active.desc();
            assert_eq!(desc.sz(), 16);
            assert_eq!(desc.maxcount(), 1024);
            assert_eq!(desc.load_anchor().state(), SbState::Active);
            // Credits + anchor count account for all but the one
            // allocated block.
            let anchor = desc.load_anchor();
            assert_eq!(
                active.credits() + 1 + anchor.count(),
                desc.maxcount() - 1,
                "credit conservation"
            );
            a.free(p);
        }
    }

    #[test]
    fn freeing_last_block_empties_and_recycles() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let p = a.malloc(4_000); // class 4096: 4 blocks per superblock
            let q = a.malloc(4_000);
            let hyper_before = a.hyperblock_count();
            a.free(p);
            a.free(q);
            // Allocating again must reuse the recycled superblock.
            let r = a.malloc(4_000);
            assert_eq!(a.hyperblock_count(), hyper_before);
            a.free(r);
        }
    }

    #[test]
    fn heap_for_respects_single_mode() {
        let a = LfMalloc::with_config(Config::uniprocessor());
        let ci = class_index(64).unwrap();
        let h1 = a.inner().heap_for(ci) as *const ProcHeap;
        let h2 = a.inner().heap_at(ci, 0) as *const ProcHeap;
        assert_eq!(h1, h2);
    }

    #[test]
    fn os_stats_cover_descriptor_slabs() {
        let a = LfMalloc::new_default();
        unsafe {
            let p = a.malloc(8);
            // One superblock hyperblock (1 MiB) + one descriptor slab
            // (16 KiB) at minimum.
            let st = a.os_stats();
            assert!(st.live_bytes >= (1 << 20) + (1 << 14), "stats: {st}");
            a.free(p);
        }
    }
}
