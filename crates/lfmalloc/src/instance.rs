//! The allocator instance: construction, teardown, and the public
//! [`RawMalloc`] surface.
//!
//! All instance state lives in a single system-allocated, address-stable
//! `Inner` block ("On the first call to malloc, the static structures
//! for the size classes and processor heaps (about 16 KB for a 16
//! processor machine) are allocated and initialized", §3.1 — here
//! construction is explicit, and the lazy lock-free first-call
//! initialization lives in [`crate::global`]).
//!
//! Nothing in the malloc/free paths allocates through the Rust global
//! allocator, so an `LfMalloc` can *be* the global allocator.

use crate::active::Active;
use crate::anchor::SbState;
use crate::config::{Config, PREFIX_SIZE, SB_BATCH, SB_SHIFT};
use crate::descriptor::{Descriptor, DescriptorPool};
use crate::harden::{Hardening, MisuseCounters, QUARANTINE_CAP};
use crate::heap::{heap_index, ProcHeap};
use crate::partial::PartialList;
use crate::size_classes::{class_index, class_index_aligned, CLASS_SIZES, NUM_CLASSES};
use core::ptr::NonNull;
use core::sync::atomic::{AtomicUsize, Ordering};
use hazard::HazardDomain;
use lockfree_structs::BoundedQueue;
use malloc_api::{AllocStats, RawMalloc};
use osmem::{CountingSource, PagePool, PageSource, SpanRegistry, SystemSource};
use std::alloc::{GlobalAlloc, Layout, System};

/// A quarantined small block: `(block start, descriptor address)`.
pub(crate) type QuarantineEntry = (usize, usize);

/// Per-size-class state: the partial-superblock list plus the class
/// geometry (paper Figure 3's `sizeclass`).
#[derive(Debug)]
pub(crate) struct SizeClassState {
    /// Partial-superblock list shared by the class's heaps.
    pub partial: PartialList,
    /// Total block size (prefix included).
    pub sz: u32,
}

/// All allocator state; address-stable behind a system allocation.
pub(crate) struct Inner<S: PageSource> {
    // Field order is teardown order (see `LfMalloc::drop`): the hazard
    // domain must drain (pushing retired descriptors and queue nodes
    // back into their pools) before any pool releases memory.
    pub domain: HazardDomain,
    pub desc_pool: DescriptorPool,
    pub sb_pool: PagePool<SB_SHIFT>,
    pub source: CountingSource<S>,
    pub config: Config,
    pub nheaps: usize,
    /// `NUM_CLASSES * nheaps` processor heaps, system-allocated.
    pub heaps: *mut ProcHeap,
    pub classes: [SizeClassState; NUM_CLASSES],
    /// Count of live large blocks (diagnostics).
    pub large_live: AtomicUsize,
    /// Total OS bytes backing live large blocks (audit accounting).
    pub large_bytes: AtomicUsize,
    /// Live large-block spans, the provenance registry hardened frees
    /// consult. Populated only when `config.hardening != Off`.
    pub large_spans: SpanRegistry,
    /// Per-instance misuse accounting (always present; counts stay zero
    /// with hardening off).
    pub misuse: MisuseCounters,
    /// `nheaps` quarantine shards for freed small blocks, or null when
    /// hardening is off. System-allocated.
    pub quarantine: *mut BoundedQueue<QuarantineEntry>,
    /// Always-on liveness/maintenance counters (see [`crate::health`]).
    pub health: crate::health::HealthState,
    /// Background-reaper control plane (see [`crate::maintain`]).
    pub reaper: crate::maintain::ReaperState,
    /// Fork bookkeeping: recovered generation, atfork-hook token, and
    /// the across-fork reaper-guard stash (see [`crate::fork`]).
    pub fork: crate::fork::ForkState,
    /// Planted-bug state for the shadow-heap oracle tests: the most
    /// recent small block handed out, plus its class index. Only read
    /// when the `alloc.double_handout` failpoint is armed; see
    /// [`crate::alloc::malloc_small`].
    #[cfg(feature = "failpoints")]
    pub bug_stash: AtomicUsize,
    #[cfg(feature = "failpoints")]
    pub bug_stash_ci: AtomicUsize,
    /// Telemetry: the shard array, global counters, and the event ring.
    #[cfg(feature = "stats")]
    pub stats: crate::stats::InstanceStats,
    /// Sampled allocation-site profiler (see [`crate::profile`]).
    #[cfg(feature = "profile")]
    pub profile: crate::profile::ProfileState,
    /// Crash-forensics state: flight-recorder rings and crash-reporter
    /// wiring (see [`crate::forensics`]).
    #[cfg(feature = "forensics")]
    pub forensics: crate::forensics::ForensicsState,
}

impl<S: PageSource> Inner<S> {
    /// The heap the calling thread uses for size class `ci`.
    #[inline]
    pub fn heap_for(&self, ci: usize) -> &ProcHeap {
        let h = heap_index(self.config.heap_mode);
        unsafe { &*self.heaps.add(ci * self.nheaps + h) }
    }

    /// Heap `h` of class `ci` (tests and diagnostics).
    #[cfg(test)]
    pub fn heap_at(&self, ci: usize, h: usize) -> &ProcHeap {
        assert!(ci < NUM_CLASSES && h < self.nheaps);
        unsafe { &*self.heaps.add(ci * self.nheaps + h) }
    }

    /// Blocks currently parked in the quarantine rings (racy snapshot;
    /// 0 when hardening is off).
    pub fn quarantine_depth(&self) -> usize {
        if self.quarantine.is_null() {
            return 0;
        }
        (0..self.nheaps).map(|i| unsafe { (*self.quarantine.add(i)).len() }).sum()
    }
}

/// The completely lock-free allocator of Michael (PLDI 2004).
///
/// Generic over its OS page source `S` so experiments can inject a
/// counting source; defaults to [`SystemSource`].
///
/// # Example
///
/// ```
/// use lfmalloc::LfMalloc;
/// use malloc_api::RawMalloc;
///
/// let a = LfMalloc::new_default();
/// unsafe {
///     let p = a.malloc(64);
///     assert!(!p.is_null());
///     a.free(p);
/// }
/// ```
///
/// # Teardown
///
/// Dropping the instance returns **all** its memory to the OS and
/// invalidates any still-outstanding blocks (arena semantics). Callers
/// must free or forget outstanding blocks first.
pub struct LfMalloc<S: PageSource = SystemSource> {
    inner: NonNull<Inner<S>>,
}

unsafe impl<S: PageSource + Send + Sync> Send for LfMalloc<S> {}
unsafe impl<S: PageSource + Send + Sync> Sync for LfMalloc<S> {}

/// Construction failed because the system allocator could not supply
/// the instance's fixed metadata (heap table + state block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory;

impl core::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("lfmalloc: out of memory constructing instance")
    }
}

impl std::error::Error for OutOfMemory {}

impl LfMalloc<SystemSource> {
    /// Paper-shaped defaults: per-CPU heaps, FIFO partial lists, system
    /// page source.
    pub fn new_default() -> Self {
        Self::with_config(Config::detect())
    }

    /// Fallible [`new_default`](Self::new_default).
    pub fn try_new_default() -> Result<Self, OutOfMemory> {
        Self::try_with_config(Config::detect())
    }

    /// Custom configuration over the system page source. When
    /// [`Config::reaper`] is set, the background reaper starts here.
    pub fn with_config(config: Config) -> Self {
        let a = Self::with_config_and_source(config, SystemSource::new());
        if config.reaper.is_some() {
            a.start_reaper();
        }
        a
    }

    /// Fallible [`with_config`](Self::with_config).
    pub fn try_with_config(config: Config) -> Result<Self, OutOfMemory> {
        let a = Self::try_with_config_and_source(config, SystemSource::new())?;
        if config.reaper.is_some() {
            a.start_reaper();
        }
        Ok(a)
    }
}

impl<S: PageSource> LfMalloc<S> {
    /// Builds an instance over an injected page source (e.g. a counting
    /// source for the §4.2.5 space experiment).
    ///
    /// # Panics
    ///
    /// Panics if the system allocator cannot supply the instance
    /// metadata; use
    /// [`try_with_config_and_source`](Self::try_with_config_and_source)
    /// to propagate that as an error instead.
    pub fn with_config_and_source(config: Config, source: S) -> Self {
        Self::try_with_config_and_source(config, source)
            .expect("lfmalloc: instance allocation failed")
    }

    /// Fallible construction: `Err(OutOfMemory)` (with nothing leaked)
    /// when the system allocator cannot supply the heap table or the
    /// instance state block.
    pub fn try_with_config_and_source(config: Config, source: S) -> Result<Self, OutOfMemory> {
        let nheaps = config.heap_mode.heap_count();
        unsafe {
            let heaps_layout = Layout::array::<ProcHeap>(NUM_CLASSES * nheaps)
                .map_err(|_| OutOfMemory)?;
            let heaps = System.alloc(heaps_layout) as *mut ProcHeap;
            if heaps.is_null() {
                return Err(OutOfMemory);
            }
            for ci in 0..NUM_CLASSES {
                for h in 0..nheaps {
                    heaps.add(ci * nheaps + h).write(ProcHeap::new(ci));
                }
            }
            // Hardened instances get one quarantine ring per heap.
            let mut quarantine: *mut BoundedQueue<QuarantineEntry> = core::ptr::null_mut();
            if config.hardening != Hardening::Off {
                let q_layout = Layout::array::<BoundedQueue<QuarantineEntry>>(nheaps)
                    .map_err(|_| OutOfMemory)?;
                quarantine = System.alloc(q_layout) as *mut BoundedQueue<QuarantineEntry>;
                if quarantine.is_null() {
                    System.dealloc(heaps as *mut u8, heaps_layout);
                    return Err(OutOfMemory);
                }
                for i in 0..nheaps {
                    match BoundedQueue::new(QUARANTINE_CAP) {
                        Some(q) => quarantine.add(i).write(q),
                        None => {
                            for j in 0..i {
                                core::ptr::drop_in_place(quarantine.add(j));
                            }
                            System.dealloc(quarantine as *mut u8, q_layout);
                            System.dealloc(heaps as *mut u8, heaps_layout);
                            return Err(OutOfMemory);
                        }
                    }
                }
            }
            let free_quarantine = |q: *mut BoundedQueue<QuarantineEntry>| {
                if !q.is_null() {
                    for i in 0..nheaps {
                        core::ptr::drop_in_place(q.add(i));
                    }
                    System.dealloc(
                        q as *mut u8,
                        Layout::array::<BoundedQueue<QuarantineEntry>>(nheaps).unwrap(),
                    );
                }
            };
            // Telemetry shards mirror the heap table's layout; build them
            // first so a failure cleans up like any other metadata OOM.
            #[cfg(feature = "stats")]
            let stats = match crate::stats::InstanceStats::new(NUM_CLASSES * nheaps) {
                Some(s) => s,
                None => {
                    free_quarantine(quarantine);
                    System.dealloc(heaps as *mut u8, heaps_layout);
                    return Err(OutOfMemory);
                }
            };
            #[cfg(feature = "profile")]
            let profile = match crate::profile::ProfileState::new(config.profile) {
                Some(p) => p,
                None => {
                    free_quarantine(quarantine);
                    System.dealloc(heaps as *mut u8, heaps_layout);
                    return Err(OutOfMemory);
                }
            };
            #[cfg(feature = "forensics")]
            let forensics = match crate::forensics::ForensicsState::new(config.forensics) {
                Some(f) => f,
                None => {
                    free_quarantine(quarantine);
                    System.dealloc(heaps as *mut u8, heaps_layout);
                    return Err(OutOfMemory);
                }
            };
            let inner_layout = Layout::new::<Inner<S>>();
            let inner = System.alloc(inner_layout) as *mut Inner<S>;
            if inner.is_null() {
                free_quarantine(quarantine);
                System.dealloc(heaps as *mut u8, heaps_layout);
                return Err(OutOfMemory);
            }
            inner.write(Inner {
                domain: HazardDomain::new(),
                desc_pool: DescriptorPool::new(),
                sb_pool: PagePool::new(SB_BATCH),
                source: CountingSource::new(source),
                config,
                nheaps,
                heaps,
                classes: core::array::from_fn(|i| SizeClassState {
                    partial: PartialList::new(config.partial_mode),
                    sz: CLASS_SIZES[i],
                }),
                large_live: AtomicUsize::new(0),
                large_bytes: AtomicUsize::new(0),
                large_spans: SpanRegistry::new(),
                misuse: MisuseCounters::new(),
                quarantine,
                health: crate::health::HealthState::new(),
                reaper: crate::maintain::ReaperState::new(),
                fork: crate::fork::ForkState::new(),
                #[cfg(feature = "failpoints")]
                bug_stash: AtomicUsize::new(0),
                #[cfg(feature = "failpoints")]
                bug_stash_ci: AtomicUsize::new(usize::MAX),
                #[cfg(feature = "stats")]
                stats,
                #[cfg(feature = "profile")]
                profile,
                #[cfg(feature = "forensics")]
                forensics,
            });
            // The FIFO partial lists allocate their dummy nodes now that
            // the domain has a stable address.
            for class in &(*inner).classes {
                class.partial.init(&(*inner).domain);
            }
            // Fork awareness: register atfork hooks against the (now
            // address-stable) instance. This touches only the in-tree
            // procfork registry — never `pthread_atfork`, which may
            // itself malloc and so must not run inside the global
            // allocator's first-call initialization.
            if config.atfork {
                crate::fork::register_instance(&*inner);
            }
            // Black-box crash reporting, when configured: the instance
            // address is stable from here on, so it can register as a
            // crash sink.
            #[cfg(feature = "forensics")]
            if config.forensics.crash_handlers {
                crate::forensics::install_crash_reporter_inner(
                    &*inner,
                    config.forensics.report_fd,
                );
            }
            Ok(LfMalloc { inner: NonNull::new_unchecked(inner) })
        }
    }

    #[inline]
    pub(crate) fn inner(&self) -> &Inner<S> {
        unsafe { self.inner.as_ref() }
    }

    #[inline]
    pub(crate) fn raw_inner(&self) -> NonNull<Inner<S>> {
        self.inner
    }

    /// A borrowed, never-dropped handle over a raw instance pointer —
    /// how the reaper thread reaches the full method surface.
    ///
    /// # Safety
    ///
    /// `inner` must point at a live instance and stay live for the
    /// handle's whole lifetime; the `ManuallyDrop` wrapper must never be
    /// taken out of.
    pub(crate) unsafe fn borrow_raw(inner: NonNull<Inner<S>>) -> core::mem::ManuallyDrop<Self> {
        core::mem::ManuallyDrop::new(LfMalloc { inner })
    }

    /// The active configuration.
    pub fn config(&self) -> Config {
        self.inner().config
    }

    /// OS-level memory accounting (drives the space-efficiency
    /// experiment). Covers superblock hyperblocks, descriptor slabs and
    /// large blocks; excludes only the tiny fixed metadata block and
    /// queue-node slabs.
    pub fn os_stats(&self) -> AllocStats {
        self.inner().source.stats()
    }

    /// Number of superblock hyperblocks mapped (diagnostics).
    pub fn hyperblock_count(&self) -> usize {
        self.inner().sb_pool.hyperblock_count()
    }

    /// Approximate occupancy of the emergency descriptor reserve
    /// (diagnostics; see `DescriptorPool`).
    pub fn descriptor_reserve_len(&self) -> usize {
        self.inner().desc_pool.reserve_len()
    }

    /// This instance's misuse detections (all zero unless
    /// [`Config::hardening`](crate::config::Config) is `Detect` or
    /// `Abort`). The process-wide aggregate is
    /// [`harden::process_misuse_counters`](crate::harden::process_misuse_counters).
    pub fn misuse_counters(&self) -> &MisuseCounters {
        &self.inner().misuse
    }

    /// Releases every quarantined block back into circulation (after
    /// verifying its poison), returning how many were released. No-op
    /// when hardening is off. Safe to call concurrently with
    /// malloc/free — the quarantine rings are MPMC and the release path
    /// is the ordinary lock-free free.
    pub fn flush_quarantine(&self) -> usize {
        let inner = self.inner();
        if inner.quarantine.is_null() {
            return 0;
        }
        let mut released = 0;
        for i in 0..inner.nheaps {
            let shard = unsafe { &*inner.quarantine.add(i) };
            while let Some((block, desc)) = shard.pop() {
                unsafe {
                    crate::harden::release_quarantined(inner, block, desc as *mut Descriptor)
                };
                released += 1;
            }
        }
        released
    }

    /// Returns all reclaimable memory to the OS: uninstalls idle active
    /// superblocks, prunes empty descriptors out of the partial
    /// structures, flushes the hazard domain, then unmaps every fully
    /// free hyperblock and descriptor slab. Returns bytes released.
    ///
    /// # Safety
    ///
    /// Requires quiescence: no concurrent `malloc`/`free`/`trim` on this
    /// instance. (The instance stays fully usable afterwards.)
    pub unsafe fn trim(&self) -> usize {
        unsafe { self.trim_to(0) }
    }

    /// Like [`trim`](Self::trim) but leaves up to `target_bytes` of
    /// superblock hyperblocks cached for reuse (a low watermark;
    /// descriptor slabs, a tiny fraction, are always fully trimmed).
    ///
    /// # Safety
    ///
    /// Same quiescence contract as [`trim`](Self::trim).
    pub unsafe fn trim_to(&self, target_bytes: usize) -> usize {
        let inner = self.inner();
        let t0 = crate::lat_start!();
        inner.health.note_watermark(target_bytes);
        // 0. Hardened mode: quarantined blocks pin their superblocks
        //    partially allocated; release them before hunting for fully
        //    free hyperblocks.
        self.flush_quarantine();
        // 1. Uninstall every idle active superblock. An installed ACTIVE
        //    superblock's Active word pins credits+1 reserved blocks, so
        //    a drained (class, heap) pair otherwise holds its hyperblock
        //    forever (free() never EMPTIES an installed superblock).
        for ci in 0..NUM_CLASSES {
            for h in 0..inner.nheaps {
                let heap = unsafe { &*inner.heaps.add(ci * inner.nheaps + h) };
                let active = heap.load_active();
                if active.is_null() || heap.cas_active(active, Active::null()).is_err() {
                    continue;
                }
                let desc_ptr = active.desc() as *mut crate::descriptor::Descriptor;
                let desc = unsafe { &*desc_ptr };
                let credits = active.credits();
                let maxcount = desc.maxcount();
                // Return the credits+1 reserved blocks to the anchor.
                loop {
                    let old = desc.load_anchor();
                    if old.count() + credits + 1 == maxcount {
                        // No user blocks outstanding: the superblock is
                        // fully free — EMPTY (count stays maxcount-1, as
                        // in free()'s EMPTY transition) and recycled.
                        let new =
                            old.with_count(maxcount - 1).with_state(SbState::Empty);
                        if desc.cas_anchor(old, new).is_ok() {
                            // Counted like free()'s EMPTY transition so
                            // the fragmentation estimator's committed
                            // figure (new-sb minus emptied) stays true.
                            crate::stat!(inner, heap, free_empty);
                            crate::stat_event!(inner, SbRetire, ci, desc.sb() as usize);
                            unsafe {
                                inner.sb_pool.dealloc(desc.sb());
                                inner.desc_pool.retire(&inner.domain, desc_ptr);
                            }
                            break;
                        }
                    } else {
                        // Live blocks remain: park it as PARTIAL, same
                        // as UpdateActive's lost-race path.
                        let new = old
                            .with_count(old.count() + credits + 1)
                            .with_state(SbState::Partial);
                        if desc.cas_anchor(old, new).is_ok() {
                            unsafe { crate::alloc::heap_put_partial(inner, desc_ptr) };
                            break;
                        }
                    }
                }
            }
        }
        // 2. Prune EMPTY descriptors out of the heap partial slots and
        //    the class partial lists (free() retires most of them, but
        //    ListRemoveEmptyDesc stops at the first non-empty head, so
        //    stragglers can sit behind it).
        for ci in 0..NUM_CLASSES {
            for h in 0..inner.nheaps {
                let heap = unsafe { &*inner.heaps.add(ci * inner.nheaps + h) };
                let desc = heap.load_partial();
                if !desc.is_null()
                    && unsafe { (*desc).load_anchor() }.state() == SbState::Empty
                    && heap.cas_partial(desc, core::ptr::null_mut())
                {
                    unsafe { inner.desc_pool.retire(&inner.domain, desc) };
                }
            }
            let list = &inner.classes[ci].partial;
            let mut keep: Vec<*mut crate::descriptor::Descriptor> = Vec::new();
            while let Some(desc) = unsafe { list.get(&inner.domain) } {
                if unsafe { (*desc).load_anchor() }.state() == SbState::Empty {
                    unsafe { inner.desc_pool.retire(&inner.domain, desc) };
                } else {
                    keep.push(desc);
                }
            }
            for desc in keep {
                unsafe { list.put(&inner.domain, desc) };
            }
        }
        // 3. Flush every record's retired descriptors back into the
        //    descriptor pool so step 4 sees the slabs as free.
        unsafe { inner.domain.flush_all() };
        // 4. Give fully free hyperblocks and slabs back to the OS.
        let mut released = unsafe { inner.sb_pool.trim_to(&inner.source, target_bytes) };
        released += unsafe { inner.desc_pool.trim(&inner.domain, &inner.source) };
        crate::stat_global!(inner, trims);
        crate::stat_event!(inner, Trim, 0, released);
        crate::stat_lat!(inner, lat_trim, t0);
        released
    }

    /// Allocates `size` bytes at alignment `align` (any power of two).
    ///
    /// # Safety
    ///
    /// Standard malloc contract; see [`RawMalloc::malloc`].
    #[cfg_attr(feature = "profile", track_caller)]
    pub unsafe fn allocate(&self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(align.is_power_of_two());
        #[cfg(feature = "profile")]
        let site = core::panic::Location::caller();
        let inner = self.inner();
        let Some(_reentry) = crate::fork::enter_alloc() else {
            // Signal handler re-entered the allocator on this thread:
            // fail fast instead of racing our own interrupted frame.
            crate::fork::reject_reentrant(inner, 0);
            return core::ptr::null_mut();
        };
        crate::fork::maybe_recover(inner);
        let off = align.max(PREFIX_SIZE);
        let Some(total) = size.checked_add(off) else {
            return core::ptr::null_mut();
        };
        let class = if align <= PREFIX_SIZE {
            class_index(total)
        } else {
            class_index_aligned(total, align)
        };
        let p = match class {
            Some(ci) => unsafe { crate::alloc::malloc_small(inner, ci, off) },
            None => unsafe { crate::large::alloc_large(inner, size, align) },
        };
        #[cfg(feature = "profile")]
        if !p.is_null() {
            crate::profile::tick(inner, p, size, site);
        }
        #[cfg(feature = "forensics")]
        crate::forensics::record(
            inner,
            if p.is_null() {
                crate::forensics::OpKind::AllocFailed
            } else {
                crate::forensics::OpKind::Alloc
            },
            match class {
                Some(ci) => ci as u16,
                None => crate::forensics::CLASS_LARGE,
            },
            p as usize,
        );
        p
    }

    /// Allocates `size` zeroed bytes.
    ///
    /// Small blocks come from recycled superblocks and are always
    /// explicitly zeroed. Large blocks go straight to the page source
    /// and are never pooled (see [`crate::large`]), so when the source
    /// guarantees zero-filled fresh pages
    /// ([`PageSource::zeroes_fresh_pages`]) the memset is skipped — the
    /// user area of a fresh large block is provably untouched (the
    /// prefix word sits below the user pointer and hardened canaries sit
    /// beyond the user extent).
    ///
    /// # Safety
    ///
    /// Standard malloc contract; see [`RawMalloc::malloc_zeroed`].
    #[cfg_attr(feature = "profile", track_caller)]
    pub unsafe fn allocate_zeroed(&self, size: usize) -> *mut u8 {
        #[cfg(feature = "profile")]
        let site = core::panic::Location::caller();
        let inner = self.inner();
        let Some(_reentry) = crate::fork::enter_alloc() else {
            crate::fork::reject_reentrant(inner, 0);
            return core::ptr::null_mut();
        };
        crate::fork::maybe_recover(inner);
        let off = PREFIX_SIZE;
        let Some(total) = size.checked_add(off) else {
            return core::ptr::null_mut();
        };
        let class = class_index(total);
        let p = match class {
            Some(ci) => {
                let p = unsafe { crate::alloc::malloc_small(inner, ci, off) };
                if !p.is_null() {
                    unsafe { core::ptr::write_bytes(p, 0, size) };
                }
                p
            }
            None => {
                let p = unsafe { crate::large::alloc_large(inner, size, PREFIX_SIZE) };
                if !p.is_null() && !inner.source.zeroes_fresh_pages() {
                    unsafe { core::ptr::write_bytes(p, 0, size) };
                }
                p
            }
        };
        #[cfg(feature = "profile")]
        if !p.is_null() {
            crate::profile::tick(inner, p, size, site);
        }
        #[cfg(feature = "forensics")]
        crate::forensics::record(
            inner,
            if p.is_null() {
                crate::forensics::OpKind::AllocFailed
            } else {
                crate::forensics::OpKind::Alloc
            },
            match class {
                Some(ci) => ci as u16,
                None => crate::forensics::CLASS_LARGE,
            },
            p as usize,
        );
        p
    }

    /// Crash-tolerance test hook: reserves a block from the calling
    /// thread's heap for size class of `size` and abandons the
    /// operation, as if the reserving thread were killed mid-`malloc`
    /// (between Figure 4's lines 6 and 8). Leaks at most one block.
    ///
    /// Returns true if a reservation was actually abandoned.
    #[doc(hidden)]
    pub fn simulate_killed_reservation(&self, size: usize) -> bool {
        let inner = self.inner();
        match class_index(size + PREFIX_SIZE) {
            Some(ci) => unsafe { crate::alloc::abandon_reservation(inner, ci) },
            None => false,
        }
    }

    /// Usable bytes in the block at `ptr` (size-class rounding makes
    /// this ≥ the requested size).
    ///
    /// # Safety
    ///
    /// `ptr` must be a live block of this instance.
    pub unsafe fn block_usable_size(&self, ptr: *mut u8) -> usize {
        let prefix_addr = ptr as usize - PREFIX_SIZE;
        let prefix =
            unsafe { (*(prefix_addr as *const AtomicUsize)).load(Ordering::Relaxed) };
        if prefix & crate::large::LARGE_FLAG != 0 {
            return unsafe { crate::large::usable_size_large(ptr, prefix) };
        }
        let desc = unsafe { &*(prefix as *const crate::descriptor::Descriptor) };
        let sz = desc.sz() as usize;
        let sb = desc.sb() as usize;
        let idx = (prefix_addr - sb) / sz;
        let block_end = sb + (idx + 1) * sz;
        block_end - ptr as usize
    }

    /// Frees a block returned by [`allocate`](Self::allocate) (or by the
    /// `RawMalloc` methods).
    ///
    /// # Safety
    ///
    /// `ptr` must be null or a live block of this instance.
    pub unsafe fn deallocate(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        let inner = self.inner();
        let Some(_reentry) = crate::fork::enter_alloc() else {
            // Reentrant free: leaking the block is the only safe answer
            // (touching the anchor could race our interrupted frame).
            crate::fork::reject_reentrant(inner, ptr as usize);
            return;
        };
        crate::fork::maybe_recover(inner);
        // Unwind any live sample before the block is dispatched; works
        // on every free path (hardened, large, TLS teardown) because
        // removal needs no thread identity.
        #[cfg(feature = "profile")]
        crate::profile::untick(inner, ptr);
        // Record before dispatch so misuse frees (which the hardened
        // path rejects) still land in the flight recorder.
        #[cfg(feature = "forensics")]
        crate::forensics::record_free(inner, ptr);
        if inner.config.hardening != Hardening::Off {
            // The validated path establishes provenance before touching
            // any memory; misuse is reported, never executed.
            return unsafe { crate::harden::free_hardened(inner, ptr) };
        }
        // Read the prefix: a descriptor pointer (even) or the
        // large-block marker (odd).
        let prefix = unsafe {
            (*( (ptr as usize - PREFIX_SIZE) as *const AtomicUsize)).load(Ordering::Relaxed)
        };
        if prefix & crate::large::LARGE_FLAG != 0 {
            unsafe { crate::large::free_large(inner, ptr, prefix) };
        } else {
            unsafe {
                crate::free_impl::free_small(
                    inner,
                    ptr,
                    prefix as *mut crate::descriptor::Descriptor,
                )
            };
        }
    }
}

unsafe impl<S: PageSource + Send + Sync> RawMalloc for LfMalloc<S> {
    // Under `profile`, caller locations flow through these shims into
    // `allocate` so samples attribute to the application call site.
    #[cfg_attr(feature = "profile", track_caller)]
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        unsafe { self.allocate(size, PREFIX_SIZE) }
    }

    unsafe fn free(&self, ptr: *mut u8) {
        unsafe { self.deallocate(ptr) }
    }

    fn name(&self) -> &str {
        "lfmalloc"
    }

    #[cfg_attr(feature = "profile", track_caller)]
    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        unsafe { self.allocate(size, align) }
    }

    #[cfg_attr(feature = "profile", track_caller)]
    unsafe fn malloc_zeroed(&self, size: usize) -> *mut u8 {
        unsafe { self.allocate_zeroed(size) }
    }

    unsafe fn usable_size(&self, ptr: *mut u8) -> usize {
        unsafe { self.block_usable_size(ptr) }
    }

    fn stats(&self) -> AllocStats {
        self.os_stats()
    }
}

impl<S: PageSource> Drop for LfMalloc<S> {
    fn drop(&mut self) {
        // 0a. Unregister the atfork hooks before anything is torn down:
        //     unregistration serializes on the procfork registry lock,
        //     which an in-flight fork holds from prepare to
        //     parent/child, so after this no hook can see the dying
        //     instance.
        crate::fork::unregister_instance(self.inner());
        // 0a'. Drop out of the crash-sink table first: after teardown
        //      starts, a signal must not walk this instance's memory.
        #[cfg(feature = "forensics")]
        crate::forensics::unregister_crash_sink(self.inner());
        // 0b. Stop and join the background reaper (if any) before any
        //     state is torn down: a maintenance pass must never race
        //     teardown.
        crate::maintain::stop_reaper_inner(self.inner());
        // 0c. Stop and join the metrics scrape thread under the same
        //     rule: it borrows the instance and must die first.
        #[cfg(feature = "stats")]
        crate::metrics::stop_metrics_inner(self.inner());
        unsafe {
            let inner = self.inner.as_ptr();
            // 1. Drain the hazard domain: retired descriptors return to
            //    DescAvail, retired queue nodes to their pools. Contexts
            //    (pools) are still alive.
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).domain));
            // 2. Release bulk memory: superblock hyperblocks, then the
            //    descriptor slabs.
            (*inner).sb_pool.release_all(&(*inner).source);
            (*inner).desc_pool.release_all(&(*inner).source);
            // 3. Drop the remaining owning fields exactly once each.
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).desc_pool));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).sb_pool));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).classes));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).source));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).large_spans));
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).reaper));
            #[cfg(feature = "stats")]
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).stats));
            #[cfg(feature = "profile")]
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).profile));
            #[cfg(feature = "forensics")]
            core::ptr::drop_in_place(core::ptr::addr_of_mut!((*inner).forensics));
            // Quarantine entries are plain addresses into memory already
            // released above; dropping the rings only frees their
            // buffers.
            let quarantine = (*inner).quarantine;
            if !quarantine.is_null() {
                let nheaps = (*inner).nheaps;
                for i in 0..nheaps {
                    core::ptr::drop_in_place(quarantine.add(i));
                }
                System.dealloc(
                    quarantine as *mut u8,
                    Layout::array::<BoundedQueue<QuarantineEntry>>(nheaps).unwrap(),
                );
            }
            // 4. Free the heap table and the instance block (plain data).
            let nheaps = (*inner).nheaps;
            let heaps_layout = Layout::array::<ProcHeap>(NUM_CLASSES * nheaps).unwrap();
            System.dealloc((*inner).heaps as *mut u8, heaps_layout);
            System.dealloc(inner as *mut u8, Layout::new::<Inner<S>>());
        }
    }
}

impl<S: PageSource> core::fmt::Debug for LfMalloc<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LfMalloc")
            .field("config", &self.inner().config)
            .field("hyperblocks", &self.hyperblock_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::Active;
    use crate::anchor::SbState;

    #[test]
    fn first_malloc_installs_an_active_superblock() {
        let a = LfMalloc::with_config(Config::with_heaps(2));
        let ci = class_index(16).unwrap();
        unsafe {
            let p = a.malloc(8);
            assert!(!p.is_null());
            // Exactly one heap of the 16-byte class is now active.
            let actives: Vec<Active> =
                (0..2).map(|h| a.inner().heap_at(ci, h).load_active()).collect();
            let installed: Vec<&Active> = actives.iter().filter(|x| !x.is_null()).collect();
            assert_eq!(installed.len(), 1);
            let active = installed[0];
            let desc = &*active.desc();
            assert_eq!(desc.sz(), 16);
            assert_eq!(desc.maxcount(), 1024);
            assert_eq!(desc.load_anchor().state(), SbState::Active);
            // Credits + anchor count account for all but the one
            // allocated block.
            let anchor = desc.load_anchor();
            assert_eq!(
                active.credits() + 1 + anchor.count(),
                desc.maxcount() - 1,
                "credit conservation"
            );
            a.free(p);
        }
    }

    #[test]
    fn freeing_last_block_empties_and_recycles() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let p = a.malloc(4_000); // class 4096: 4 blocks per superblock
            let q = a.malloc(4_000);
            let hyper_before = a.hyperblock_count();
            a.free(p);
            a.free(q);
            // Allocating again must reuse the recycled superblock.
            let r = a.malloc(4_000);
            assert_eq!(a.hyperblock_count(), hyper_before);
            a.free(r);
        }
    }

    #[test]
    fn heap_for_respects_single_mode() {
        let a = LfMalloc::with_config(Config::uniprocessor());
        let ci = class_index(64).unwrap();
        let h1 = a.inner().heap_for(ci) as *const ProcHeap;
        let h2 = a.inner().heap_at(ci, 0) as *const ProcHeap;
        assert_eq!(h1, h2);
    }

    #[test]
    fn try_construction_succeeds_and_reports_errors_as_values() {
        let a = LfMalloc::try_new_default().expect("healthy system must construct");
        unsafe {
            let p = a.malloc(100);
            assert!(!p.is_null());
            a.free(p);
        }
        assert_eq!(format!("{OutOfMemory}"), "lfmalloc: out of memory constructing instance");
    }

    #[test]
    fn trim_after_free_all_returns_every_byte() {
        let a = LfMalloc::with_config(Config::with_heaps(2));
        unsafe {
            let mut ptrs = Vec::new();
            for i in 0..2_000usize {
                let p = a.malloc(8 + (i % 500));
                assert!(!p.is_null());
                ptrs.push(p);
            }
            for p in ptrs {
                a.free(p);
            }
            // Idle actives pin their hyperblocks until trimmed.
            assert!(a.os_stats().live_bytes > 0);
            let released = a.trim();
            assert!(released > 0);
            assert_eq!(
                a.os_stats().live_bytes,
                0,
                "all superblock hyperblocks and descriptor slabs released"
            );
            assert_eq!(a.hyperblock_count(), 0);
            let rep = a.audit();
            assert!(rep.is_clean(), "audit after trim: {rep}");
            // The instance stays fully usable.
            let p = a.malloc(64);
            assert!(!p.is_null());
            a.free(p);
        }
    }

    #[test]
    fn trim_with_live_blocks_keeps_them_valid() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let p = a.malloc(4_000); // class 4096: 4 blocks per superblock
            let q = a.malloc(4_000);
            core::ptr::write_bytes(p, 0xAB, 4_000);
            a.free(q);
            let released = a.trim();
            // The partially used superblock's hyperblock must survive.
            assert_eq!(a.hyperblock_count(), 1);
            let _ = released;
            assert_eq!(*p, 0xAB);
            assert_eq!(*p.add(3_999), 0xAB);
            let rep = a.audit();
            assert!(rep.is_clean(), "audit after partial trim: {rep}");
            a.free(p);
            a.trim();
            assert_eq!(a.os_stats().live_bytes, 0);
            assert!(a.audit().is_clean());
        }
    }

    #[test]
    fn trim_to_keeps_watermark_of_cached_hyperblocks() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            // Force several hyperblocks by allocating > 1 MiB of blocks.
            let mut ptrs = Vec::new();
            for _ in 0..300 {
                let p = a.malloc(8_000); // class 8192: 2 blocks per sb
                assert!(!p.is_null());
                ptrs.push(p);
            }
            assert!(a.hyperblock_count() >= 3);
            for p in ptrs {
                a.free(p);
            }
            a.trim_to(1 << 20);
            assert_eq!(a.hyperblock_count(), 1, "watermark caches one hyperblock");
            assert!(a.audit().is_clean());
            a.trim();
            assert_eq!(a.hyperblock_count(), 0);
        }
    }

    #[test]
    fn os_stats_cover_descriptor_slabs() {
        let a = LfMalloc::new_default();
        unsafe {
            let p = a.malloc(8);
            // One superblock hyperblock (1 MiB) + one descriptor slab
            // (16 KiB) at minimum.
            let st = a.os_stats();
            assert!(st.live_bytes >= (1 << 20) + (1 << 14), "stats: {st}");
            a.free(p);
        }
    }
}
