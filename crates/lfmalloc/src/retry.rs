//! Bounded retry with exponential backoff for transient page-source
//! failure.
//!
//! The paper assumes `mmap` either succeeds or the process is out of
//! memory, but a real OS (and PR 1's `FlakySource` outage plans) can
//! fail transiently — the kernel is reclaiming, a cgroup limit is
//! momentarily hit, an injected outage is in flight. Treating the first
//! null as OOM turns every such blip into a spurious allocation
//! failure. Instead, the superblock-carve and large-allocation paths
//! retry up to [`Config::oom_retries`](crate::config::Config::oom_retries)
//! times, spinning an exponential [`Backoff`] and yielding the thread
//! between attempts so a recovering source gets time to recover.
//!
//! Lock-freedom is unaffected: the retry count is a hard bound, so every
//! call still completes in a finite number of steps; after the budget is
//! spent the failure propagates as a null return (never a panic).

use lockfree_structs::Backoff;

/// Runs `attempt` until it returns non-null, at most `1 + retries`
/// times, with exponential backoff plus a scheduler yield between
/// attempts. Returns the first non-null result, or null once the budget
/// is exhausted.
pub(crate) fn with_backoff(retries: u32, mut attempt: impl FnMut() -> *mut u8) -> *mut u8 {
    let first = attempt();
    if !first.is_null() {
        return first;
    }
    let mut backoff = Backoff::new();
    for _ in 0..retries {
        backoff.spin();
        // The backoff spin saturates quickly (MAX_SHIFT); the yield is
        // what actually gives a recovering OS room to make progress.
        std::thread::yield_now();
        let p = attempt();
        if !p.is_null() {
            return p;
        }
    }
    core::ptr::null_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn first_success_needs_no_backoff() {
        let calls = AtomicU32::new(0);
        let p = with_backoff(8, || {
            calls.fetch_add(1, Ordering::Relaxed);
            0x1000 as *mut u8
        });
        assert_eq!(p, 0x1000 as *mut u8);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn recovers_within_budget() {
        let calls = AtomicU32::new(0);
        let p = with_backoff(8, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 4 {
                core::ptr::null_mut()
            } else {
                0x2000 as *mut u8
            }
        });
        assert_eq!(p, 0x2000 as *mut u8);
        assert_eq!(calls.load(Ordering::Relaxed), 5, "stops at first success");
    }

    #[test]
    fn exhausted_budget_returns_null() {
        let calls = AtomicU32::new(0);
        let p = with_backoff(3, || {
            calls.fetch_add(1, Ordering::Relaxed);
            core::ptr::null_mut()
        });
        assert!(p.is_null());
        assert_eq!(calls.load(Ordering::Relaxed), 4, "1 attempt + 3 retries");
    }

    #[test]
    fn zero_retries_is_single_attempt() {
        let calls = AtomicU32::new(0);
        let p = with_backoff(0, || {
            calls.fetch_add(1, Ordering::Relaxed);
            core::ptr::null_mut()
        });
        assert!(p.is_null());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
