//! Allocator configuration and load-bearing constants.

use crate::harden::Hardening;
use crate::health::LivenessConfig;
use crate::maintain::ReaperConfig;

/// Superblock size exponent: superblocks are `2^SB_SHIFT` = 16 KiB, the
/// paper's example size, and are carved from 1 MiB hyperblocks.
pub const SB_SHIFT: u32 = 14;

/// Superblock size in bytes.
pub const SB_SIZE: usize = 1 << SB_SHIFT;

/// Superblocks per hyperblock (§3.2.5: "batches of (e.g., 1 MB)
/// hyperblocks").
pub const SB_BATCH: usize = 64;

/// Descriptors are aligned to `2^DESC_ALIGN_SHIFT` = 64 bytes, freeing
/// the low 6 bits of a descriptor pointer for the `credits` subfield of
/// the `Active` word ("the addresses of superblock descriptors can be
/// guaranteed to be aligned to some power of 2 (e.g., 64)").
pub const DESC_ALIGN_SHIFT: u32 = 6;

/// Maximum credits held in an `Active` word: with 6 pointer bits free,
/// `credits` ranges over 0..=63, encoding 1..=64 available reservations.
pub const MAX_CREDITS: u32 = 1 << DESC_ALIGN_SHIFT;

/// Per-block prefix holding the descriptor pointer (or the large-block
/// marker). "Each block includes an 8 byte prefix (overhead)."
pub const PREFIX_SIZE: usize = 8;

/// Default [`Config::oom_retries`]: enough attempts that a brief OS
/// outage (a handful of failed `mmap`s while the kernel reclaims) is
/// ridden out by backoff instead of surfacing as a spurious null.
pub const DEFAULT_OOM_RETRIES: u32 = 8;

/// How threads map to processor heaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapMode {
    /// One heap per "processor": thread id hashes into `n` heaps. The
    /// paper sizes this "proportional to the number of processors".
    PerCpu(usize),
    /// One heap total, skipping the thread-id lookup — the §4.2.4
    /// uniprocessor optimization ("15% increase in contention-free
    /// speedup").
    Single,
}

impl HeapMode {
    /// Number of heaps this mode uses per size class.
    pub fn heap_count(self) -> usize {
        match self {
            HeapMode::PerCpu(n) => n.max(1),
            HeapMode::Single => 1,
        }
    }
}

/// Organization of the size-class partial-superblock lists (§3.2.6
/// describes both; the paper prefers FIFO).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartialMode {
    /// Michael–Scott FIFO queue: "reduces the chances of contention and
    /// false sharing" — the paper's preferred choice.
    Fifo,
    /// LIFO (Treiber) list — the alternative the paper sketches; kept as
    /// an ablation (experiment A1 in DESIGN.md).
    Lifo,
    /// Michael's lock-free ordered list with mid-list removal — the
    /// paper's other §3.2.6 option: "the simpler version in [19] of the
    /// lock-free linked list algorithm in [16] can be used to manage
    /// such a list ... with the possibility of removing descriptors
    /// from the middle of the list".
    List,
}

/// Allocation-sampler parameters (read only when the `profile` cargo
/// feature is compiled in; carried unconditionally because two words of
/// configuration cost nothing and keep [`Config`]'s shape
/// feature-independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileParams {
    /// Mean bytes of allocation traffic between samples. Every thread
    /// counts requested bytes down from a deterministic per-thread phase
    /// and samples the allocation that crosses zero, so each sample
    /// statistically represents ~`stride_bytes` of live traffic.
    pub stride_bytes: u64,
    /// Seed of the per-thread stride phases. Same seed + same
    /// single-threaded allocation sequence ⇒ identical samples.
    pub seed: u64,
}

impl ProfileParams {
    /// Default: one sample per ~512 KiB of allocation traffic, seeded
    /// with the splitmix64 golden-ratio increment.
    pub const fn default_const() -> Self {
        ProfileParams { stride_bytes: 512 * 1024, seed: 0x9E37_79B9_7F4A_7C15 }
    }

    /// Custom stride and seed (`stride_bytes` is clamped to ≥ 1).
    pub const fn new(stride_bytes: u64, seed: u64) -> Self {
        ProfileParams {
            stride_bytes: if stride_bytes == 0 { 1 } else { stride_bytes },
            seed,
        }
    }
}

impl Default for ProfileParams {
    fn default() -> Self {
        Self::default_const()
    }
}

/// Crash-forensics parameters (read only when the `forensics` cargo
/// feature is compiled in; carried unconditionally for the same reason
/// as [`ProfileParams`] — two words of configuration keep [`Config`]'s
/// shape feature-independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForensicsParams {
    /// File descriptor crash reports and fail-stop black boxes are
    /// written to (with `write(2)` only). Default 2 (stderr).
    pub report_fd: i32,
    /// When `true`, the instance installs the chained
    /// SIGSEGV/SIGBUS/SIGABRT crash handlers at construction (the
    /// equivalent of calling
    /// [`install_crash_reporter`](crate::LfMalloc::install_crash_reporter)
    /// with `report_fd`). Default `false`: the flight recorder always
    /// runs under the feature, but taking over process signal
    /// dispositions stays an explicit opt-in.
    pub crash_handlers: bool,
}

impl ForensicsParams {
    /// Default: report to stderr, no handlers installed automatically.
    pub const fn default_const() -> Self {
        ForensicsParams { report_fd: 2, crash_handlers: false }
    }

    /// Custom report fd and handler opt-in.
    pub const fn new(report_fd: i32, crash_handlers: bool) -> Self {
        ForensicsParams { report_fd, crash_handlers }
    }
}

impl Default for ForensicsParams {
    fn default() -> Self {
        Self::default_const()
    }
}

/// Tunable allocator parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Heap topology.
    pub heap_mode: HeapMode,
    /// Partial-list organization.
    pub partial_mode: PartialMode,
    /// Cap on credits moved into the `Active` word at once
    /// (1..=[`MAX_CREDITS`]). The paper fixes this at 64 via pointer
    /// alignment; the A2 ablation sweeps it to show what credit
    /// batching buys.
    pub max_credits: u32,
    /// Bounded retries (with exponential backoff) when the page source
    /// reports transient failure on the superblock-carve and large-
    /// allocation paths. 0 makes every source failure an immediate OOM.
    pub oom_retries: u32,
    /// Deallocation hardening: [`Hardening::Off`] (default) keeps the
    /// paper's trusting hot path; `Detect`/`Abort` validate every free
    /// (provenance, double free, poison, guard pages) — see the
    /// [`harden`](crate::harden) module.
    pub hardening: Hardening,
    /// Liveness watchdog: retry ceiling + escalation policy for the
    /// instrumented CAS loops — see the [`health`](crate::health) module.
    /// Defaults to [`LivenessConfig::default_const`] (Report at a ceiling
    /// no honest contention reaches).
    pub liveness: LivenessConfig,
    /// Opt-in background reaper: when `Some`, [`crate::LfMalloc`]
    /// instances over the system page source spawn a maintenance thread
    /// that calls [`maintain`](crate::LfMalloc::maintain) on the given
    /// period/budget (custom-source instances call
    /// [`start_reaper`](crate::LfMalloc::start_reaper) explicitly).
    /// `None` (default): maintenance only runs when the caller asks.
    pub reaper: Option<ReaperConfig>,
    /// Fork awareness: when `true` (default) the instance registers
    /// prepare/parent/child hooks with [`malloc_api::procfork`] at
    /// construction, so forking through [`malloc_api::procfork::fork`]
    /// (or `fork(2)` itself once [`malloc_api::procfork::install`] has
    /// bridged the registry into `pthread_atfork`) quiesces the reaper
    /// across the fork and runs child-side heap recovery eagerly. When
    /// `false`, recovery still happens — lazily, on the child's first
    /// allocator call — but the reaper handoff is best-effort only. See
    /// the [`fork`](crate::fork) module and DESIGN.md §12.
    pub atfork: bool,
    /// Allocation-sampler stride/seed (active only with the `profile`
    /// cargo feature; see the `profile` module).
    pub profile: ProfileParams,
    /// Crash-forensics report fd and handler opt-in (active only with
    /// the `forensics` cargo feature; see the `forensics` module).
    pub forensics: ForensicsParams,
}

impl Config {
    /// Paper-shaped defaults: per-CPU heaps (detected at initialization
    /// time, as §4.2.4 suggests: "the allocator can determine the number
    /// of processors in the system at initialization time"), FIFO
    /// partial lists.
    pub fn detect() -> Self {
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Config {
            heap_mode: HeapMode::PerCpu(cpus),
            partial_mode: PartialMode::Fifo,
            max_credits: MAX_CREDITS,
            oom_retries: DEFAULT_OOM_RETRIES,
            hardening: Hardening::Off,
            liveness: LivenessConfig::default_const(),
            reaper: None,
            atfork: true,
            profile: ProfileParams::default_const(),
            forensics: ForensicsParams::default_const(),
        }
    }

    /// Fixed heap count (for scalability experiments that oversubscribe,
    /// and for the global allocator, whose initialization path must not
    /// allocate — unlike [`detect`](Self::detect), this is `const`).
    pub const fn with_heaps(n: usize) -> Self {
        Config {
            heap_mode: HeapMode::PerCpu(n),
            partial_mode: PartialMode::Fifo,
            max_credits: MAX_CREDITS,
            oom_retries: DEFAULT_OOM_RETRIES,
            hardening: Hardening::Off,
            liveness: LivenessConfig::default_const(),
            reaper: None,
            atfork: true,
            profile: ProfileParams::default_const(),
            forensics: ForensicsParams::default_const(),
        }
    }

    /// The §4.2.4 single-heap configuration.
    pub const fn uniprocessor() -> Self {
        Config {
            heap_mode: HeapMode::Single,
            partial_mode: PartialMode::Fifo,
            max_credits: MAX_CREDITS,
            oom_retries: DEFAULT_OOM_RETRIES,
            hardening: Hardening::Off,
            liveness: LivenessConfig::default_const(),
            reaper: None,
            atfork: true,
            profile: ProfileParams::default_const(),
            forensics: ForensicsParams::default_const(),
        }
    }

    /// Clamped credit cap for the A2 ablation.
    pub fn with_max_credits(self, n: u32) -> Self {
        Config { max_credits: n.clamp(1, MAX_CREDITS), ..self }
    }

    /// Retry budget for transient page-source failure.
    pub const fn with_oom_retries(self, n: u32) -> Self {
        Config { oom_retries: n, ..self }
    }

    /// Deallocation-hardening mode (const so the global allocator's
    /// static configuration can opt in at compile time).
    pub const fn with_hardening(self, h: Hardening) -> Self {
        Config { hardening: h, ..self }
    }

    /// Liveness-watchdog policy and retry ceiling.
    pub const fn with_liveness(self, l: LivenessConfig) -> Self {
        Config { liveness: l, ..self }
    }

    /// Enables the background reaper with the given period and budget.
    pub const fn with_reaper(self, r: ReaperConfig) -> Self {
        Config { reaper: Some(r), ..self }
    }

    /// Enables or disables automatic atfork-hook registration.
    pub const fn with_atfork(self, on: bool) -> Self {
        Config { atfork: on, ..self }
    }

    /// Shorthand for `with_atfork(false)`: no hooks are registered and
    /// child-side recovery is purely lazy.
    pub const fn without_atfork(self) -> Self {
        self.with_atfork(false)
    }

    /// Allocation-sampler stride and seed (no effect unless the
    /// `profile` cargo feature is compiled in).
    pub const fn with_profile(self, p: ProfileParams) -> Self {
        Config { profile: p, ..self }
    }

    /// Crash-forensics report fd and handler opt-in (no effect unless
    /// the `forensics` cargo feature is compiled in; const so the
    /// global allocator's static configuration can opt in at compile
    /// time).
    pub const fn with_forensics(self, p: ForensicsParams) -> Self {
        Config { forensics: p, ..self }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::detect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SB_SIZE, 16 * 1024);
        assert_eq!(MAX_CREDITS, 64);
        assert_eq!(1usize << DESC_ALIGN_SHIFT, 64);
        assert!(SB_BATCH * SB_SIZE == 1 << 20, "hyperblocks should be 1 MiB");
    }

    #[test]
    fn heap_mode_counts() {
        assert_eq!(HeapMode::Single.heap_count(), 1);
        assert_eq!(HeapMode::PerCpu(8).heap_count(), 8);
        assert_eq!(HeapMode::PerCpu(0).heap_count(), 1, "zero heaps is clamped");
    }

    #[test]
    fn detect_gives_at_least_one_heap() {
        let c = Config::detect();
        assert!(c.heap_mode.heap_count() >= 1);
        assert_eq!(c.partial_mode, PartialMode::Fifo);
    }

    #[test]
    fn oom_retries_default_and_override() {
        assert_eq!(Config::detect().oom_retries, DEFAULT_OOM_RETRIES);
        assert_eq!(Config::with_heaps(2).oom_retries, DEFAULT_OOM_RETRIES);
        assert_eq!(Config::uniprocessor().with_oom_retries(0).oom_retries, 0);
    }

    #[test]
    fn hardening_defaults_off_and_overrides() {
        assert_eq!(Config::detect().hardening, Hardening::Off);
        assert_eq!(Config::with_heaps(2).hardening, Hardening::Off);
        let c = Config::uniprocessor().with_hardening(Hardening::Detect);
        assert_eq!(c.hardening, Hardening::Detect);
        assert_eq!(c.with_hardening(Hardening::Abort).hardening, Hardening::Abort);
    }

    #[test]
    fn liveness_defaults_and_override() {
        use crate::health::{LivenessPolicy, DEFAULT_RETRY_CEILING};
        for c in [Config::detect(), Config::with_heaps(2), Config::uniprocessor()] {
            assert_eq!(c.liveness.retry_ceiling, DEFAULT_RETRY_CEILING);
            assert_eq!(c.liveness.policy, LivenessPolicy::Report);
        }
        const CUSTOM: Config = Config::with_heaps(1)
            .with_liveness(LivenessConfig::new(16, LivenessPolicy::Abort));
        assert_eq!(CUSTOM.liveness.retry_ceiling, 16);
        assert_eq!(CUSTOM.liveness.policy, LivenessPolicy::Abort);
    }

    #[test]
    fn atfork_defaults_on_and_override() {
        for c in [Config::detect(), Config::with_heaps(2), Config::uniprocessor()] {
            assert!(c.atfork, "atfork hooks default on");
        }
        const OFF: Config = Config::with_heaps(1).without_atfork();
        assert!(!OFF.atfork);
        assert!(OFF.with_atfork(true).atfork);
    }

    #[test]
    fn profile_params_default_and_override() {
        for c in [Config::detect(), Config::with_heaps(2), Config::uniprocessor()] {
            assert_eq!(c.profile, ProfileParams::default_const());
        }
        const CUSTOM: Config =
            Config::with_heaps(1).with_profile(ProfileParams::new(4096, 7));
        assert_eq!(CUSTOM.profile.stride_bytes, 4096);
        assert_eq!(CUSTOM.profile.seed, 7);
        assert_eq!(ProfileParams::new(0, 1).stride_bytes, 1, "zero stride is clamped");
    }

    #[test]
    fn reaper_defaults_off_and_override() {
        use core::time::Duration;
        assert!(Config::detect().reaper.is_none());
        assert!(Config::uniprocessor().reaper.is_none());
        const WITH: Config =
            Config::with_heaps(1).with_reaper(ReaperConfig::every(Duration::from_millis(50)));
        let r = WITH.reaper.expect("reaper configured");
        assert_eq!(r.period, Duration::from_millis(50));
    }
}
