//! A completely lock-free dynamic memory allocator — a from-scratch Rust
//! reproduction of Maged M. Michael, *Scalable Lock-Free Dynamic Memory
//! Allocation*, PLDI 2004.
//!
//! # What the paper builds
//!
//! A `malloc`/`free` pair that is *lock-free*: whenever any thread takes
//! a finite number of steps, some allocator operation completes,
//! regardless of how other threads are delayed, preempted, or killed.
//! This yields deadlock immunity, async-signal-safety, priority-inversion
//! tolerance, kill-tolerant availability, and preemption tolerance —
//! without kernel support and using only single-word CAS.
//!
//! # Structure (paper §3)
//!
//! * Large blocks go straight to the OS ([`large`]).
//! * Small blocks come from 16 KiB **superblocks** divided into
//!   equal-size blocks; superblocks belong to **size classes**
//!   ([`size_classes`]), each size class has multiple **processor
//!   heaps** ([`heap`]).
//! * Each superblock is described by a **descriptor** ([`descriptor`])
//!   whose [`Anchor`](anchor::Anchor) word (avail index, free count,
//!   state, ABA tag) is updated with single CAS operations.
//! * Each heap's [`Active`](active::Active) word packs a descriptor
//!   pointer with a **credits** count so the common malloc path is one
//!   CAS to reserve plus one CAS to pop ([`alloc`]).
//! * A typical free is a single CAS push onto the superblock's free list
//!   ([`free_impl`]).
//! * Retired descriptors are recycled through hazard pointers (the
//!   paper's `SafeCAS`); size-class partial-superblock lists are
//!   lock-free FIFO queues ([`partial`]).
//!
//! # Quick start
//!
//! ```
//! use lfmalloc::LfMalloc;
//! use malloc_api::RawMalloc;
//!
//! let alloc = LfMalloc::new_default();
//! unsafe {
//!     let p = alloc.malloc(100);
//!     assert!(!p.is_null());
//!     core::ptr::write_bytes(p, 42, 100);
//!     alloc.free(p);
//! }
//! ```
//!
//! To install it as the Rust global allocator, see [`global::GlobalLfMalloc`].
//!
//! # Deviations from the paper
//!
//! Documented centrally in `DESIGN.md`; the load-bearing ones:
//! anchor bit-field widths are 12/12/2/38 instead of 10/10/2/42 (so a
//! 16 KiB superblock of 16-byte blocks fits), the block prefix
//! generalizes to alignments above 8, and empty superblocks return to a
//! never-unmapped page pool rather than `munmap` (the paper's hyperblock
//! scheme, §3.2.5).

// Telemetry increment macros (crate-internal). With the `stats` feature
// they hit the instance's shard/global counters; without it they expand
// to nothing, so instrumented call sites compile to zero code — the
// same contract as `malloc_api::fail_point!`. The local retry tallies
// feeding `stat_hist!` are *not* feature-gated: they also feed the
// always-on liveness watchdog (`health::watch`).
#[cfg(feature = "stats")]
macro_rules! stat {
    ($inner:expr, $heap:expr, $field:ident) => {
        $inner.shard($heap).$field.inc()
    };
}
#[cfg(not(feature = "stats"))]
macro_rules! stat {
    ($inner:expr, $heap:expr, $field:ident) => {};
}
#[cfg(feature = "stats")]
macro_rules! stat_hist {
    ($inner:expr, $heap:expr, $hist:ident, $n:expr) => {
        $inner.shard($heap).$hist.record($n)
    };
}
#[cfg(not(feature = "stats"))]
macro_rules! stat_hist {
    ($inner:expr, $heap:expr, $hist:ident, $n:expr) => {};
}
#[cfg(feature = "stats")]
macro_rules! stat_global {
    ($inner:expr, $field:ident) => {
        $inner.stats.$field.inc()
    };
}
#[cfg(not(feature = "stats"))]
macro_rules! stat_global {
    ($inner:expr, $field:ident) => {};
}
#[cfg(feature = "stats")]
macro_rules! stat_event {
    ($inner:expr, $kind:ident, $class:expr, $arg:expr) => {
        $inner.stats.record_event(crate::stats::EventKind::$kind, $class as u16, $arg as u64)
    };
}
#[cfg(not(feature = "stats"))]
macro_rules! stat_event {
    ($inner:expr, $kind:ident, $class:expr, $arg:expr) => {};
}
// Latency timing pair: `lat_start!()` captures a monotonic timestamp at
// the top of an operation and `stat_lat!` records the elapsed
// nanoseconds into one of the instance's `LatencyHist`s. Without
// `stats` both vanish (the timestamp is a constant the optimizer
// deletes), keeping clock reads off the default-build fast path.
#[cfg(feature = "stats")]
macro_rules! lat_start {
    () => {
        malloc_api::telemetry::monotonic_nanos()
    };
}
#[cfg(not(feature = "stats"))]
macro_rules! lat_start {
    () => {
        0u64
    };
}
#[cfg(feature = "stats")]
macro_rules! stat_lat {
    ($inner:expr, $field:ident, $t0:expr) => {
        $inner.stats.$field.record_since($t0)
    };
}
#[cfg(not(feature = "stats"))]
macro_rules! stat_lat {
    ($inner:expr, $field:ident, $t0:expr) => {{
        let _ = $t0;
    }};
}
pub(crate) use {lat_start, stat, stat_event, stat_global, stat_hist, stat_lat};

pub mod active;
pub mod alloc;
pub mod anchor;
pub mod audit;
pub mod config;
pub mod descriptor;
#[cfg(feature = "forensics")]
pub mod forensics;
pub mod fork;
pub mod free_impl;
pub mod global;
pub mod harden;
pub mod health;
pub mod heap;
#[cfg(feature = "forensics")]
pub mod heapdump;
pub mod instance;
pub mod large;
pub mod maintain;
#[cfg(feature = "stats")]
pub mod metrics;
pub mod partial;
#[cfg(feature = "profile")]
pub mod profile;
pub(crate) mod retry;
pub mod size_classes;
#[cfg(feature = "stats")]
pub mod stats;

pub use audit::{AuditReport, AuditViolation, ByteReconciliation};
pub use config::{Config, HeapMode, PartialMode};
pub use global::GlobalLfMalloc;
pub use harden::{process_misuse_counters, Hardening, MisuseCounters, MisuseKind, MisuseReport};
pub use health::{
    process_liveness_counters, HealthSnapshot, LivenessConfig, LivenessPolicy, WatchSite,
    DEFAULT_RETRY_CEILING, NUM_WATCH_SITES,
};
pub use config::ProfileParams;
#[cfg(feature = "forensics")]
pub use config::ForensicsParams;
#[cfg(feature = "forensics")]
pub use forensics::{FdWriter, FlightOp, OpKind, PtrKind, PtrReport, SigBuf};
#[cfg(feature = "forensics")]
pub use heapdump::{
    analyze_dump, diff_dumps, AnalyzeReport, ClassCensus, DescriptorCensus, DiffReport,
    LeakCandidate, SiteDelta, DUMP_VERSION,
};
pub use instance::{LfMalloc, OutOfMemory};
pub use maintain::{MaintenanceBudget, MaintenanceReport, ReaperConfig};
#[cfg(feature = "profile")]
pub use profile::{CallSite, LiveSample, ProfileSnapshot, SiteReport};
#[cfg(feature = "stats")]
pub use stats::{
    ClassStats, Event, EventKind, EventRing, FragSample, FragmentationStats, LatencyStats,
    StatsSnapshot,
};
