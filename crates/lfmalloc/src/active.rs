//! The processor heap's `Active` word: descriptor pointer + credits.
//!
//! Paper, Figure 3:
//!
//! ```text
//! typedef active : unsigned ptr:58, credits:6;
//! ```
//!
//! Descriptors are 64-byte aligned, so the low 6 bits of the active
//! superblock's descriptor address are free to hold `credits`. "If the
//! value of credits is n, then the active superblock contains n+1 blocks
//! available for reservation through the Active field." The common-case
//! malloc reserves a block by CASing `credits - 1` — one atomic op.

use crate::config::{DESC_ALIGN_SHIFT, MAX_CREDITS};
use crate::descriptor::Descriptor;

const CREDITS_MASK: u64 = (1 << DESC_ALIGN_SHIFT) - 1;

/// Packed `(descriptor, credits)` snapshot of a heap's `Active` word.
/// The null value (no active superblock) is raw `0`.
///
/// # Example
///
/// ```
/// use lfmalloc::active::Active;
///
/// let a = Active::null();
/// assert!(a.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Active(u64);

impl Active {
    /// No active superblock.
    #[inline]
    pub const fn null() -> Active {
        Active(0)
    }

    /// Packs a descriptor pointer and a credits value (`0..MAX_CREDITS`).
    #[inline]
    pub fn pack(desc: *const Descriptor, credits: u32) -> Active {
        debug_assert!(!desc.is_null());
        debug_assert_eq!(desc as usize as u64 & CREDITS_MASK, 0, "descriptor misaligned");
        debug_assert!(credits < MAX_CREDITS);
        Active(desc as usize as u64 | credits as u64)
    }

    /// Reinterprets a raw word.
    #[inline]
    pub const fn from_raw(raw: u64) -> Active {
        Active(raw)
    }

    /// The raw word.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True if no active superblock is installed.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The descriptor pointer (credits masked off).
    ///
    /// This is the paper's `mask_credits(oldactive)`.
    #[inline]
    pub fn desc(self) -> *mut Descriptor {
        (self.0 & !CREDITS_MASK) as usize as *mut Descriptor
    }

    /// The credits subfield.
    #[inline]
    pub fn credits(self) -> u32 {
        (self.0 & CREDITS_MASK) as u32
    }

    /// The word after taking one credit (`credits > 0` required); the
    /// fast-path reservation is `CAS(active, old, old.take_credit())`.
    #[inline]
    pub fn take_credit(self) -> Active {
        debug_assert!(self.credits() > 0);
        Active(self.0 - 1)
    }
}

impl core::fmt::Debug for Active {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_null() {
            write!(f, "Active(null)")
        } else {
            write!(f, "Active(desc={:p}, credits={})", self.desc(), self.credits())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_desc(addr: usize) -> *const Descriptor {
        addr as *const Descriptor
    }

    #[test]
    fn null_roundtrip() {
        assert!(Active::null().is_null());
        assert_eq!(Active::from_raw(0).raw(), 0);
    }

    #[test]
    fn pack_unpack() {
        let d = fake_desc(0x7f00_0000_1240); // 64-aligned
        let a = Active::pack(d, 63);
        assert!(!a.is_null());
        assert_eq!(a.desc() as usize, 0x7f00_0000_1240);
        assert_eq!(a.credits(), 63);
    }

    #[test]
    fn take_credit_decrements_only_credits() {
        let d = fake_desc(0x1000);
        let a = Active::pack(d, 5);
        let b = a.take_credit();
        assert_eq!(b.credits(), 4);
        assert_eq!(b.desc(), a.desc());
    }

    #[test]
    fn zero_credit_word_still_carries_descriptor() {
        // credits == 0 means "one block available for reservation";
        // the pointer must be recoverable.
        let d = fake_desc(0x2000);
        let a = Active::pack(d, 0);
        assert_eq!(a.credits(), 0);
        assert_eq!(a.desc() as usize, 0x2000);
        assert!(!a.is_null());
    }
}
