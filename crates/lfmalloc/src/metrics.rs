//! OpenMetrics / Prometheus text exporter (cargo feature `stats`).
//!
//! [`LfMalloc::render_openmetrics`] renders the full
//! [`StatsSnapshot`](crate::stats::StatsSnapshot) — counters, latency
//! histograms, fragmentation gauges, health and (under `profile`) the
//! sampled retention profile — as OpenMetrics 1.0 text, hand-rolled
//! with no serialization dependency, mirroring the stack's hand-rolled
//! JSON. Name mapping rules (DESIGN.md §13):
//!
//! * counters end in `_total` and are declared `# TYPE <family> counter`
//!   on the family name *without* the suffix;
//! * latency histograms are exported in **seconds** with cumulative
//!   `_bucket{le="..."}` samples ending at `le="+Inf"`, plus `_count`
//!   and `_sum` — the power-of-two-nanosecond buckets map to their
//!   upper bounds in seconds;
//! * point-in-time values (live bytes, fragmentation permille, ring
//!   drops, degradation) are gauges;
//! * the exposition ends with the mandatory `# EOF` terminator.
//!
//! [`LfMalloc::serve_metrics`] optionally spawns a minimal HTTP/1.0
//! scrape endpoint on a `std::net::TcpListener` — one thread, one
//! request at a time, stopped and joined before instance teardown (the
//! same lifecycle discipline as the background reaper). The exporter
//! renders through the system allocator-backed `String`, so scraping an
//! instance that *is* the Rust global allocator is still re-entrant-safe
//! only from other threads — the same contract as `stats()`.

use crate::instance::{Inner, LfMalloc};
use crate::stats::StatsSnapshot;
use core::sync::atomic::{AtomicBool, Ordering};
use malloc_api::telemetry::{LatencySnapshot, TIME_BUCKETS};
use osmem::PageSource;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// Escapes a label value per the OpenMetrics ABNF (`\\`, `\"`, `\n`).
#[cfg_attr(not(feature = "profile"), allow(dead_code))]
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanosecond figure as seconds (shortest round-trip float).
fn secs(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

fn write_family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {help}");
    }
}

/// Emits one latency histogram as cumulative OpenMetrics buckets in
/// seconds. `labels` is either empty or a `key="value"` list *without*
/// braces.
fn write_latency(out: &mut String, family: &str, labels: &str, s: &LatencySnapshot) {
    let sep = if labels.is_empty() { String::new() } else { format!("{labels},") };
    let mut cum = 0u64;
    for i in 0..TIME_BUCKETS {
        cum += s.buckets[i];
        // Skip runs of empty leading/inner buckets except the ones that
        // carry cumulative steps — emitting every bucket keeps parsers
        // simple but 32 buckets × 8 paths is noisy; emit a bucket only
        // when its cumulative count changes, plus the mandatory +Inf.
        if s.buckets[i] == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{family}_bucket{{{sep}le=\"{}\"}} {cum}",
            secs(LatencySnapshot::bucket_upper_nanos(i))
        );
    }
    let _ = writeln!(out, "{family}_bucket{{{sep}le=\"+Inf\"}} {}", s.count());
    let brace = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
    let _ = writeln!(out, "{family}_count{brace} {}", s.count());
    let _ = writeln!(out, "{family}_sum{brace} {}", secs(s.sum_nanos));
}

/// Renders a snapshot as OpenMetrics text (shared by the method and the
/// scrape thread).
fn render<S: PageSource>(this: &LfMalloc<S>) -> String {
    let s: StatsSnapshot = this.stats();
    let t = &s.totals;
    let mut o = String::with_capacity(8 * 1024);

    write_family(&mut o, "lfmalloc_mallocs", "counter", "Small mallocs by serving path.");
    let _ = writeln!(o, "lfmalloc_mallocs_total{{path=\"fast\"}} {}", t.malloc_fast);
    let _ = writeln!(o, "lfmalloc_mallocs_total{{path=\"partial\"}} {}", t.malloc_slow);
    let _ = writeln!(o, "lfmalloc_mallocs_total{{path=\"newsb\"}} {}", t.malloc_newsb);
    write_family(&mut o, "lfmalloc_frees", "counter", "Small frees by locality.");
    let _ = writeln!(o, "lfmalloc_frees_total{{path=\"local\"}} {}", t.free_local);
    let _ = writeln!(o, "lfmalloc_frees_total{{path=\"remote\"}} {}", t.free_remote);
    let _ = writeln!(o, "lfmalloc_frees_total{{path=\"teardown\"}} {}", t.free_teardown);
    write_family(
        &mut o,
        "lfmalloc_superblocks_retired",
        "counter",
        "Superblocks emptied and recycled.",
    );
    let _ = writeln!(o, "lfmalloc_superblocks_retired_total {}", t.free_empty);
    write_family(&mut o, "lfmalloc_large", "counter", "Large-block operations.");
    let _ = writeln!(o, "lfmalloc_large_total{{op=\"alloc\"}} {}", s.large_alloc);
    let _ = writeln!(o, "lfmalloc_large_total{{op=\"free\"}} {}", s.large_free);
    write_family(&mut o, "lfmalloc_oom_backoffs", "counter", "");
    let _ = writeln!(o, "lfmalloc_oom_backoffs_total {}", s.oom_backoffs);
    write_family(&mut o, "lfmalloc_trims", "counter", "");
    let _ = writeln!(o, "lfmalloc_trims_total {}", s.trims);

    // Satellite gauges surfaced explicitly: ring overflow and the
    // watchdog's degradation verdict.
    write_family(
        &mut o,
        "lfmalloc_events_dropped",
        "gauge",
        "Slow-path trace events lost to ring overflow.",
    );
    let _ = writeln!(o, "lfmalloc_events_dropped {}", s.events_dropped);
    write_family(
        &mut o,
        "lfmalloc_degraded",
        "gauge",
        "1 when the liveness watchdog considers the instance degraded.",
    );
    let _ = writeln!(o, "lfmalloc_degraded {}", u8::from(s.health.is_degraded()));
    write_family(&mut o, "lfmalloc_os_live_bytes", "gauge", "OS bytes currently mapped.");
    let _ = writeln!(o, "lfmalloc_os_live_bytes {}", s.os.live_bytes);
    write_family(&mut o, "lfmalloc_os_peak_bytes", "gauge", "");
    let _ = writeln!(o, "lfmalloc_os_peak_bytes {}", s.os.peak_bytes);
    write_family(&mut o, "lfmalloc_large_live", "gauge", "Live large blocks.");
    let _ = writeln!(o, "lfmalloc_large_live {}", s.large_live);
    #[cfg(feature = "forensics")]
    {
        write_family(
            &mut o,
            "lfmalloc_flight_recorder_dropped",
            "counter",
            "Allocator ops the crash-forensics flight recorder could not record.",
        );
        let _ = writeln!(
            o,
            "lfmalloc_flight_recorder_dropped_total {}",
            this.flight_recorder_dropped()
        );
        write_family(
            &mut o,
            "lfmalloc_crash_handler_installed",
            "gauge",
            "1 when this instance's chained crash handlers are installed.",
        );
        let _ = writeln!(
            o,
            "lfmalloc_crash_handler_installed {}",
            u8::from(this.crash_handler_installed())
        );
    }

    // Latency histograms, one family per operation, path as a label.
    let l = &s.latency;
    write_family(
        &mut o,
        "lfmalloc_malloc_latency_seconds",
        "histogram",
        "Malloc latency by serving path.",
    );
    write_latency(&mut o, "lfmalloc_malloc_latency_seconds", "path=\"fast\"", &l.malloc_fast);
    write_latency(&mut o, "lfmalloc_malloc_latency_seconds", "path=\"slow\"", &l.malloc_slow);
    write_latency(&mut o, "lfmalloc_malloc_latency_seconds", "path=\"large\"", &l.malloc_large);
    write_family(
        &mut o,
        "lfmalloc_free_latency_seconds",
        "histogram",
        "Free latency by path.",
    );
    write_latency(&mut o, "lfmalloc_free_latency_seconds", "path=\"fast\"", &l.free_fast);
    write_latency(&mut o, "lfmalloc_free_latency_seconds", "path=\"slow\"", &l.free_slow);
    write_latency(&mut o, "lfmalloc_free_latency_seconds", "path=\"large\"", &l.free_large);
    write_family(
        &mut o,
        "lfmalloc_maintenance_latency_seconds",
        "histogram",
        "Maintenance and trim pass durations.",
    );
    write_latency(
        &mut o,
        "lfmalloc_maintenance_latency_seconds",
        "pass=\"maintain\"",
        &l.maintain,
    );
    write_latency(&mut o, "lfmalloc_maintenance_latency_seconds", "pass=\"trim\"", &l.trim);

    // Fragmentation gauges.
    let f = &s.fragmentation;
    write_family(
        &mut o,
        "lfmalloc_frag_external_permille",
        "gauge",
        "External fragmentation of the small heap.",
    );
    let _ = writeln!(o, "lfmalloc_frag_external_permille {}", f.external_frag_permille());
    write_family(&mut o, "lfmalloc_frag_committed_bytes", "gauge", "");
    let _ = writeln!(o, "lfmalloc_frag_committed_bytes {}", f.small_committed_bytes);
    write_family(&mut o, "lfmalloc_frag_live_bytes", "gauge", "");
    let _ = writeln!(o, "lfmalloc_frag_live_bytes {}", f.small_live_bytes);
    write_family(&mut o, "lfmalloc_class_committed_bytes", "gauge", "");
    for c in &f.classes {
        let _ = writeln!(
            o,
            "lfmalloc_class_committed_bytes{{class=\"{}\",size=\"{}\"}} {}",
            c.class, c.block_size, c.committed_bytes
        );
    }
    write_family(&mut o, "lfmalloc_class_live_bytes", "gauge", "");
    for c in &f.classes {
        let _ = writeln!(
            o,
            "lfmalloc_class_live_bytes{{class=\"{}\",size=\"{}\"}} {}",
            c.class, c.block_size, c.live_bytes
        );
    }

    // Retention profile: per-site live-byte gauges (top sites only —
    // a site label per distinct call site keeps cardinality bounded by
    // the sample table).
    #[cfg(feature = "profile")]
    {
        let p = &s.profile;
        write_family(&mut o, "lfmalloc_profile_samples", "counter", "Sampler lifecycle.");
        let _ = writeln!(o, "lfmalloc_profile_samples_total{{event=\"taken\"}} {}", p.samples_taken);
        let _ = writeln!(
            o,
            "lfmalloc_profile_samples_total{{event=\"dropped\"}} {}",
            p.samples_dropped
        );
        let _ =
            writeln!(o, "lfmalloc_profile_samples_total{{event=\"freed\"}} {}", p.sampled_frees);
        write_family(
            &mut o,
            "lfmalloc_profile_internal_frag_permille",
            "gauge",
            "Sampled internal fragmentation.",
        );
        let _ = writeln!(
            o,
            "lfmalloc_profile_internal_frag_permille {}",
            p.internal_frag_permille()
        );
        write_family(
            &mut o,
            "lfmalloc_profile_site_live_bytes",
            "gauge",
            "Estimated live bytes by allocation site.",
        );
        let sites = p.sites();
        for r in &sites {
            let _ = writeln!(
                o,
                "lfmalloc_profile_site_live_bytes{{site=\"{}\"}} {}",
                escape_label(&r.site.to_string()),
                r.live_bytes
            );
        }
        write_family(&mut o, "lfmalloc_profile_site_live_samples", "gauge", "");
        for r in &sites {
            let _ = writeln!(
                o,
                "lfmalloc_profile_site_live_samples{{site=\"{}\"}} {}",
                escape_label(&r.site.to_string()),
                r.live_samples
            );
        }
    }

    o.push_str("# EOF\n");
    o
}

/// Structural well-formedness check of an OpenMetrics exposition —
/// the CI smoke parser. Validates the `# EOF` terminator, `# TYPE`
/// declarations, suffix rules per type (counter samples end `_total`,
/// histogram samples `_bucket`/`_count`/`_sum`), numeric sample values,
/// balanced label quoting, and cumulative histogram buckets ending at
/// `le="+Inf"`.
pub fn check_openmetrics(text: &str) -> Result<(), String> {
    if !text.ends_with("# EOF\n") {
        return Err("missing `# EOF` terminator".into());
    }
    let mut families: Vec<(String, String)> = Vec::new();
    let mut hist_cum: Option<(String, u64)> = None; // (series key, last cumulative)
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            match it.next() {
                Some("TYPE") => {
                    let name = it.next().ok_or(format!("line {ln}: TYPE without name"))?;
                    let kind = it.next().ok_or(format!("line {ln}: TYPE without kind"))?;
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "info") {
                        return Err(format!("line {ln}: unknown metric type {kind:?}"));
                    }
                    families.push((name.to_string(), kind.to_string()));
                }
                Some("HELP") | Some("UNIT") | Some("EOF") => {}
                other => return Err(format!("line {ln}: unknown comment {other:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.find('}') {
            Some(close) => {
                let open = line.find('{').ok_or(format!("line {ln}: `}}` without `{{`"))?;
                if open > close {
                    return Err(format!("line {ln}: mismatched braces"));
                }
                let labels = &line[open + 1..close];
                if labels.matches('"').count() % 2 != 0 {
                    return Err(format!("line {ln}: unbalanced label quotes"));
                }
                (&line[..close + 1], line[close + 1..].trim())
            }
            None => {
                let sp = line.find(' ').ok_or(format!("line {ln}: sample without value"))?;
                (&line[..sp], line[sp + 1..].trim())
            }
        };
        let value: f64 = value
            .split(' ')
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| format!("line {ln}: non-numeric sample value in {line:?}"))?;
        let name = series.split('{').next().unwrap_or(series);
        let family = families
            .iter()
            .rev()
            .find(|(f, _)| {
                name == f
                    || (name.len() > f.len()
                        && name.starts_with(f.as_str())
                        && name.as_bytes()[f.len()] == b'_')
            })
            .ok_or(format!("line {ln}: sample {name:?} has no TYPE declaration"))?;
        let suffix = &name[family.0.len()..];
        let ok = match family.1.as_str() {
            "counter" => matches!(suffix, "_total" | "_created"),
            "gauge" | "info" => suffix.is_empty(),
            "histogram" => matches!(suffix, "_bucket" | "_count" | "_sum" | "_created"),
            "summary" => matches!(suffix, "" | "_count" | "_sum" | "_created"),
            _ => unreachable!(),
        };
        if !ok {
            return Err(format!(
                "line {ln}: sample {name:?} has invalid suffix {suffix:?} for {} family",
                family.1
            ));
        }
        // Histogram bucket discipline: cumulative within a series, +Inf
        // closes it.
        if suffix == "_bucket" {
            let key = series.split("le=").next().unwrap_or(series).to_string();
            let le = series
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .ok_or(format!("line {ln}: bucket without le label"))?;
            let cum = value as u64;
            match &mut hist_cum {
                Some((k, last)) if *k == key => {
                    if cum < *last {
                        return Err(format!("line {ln}: non-cumulative histogram bucket"));
                    }
                    *last = cum;
                }
                _ => hist_cum = Some((key.clone(), cum)),
            }
            if le == "+Inf" {
                hist_cum = None;
            }
        } else if hist_cum.is_some() && suffix != "_bucket" && suffix != "_count" {
            // A series ended without +Inf before _sum.
            if suffix == "_sum" {
                return Err(format!("line {ln}: histogram series missing le=\"+Inf\" bucket"));
            }
        }
    }
    if let Some((key, _)) = hist_cum {
        return Err(format!("histogram series {key:?} never closed with le=\"+Inf\""));
    }
    Ok(())
}

/// Scrape-endpoint control plane, embedded in `Inner` under `stats`.
/// The same lifecycle discipline as the reaper: a stop flag, a
/// start-once latch, and a join handle that teardown drains before any
/// state dies. A handle spawned before a fork refers to a thread that
/// does not exist in the child and is dropped without joining.
#[derive(Debug)]
pub(crate) struct MetricsState {
    stop: AtomicBool,
    running: AtomicBool,
    handle: std::sync::Mutex<MetricsBox>,
}

#[derive(Debug, Default)]
pub(crate) struct MetricsBox {
    handle: Option<std::thread::JoinHandle<()>>,
    addr: Option<SocketAddr>,
    spawn_gen: u64,
}

impl MetricsState {
    pub(crate) fn new() -> Self {
        MetricsState {
            stop: AtomicBool::new(false),
            running: AtomicBool::new(false),
            handle: std::sync::Mutex::new(MetricsBox::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsBox> {
        match self.handle.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Shuttles the instance pointer into the scrape thread; sound because
/// `stop_metrics` joins the thread before teardown (`LfMalloc::drop`).
struct RawInner<S: PageSource>(core::ptr::NonNull<Inner<S>>);
unsafe impl<S: PageSource + Send + Sync> Send for RawInner<S> {}

impl<S: PageSource> LfMalloc<S> {
    /// The full telemetry snapshot as OpenMetrics 1.0 text (ends with
    /// `# EOF`). Allocates through the Rust global allocator, like
    /// [`stats`](Self::stats).
    pub fn render_openmetrics(&self) -> String {
        render(self)
    }
}

impl<S: PageSource + Send + Sync + 'static> LfMalloc<S> {
    /// Starts a minimal HTTP scrape endpoint serving
    /// [`render_openmetrics`](Self::render_openmetrics) on `addr`
    /// (use port 0 for an OS-assigned port; the bound address is
    /// returned). One endpoint per instance: a second call returns the
    /// existing address. The serving thread is stopped and joined by
    /// [`stop_metrics`](Self::stop_metrics) or instance drop.
    pub fn serve_metrics<A: ToSocketAddrs>(&self, addr: A) -> std::io::Result<SocketAddr> {
        let inner = self.inner();
        let mut boxed = inner.stats.metrics.lock();
        // A pre-fork thread died with the parent's address space;
        // forget its handle so the child can re-serve.
        let cur_gen = malloc_api::procfork::generation();
        if boxed.spawn_gen != cur_gen && boxed.handle.is_some() {
            drop(boxed.handle.take());
            boxed.addr = None;
            inner.stats.metrics.running.store(false, Ordering::Release);
        }
        if inner.stats.metrics.running.load(Ordering::Acquire) {
            if let Some(addr) = boxed.addr {
                return Ok(addr);
            }
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        inner.stats.metrics.stop.store(false, Ordering::Release);
        let raw = RawInner::<S>(self.raw_inner());
        let handle = std::thread::Builder::new()
            .name("lfmalloc-metrics".into())
            .spawn(move || {
                let raw = raw;
                // Safety: stop_metrics joins this thread before the
                // instance is torn down.
                let this = unsafe { LfMalloc::borrow_raw(raw.0) };
                let inner = unsafe { raw.0.as_ref() };
                loop {
                    let Ok((mut stream, _)) = listener.accept() else {
                        if inner.stats.metrics.stop.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    };
                    if inner.stats.metrics.stop.load(Ordering::Acquire) {
                        break;
                    }
                    serve_one(&mut stream, &this);
                }
            })?;
        boxed.handle = Some(handle);
        boxed.addr = Some(local);
        boxed.spawn_gen = cur_gen;
        inner.stats.metrics.running.store(true, Ordering::Release);
        Ok(local)
    }

    /// Stops and joins the scrape endpoint; returns true if one was
    /// running. Called implicitly by drop.
    pub fn stop_metrics(&self) -> bool {
        stop_metrics_inner(self.inner())
    }
}

/// Answers one scrape: drains the request head, writes a 200 with the
/// OpenMetrics content type.
fn serve_one<S: PageSource>(stream: &mut TcpStream, this: &LfMalloc<S>) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf); // request line + headers, ignored
    let body = render(this);
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: application/openmetrics-text; \
         version=1.0.0; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Free-function form of stop so `LfMalloc::drop` (no `Send + Sync`
/// bound in scope) can call it.
pub(crate) fn stop_metrics_inner<S: PageSource>(inner: &Inner<S>) -> bool {
    let mut boxed = inner.stats.metrics.lock();
    let Some(handle) = boxed.handle.take() else {
        return false;
    };
    inner.stats.metrics.stop.store(true, Ordering::Release);
    let addr = boxed.addr.take();
    let stale = boxed.spawn_gen != malloc_api::procfork::generation();
    drop(boxed);
    if stale {
        // The thread died in a fork; joining would hang or worse.
        drop(handle);
    } else {
        // Unblock the accept loop with a self-connection, then join.
        if let Some(addr) = addr {
            let _ = TcpStream::connect(addr);
        }
        let _ = handle.join();
    }
    inner.stats.metrics.running.store(false, Ordering::Release);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use malloc_api::RawMalloc;

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn render_is_well_formed_openmetrics() {
        let a = LfMalloc::with_config(Config::with_heaps(2));
        unsafe {
            let mut ptrs = Vec::new();
            for i in 0..500usize {
                ptrs.push(a.malloc(16 + i % 200));
            }
            let big = a.malloc(1 << 20);
            for p in ptrs {
                a.free(p);
            }
            a.free(big);
        }
        a.maintain(crate::maintain::MaintenanceBudget::light());
        let text = a.render_openmetrics();
        check_openmetrics(&text).expect("exposition must be well-formed");
        assert!(text.contains("lfmalloc_mallocs_total{path=\"fast\"}"));
        assert!(text.contains("lfmalloc_malloc_latency_seconds_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("lfmalloc_events_dropped"));
        assert!(text.contains("lfmalloc_degraded 0"));
        assert!(text.contains("lfmalloc_frag_external_permille"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        assert!(check_openmetrics("lfmalloc_x 1\n").is_err(), "missing EOF");
        assert!(
            check_openmetrics("x_total 1\n# EOF\n").is_err(),
            "sample without TYPE declaration"
        );
        assert!(
            check_openmetrics("# TYPE x counter\nx 1\n# EOF\n").is_err(),
            "counter sample must end _total"
        );
        assert!(
            check_openmetrics("# TYPE x counter\nx_total nan-ish\n# EOF\n").is_err(),
            "non-numeric value"
        );
        assert!(
            check_openmetrics(
                "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\n\
                 h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n# EOF\n"
            )
            .is_err(),
            "non-cumulative buckets"
        );
        assert!(check_openmetrics(
            "# TYPE x counter\nx_total 1\n# TYPE g gauge\ng 0.5\n\
             # TYPE h histogram\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\n\
             h_count 2\nh_sum 0.01\n# EOF\n"
        )
        .is_ok());
    }

    #[test]
    fn serve_metrics_scrapes_over_http() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let p = a.malloc(100);
            a.free(p);
        }
        let addr = a.serve_metrics("127.0.0.1:0").expect("bind loopback");
        // Second call is idempotent.
        assert_eq!(a.serve_metrics("127.0.0.1:0").unwrap(), addr);
        let mut stream = TcpStream::connect(addr).expect("connect scrape endpoint");
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "got: {resp}");
        assert!(resp.contains("application/openmetrics-text"));
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        check_openmetrics(body).expect("scraped exposition parses");
        assert!(a.stop_metrics());
        assert!(!a.stop_metrics(), "second stop is a no-op");
        // The endpoint can be restarted after a stop.
        let addr2 = a.serve_metrics("127.0.0.1:0").unwrap();
        let _ = TcpStream::connect(addr2);
        a.stop_metrics();
    }
}
