//! Size-class partial-superblock lists (§3.2.6).
//!
//! Three operations are required: `ListPutPartial`, `ListGetPartial`,
//! and `ListRemoveEmptyDesc` ("to ensure that empty descriptors are
//! eventually made available for reuse"). The paper describes two
//! organizations and prefers the FIFO one:
//!
//! * **FIFO** (preferred): a Michael–Scott queue. Put enqueues at the
//!   tail, get dequeues from the head; remove-empty "keeps dequeuing
//!   descriptors from the head of the list until it dequeues a non-empty
//!   descriptor or reaches the end", re-enqueueing the non-empty one.
//!   This "reduces the chances of contention and false sharing".
//! * **LIFO**: a Treiber-style list. The paper sketches it with a
//!   lock-free linked list that can unlink from the middle; we
//!   approximate mid-removal with pop-filter-repush on a tag-protected
//!   stack (descriptor slabs are never unmapped, so traversal is safe).
//!   Kept as the A1 ablation.

use crate::anchor::SbState;
use crate::config::PartialMode;
use crate::descriptor::{Descriptor, DescriptorPool};
use hazard::HazardDomain;
use lockfree_structs::list::RawList;
use lockfree_structs::queue::RawQueue;
use lockfree_structs::TaggedStack;

/// One size class's partial list, in the configured organization.
#[derive(Debug)]
pub enum PartialList {
    /// Michael–Scott FIFO of descriptor pointers.
    Fifo(RawQueue),
    /// Tag-protected LIFO of descriptors. The link is threaded through
    /// the descriptor's `next` field (byte offset 8 — the first word is
    /// the live `Anchor`, which frees still CAS while the descriptor
    /// sits in a partial list). Descriptor slabs are never unmapped, so
    /// tag-protected traversal is safe.
    Lifo(TaggedStack<6, 8>),
    /// Michael's ordered lock-free list keyed by descriptor address,
    /// with true mid-list removal of empty descriptors (§3.2.6's first
    /// option).
    List(RawList),
}

impl PartialList {
    /// Creates an empty list in the given mode. FIFO lists need
    /// [`init`](Self::init) before use.
    pub const fn new(mode: PartialMode) -> Self {
        match mode {
            PartialMode::Fifo => PartialList::Fifo(RawQueue::new()),
            PartialMode::Lifo => PartialList::Lifo(TaggedStack::new()),
            PartialMode::List => PartialList::List(RawList::new()),
        }
    }

    /// One-time initialization (allocates the FIFO dummy node).
    ///
    /// # Safety
    ///
    /// Single-threaded, before any use; `self` must not move afterwards.
    pub unsafe fn init(&self, domain: &HazardDomain) {
        if let PartialList::Fifo(q) = self {
            unsafe { q.init(domain) };
        }
    }

    /// `ListPutPartial(desc)`.
    ///
    /// # Safety
    ///
    /// `desc` must be a live descriptor not present in any other
    /// allocator structure.
    pub unsafe fn put(&self, domain: &HazardDomain, desc: *mut Descriptor) {
        match self {
            PartialList::Fifo(q) => unsafe { q.enqueue(domain, desc as usize) },
            PartialList::Lifo(s) => unsafe { s.push(desc as usize) },
            PartialList::List(l) => {
                let fresh = unsafe { l.insert(domain, desc as usize) };
                debug_assert!(fresh, "descriptor {desc:p} inserted twice");
            }
        }
    }

    /// `ListGetPartial()`: removes and returns some partial descriptor.
    ///
    /// # Safety
    ///
    /// `init` must have completed with this `domain`.
    pub unsafe fn get(&self, domain: &HazardDomain) -> Option<*mut Descriptor> {
        match self {
            PartialList::Fifo(q) => unsafe { q.dequeue(domain) }.map(|v| v as *mut Descriptor),
            PartialList::Lifo(s) => unsafe { s.pop() }.map(|v| v as *mut Descriptor),
            PartialList::List(l) => {
                unsafe { l.pop_first(domain) }.map(|v| v as *mut Descriptor)
            }
        }
    }

    /// `ListRemoveEmptyDesc()`: retires dequeued EMPTY descriptors until
    /// a non-empty one (re-inserted) or the end of the list. Guarantees
    /// empty descriptors do not accumulate unboundedly.
    ///
    /// # Safety
    ///
    /// `pool` must be the instance's descriptor pool and `domain` its
    /// hazard domain.
    pub unsafe fn remove_empty(&self, domain: &HazardDomain, pool: &DescriptorPool) {
        // The ordered-list organization can unlink an empty descriptor
        // from the middle directly, the paper's first option.
        if let PartialList::List(l) = self {
            let removed = unsafe {
                l.remove_first_where(domain, |addr| {
                    (*(addr as *const Descriptor)).load_anchor().state() == SbState::Empty
                })
            };
            if let Some(addr) = removed {
                unsafe { pool.retire(domain, addr as *mut Descriptor) };
            }
            return;
        }
        loop {
            let Some(desc) = (unsafe { self.get(domain) }) else { return };
            if unsafe { (*desc).load_anchor() }.state() == SbState::Empty {
                // Retire and keep going, per the paper: "keeps dequeuing
                // descriptors from the head of the list until it dequeues
                // a non-empty descriptor or reaches the end".
                unsafe { pool.retire(domain, desc) };
                continue;
            }
            // Non-empty: re-insert (FIFO: at the tail) and stop.
            unsafe { self.put(domain, desc) };
            return;
        }
    }

    /// Quiescent snapshot of the descriptors currently in the list.
    ///
    /// # Safety
    ///
    /// No concurrent mutation; intended for offline auditing.
    pub unsafe fn snapshot(&self) -> Vec<*mut Descriptor> {
        let addrs = match self {
            PartialList::Fifo(q) => unsafe { q.snapshot() },
            PartialList::Lifo(s) => unsafe { s.snapshot() },
            PartialList::List(l) => unsafe { l.snapshot() },
        };
        addrs.into_iter().map(|a| a as *mut Descriptor).collect()
    }

    /// Best-effort emptiness check (diagnostics).
    pub fn is_empty_hint(&self) -> bool {
        match self {
            PartialList::Fifo(q) => q.is_empty_hint(),
            PartialList::Lifo(s) => s.is_empty(),
            PartialList::List(l) => l.is_empty_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::Anchor;
    use osmem::SystemSource;

    fn setup() -> (SystemSource, Box<HazardDomain>, Box<DescriptorPool>) {
        (SystemSource::new(), Box::new(HazardDomain::new()), Box::new(DescriptorPool::new()))
    }

    // Must run while any PartialList that retired nodes into `domain`
    // is still alive: dropping the domain reclaims retired queue nodes
    // into their owning NodePool, so the list drops only afterwards.
    fn teardown(src: SystemSource, domain: Box<HazardDomain>, pool: Box<DescriptorPool>) {
        drop(domain);
        unsafe { pool.release_all(&src) };
    }

    fn make_desc(
        pool: &DescriptorPool,
        domain: &HazardDomain,
        src: &SystemSource,
        state: SbState,
    ) -> *mut Descriptor {
        let d = unsafe { pool.alloc(domain, src) };
        assert!(!d.is_null());
        unsafe { (*d).store_anchor(Anchor::new(0, 1, state)) };
        d
    }

    #[test]
    fn fifo_put_get_roundtrip() {
        let (src, domain, pool) = setup();
        let list = Box::new(PartialList::new(PartialMode::Fifo));
        unsafe { list.init(&domain) };
        let d1 = make_desc(&pool, &domain, &src, SbState::Partial);
        let d2 = make_desc(&pool, &domain, &src, SbState::Partial);
        unsafe {
            list.put(&domain, d1);
            list.put(&domain, d2);
            assert_eq!(list.get(&domain), Some(d1), "FIFO order");
            assert_eq!(list.get(&domain), Some(d2));
            assert_eq!(list.get(&domain), None);
        }
        teardown(src, domain, pool);
        drop(list);
    }

    #[test]
    fn lifo_put_get_roundtrip() {
        let (src, domain, pool) = setup();
        let list = Box::new(PartialList::new(PartialMode::Lifo));
        unsafe { list.init(&domain) };
        let d1 = make_desc(&pool, &domain, &src, SbState::Partial);
        let d2 = make_desc(&pool, &domain, &src, SbState::Partial);
        unsafe {
            list.put(&domain, d1);
            list.put(&domain, d2);
            assert_eq!(list.get(&domain), Some(d2), "LIFO order");
            assert_eq!(list.get(&domain), Some(d1));
            assert_eq!(list.get(&domain), None);
        }
        teardown(src, domain, pool);
        drop(list);
    }

    #[test]
    fn remove_empty_retires_leading_empties() {
        for mode in [PartialMode::Fifo, PartialMode::Lifo, PartialMode::List] {
            let (src, domain, pool) = setup();
            let list = Box::new(PartialList::new(mode));
            unsafe { list.init(&domain) };
            let empty = make_desc(&pool, &domain, &src, SbState::Empty);
            let partial = make_desc(&pool, &domain, &src, SbState::Partial);
            unsafe {
                // Order the empty one at the removal end.
                match mode {
                    PartialMode::Fifo | PartialMode::List => {
                        list.put(&domain, empty);
                        list.put(&domain, partial);
                    }
                    PartialMode::Lifo => {
                        list.put(&domain, partial);
                        list.put(&domain, empty);
                    }
                }
                list.remove_empty(&domain, &pool);
                domain.flush();
                // The empty desc went back to the pool; the partial one
                // is still in the list.
                assert_eq!(list.get(&domain), Some(partial));
                assert_eq!(list.get(&domain), None);
            }
            teardown(src, domain, pool);
            drop(list);
        }
    }

    #[test]
    fn remove_empty_reinserts_nonempty_and_stops() {
        let (src, domain, pool) = setup();
        let list = Box::new(PartialList::new(PartialMode::Fifo));
        unsafe { list.init(&domain) };
        let partial = make_desc(&pool, &domain, &src, SbState::Partial);
        let empty = make_desc(&pool, &domain, &src, SbState::Empty);
        unsafe {
            list.put(&domain, partial);
            list.put(&domain, empty); // behind the non-empty one
            list.remove_empty(&domain, &pool);
            // Stopped at the non-empty head; empty still queued, partial
            // moved to the tail.
            assert_eq!(list.get(&domain), Some(empty));
            assert_eq!(list.get(&domain), Some(partial));
        }
        teardown(src, domain, pool);
        drop(list);
    }

    #[test]
    fn remove_empty_on_empty_list_is_noop() {
        let (src, domain, pool) = setup();
        let list = Box::new(PartialList::new(PartialMode::Fifo));
        unsafe {
            list.init(&domain);
            list.remove_empty(&domain, &pool);
        }
        assert!(list.is_empty_hint());
        teardown(src, domain, pool);
        drop(list);
    }
}
