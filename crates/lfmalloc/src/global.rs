//! Installing lfmalloc as the Rust global allocator.
//!
//! The paper initializes its static structures "on the first call to
//! malloc ... in a lock-free manner" (§3.1). [`GlobalLfMalloc`]
//! reproduces that: a `const`-constructible wrapper whose first
//! allocation CAS-installs a lazily built instance. Losers of the
//! installation race tear their candidate back down — no locks anywhere
//! on the initialization path.
//!
//! # Example
//!
//! ```ignore
//! use lfmalloc::GlobalLfMalloc;
//!
//! #[global_allocator]
//! static ALLOC: GlobalLfMalloc = GlobalLfMalloc::new();
//!
//! fn main() {
//!     let v: Vec<u64> = (0..1000).collect(); // served by lfmalloc
//!     println!("{}", v.len());
//! }
//! ```
//! (A runnable version is `examples/global_alloc.rs` at the workspace
//! root; the doctest is ignored because a process has one global
//! allocator.)

use crate::instance::LfMalloc;
use core::alloc::{GlobalAlloc, Layout};
use core::sync::atomic::{AtomicPtr, Ordering};
use osmem::SystemSource;

/// Processor-heap count used by the global allocator.
///
/// The paper detects the CPU count "at initialization time by querying
/// the system environment" — but in Rust, `available_parallelism()`
/// itself allocates (it reads cgroup quotas into a `Vec`), which would
/// recurse into the very allocator being initialized. The global
/// wrapper therefore uses a fixed heap count; eight heaps cover typical
/// machines (more heaps than CPUs costs only idle metadata).
pub const GLOBAL_HEAPS: usize = 8;

/// A process-wide, lazily initialized lfmalloc usable with
/// `#[global_allocator]`.
pub struct GlobalLfMalloc {
    instance: AtomicPtr<LfMalloc<SystemSource>>,
    heaps: usize,
}

impl GlobalLfMalloc {
    /// Const constructor for static installation ([`GLOBAL_HEAPS`]
    /// processor heaps).
    pub const fn new() -> Self {
        Self::with_heaps(GLOBAL_HEAPS)
    }

    /// Const constructor with an explicit processor-heap count.
    pub const fn with_heaps(heaps: usize) -> Self {
        GlobalLfMalloc { instance: AtomicPtr::new(core::ptr::null_mut()), heaps }
    }

    /// Returns the instance, building and installing it on first use.
    ///
    /// Lock-free: racing initializers each build a candidate; exactly
    /// one CAS wins and the losers drop theirs. Instance construction
    /// itself touches only the *system* allocator, so there is no
    /// reentrancy into this global allocator.
    pub fn instance(&self) -> &LfMalloc<SystemSource> {
        let p = self.instance.load(Ordering::Acquire);
        if !p.is_null() {
            return unsafe { &*p };
        }
        self.init_slow()
    }

    #[cold]
    fn init_slow(&self) -> &LfMalloc<SystemSource> {
        use std::alloc::{GlobalAlloc as _, System};
        // CRITICAL: nothing on this path may allocate through the Rust
        // global allocator (we *are* the global allocator, and the
        // instance pointer is still null — any such allocation recurses
        // forever). Instance construction is System-allocator-only by
        // design, and the config is built from constants, not from
        // `available_parallelism()` (which allocates).
        let config = crate::config::Config::with_heaps(self.heaps);
        // The `hardened` cargo feature turns on validated deallocation
        // for the global allocator (Detect: count and survive misuse;
        // aborting the process is an explicit-instance decision).
        #[cfg(feature = "hardened")]
        let config = config.with_hardening(crate::harden::Hardening::Detect);
        let candidate = unsafe {
            let raw = System.alloc(Layout::new::<LfMalloc<SystemSource>>())
                as *mut LfMalloc<SystemSource>;
            assert!(!raw.is_null(), "lfmalloc: global instance allocation failed");
            raw.write(LfMalloc::with_config(config));
            raw
        };
        match self.instance.compare_exchange(
            core::ptr::null_mut(),
            candidate,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => unsafe { &*candidate },
            Err(winner) => {
                // Lost the race: tear the candidate down.
                unsafe {
                    core::ptr::drop_in_place(candidate);
                    std::alloc::System
                        .dealloc(candidate as *mut u8, Layout::new::<LfMalloc<SystemSource>>());
                    &*winner
                }
            }
        }
    }
}

impl GlobalLfMalloc {
    /// [`LfMalloc::health`] of the underlying instance (initializing it
    /// on first use, like every other call).
    pub fn health(&self) -> crate::health::HealthSnapshot {
        self.instance().health()
    }

    /// Runs one [`LfMalloc::maintain`] pass on the underlying instance.
    pub fn maintain(&self, budget: crate::maintain::MaintenanceBudget) -> crate::maintain::MaintenanceReport {
        self.instance().maintain(budget)
    }

    /// Starts the background reaper on the underlying instance
    /// (explicit configuration — the const-built global config cannot
    /// carry one). Returns `false` if a reaper is already running.
    pub fn start_reaper(&self, cfg: crate::maintain::ReaperConfig) -> bool {
        self.instance().start_reaper_with(cfg)
    }

    /// Stops the background reaper, if any; `true` if one was stopped.
    pub fn stop_reaper(&self) -> bool {
        self.instance().stop_reaper()
    }

    /// Registers an exit-time leak report on `fd` (typically 2 for
    /// stderr): at normal process exit, an `atexit` callback prints the
    /// instance's retained OS bytes, live large/small block counts,
    /// and — when built with `profile` — the top retained call sites.
    /// One registration per process; a later call re-points the fd.
    #[cfg(feature = "forensics")]
    pub fn install_exit_leak_report(&self, fd: i32) {
        crate::forensics::install_exit_report_inner(self.instance().inner(), fd);
    }

    /// [`LfMalloc::install_crash_reporter`] on the underlying instance.
    #[cfg(feature = "forensics")]
    pub fn install_crash_reporter(&self, fd: i32) -> bool {
        self.instance().install_crash_reporter(fd)
    }
}

impl Default for GlobalLfMalloc {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for GlobalLfMalloc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let initialized = !self.instance.load(Ordering::Acquire).is_null();
        f.debug_struct("GlobalLfMalloc").field("initialized", &initialized).finish()
    }
}

unsafe impl GlobalAlloc for GlobalLfMalloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        unsafe { self.instance().allocate(layout.size(), layout.align()) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, _layout: Layout) {
        unsafe { self.instance().deallocate(ptr) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Grow in place when the size class already covers `new_size`
        // (common for Vec doubling within a class); otherwise move.
        let inst = self.instance();
        if layout.align() <= crate::config::PREFIX_SIZE {
            let usable = unsafe { inst.block_usable_size(ptr) };
            if usable >= new_size {
                return ptr;
            }
        }
        let new = unsafe { self.alloc(Layout::from_size_align_unchecked(new_size, layout.align())) };
        if !new.is_null() {
            unsafe {
                core::ptr::copy_nonoverlapping(ptr, new, layout.size().min(new_size));
                self.dealloc(ptr, layout);
            }
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_init_and_roundtrip() {
        let g = GlobalLfMalloc::new();
        assert!(g.instance.load(Ordering::Relaxed).is_null());
        unsafe {
            let layout = Layout::from_size_align(100, 8).unwrap();
            let p = g.alloc(layout);
            assert!(!p.is_null());
            core::ptr::write_bytes(p, 7, 100);
            g.dealloc(p, layout);
        }
        assert!(!g.instance.load(Ordering::Relaxed).is_null());
        // Leak the instance: GlobalLfMalloc is designed for 'static use.
    }

    #[test]
    fn concurrent_first_use_installs_exactly_one_instance() {
        let g = std::sync::Arc::new(GlobalLfMalloc::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = std::sync::Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                let inst = g.instance() as *const _ as usize;
                unsafe {
                    let layout = Layout::from_size_align(64, 8).unwrap();
                    let p = g.alloc(layout);
                    assert!(!p.is_null());
                    g.dealloc(p, layout);
                }
                inst
            }));
        }
        let addrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(addrs.windows(2).all(|w| w[0] == w[1]), "threads saw different instances");
    }

    #[test]
    fn high_alignment_layouts() {
        let g = GlobalLfMalloc::new();
        for &align in &[16usize, 32, 64, 256, 4096, 1 << 16] {
            unsafe {
                let layout = Layout::from_size_align(24, align).unwrap();
                let p = g.alloc(layout);
                assert!(!p.is_null(), "align {align}");
                assert_eq!(p as usize % align, 0, "align {align}");
                core::ptr::write_bytes(p, 0xEE, 24);
                g.dealloc(p, layout);
            }
        }
    }
}
