//! Allocator telemetry (cargo feature `stats`).
//!
//! Sharded, lock-free, always-on-when-enabled counters over the whole
//! malloc/free stack, plus a bounded event ring for slow-path tracing.
//! The design (DESIGN.md §9) follows the allocator's own discipline:
//!
//! * **Sharding mirrors the heap table.** One cache-line-padded
//!   [`ClassShard`] per `(size class, processor heap)` pair, laid out
//!   parallel to the `ProcHeap` array, so the hot paths touch a shard
//!   with the same locality as the heap they already own and never
//!   contend on a global counter.
//! * **Relaxed everywhere.** Telemetry observes how *often* paths run,
//!   never orders them; a snapshot racing increments may be off by the
//!   in-flight handful, which is the documented tolerance of
//!   [`StatsSnapshot`].
//! * **Zero cost when off.** Every increment goes through the
//!   `stat!`/`stat_hist!`/`stat_global!`/`stat_event!` macros in
//!   `lib.rs`, which compile to nothing without the feature — the same
//!   pattern as `fail_point!`.
//!
//! The event ring reuses the Vyukov [`BoundedQueue`]: fixed capacity,
//! pre-allocated, never blocking. When full it overwrites the oldest
//! event (pop once, retry) and counts what it had to drop.

use crate::config::SB_SIZE;
use crate::heap::ProcHeap;
use crate::instance::{Inner, LfMalloc};
use crate::size_classes::{CLASS_SIZES, NUM_CLASSES};
use hazard::HazardStats;
use lockfree_structs::stats::StructsCasStats;
use lockfree_structs::BoundedQueue;
use malloc_api::telemetry::{
    bucket_label, monotonic_nanos, Counter, Histogram, LatencyHist, LatencySnapshot,
    RETRY_BUCKETS,
};
use malloc_api::AllocStats;
use osmem::PageSource;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;

/// Capacity of the slow-path event ring (power of two; see
/// [`BoundedQueue::new`]).
pub const EVENT_RING_CAP: usize = 1024;

/// Capacity of the fragmentation time-series ring: one
/// [`FragSample`] per maintenance pass, oldest evicted first. At the
/// default 250 ms reaper period this holds the last ~64 s of history.
pub const FRAG_SERIES_CAP: usize = 256;

/// Live counters of one `(size class, heap)` pair. Padded to its own
/// cache lines so neighbouring shards never false-share — the same
/// guarantee `ProcHeap` itself makes.
#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct ClassShard {
    /// Mallocs served by `MallocFromActive` (the two-CAS fast path).
    pub malloc_fast: Counter,
    /// Mallocs served by `MallocFromPartial`.
    pub malloc_slow: Counter,
    /// Mallocs served by `MallocFromNewSB`.
    pub malloc_newsb: Counter,
    /// Frees by the thread mapped to the owning heap.
    pub free_local: Counter,
    /// Frees by a thread mapped to a different heap (remote frees).
    pub free_remote: Counter,
    /// Frees issued during TLS teardown (thread identity gone); also
    /// counted under `free_remote` — see `heap::try_thread_id`.
    pub free_teardown: Counter,
    /// Frees that emptied their superblock (EMPTY transition).
    pub free_empty: Counter,
    /// `HeapPutPartial` executions (superblock parked partial).
    pub partial_push: Counter,
    /// `HeapGetPartial` successes (slot or class list).
    pub partial_pop: Counter,
    /// Blocks actually served out of a partial superblock.
    pub partial_reuse: Counter,
    /// Retries of the Active-word reservation CAS, per malloc.
    pub active_cas: Histogram<RETRY_BUCKETS>,
    /// Retries of Anchor CASes (pop/reserve/credit-return/free-link),
    /// per operation.
    pub anchor_cas: Histogram<RETRY_BUCKETS>,
}

/// What happened on a slow path, recorded in the event ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A fresh superblock was carved and installed (`MallocFromNewSB`).
    SbAcquire,
    /// A superblock went EMPTY and returned to the page pool.
    SbRetire,
    /// A FULL superblock re-entered circulation as PARTIAL.
    HeapTransition,
    /// An allocation attempt exhausted its OOM backoff budget.
    OomBackoff,
    /// `trim`/`trim_to` ran; `arg` is the bytes released.
    Trim,
    /// The liveness watchdog detected a CAS retry storm; `arg` is the
    /// [`WatchSite`](crate::health::WatchSite) index.
    LivenessStorm,
    /// A maintenance pass completed; `arg` is the number of objects it
    /// acted on (reaped + flushed + pruned).
    Maintain,
    /// The process forked with this instance's atfork hooks registered
    /// (recorded parent-side); `arg` is the parent's process generation.
    Fork,
    /// Child-side fork recovery completed; `arg` is the number of
    /// orphaned hazard records adopted (see [`crate::fork`]).
    ChildRecover,
    /// A black-box crash report was emitted (recorded by the forensics
    /// test hooks, never from the signal handler itself — the event
    /// ring records a timestamp, which is not async-signal-safe).
    CrashReport,
    /// A post-mortem heap dump was written; `arg` is the dump version.
    HeapDump,
}

impl EventKind {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SbAcquire => "sb-acquire",
            EventKind::SbRetire => "sb-retire",
            EventKind::HeapTransition => "heap-transition",
            EventKind::OomBackoff => "oom-backoff",
            EventKind::Trim => "trim",
            EventKind::LivenessStorm => "liveness-storm",
            EventKind::Maintain => "maintain",
            EventKind::Fork => "fork",
            EventKind::ChildRecover => "child-recover",
            EventKind::CrashReport => "crash-report",
            EventKind::HeapDump => "heap-dump",
        }
    }
}

/// One timestamped slow-path event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the first event-ring use in this process.
    pub nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Size-class index (0 for class-less events like `Trim`).
    pub class: u16,
    /// Kind-specific payload (superblock address, bytes released, ...).
    pub arg: u64,
}

/// Monotonic nanoseconds since the process's telemetry epoch — the same
/// clock as the latency histograms and sample ages, so every timestamp
/// in a report is directly comparable.
fn now_nanos() -> u64 {
    monotonic_nanos()
}

/// Fixed-capacity, lock-free ring of slow-path [`Event`]s.
///
/// Recording never blocks and never allocates: on a full ring the
/// oldest event is popped to make room; if even that race is lost the
/// event is dropped and counted.
#[derive(Debug)]
pub struct EventRing {
    ring: Option<BoundedQueue<Event>>,
    dropped: Counter,
}

impl EventRing {
    /// A ring of (at least) `cap` events; a failed buffer allocation
    /// degrades to a ring that drops everything rather than failing
    /// instance construction.
    pub(crate) fn new(cap: usize) -> Self {
        EventRing { ring: BoundedQueue::new(cap), dropped: Counter::new() }
    }

    /// Records `ev`, overwriting the oldest event when full.
    pub fn record(&self, ev: Event) {
        let Some(ring) = &self.ring else {
            self.dropped.inc();
            return;
        };
        // Evict-then-push, retried enough to ride out a retire storm:
        // with only a couple of attempts, racing writers each evict an
        // event and then lose the push to a neighbour, so a burst both
        // drops thousands of events and leaves the ring far below
        // capacity (every double-failure removes two events and inserts
        // none). Eight attempts make that outcome vanishingly rare
        // while still bounding the worst case; this path only runs on
        // slow-path events, never on the malloc/free fast path.
        let mut ev = ev;
        for _ in 0..8 {
            match ring.push(ev) {
                Ok(()) => return,
                Err(back) => {
                    ev = back;
                    let _ = ring.pop(); // evict the oldest
                    core::hint::spin_loop();
                }
            }
        }
        self.dropped.inc();
    }

    /// Pops the oldest recorded event.
    pub fn pop(&self) -> Option<Event> {
        self.ring.as_ref()?.pop()
    }

    /// Events lost to eviction races or a failed ring allocation.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

/// One point of the fragmentation time series, recorded at the end of
/// every maintenance pass (see [`crate::maintain`]). Byte figures are
/// the same estimators as [`FragmentationStats`], computed without
/// allocating so the recording path is reaper-safe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FragSample {
    /// [`monotonic_nanos`] at the pass.
    pub nanos: u64,
    /// Estimated bytes in live (non-EMPTY) superblocks.
    pub small_committed_bytes: u64,
    /// Estimated bytes in live small blocks (block size × outstanding).
    pub small_live_bytes: u64,
    /// OS bytes backing live large blocks.
    pub large_live_bytes: u64,
    /// Total OS bytes mapped by the instance.
    pub os_live_bytes: u64,
    /// External fragmentation of the small heap in permille:
    /// `1000 * (1 - live/committed)`.
    pub external_frag_permille: u32,
}

impl FragSample {
    /// Hand-rolled JSON object (one time-series point).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"nanos\":{},\"small_committed_bytes\":{},\"small_live_bytes\":{},\
             \"large_live_bytes\":{},\"os_live_bytes\":{},\"external_frag_permille\":{}}}",
            self.nanos,
            self.small_committed_bytes,
            self.small_live_bytes,
            self.large_live_bytes,
            self.os_live_bytes,
            self.external_frag_permille
        )
    }
}

/// Bounded, lock-free ring of [`FragSample`]s — the same evict-oldest
/// discipline as [`EventRing`], sized for minutes of history.
#[derive(Debug)]
pub struct FragSeries {
    ring: Option<BoundedQueue<FragSample>>,
}

impl FragSeries {
    pub(crate) fn new(cap: usize) -> Self {
        FragSeries { ring: BoundedQueue::new(cap) }
    }

    /// Records a sample, evicting the oldest when full.
    pub(crate) fn record(&self, s: FragSample) {
        let Some(ring) = &self.ring else { return };
        let mut s = s;
        for _ in 0..2 {
            match ring.push(s) {
                Ok(()) => return,
                Err(back) => {
                    s = back;
                    let _ = ring.pop();
                }
            }
        }
    }

    /// Pops the oldest sample.
    pub fn pop(&self) -> Option<FragSample> {
        self.ring.as_ref()?.pop()
    }
}

/// All live telemetry of one allocator instance: the shard array plus
/// instance-global counters and the event ring.
#[derive(Debug)]
pub(crate) struct InstanceStats {
    /// `NUM_CLASSES * nheaps` shards, system-allocated (zeroed), laid
    /// out exactly like the heap table: index `ci * nheaps + h`.
    shards: *mut ClassShard,
    nshards: usize,
    /// Large blocks allocated / freed.
    pub large_alloc: Counter,
    pub large_free: Counter,
    /// Failed attempts inside the OOM retry/backoff loops.
    pub oom_backoffs: Counter,
    /// `trim`/`trim_to` invocations.
    pub trims: Counter,
    /// Slow-path trace ring.
    pub events: EventRing,
    /// Per-op latency, split by operation and serving path. Instance-
    /// global (not sharded): recording is two relaxed `fetch_add`s on
    /// lines that the slow paths already own, and the fast-path hists
    /// are only touched once per op.
    pub lat_malloc_fast: LatencyHist,
    pub lat_malloc_slow: LatencyHist,
    pub lat_malloc_large: LatencyHist,
    pub lat_free_fast: LatencyHist,
    pub lat_free_slow: LatencyHist,
    pub lat_free_large: LatencyHist,
    /// Maintenance-pass and trim-pass durations.
    pub lat_maintain: LatencyHist,
    pub lat_trim: LatencyHist,
    /// Fragmentation time series, fed by the maintenance pass.
    pub frag_series: FragSeries,
    /// Scrape-endpoint control plane (see [`crate::metrics`]).
    pub(crate) metrics: crate::metrics::MetricsState,
}

unsafe impl Send for InstanceStats {}
unsafe impl Sync for InstanceStats {}

impl InstanceStats {
    /// Allocates the shard array; `None` when the system allocator is
    /// exhausted.
    pub(crate) fn new(nshards: usize) -> Option<Self> {
        let layout = Layout::array::<ClassShard>(nshards).ok()?;
        // Zeroed memory is a valid ClassShard: every field is atomics.
        let shards = unsafe { System.alloc_zeroed(layout) } as *mut ClassShard;
        if shards.is_null() {
            return None;
        }
        Some(InstanceStats {
            shards,
            nshards,
            large_alloc: Counter::new(),
            large_free: Counter::new(),
            oom_backoffs: Counter::new(),
            trims: Counter::new(),
            events: EventRing::new(EVENT_RING_CAP),
            lat_malloc_fast: LatencyHist::new(),
            lat_malloc_slow: LatencyHist::new(),
            lat_malloc_large: LatencyHist::new(),
            lat_free_fast: LatencyHist::new(),
            lat_free_slow: LatencyHist::new(),
            lat_free_large: LatencyHist::new(),
            lat_maintain: LatencyHist::new(),
            lat_trim: LatencyHist::new(),
            frag_series: FragSeries::new(FRAG_SERIES_CAP),
            metrics: crate::metrics::MetricsState::new(),
        })
    }

    /// Shard at flat index `idx` (`ci * nheaps + h`).
    #[inline]
    pub(crate) fn shard(&self, idx: usize) -> &ClassShard {
        debug_assert!(idx < self.nshards);
        unsafe { &*self.shards.add(idx) }
    }

    /// Records a timestamped slow-path event.
    #[inline]
    pub(crate) fn record_event(&self, kind: EventKind, class: u16, arg: u64) {
        self.events.record(Event { nanos: now_nanos(), kind, class, arg });
    }
}

impl Drop for InstanceStats {
    fn drop(&mut self) {
        unsafe {
            System.dealloc(
                self.shards as *mut u8,
                Layout::array::<ClassShard>(self.nshards).unwrap(),
            );
        }
    }
}

impl<S: PageSource> Inner<S> {
    /// The stats shard of `heap` (same flat index as the heap table).
    #[inline]
    pub(crate) fn shard(&self, heap: &ProcHeap) -> &ClassShard {
        let idx = (heap as *const ProcHeap as usize - self.heaps as usize)
            / core::mem::size_of::<ProcHeap>();
        self.stats.shard(idx)
    }
}

/// Aggregated counters of one size class (all heaps summed), or of the
/// whole instance in [`StatsSnapshot::totals`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Size-class index.
    pub class: usize,
    /// Total block size of the class, prefix included (0 in `totals`).
    pub block_size: u32,
    pub malloc_fast: u64,
    pub malloc_slow: u64,
    pub malloc_newsb: u64,
    pub free_local: u64,
    pub free_remote: u64,
    /// TLS-teardown frees (a subset of `free_remote`).
    pub free_teardown: u64,
    pub free_empty: u64,
    pub partial_push: u64,
    pub partial_pop: u64,
    pub partial_reuse: u64,
    /// Active-word reservation CAS retries per malloc, bucketed
    /// 0 / 1 / 2–3 / ... / 64+ (see [`bucket_label`]).
    pub active_cas: [u64; RETRY_BUCKETS],
    /// Anchor CAS retries per operation, same buckets.
    pub anchor_cas: [u64; RETRY_BUCKETS],
}

impl ClassStats {
    /// All small mallocs of the class.
    pub fn mallocs(&self) -> u64 {
        self.malloc_fast + self.malloc_slow + self.malloc_newsb
    }

    /// All small frees of the class.
    pub fn frees(&self) -> u64 {
        self.free_local + self.free_remote
    }

    fn accumulate(&mut self, shard: &ClassShard) {
        self.malloc_fast += shard.malloc_fast.get();
        self.malloc_slow += shard.malloc_slow.get();
        self.malloc_newsb += shard.malloc_newsb.get();
        self.free_local += shard.free_local.get();
        self.free_remote += shard.free_remote.get();
        self.free_teardown += shard.free_teardown.get();
        self.free_empty += shard.free_empty.get();
        self.partial_push += shard.partial_push.get();
        self.partial_pop += shard.partial_pop.get();
        self.partial_reuse += shard.partial_reuse.get();
        let a = shard.active_cas.snapshot();
        let n = shard.anchor_cas.snapshot();
        for i in 0..RETRY_BUCKETS {
            self.active_cas[i] += a[i];
            self.anchor_cas[i] += n[i];
        }
    }

    fn add(&mut self, other: &ClassStats) {
        self.malloc_fast += other.malloc_fast;
        self.malloc_slow += other.malloc_slow;
        self.malloc_newsb += other.malloc_newsb;
        self.free_local += other.free_local;
        self.free_remote += other.free_remote;
        self.free_teardown += other.free_teardown;
        self.free_empty += other.free_empty;
        self.partial_push += other.partial_push;
        self.partial_pop += other.partial_pop;
        self.partial_reuse += other.partial_reuse;
        for i in 0..RETRY_BUCKETS {
            self.active_cas[i] += other.active_cas[i];
            self.anchor_cas[i] += other.anchor_cas[i];
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"class\":{},\"size\":{},\"malloc_fast\":{},\"malloc_slow\":{},\
             \"malloc_newsb\":{},\"free_local\":{},\"free_remote\":{},\
             \"free_teardown\":{},\"free_empty\":{},\
             \"partial_push\":{},\"partial_pop\":{},\"partial_reuse\":{},\
             \"active_cas\":{},\"anchor_cas\":{}}}",
            self.class,
            self.block_size,
            self.malloc_fast,
            self.malloc_slow,
            self.malloc_newsb,
            self.free_local,
            self.free_remote,
            self.free_teardown,
            self.free_empty,
            self.partial_push,
            self.partial_pop,
            self.partial_reuse,
            json_array(&self.active_cas),
            json_array(&self.anchor_cas),
        )
    }
}

fn json_array(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Per-op latency distributions of the snapshot, one
/// [`LatencySnapshot`] per (operation, serving path) pair.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Mallocs served by the Active fast path.
    pub malloc_fast: LatencySnapshot,
    /// Mallocs served by a partial or fresh superblock.
    pub malloc_slow: LatencySnapshot,
    /// Large (direct-mmap) allocations.
    pub malloc_large: LatencySnapshot,
    /// Frees that were a plain free-list push.
    pub free_fast: LatencySnapshot,
    /// Frees that emptied a superblock or relinked FULL→PARTIAL.
    pub free_slow: LatencySnapshot,
    /// Large-block releases.
    pub free_large: LatencySnapshot,
    /// Maintenance-pass durations.
    pub maintain: LatencySnapshot,
    /// Trim-pass durations.
    pub trim: LatencySnapshot,
}

impl LatencyStats {
    /// All malloc paths combined.
    pub fn malloc_all(&self) -> LatencySnapshot {
        let mut m = self.malloc_fast;
        m.merge(&self.malloc_slow);
        m.merge(&self.malloc_large);
        m
    }

    /// All free paths combined.
    pub fn free_all(&self) -> LatencySnapshot {
        let mut m = self.free_fast;
        m.merge(&self.free_slow);
        m.merge(&self.free_large);
        m
    }

    fn paths(&self) -> [(&'static str, &LatencySnapshot); 8] {
        [
            ("malloc_fast", &self.malloc_fast),
            ("malloc_slow", &self.malloc_slow),
            ("malloc_large", &self.malloc_large),
            ("free_fast", &self.free_fast),
            ("free_slow", &self.free_slow),
            ("free_large", &self.free_large),
            ("maintain", &self.maintain),
            ("trim", &self.trim),
        ]
    }

    fn to_json(&self) -> String {
        let parts: Vec<String> = self
            .paths()
            .iter()
            .map(|(name, s)| {
                format!(
                    "\"{}\":{{\"count\":{},\"sum_nanos\":{},\"p50\":{},\"p90\":{},\
                     \"p99\":{},\"p999\":{},\"buckets\":{}}}",
                    name,
                    s.count(),
                    s.sum_nanos,
                    s.percentile(0.50),
                    s.percentile(0.90),
                    s.percentile(0.99),
                    s.percentile(0.999),
                    json_array(&s.buckets)
                )
            })
            .collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// Committed-vs-live accounting of one size class — the external-
/// fragmentation estimator.
///
/// `committed_bytes` counts superblocks the class has acquired and not
/// yet retired (`malloc_newsb − free_empty`, × 16 KiB); `live_bytes`
/// counts outstanding blocks (`mallocs − frees`, × block size). Both
/// are derived from monotone counters, so a snapshot racing in-flight
/// operations can be off by the in-flight handful (clamped at zero).
/// Superblocks cached idle in an Active slot count as committed — that
/// is precisely the retention the metric is meant to expose.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FragClass {
    /// Size-class index.
    pub class: usize,
    /// Total block size, prefix included.
    pub block_size: u32,
    /// Estimated bytes in the class's live superblocks.
    pub committed_bytes: u64,
    /// Estimated bytes in the class's outstanding blocks.
    pub live_bytes: u64,
}

impl FragClass {
    /// External fragmentation in permille: `1000 * (1 − live/committed)`
    /// (0 when nothing is committed).
    pub fn frag_permille(&self) -> u32 {
        frag_permille(self.live_bytes, self.committed_bytes)
    }
}

fn frag_permille(live: u64, committed: u64) -> u32 {
    if committed == 0 {
        0
    } else {
        1000u64.saturating_sub(live.saturating_mul(1000) / committed).min(1000) as u32
    }
}

/// Fragmentation observability of the snapshot: per-class external
/// fragmentation plus instance totals and the drained time series.
#[derive(Clone, Debug, Default)]
pub struct FragmentationStats {
    /// Classes with committed superblocks (others carry no signal).
    pub classes: Vec<FragClass>,
    /// Sum of `committed_bytes` over all classes.
    pub small_committed_bytes: u64,
    /// Sum of `live_bytes` over all classes.
    pub small_live_bytes: u64,
    /// OS bytes backing live large blocks (large blocks are exactly
    /// sized, so their only waste is page rounding — tracked by the
    /// sampled internal-fragmentation estimate under `profile`).
    pub large_live_bytes: u64,
}

impl FragmentationStats {
    fn compute(classes: &[ClassStats], large_live_bytes: u64) -> Self {
        let mut out = FragmentationStats { large_live_bytes, ..Default::default() };
        for c in classes {
            let committed =
                c.malloc_newsb.saturating_sub(c.free_empty) * SB_SIZE as u64;
            let live = c.mallocs().saturating_sub(c.frees()) * c.block_size as u64;
            // Clamp to committed: racing counters (or blocks freed into
            // a just-retired superblock) can momentarily overshoot.
            let live = live.min(committed);
            if committed == 0 {
                continue;
            }
            out.small_committed_bytes += committed;
            out.small_live_bytes += live;
            out.classes.push(FragClass {
                class: c.class,
                block_size: c.block_size,
                committed_bytes: committed,
                live_bytes: live,
            });
        }
        out
    }

    /// Instance-wide external fragmentation of the small heap, permille.
    pub fn external_frag_permille(&self) -> u32 {
        frag_permille(self.small_live_bytes, self.small_committed_bytes)
    }

    fn to_json(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\":{},\"size\":{},\"committed_bytes\":{},\
                     \"live_bytes\":{},\"frag_permille\":{}}}",
                    c.class, c.block_size, c.committed_bytes, c.live_bytes, c.frag_permille()
                )
            })
            .collect();
        format!(
            "{{\"small_committed_bytes\":{},\"small_live_bytes\":{},\
             \"large_live_bytes\":{},\"external_frag_permille\":{},\"classes\":[{}]}}",
            self.small_committed_bytes,
            self.small_live_bytes,
            self.large_live_bytes,
            self.external_frag_permille(),
            classes.join(",")
        )
    }
}

/// Records one fragmentation time-series point (called at the end of
/// every maintenance pass). Allocation-free: sums the shard counters
/// into scalars and pushes into the bounded ring.
pub(crate) fn record_frag_sample<S: PageSource>(inner: &Inner<S>) {
    let mut committed = 0u64;
    let mut live = 0u64;
    for ci in 0..NUM_CLASSES {
        let (mut newsb, mut empt, mut mallocs, mut frees) = (0u64, 0u64, 0u64, 0u64);
        for h in 0..inner.nheaps {
            let s = inner.stats.shard(ci * inner.nheaps + h);
            newsb += s.malloc_newsb.get();
            empt += s.free_empty.get();
            mallocs += s.malloc_fast.get() + s.malloc_slow.get() + s.malloc_newsb.get();
            frees += s.free_local.get() + s.free_remote.get();
        }
        let c = newsb.saturating_sub(empt) * SB_SIZE as u64;
        committed += c;
        live += (mallocs.saturating_sub(frees) * CLASS_SIZES[ci] as u64).min(c);
    }
    let large = inner.large_bytes.load(core::sync::atomic::Ordering::Relaxed) as u64;
    inner.stats.frag_series.record(FragSample {
        nanos: now_nanos(),
        small_committed_bytes: committed,
        small_live_bytes: live,
        large_live_bytes: large,
        os_live_bytes: inner.source.stats().live_bytes as u64,
        external_frag_permille: frag_permille(live, committed),
    });
}

/// A consistent-enough aggregate of every counter in the instance.
///
/// Each counter is read once with `Relaxed` ordering; counters advanced
/// by in-flight operations may differ by the handful currently
/// executing, but every counter is monotone between snapshots.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Per-size-class aggregates (length [`NUM_CLASSES`]).
    pub classes: Vec<ClassStats>,
    /// Sum over all classes (`class`/`block_size` zero).
    pub totals: ClassStats,
    /// Large (direct-mmap) blocks allocated / freed / currently live.
    pub large_alloc: u64,
    pub large_free: u64,
    pub large_live: u64,
    /// Failed attempts inside OOM retry/backoff loops.
    pub oom_backoffs: u64,
    /// `trim`/`trim_to` invocations.
    pub trims: u64,
    /// Events the ring had to drop.
    pub events_dropped: u64,
    /// Hazard-pointer domain counters (scans, reclaimed, high-water).
    pub hazard: HazardStats,
    /// Process-wide queue/stack CAS retries from `lockfree-structs`
    /// (shared by *all* instances in the process — the embedded
    /// structures keep their layout by counting into statics).
    pub structs_cas: StructsCasStats,
    /// OS-level accounting: `os.os_allocs`/`os.os_frees` are the
    /// mmap/munmap call counts; live/peak bytes as in [`AllocStats`].
    pub os: AllocStats,
    /// Superblock hyperblocks carved from the OS (lifetime count).
    pub sb_carves: u64,
    /// Descriptor slabs carved from the OS (lifetime count).
    pub desc_carves: u64,
    /// The audit's byte reconciliation, computed from the same source
    /// of truth (`Inner::reconcile_bytes`) rather than re-derived.
    pub reconciliation: crate::audit::ByteReconciliation,
    /// Liveness + maintenance health (same data as
    /// [`LfMalloc::health`](crate::LfMalloc::health), taken in the same
    /// snapshot).
    pub health: crate::health::HealthSnapshot,
    /// Per-op latency distributions (see [`LatencyStats`]).
    pub latency: LatencyStats,
    /// External-fragmentation accounting (see [`FragmentationStats`]).
    pub fragmentation: FragmentationStats,
    /// Sampled allocation-site profile, taken in the same snapshot
    /// (only under the `profile` feature, which implies `stats`).
    #[cfg(feature = "profile")]
    pub profile: crate::profile::ProfileSnapshot,
}

impl StatsSnapshot {
    /// Size classes with any malloc/free activity, hottest (most
    /// mallocs) first.
    pub fn hottest_classes(&self) -> Vec<&ClassStats> {
        let mut active: Vec<&ClassStats> =
            self.classes.iter().filter(|c| c.mallocs() + c.frees() > 0).collect();
        active.sort_by(|a, b| b.mallocs().cmp(&a.mallocs()));
        active
    }

    /// Machine-readable snapshot: one line of JSON (hand-rolled — the
    /// allocator stack takes no serialization dependency).
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .filter(|c| c.mallocs() + c.frees() + c.partial_push + c.partial_pop > 0)
            .map(ClassStats::to_json)
            .collect();
        let r = &self.reconciliation;
        format!(
            "{{\"allocator\":\"lfmalloc\",\"totals\":{},\"classes\":[{}],\
             \"large\":{{\"alloc\":{},\"free\":{},\"live\":{}}},\
             \"oom_backoffs\":{},\"trims\":{},\"events_dropped\":{},\
             \"hazard\":{{\"scans\":{},\"reclaimed\":{},\"retired_high_water\":{},\
             \"frees_per_scan\":{}}},\
             \"structs_cas\":{{\"queue_enqueue\":{},\"queue_dequeue\":{},\
             \"stack_push\":{},\"stack_pop\":{}}},\
             \"os\":{{\"live_bytes\":{},\"peak_bytes\":{},\"mmap_calls\":{},\
             \"munmap_calls\":{}}},\
             \"carves\":{{\"superblock\":{},\"descriptor\":{}}},\
             \"reconcile\":{{\"superblock_bytes\":{},\"descriptor_slab_bytes\":{},\
             \"large_bytes\":{},\"source_live_bytes\":{},\"ok\":{}}},\
             \"health\":{},\"latency\":{},\"fragmentation\":{}{}}}",
            self.totals.to_json(),
            classes.join(","),
            self.large_alloc,
            self.large_free,
            self.large_live,
            self.oom_backoffs,
            self.trims,
            self.events_dropped,
            self.hazard.scans,
            self.hazard.reclaimed,
            self.hazard.retired_high_water,
            json_array(&self.hazard.frees_per_scan),
            self.structs_cas.queue_enqueue_retries,
            self.structs_cas.queue_dequeue_retries,
            self.structs_cas.stack_push_retries,
            self.structs_cas.stack_pop_retries,
            self.os.live_bytes,
            self.os.peak_bytes,
            self.os.os_allocs,
            self.os.os_frees,
            self.sb_carves,
            self.desc_carves,
            r.superblock_bytes,
            r.descriptor_slab_bytes,
            r.large_bytes,
            r.source_live_bytes,
            r.reconciles(),
            self.health.to_json(),
            self.latency.to_json(),
            self.fragmentation.to_json(),
            {
                #[cfg(feature = "profile")]
                {
                    format!(",\"profile\":{}", self.profile.to_json())
                }
                #[cfg(not(feature = "profile"))]
                {
                    String::new()
                }
            },
        )
    }
}

impl<S: PageSource> LfMalloc<S> {
    /// A consistent aggregate of every telemetry counter; see
    /// [`StatsSnapshot`] for the racing-increment tolerance. Does not
    /// drain the event ring (use [`take_events`](Self::take_events)).
    pub fn stats(&self) -> StatsSnapshot {
        let inner = self.inner();
        let mut classes: Vec<ClassStats> = (0..NUM_CLASSES)
            .map(|ci| ClassStats {
                class: ci,
                block_size: CLASS_SIZES[ci],
                ..ClassStats::default()
            })
            .collect();
        for ci in 0..NUM_CLASSES {
            for h in 0..inner.nheaps {
                classes[ci].accumulate(inner.stats.shard(ci * inner.nheaps + h));
            }
        }
        let mut totals = ClassStats::default();
        for c in &classes {
            totals.add(c);
        }
        let latency = LatencyStats {
            malloc_fast: inner.stats.lat_malloc_fast.snapshot(),
            malloc_slow: inner.stats.lat_malloc_slow.snapshot(),
            malloc_large: inner.stats.lat_malloc_large.snapshot(),
            free_fast: inner.stats.lat_free_fast.snapshot(),
            free_slow: inner.stats.lat_free_slow.snapshot(),
            free_large: inner.stats.lat_free_large.snapshot(),
            maintain: inner.stats.lat_maintain.snapshot(),
            trim: inner.stats.lat_trim.snapshot(),
        };
        let fragmentation = FragmentationStats::compute(
            &classes,
            inner.large_bytes.load(core::sync::atomic::Ordering::Relaxed) as u64,
        );
        StatsSnapshot {
            classes,
            totals,
            large_alloc: inner.stats.large_alloc.get(),
            large_free: inner.stats.large_free.get(),
            large_live: inner.large_live.load(core::sync::atomic::Ordering::Relaxed) as u64,
            oom_backoffs: inner.stats.oom_backoffs.get(),
            trims: inner.stats.trims.get(),
            events_dropped: inner.stats.events.dropped(),
            hazard: inner.domain.stats(),
            structs_cas: lockfree_structs::stats::snapshot(),
            os: inner.source.stats(),
            sb_carves: inner.sb_pool.carve_count(),
            desc_carves: inner.desc_pool.carve_count(),
            reconciliation: inner.reconcile_bytes(),
            health: self.health(),
            latency,
            fragmentation,
            #[cfg(feature = "profile")]
            profile: self.profile(),
        }
    }

    /// Drains and returns the recorded slow-path events, oldest first.
    pub fn take_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(ev) = self.inner().stats.events.pop() {
            out.push(ev);
        }
        out
    }

    /// Drains and returns the fragmentation time series, oldest first
    /// (one point per maintenance pass; see [`FragSample`]).
    pub fn take_frag_series(&self) -> Vec<FragSample> {
        let mut out = Vec::new();
        while let Some(s) = self.inner().stats.frag_series.pop() {
            out.push(s);
        }
        out
    }

    /// Writes a `malloc_stats_print`-style human-readable report of
    /// [`stats`](Self::stats), draining the event ring into a trailing
    /// trace section.
    pub fn dump_stats(&self, w: &mut impl Write) -> std::io::Result<()> {
        let s = self.stats();
        let t = &s.totals;
        writeln!(w, "___ Begin lfmalloc statistics ___")?;
        writeln!(
            w,
            "mallocs: {:>12}  (fast {} / partial {} / new-sb {})",
            t.mallocs(),
            t.malloc_fast,
            t.malloc_slow,
            t.malloc_newsb
        )?;
        writeln!(
            w,
            "frees:   {:>12}  (local {} / remote {} [{} in TLS teardown] / emptied {} superblocks)",
            t.frees(),
            t.free_local,
            t.free_remote,
            t.free_teardown,
            t.free_empty
        )?;
        writeln!(
            w,
            "partial: {:>12} push / {} pop / {} blocks reused",
            t.partial_push, t.partial_pop, t.partial_reuse
        )?;
        writeln!(
            w,
            "large:   {:>12} alloc / {} free / {} live",
            s.large_alloc, s.large_free, s.large_live
        )?;
        writeln!(w, "oom backoff attempts: {}   trims: {}", s.oom_backoffs, s.trims)?;
        writeln!(w, "latency (ns, power-of-two bucket upper bounds):")?;
        writeln!(
            w,
            "  {:<13} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "path", "count", "p50", "p90", "p99", "p99.9", "mean"
        )?;
        for (name, l) in s.latency.paths() {
            if l.count() == 0 {
                continue;
            }
            writeln!(
                w,
                "  {:<13} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                name,
                l.count(),
                l.percentile(0.50),
                l.percentile(0.90),
                l.percentile(0.99),
                l.percentile(0.999),
                l.mean_nanos()
            )?;
        }
        let f = &s.fragmentation;
        writeln!(
            w,
            "fragmentation: external {}‰ ({} live / {} committed small bytes, {} large)",
            f.external_frag_permille(),
            f.small_live_bytes,
            f.small_committed_bytes,
            f.large_live_bytes
        )?;
        for c in &f.classes {
            writeln!(
                w,
                "  class {:>3} ({:>7} B): {:>12} live / {:>12} committed  {:>4}‰",
                c.class,
                c.block_size,
                c.live_bytes,
                c.committed_bytes,
                c.frag_permille()
            )?;
        }
        #[cfg(feature = "profile")]
        {
            let p = &s.profile;
            writeln!(
                w,
                "profile: {} live samples (~{} bytes), {} taken / {} freed / {} dropped, \
                 internal frag {}‰ (stride {} B)",
                p.live.len(),
                p.live_bytes_estimate(),
                p.samples_taken,
                p.sampled_frees,
                p.samples_dropped,
                p.internal_frag_permille(),
                p.stride_bytes
            )?;
            for r in s.profile.sites().iter().take(10) {
                writeln!(
                    w,
                    "  {:>12} bytes ({:>4} samples, {} threads, class {}, oldest {} ms) {}",
                    r.live_bytes,
                    r.live_samples,
                    r.threads,
                    crate::profile::class_label(r.top_class),
                    r.oldest_age_nanos / 1_000_000,
                    r.site
                )?;
            }
        }
        writeln!(w, "cas retries per operation:")?;
        write_histogram(w, "  active (reserve)", &t.active_cas)?;
        write_histogram(w, "  anchor (pop/free)", &t.anchor_cas)?;
        writeln!(
            w,
            "hazard:  {} scans, {} reclaimed, retired high-water {}",
            s.hazard.scans, s.hazard.reclaimed, s.hazard.retired_high_water
        )?;
        write_histogram(w, "  frees per scan", &s.hazard.frees_per_scan)?;
        writeln!(
            w,
            "structs: queue cas retries {}/{} (enq/deq), stack {}/{} (push/pop) [process-wide]",
            s.structs_cas.queue_enqueue_retries,
            s.structs_cas.queue_dequeue_retries,
            s.structs_cas.stack_push_retries,
            s.structs_cas.stack_pop_retries
        )?;
        let r = &s.reconciliation;
        writeln!(
            w,
            "os: {} live bytes = {} superblock + {} descriptor-slab + {} large \
             (peak {}, mmap {}, munmap {}, carves {} sb / {} desc){}",
            r.source_live_bytes,
            r.superblock_bytes,
            r.descriptor_slab_bytes,
            r.large_bytes,
            s.os.peak_bytes,
            s.os.os_allocs,
            s.os.os_frees,
            s.sb_carves,
            s.desc_carves,
            if r.reconciles() { "" } else { "  [MISMATCH]" }
        )?;
        let h = &s.health;
        writeln!(
            w,
            "health: {} (policy {}, ceiling {})  storms {}  throttles {}",
            if h.is_degraded() { "DEGRADED" } else { "ok" },
            h.policy.label(),
            h.retry_ceiling,
            h.storms_total(),
            h.throttle_activations
        )?;
        writeln!(
            w,
            "maintenance: {} passes ({} reaper) — {} retired reaped, {} quarantine flushed, \
             {} empty pruned, audit slices {}/{} flagged, last full audit {}",
            h.maintain_passes,
            h.reaper_passes,
            h.reaped_retired,
            h.quarantine_flushed,
            h.empty_pruned,
            h.audit_slice_flagged,
            h.audit_slice_checked,
            match h.last_audit_violations {
                Some(v) => format!("{v} violations"),
                None => "never ran".into(),
            }
        )?;
        writeln!(
            w,
            "fork: generation {}  child recoveries {}  reentrant-alloc rejections {}",
            h.fork_generation,
            h.fork_recoveries,
            self.misuse_counters().count(crate::harden::MisuseKind::ReentrantAlloc)
        )?;
        writeln!(w, "per size class (active classes only):")?;
        writeln!(
            w,
            "  {:>5} {:>7} {:>10} {:>7} {:>10} {:>8} {:>7} {:>18}",
            "class", "size", "mallocs", "fast%", "frees", "remote", "new-sb", "partial p/p/reuse"
        )?;
        for c in s.classes.iter().filter(|c| c.mallocs() + c.frees() > 0) {
            let fast_pct = if c.mallocs() > 0 {
                100.0 * c.malloc_fast as f64 / c.mallocs() as f64
            } else {
                0.0
            };
            writeln!(
                w,
                "  {:>5} {:>7} {:>10} {:>6.1}% {:>10} {:>8} {:>7} {:>7}/{}/{}",
                c.class,
                c.block_size,
                c.mallocs(),
                fast_pct,
                c.frees(),
                c.free_remote,
                c.malloc_newsb,
                c.partial_push,
                c.partial_pop,
                c.partial_reuse
            )?;
        }
        let events = self.take_events();
        writeln!(w, "events: {} recorded, {} dropped", events.len(), s.events_dropped)?;
        for ev in &events {
            writeln!(
                w,
                "  [{:>12} ns] {:<15} class {:>2}  arg {:#x}",
                ev.nanos,
                ev.kind.label(),
                ev.class,
                ev.arg
            )?;
        }
        writeln!(w, "___ End lfmalloc statistics ___")?;
        Ok(())
    }
}

fn write_histogram(
    w: &mut impl Write,
    name: &str,
    buckets: &[u64; RETRY_BUCKETS],
) -> std::io::Result<()> {
    write!(w, "{name}:")?;
    for (i, count) in buckets.iter().enumerate() {
        write!(w, "  {}:{}", bucket_label(i, RETRY_BUCKETS), count)?;
    }
    writeln!(w)
}

/// Whether `heap` is the heap the *calling thread* would use for its
/// class — the local/remote free discriminator.
#[inline]
pub(crate) fn is_local_heap<S: PageSource>(inner: &Inner<S>, heap: &ProcHeap) -> bool {
    core::ptr::eq(inner.heap_for(heap.class()), heap)
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use malloc_api::RawMalloc;

    #[test]
    fn event_ring_overwrites_oldest() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.record(Event { nanos: i, kind: EventKind::SbAcquire, class: 0, arg: i });
        }
        let mut got = Vec::new();
        while let Some(ev) = ring.pop() {
            got.push(ev.arg);
        }
        assert_eq!(got.len(), 4, "ring keeps its capacity");
        assert_eq!(got, vec![6, 7, 8, 9], "oldest events were evicted");
    }

    #[test]
    fn snapshot_counts_a_simple_session() {
        let a = LfMalloc::with_config(Config::with_heaps(1));
        unsafe {
            let p = a.malloc(100);
            let q = a.malloc(100);
            a.free(p);
            a.free(q);
        }
        let s = a.stats();
        assert_eq!(s.totals.mallocs(), 2);
        assert_eq!(s.totals.frees(), 2);
        assert_eq!(s.totals.malloc_newsb, 1, "first malloc carves a superblock");
        assert_eq!(s.totals.free_local, 2, "single heap: every free is local");
        assert_eq!(s.totals.free_remote, 0);
        assert!(s.sb_carves >= 1);
        assert!(s.reconciliation.reconciles(), "snapshot embeds the audit reconciliation");
        // The one-shot session saw no contention: all CAS histograms in
        // bucket zero.
        assert_eq!(s.totals.active_cas[0], s.totals.active_cas.iter().sum::<u64>());
        let events = a.take_events();
        assert!(
            events.iter().any(|e| e.kind == EventKind::SbAcquire),
            "superblock acquisition was traced: {events:?}"
        );
    }

    #[test]
    fn dump_and_json_render() {
        let a = LfMalloc::with_config(Config::with_heaps(2));
        unsafe {
            let p = a.malloc(64);
            let big = a.malloc(100_000);
            a.free(p);
            a.free(big);
        }
        let mut out = Vec::new();
        a.dump_stats(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Begin lfmalloc statistics"));
        assert!(text.contains("mallocs:"));
        assert!(text.contains("descriptor-slab"));
        let json = a.stats().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"large\":{\"alloc\":1,\"free\":1,\"live\":0}"));
        assert!(json.contains("\"ok\":true"));
    }
}
