//! Liveness watchdog and health reporting.
//!
//! The paper's central claim is lock-freedom — "immune to deadlock and
//! livelock regardless of scheduling" — but lock-freedom is a property of
//! the *algorithm*, not of a deployed process: a corrupted anchor, a
//! mis-seeded failpoint plan, or pathological cross-thread interference
//! shows up as a CAS retry loop that spins far past anything honest
//! contention produces, and without instrumentation it spins silently.
//! This module makes liveness observable and (optionally) enforceable:
//!
//! * Every instrumented retry loop (the same sites PR 4's `stat!`
//!   histograms count) feeds its per-operation retry tally to
//!   [`watch`], which compares it against the configured
//!   [`LivenessConfig::retry_ceiling`].
//! * Crossing the ceiling is a *storm*. What happens next is the
//!   [`LivenessPolicy`]: `Ignore` (count nothing), `Throttle` (inject
//!   escalated backoff so the storming thread stops saturating the
//!   contended line), `Report` (default — count it, and under the
//!   `stats` feature emit a [`LivenessStorm`](crate::stats::EventKind)
//!   event into the event ring), or `Abort` (fail-stop: panic with the
//!   site and tally, turning a silent livelock into a loud crash).
//! * [`LfMalloc::health`](crate::LfMalloc::health) aggregates the storm
//!   counters with maintenance progress (see [`crate::maintain`]),
//!   hazard-domain depth, quarantine depth, last-audit outcome, and OS
//!   bytes vs. the trim watermark into a [`HealthSnapshot`] whose
//!   [`is_degraded`](HealthSnapshot::is_degraded) gives a single verdict.
//!
//! The watchdog itself is lock-free and costs nothing on the success
//! path: the check runs only after a CAS *failure*, and is one branch on
//! a thread-local tally. The counters are plain relaxed atomics — they
//! observe, never order.

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::heap::ProcHeap;
use crate::instance::{Inner, LfMalloc};
use osmem::PageSource;

/// What the watchdog does when a retry loop crosses the ceiling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LivenessPolicy {
    /// No detection at all (the pure paper hot path).
    Ignore,
    /// Count the storm and inject escalated backoff each time the tally
    /// crosses another multiple of the ceiling, de-saturating the
    /// contended cache line. The loop itself stays lock-free: backoff
    /// delays the storming thread, it never blocks it.
    Throttle,
    /// Count the storm in process-wide and per-instance counters and
    /// (under `stats`) emit a structured event into the event ring.
    /// The operation continues unhindered.
    #[default]
    Report,
    /// Fail-stop: panic with the site and retry tally. For deployments
    /// that prefer a crash to a silent livelock.
    Abort,
}

impl LivenessPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LivenessPolicy::Ignore => "ignore",
            LivenessPolicy::Throttle => "throttle",
            LivenessPolicy::Report => "report",
            LivenessPolicy::Abort => "abort",
        }
    }
}

/// Default retry ceiling: honest contention on a hot anchor produces
/// tallies in the tens (see the PR-4 histograms, which bucket at 64+);
/// 4096 consecutive failed CASes of one operation is orders of magnitude
/// past that and indicates interference that is not making progress
/// *against us* so much as something pathological.
pub const DEFAULT_RETRY_CEILING: u32 = 4096;

/// Watchdog configuration: ceiling + escalation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Consecutive failed retries of one operation that count as a
    /// storm. Clamped to at least 1 at evaluation time.
    pub retry_ceiling: u32,
    /// Escalation policy once the ceiling is crossed.
    pub policy: LivenessPolicy,
}

impl LivenessConfig {
    /// Explicit configuration.
    pub const fn new(retry_ceiling: u32, policy: LivenessPolicy) -> Self {
        LivenessConfig { retry_ceiling, policy }
    }

    /// The default (`Report` at [`DEFAULT_RETRY_CEILING`]) as a `const`
    /// so [`Config`](crate::Config)'s const constructors can embed it.
    pub const fn default_const() -> Self {
        LivenessConfig { retry_ceiling: DEFAULT_RETRY_CEILING, policy: LivenessPolicy::Report }
    }
}

impl Default for LivenessConfig {
    fn default() -> Self {
        Self::default_const()
    }
}

/// The instrumented CAS retry sites, in the order their storm counters
/// appear in [`HealthSnapshot::storms`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum WatchSite {
    /// `malloc_from_active`: credit-reservation CAS on the Active word.
    ActiveReserve = 0,
    /// `malloc_from_active`: block-pop CAS on the anchor.
    ActivePop = 1,
    /// `malloc_from_partial`: credit-reservation CAS on a partial anchor.
    PartialReserve = 2,
    /// `malloc_from_partial` / `heap_get_partial`: partial block pop and
    /// heap-slot exchange.
    PartialPop = 3,
    /// `update_active`: returning unused credits to the anchor.
    UpdateActive = 4,
    /// `free`: pushing a block onto its superblock's free list.
    FreeLink = 5,
}

/// Number of [`WatchSite`]s (length of [`HealthSnapshot::storms`]).
pub const NUM_WATCH_SITES: usize = 6;

impl WatchSite {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WatchSite::ActiveReserve => "active.reserve",
            WatchSite::ActivePop => "active.pop",
            WatchSite::PartialReserve => "partial.reserve",
            WatchSite::PartialPop => "partial.pop",
            WatchSite::UpdateActive => "active.update",
            WatchSite::FreeLink => "free.link",
        }
    }
}

const SITE_LABELS: [&str; NUM_WATCH_SITES] = [
    "active.reserve",
    "active.pop",
    "partial.reserve",
    "partial.pop",
    "active.update",
    "free.link",
];

/// Process-wide storm counter (all instances), for fleet-style health
/// probes that don't hold an instance handle.
static PROCESS_STORMS: AtomicU64 = AtomicU64::new(0);
/// Process-wide throttle-activation counter.
static PROCESS_THROTTLES: AtomicU64 = AtomicU64::new(0);

/// Process-wide liveness counters: `(storms, throttle_activations)`
/// summed over every allocator instance in this process.
pub fn process_liveness_counters() -> (u64, u64) {
    (PROCESS_STORMS.load(Ordering::Relaxed), PROCESS_THROTTLES.load(Ordering::Relaxed))
}

/// Sentinel for "no full audit has run yet".
const AUDIT_NEVER: u64 = u64::MAX;

/// Always-compiled health counters, one set per allocator instance.
/// Unlike the `stats`-gated telemetry, these exist in every build: the
/// watchdog is part of the robustness story, not the profiling story.
#[derive(Debug)]
pub(crate) struct HealthState {
    /// Storms detected per [`WatchSite`].
    storms: [AtomicU64; NUM_WATCH_SITES],
    /// Throttle activations (escalated-backoff injections).
    throttles: AtomicU64,
    /// Completed [`maintain`](crate::LfMalloc::maintain) passes
    /// (including reaper-driven ones).
    maintain_passes: AtomicU64,
    /// Maintenance passes driven by the background reaper specifically.
    reaper_passes: AtomicU64,
    /// Retired hazard nodes reclaimed by maintenance (dead-thread reap +
    /// own-thread flush).
    reaped_retired: AtomicU64,
    /// Quarantined blocks released by maintenance.
    quarantine_flushed: AtomicU64,
    /// EMPTY descriptors pruned off heap slots / partial lists by
    /// maintenance.
    empty_pruned: AtomicU64,
    /// Descriptors checked by bounded audit slices.
    audit_slice_checked: AtomicU64,
    /// Invariant violations flagged by audit slices (advisory — see
    /// [`crate::maintain`] on why slices can be racy).
    audit_slice_flagged: AtomicU64,
    /// Violation count of the last *full* `audit()` ([`AUDIT_NEVER`] =
    /// never ran).
    last_audit_violations: AtomicU64,
    /// Highest retired-queue depth observed at watch/maintain sampling
    /// points (always-on companion to the `stats`-gated true high-water).
    retired_hwm: AtomicU64,
    /// Child-side fork recoveries performed (see [`crate::fork`]).
    fork_recoveries: AtomicU64,
    /// Audit-slice cursor into the descriptor universe.
    audit_cursor: AtomicUsize,
    /// Last trim target handed to maintenance ([`usize::MAX`] = none).
    watermark: AtomicUsize,
}

impl HealthState {
    pub(crate) fn new() -> Self {
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HealthState {
            storms: [ZERO; NUM_WATCH_SITES],
            throttles: AtomicU64::new(0),
            maintain_passes: AtomicU64::new(0),
            reaper_passes: AtomicU64::new(0),
            reaped_retired: AtomicU64::new(0),
            quarantine_flushed: AtomicU64::new(0),
            empty_pruned: AtomicU64::new(0),
            audit_slice_checked: AtomicU64::new(0),
            audit_slice_flagged: AtomicU64::new(0),
            last_audit_violations: AtomicU64::new(AUDIT_NEVER),
            retired_hwm: AtomicU64::new(0),
            fork_recoveries: AtomicU64::new(0),
            audit_cursor: AtomicUsize::new(0),
            watermark: AtomicUsize::new(usize::MAX),
        }
    }

    /// Raw `(storms_total, throttles, maintain_passes, fork_recoveries)`
    /// for the crash reporter: allocation-free, four relaxed loads per
    /// storm site plus three counters — safe from a signal handler.
    #[cfg(feature = "forensics")]
    pub(crate) fn crash_counters(&self) -> (u64, u64, u64, u64) {
        let mut storms = 0u64;
        for s in &self.storms {
            storms += s.load(Ordering::Relaxed);
        }
        (
            storms,
            self.throttles.load(Ordering::Relaxed),
            self.maintain_passes.load(Ordering::Relaxed),
            self.fork_recoveries.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn note_maintain(
        &self,
        from_reaper: bool,
        reaped: u64,
        flushed: u64,
        pruned: u64,
        slice_checked: u64,
        slice_flagged: u64,
    ) {
        self.maintain_passes.fetch_add(1, Ordering::Relaxed);
        if from_reaper {
            self.reaper_passes.fetch_add(1, Ordering::Relaxed);
        }
        self.reaped_retired.fetch_add(reaped, Ordering::Relaxed);
        self.quarantine_flushed.fetch_add(flushed, Ordering::Relaxed);
        self.empty_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.audit_slice_checked.fetch_add(slice_checked, Ordering::Relaxed);
        self.audit_slice_flagged.fetch_add(slice_flagged, Ordering::Relaxed);
    }

    /// Records the outcome of a full `audit()`.
    pub(crate) fn note_full_audit(&self, violations: u64) {
        self.last_audit_violations.store(violations, Ordering::Relaxed);
    }

    /// Records a maintenance trim target (the OS-byte watermark).
    pub(crate) fn note_watermark(&self, target: usize) {
        self.watermark.store(target, Ordering::Relaxed);
    }

    /// Counts one completed child-side fork recovery.
    pub(crate) fn note_fork_recovery(&self) {
        self.fork_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Lock-free max on the observed retired depth.
    pub(crate) fn observe_retired(&self, depth: u64) {
        let mut cur = self.retired_hwm.load(Ordering::Relaxed);
        while depth > cur {
            match self.retired_hwm.compare_exchange_weak(
                cur,
                depth,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Advances the audit-slice cursor by `n` modulo `universe`,
    /// returning the previous position.
    pub(crate) fn advance_audit_cursor(&self, n: usize, universe: usize) -> usize {
        let prev = self.audit_cursor.load(Ordering::Relaxed);
        let next = if universe == 0 { 0 } else { (prev + n) % universe };
        self.audit_cursor.store(next, Ordering::Relaxed);
        prev
    }
}

/// Watchdog check, called from the instrumented retry loops with the
/// operation's running retry tally. Costs one branch per *failed* CAS;
/// never touched on the success path.
#[inline]
pub(crate) fn watch<S: PageSource>(inner: &Inner<S>, heap: &ProcHeap, site: WatchSite, tries: u64) {
    let lv = inner.config.liveness;
    if matches!(lv.policy, LivenessPolicy::Ignore) {
        return;
    }
    let ceiling = lv.retry_ceiling.max(1) as u64;
    if tries < ceiling {
        return;
    }
    storm(inner, heap, site, tries, ceiling, lv.policy);
}

/// Out-of-line escalation: by the time we are here the operation has
/// already failed `ceiling` consecutive CASes, so this path's cost is
/// irrelevant.
#[cold]
#[inline(never)]
fn storm<S: PageSource>(
    inner: &Inner<S>,
    heap: &ProcHeap,
    site: WatchSite,
    tries: u64,
    ceiling: u64,
    policy: LivenessPolicy,
) {
    // Exactly one storm per operation: counted at the first crossing.
    if tries == ceiling {
        inner.health.storms[site as usize].fetch_add(1, Ordering::Relaxed);
        PROCESS_STORMS.fetch_add(1, Ordering::Relaxed);
        crate::stat_event!(inner, LivenessStorm, heap.class() as u16, site as u64);
        #[cfg(not(feature = "stats"))]
        let _ = heap;
    }
    match policy {
        LivenessPolicy::Throttle => {
            // Re-escalate at every further multiple of the ceiling: a
            // saturated spin to the backoff cap plus scheduler yields.
            if tries % ceiling == 0 {
                inner.health.throttles.fetch_add(1, Ordering::Relaxed);
                PROCESS_THROTTLES.fetch_add(1, Ordering::Relaxed);
                let mut backoff = lockfree_structs::Backoff::new();
                for _ in 0..8 {
                    backoff.spin();
                    std::thread::yield_now();
                }
            }
        }
        LivenessPolicy::Abort => {
            #[cfg(feature = "forensics")]
            crate::forensics::failstop_report(inner, "liveness-abort", 0);
            panic!(
                "lfmalloc liveness watchdog: CAS retry storm at {} \
                 ({} consecutive failed retries, ceiling {}) under LivenessPolicy::Abort",
                site.label(),
                tries,
                ceiling
            );
        }
        LivenessPolicy::Report | LivenessPolicy::Ignore => {}
    }
}

/// Aggregated health verdict of one allocator instance — liveness,
/// maintenance progress, reclamation depth, audit outcome, and OS
/// footprint in one racy-but-coherent-enough snapshot.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Active watchdog policy.
    pub policy: LivenessPolicy,
    /// Active retry ceiling.
    pub retry_ceiling: u32,
    /// Storms detected per site, indexed by [`WatchSite`].
    pub storms: [u64; NUM_WATCH_SITES],
    /// Throttle activations (escalated-backoff injections).
    pub throttle_activations: u64,
    /// Completed maintenance passes (explicit + reaper).
    pub maintain_passes: u64,
    /// Maintenance passes driven by the background reaper.
    pub reaper_passes: u64,
    /// Retired hazard nodes reclaimed by maintenance.
    pub reaped_retired: u64,
    /// Quarantined blocks released by maintenance.
    pub quarantine_flushed: u64,
    /// EMPTY descriptors pruned by maintenance.
    pub empty_pruned: u64,
    /// Descriptors checked by bounded audit slices.
    pub audit_slice_checked: u64,
    /// Advisory flags raised by audit slices (racy; see module docs).
    pub audit_slice_flagged: u64,
    /// Violations reported by the last full `audit()`; `None` if no full
    /// audit has run.
    pub last_audit_violations: Option<u64>,
    /// Hazard records ever created in the instance's domain.
    pub hazard_records: usize,
    /// Currently retired-but-unreclaimed hazard nodes.
    pub hazard_retired: usize,
    /// Highest retired depth observed (true high-water under `stats`,
    /// sampled high-water otherwise).
    pub hazard_retired_high_water: u64,
    /// Hazard nodes intentionally leaked under memory pressure.
    pub hazard_leaked: usize,
    /// Blocks currently sitting in the hardened-mode quarantine.
    pub quarantine_depth: usize,
    /// Bytes currently mapped from the OS.
    pub os_live_bytes: usize,
    /// Last maintenance trim target, if any trim has been requested.
    pub os_watermark: Option<usize>,
    /// Process-fork generation this instance has recovered to (equals
    /// [`malloc_api::procfork::generation`] unless a fork happened and
    /// no allocator call has run in the child yet).
    pub fork_generation: u64,
    /// Child-side fork recoveries this instance has performed.
    pub fork_recoveries: u64,
}

impl HealthSnapshot {
    /// Total storms across all sites.
    pub fn storms_total(&self) -> u64 {
        self.storms.iter().sum()
    }

    /// The single health verdict: `true` when something needs attention —
    /// a retry storm was detected, hazard nodes had to be leaked, or the
    /// last full audit found violations. Quarantine depth and OS bytes
    /// above the watermark are reported but do *not* degrade: both are
    /// expected states for a live heap (quarantine is a design feature;
    /// trim only releases fully-free hyperblocks).
    pub fn is_degraded(&self) -> bool {
        self.storms_total() > 0
            || self.hazard_leaked > 0
            || matches!(self.last_audit_violations, Some(v) if v > 0)
    }

    /// Single-line JSON fragment (object), embedded by
    /// `StatsSnapshot::to_json` and usable standalone.
    pub fn to_json(&self) -> String {
        let mut storms = String::new();
        for (i, n) in self.storms.iter().enumerate() {
            if i > 0 {
                storms.push(',');
            }
            storms.push_str(&format!("\"{}\":{}", SITE_LABELS[i], n));
        }
        format!(
            "{{\"degraded\":{},\"policy\":\"{}\",\"retry_ceiling\":{},\
             \"storms\":{{{}}},\"throttle_activations\":{},\
             \"maintain_passes\":{},\"reaper_passes\":{},\"reaped_retired\":{},\
             \"quarantine_flushed\":{},\"empty_pruned\":{},\
             \"audit_slice_checked\":{},\"audit_slice_flagged\":{},\
             \"last_audit_violations\":{},\"hazard_records\":{},\
             \"hazard_retired\":{},\"hazard_retired_high_water\":{},\
             \"hazard_leaked\":{},\"quarantine_depth\":{},\
             \"os_live_bytes\":{},\"os_watermark\":{},\
             \"fork_generation\":{},\"fork_recoveries\":{}}}",
            self.is_degraded(),
            self.policy.label(),
            self.retry_ceiling,
            storms,
            self.throttle_activations,
            self.maintain_passes,
            self.reaper_passes,
            self.reaped_retired,
            self.quarantine_flushed,
            self.empty_pruned,
            self.audit_slice_checked,
            self.audit_slice_flagged,
            match self.last_audit_violations {
                Some(v) => v.to_string(),
                None => "null".into(),
            },
            self.hazard_records,
            self.hazard_retired,
            self.hazard_retired_high_water,
            self.hazard_leaked,
            self.quarantine_depth,
            self.os_live_bytes,
            match self.os_watermark {
                Some(w) => w.to_string(),
                None => "null".into(),
            },
            self.fork_generation,
            self.fork_recoveries,
        )
    }
}

impl<S: PageSource> LfMalloc<S> {
    /// Aggregated liveness + maintenance health of this instance. Safe to
    /// call concurrently with allocation; the snapshot is racy in the
    /// usual monotonic-counter sense.
    pub fn health(&self) -> HealthSnapshot {
        let inner = self.inner();
        let h = &inner.health;
        let retired = inner.domain.retired_count();
        h.observe_retired(retired as u64);
        let hwm = h.retired_hwm.load(Ordering::Relaxed);
        #[cfg(feature = "stats")]
        let hwm = hwm.max(inner.domain.stats().retired_high_water);
        let watermark = h.watermark.load(Ordering::Relaxed);
        let last_audit = h.last_audit_violations.load(Ordering::Relaxed);
        HealthSnapshot {
            policy: inner.config.liveness.policy,
            retry_ceiling: inner.config.liveness.retry_ceiling,
            storms: core::array::from_fn(|i| h.storms[i].load(Ordering::Relaxed)),
            throttle_activations: h.throttles.load(Ordering::Relaxed),
            maintain_passes: h.maintain_passes.load(Ordering::Relaxed),
            reaper_passes: h.reaper_passes.load(Ordering::Relaxed),
            reaped_retired: h.reaped_retired.load(Ordering::Relaxed),
            quarantine_flushed: h.quarantine_flushed.load(Ordering::Relaxed),
            empty_pruned: h.empty_pruned.load(Ordering::Relaxed),
            audit_slice_checked: h.audit_slice_checked.load(Ordering::Relaxed),
            audit_slice_flagged: h.audit_slice_flagged.load(Ordering::Relaxed),
            last_audit_violations: if last_audit == AUDIT_NEVER { None } else { Some(last_audit) },
            hazard_records: inner.domain.record_count(),
            hazard_retired: retired,
            hazard_retired_high_water: hwm,
            hazard_leaked: inner.domain.leaked_count(),
            quarantine_depth: inner.quarantine_depth(),
            os_live_bytes: inner.source.stats().live_bytes,
            os_watermark: if watermark == usize::MAX { None } else { Some(watermark) },
            fork_generation: inner.fork.recovered_generation(),
            fork_recoveries: h.fork_recoveries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malloc_api::RawMalloc;

    #[test]
    fn policy_labels_and_default() {
        assert_eq!(LivenessPolicy::default(), LivenessPolicy::Report);
        assert_eq!(LivenessPolicy::Abort.label(), "abort");
        let lc = LivenessConfig::default();
        assert_eq!(lc.retry_ceiling, DEFAULT_RETRY_CEILING);
        assert_eq!(lc.policy, LivenessPolicy::Report);
    }

    #[test]
    fn site_labels_match_table() {
        for (site, want) in [
            (WatchSite::ActiveReserve, "active.reserve"),
            (WatchSite::ActivePop, "active.pop"),
            (WatchSite::PartialReserve, "partial.reserve"),
            (WatchSite::PartialPop, "partial.pop"),
            (WatchSite::UpdateActive, "active.update"),
            (WatchSite::FreeLink, "free.link"),
        ] {
            assert_eq!(site.label(), want);
            assert_eq!(SITE_LABELS[site as usize], want);
        }
    }

    #[test]
    fn fresh_instance_is_healthy() {
        let a = crate::LfMalloc::new_default();
        let p = unsafe { a.malloc(64) };
        assert!(!p.is_null());
        unsafe { a.free(p) };
        let h = a.health();
        assert!(!h.is_degraded());
        assert_eq!(h.storms_total(), 0);
        assert_eq!(h.last_audit_violations, None);
        assert!(h.os_live_bytes > 0);
        assert!(h.os_watermark.is_none());
        assert_eq!(h.fork_recoveries, 0, "no fork happened");
        assert_eq!(
            h.fork_generation,
            malloc_api::procfork::generation(),
            "fresh instance is recovered to the current generation"
        );
        let json = h.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"degraded\":false"));
        assert!(json.contains("\"fork_recoveries\":0"));
    }

    #[test]
    fn full_audit_outcome_lands_in_snapshot() {
        let a = crate::LfMalloc::new_default();
        let p = unsafe { a.malloc(32) };
        assert!(!p.is_null());
        let rep = a.audit();
        assert!(rep.is_clean());
        let h = a.health();
        assert_eq!(h.last_audit_violations, Some(0));
        assert!(!h.is_degraded());
        unsafe { a.free(p) };
    }
}
