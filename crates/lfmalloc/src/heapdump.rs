//! Post-mortem heap dumps (the `forensics` cargo feature): a versioned
//! JSON snapshot of the allocator's state plus the offline analysis
//! that `lfstat analyze` / `lfstat diff-heap` run over it.
//!
//! # Dump format
//!
//! A dump is a single JSON object with `"format": "lfmalloc-heapdump"`
//! and an integer `"version"` (currently [`DUMP_VERSION`]). Consumers
//! must reject unknown formats and major versions; producers may only
//! *add* fields within a version — removals or semantic changes bump
//! the version. Version 1 carries:
//!
//! * `os` — the byte reconciliation (superblock / slab / large bytes vs
//!   the page source's live total);
//! * `health`, `misuse` — the always-on counter families;
//! * `descriptors` — a census of the descriptor universe by superblock
//!   state (`Active`/`Full`/`Partial`/`Empty`, plus `unbound` for
//!   descriptors not currently backing a superblock);
//! * `classes` — per-size-class occupancy (superblocks, blocks used vs
//!   capacity) aggregated over bound descriptors;
//! * `large` — live count/bytes and every registered span;
//! * `quarantine_depth`, `flight` (recorder tail + dropped count);
//! * `profile.sites` — live profile samples by call site (only when the
//!   crate is also built with `profile` and the dump is quiescent).
//!
//! # Write paths
//!
//! [`LfMalloc::dump_heap`] is the quiescent path (opens a file, may
//! allocate, includes the profile section). [`LfMalloc::dump_heap_fd`]
//! is the best-effort crash-context path: it renders through the same
//! fixed-buffer [`SigBuf`]/[`FdWriter`] primitives as the crash
//! reporter — no allocation, no locks — and therefore omits the
//! profile section. Both emit the same format/version.
//!
//! Occupancy numbers are racy snapshots when the heap is not quiescent:
//! each descriptor's anchor is read once, and `Active` superblocks hold
//! reserved credits that count as used. The analyzer treats them as
//! diagnostics, not ground truth.

use core::sync::atomic::Ordering;
use std::io::{self, Write};
use std::path::Path;

use osmem::source::PageSource;

use crate::anchor::SbState;
use crate::config::{PREFIX_SIZE, SB_SIZE};
use crate::forensics::{
    class_of_size, merge_tail, unpack_meta, FdWriter, OpKind, SigBuf, CLASS_LARGE, CLASS_UNKNOWN,
};
use crate::harden::{Hardening, MisuseKind};
use crate::instance::{Inner, LfMalloc};
use crate::size_classes::NUM_CLASSES;

/// Current dump format version. See the module docs for the
/// compatibility contract.
pub const DUMP_VERSION: u64 = 1;

/// Flight-recorder entries included in a dump.
const DUMP_TAIL: usize = 64;

fn wline(w: &mut impl Write, b: &SigBuf) -> io::Result<()> {
    w.write_all(b.as_bytes())?;
    w.write_all(b"\n")
}

/// Appends `s` JSON-escaped (quotes not included).
#[cfg_attr(not(feature = "profile"), allow(dead_code))]
fn push_json_str(b: &mut SigBuf, s: &str) {
    for c in s.chars() {
        match c {
            '"' => b.push_str("\\\""),
            '\\' => b.push_str("\\\\"),
            '\n' => b.push_str("\\n"),
            '\r' => b.push_str("\\r"),
            '\t' => b.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                b.push_str("\\u00");
                b.push_hex(((c as u32) >> 4) as u64);
                b.push_hex(((c as u32) & 0xF) as u64);
            }
            c => {
                let mut tmp = [0u8; 4];
                b.push_str(c.encode_utf8(&mut tmp));
            }
        }
    }
}

/// Aggregates built from one pass over the descriptor universe.
struct DescWalk {
    total: u64,
    by_state: [u64; 4],
    unbound: u64,
    // Per class: [superblocks, blocks_used, blocks_capacity].
    classes: [[u64; 3]; NUM_CLASSES],
}

fn walk_descriptors<S: PageSource>(inner: &Inner<S>) -> DescWalk {
    let mut w = DescWalk {
        total: 0,
        by_state: [0; 4],
        unbound: 0,
        classes: [[0; 3]; NUM_CLASSES],
    };
    inner.desc_pool.for_each_descriptor(|dp| {
        let desc = unsafe { &*dp };
        w.total += 1;
        let sz = desc.sz() as usize;
        let maxcount = desc.maxcount() as usize;
        let sb = desc.sb() as usize;
        let bound = sz >= 2 * PREFIX_SIZE
            && maxcount >= 1
            && sz * maxcount <= SB_SIZE
            && sb != 0
            && sb % SB_SIZE == 0
            && inner.sb_pool.owns(sb);
        if !bound {
            w.unbound += 1;
            return;
        }
        let anchor = desc.load_anchor();
        let state = anchor.state();
        w.by_state[state as usize] += 1;
        if let Some(ci) = class_of_size(desc.sz()) {
            let used = maxcount as u64 - (anchor.count() as u64).min(maxcount as u64);
            let c = &mut w.classes[ci as usize];
            c[0] += 1;
            c[1] += used;
            c[2] += maxcount as u64;
        }
    });
    w
}

/// Renders a version-[`DUMP_VERSION`] dump of `inner` into `w`. With
/// `include_profile == false` the rendering allocates nothing (crash
/// path); errors from the sink are reported but rendering state never
/// panics.
pub(crate) fn render_dump<S: PageSource>(
    inner: &Inner<S>,
    w: &mut impl Write,
    include_profile: bool,
) -> io::Result<()> {
    let mut b = SigBuf::new();

    b.push_str("{\"format\":\"lfmalloc-heapdump\",\"version\":");
    b.push_dec(DUMP_VERSION);
    b.push_str(",");
    wline(w, &b)?;

    b.clear();
    b.push_str("\"nheaps\":");
    b.push_dec(inner.nheaps as u64);
    b.push_str(",\"hardening\":\"");
    b.push_str(match inner.config.hardening {
        Hardening::Off => "off",
        Hardening::Detect => "detect",
        Hardening::Abort => "abort",
    });
    b.push_str("\",");
    wline(w, &b)?;

    let rec = inner.reconcile_bytes();
    b.clear();
    b.push_str("\"os\":{\"superblock_bytes\":");
    b.push_dec(rec.superblock_bytes as u64);
    b.push_str(",\"descriptor_slab_bytes\":");
    b.push_dec(rec.descriptor_slab_bytes as u64);
    b.push_str(",\"large_bytes\":");
    b.push_dec(rec.large_bytes as u64);
    b.push_str(",\"source_live_bytes\":");
    b.push_dec(rec.source_live_bytes as u64);
    b.push_str(",\"reconciles\":");
    b.push_str(if rec.reconciles() { "true" } else { "false" });
    b.push_str("},");
    wline(w, &b)?;

    let (storms, throttles, passes, recoveries) = inner.health.crash_counters();
    b.clear();
    b.push_str("\"health\":{\"storms\":");
    b.push_dec(storms);
    b.push_str(",\"throttles\":");
    b.push_dec(throttles);
    b.push_str(",\"maintain_passes\":");
    b.push_dec(passes);
    b.push_str(",\"fork_recoveries\":");
    b.push_dec(recoveries);
    b.push_str("},");
    wline(w, &b)?;

    b.clear();
    b.push_str("\"misuse\":{\"invalid_free\":");
    b.push_dec(inner.misuse.count(MisuseKind::InvalidFree));
    b.push_str(",\"double_free\":");
    b.push_dec(inner.misuse.count(MisuseKind::DoubleFree));
    b.push_str(",\"poison_violation\":");
    b.push_dec(inner.misuse.count(MisuseKind::PoisonViolation));
    b.push_str(",\"guard_overrun\":");
    b.push_dec(inner.misuse.count(MisuseKind::GuardOverrun));
    b.push_str(",\"reentrant_alloc\":");
    b.push_dec(inner.misuse.count(MisuseKind::ReentrantAlloc));
    b.push_str("},");
    wline(w, &b)?;

    let walk = walk_descriptors(inner);
    b.clear();
    b.push_str("\"descriptors\":{\"total\":");
    b.push_dec(walk.total);
    b.push_str(",\"active\":");
    b.push_dec(walk.by_state[SbState::Active as usize]);
    b.push_str(",\"full\":");
    b.push_dec(walk.by_state[SbState::Full as usize]);
    b.push_str(",\"partial\":");
    b.push_dec(walk.by_state[SbState::Partial as usize]);
    b.push_str(",\"empty\":");
    b.push_dec(walk.by_state[SbState::Empty as usize]);
    b.push_str(",\"unbound\":");
    b.push_dec(walk.unbound);
    b.push_str("},");
    wline(w, &b)?;

    w.write_all(b"\"classes\":[\n")?;
    let mut first = true;
    for (ci, c) in walk.classes.iter().enumerate() {
        if c[0] == 0 {
            continue;
        }
        b.clear();
        if !first {
            b.push_str(",");
        }
        first = false;
        b.push_str("{\"class\":");
        b.push_dec(ci as u64);
        b.push_str(",\"size\":");
        b.push_dec(inner.classes[ci].sz as u64);
        b.push_str(",\"superblocks\":");
        b.push_dec(c[0]);
        b.push_str(",\"blocks_used\":");
        b.push_dec(c[1]);
        b.push_str(",\"blocks_capacity\":");
        b.push_dec(c[2]);
        b.push_str("}");
        wline(w, &b)?;
    }
    w.write_all(b"],\n")?;

    b.clear();
    b.push_str("\"large\":{\"live\":");
    b.push_dec(inner.large_live.load(Ordering::Relaxed) as u64);
    b.push_str(",\"bytes\":");
    b.push_dec(inner.large_bytes.load(Ordering::Relaxed) as u64);
    b.push_str(",\"spans\":[");
    wline(w, &b)?;
    let mut first = true;
    let mut err = None;
    inner.large_spans.for_each(|base, bytes| {
        if err.is_some() {
            return;
        }
        let mut lb = SigBuf::new();
        if !first {
            lb.push_str(",");
        }
        first = false;
        lb.push_str("{\"base\":");
        lb.push_dec(base as u64);
        lb.push_str(",\"bytes\":");
        lb.push_dec(bytes as u64);
        lb.push_str("}");
        if let Err(e) = wline(w, &lb) {
            err = Some(e);
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    w.write_all(b"]},\n")?;

    b.clear();
    b.push_str("\"quarantine_depth\":");
    b.push_dec(inner.quarantine_depth() as u64);
    b.push_str(",");
    wline(w, &b)?;

    // Flight recorder: keep the DUMP_TAIL newest entries, fixed-array
    // selection as in the crash reporter.
    let mut tail: [(u64, u64, u64); DUMP_TAIL] = [(0, 0, 0); DUMP_TAIL];
    let mut n = 0usize;
    merge_tail(inner, |seq, meta, ptr| {
        if n < tail.len() {
            tail[n] = (seq, meta, ptr);
            n += 1;
        } else {
            let mut min_i = 0;
            for i in 1..tail.len() {
                if tail[i].0 < tail[min_i].0 {
                    min_i = i;
                }
            }
            if seq > tail[min_i].0 {
                tail[min_i] = (seq, meta, ptr);
            }
        }
    });
    tail[..n].sort_unstable_by(|a, b| b.0.cmp(&a.0));
    b.clear();
    b.push_str("\"flight\":{\"dropped\":");
    b.push_dec(inner.forensics.dropped.get());
    b.push_str(",\"tail\":[");
    wline(w, &b)?;
    for (i, &(seq, meta, ptr)) in tail[..n].iter().enumerate() {
        let (op_bits, class, tid) = unpack_meta(meta);
        b.clear();
        if i != 0 {
            b.push_str(",");
        }
        b.push_str("{\"seq\":");
        b.push_dec(seq);
        b.push_str(",\"op\":\"");
        b.push_str(match OpKind::from_bits(op_bits) {
            Some(k) => k.label(),
            None => "unknown",
        });
        b.push_str("\",\"class\":");
        b.push_dec(class as u64);
        b.push_str(",\"tid\":");
        b.push_dec(tid as u64);
        b.push_str(",\"ptr\":");
        b.push_dec(ptr);
        b.push_str("}");
        wline(w, &b)?;
    }
    w.write_all(b"]}")?;

    #[cfg(feature = "profile")]
    if include_profile {
        w.write_all(b",\n\"profile\":{\"sites\":[\n")?;
        let sites = {
            let inst = unsafe {
                LfMalloc::<S>::borrow_raw(core::ptr::NonNull::new_unchecked(
                    inner as *const Inner<S> as *mut Inner<S>,
                ))
            };
            inst.retention_report()
        };
        for (i, site) in sites.iter().enumerate() {
            b.clear();
            if i != 0 {
                b.push_str(",");
            }
            b.push_str("{\"file\":\"");
            push_json_str(&mut b, site.site.file);
            b.push_str("\",\"line\":");
            b.push_dec(site.site.line as u64);
            b.push_str(",\"live_bytes\":");
            b.push_dec(site.live_bytes);
            b.push_str(",\"live_samples\":");
            b.push_dec(site.live_samples);
            b.push_str("}");
            wline(w, &b)?;
        }
        w.write_all(b"]}")?;
    }
    #[cfg(not(feature = "profile"))]
    let _ = include_profile;

    w.write_all(b"}\n")
}

impl<S: PageSource> LfMalloc<S> {
    /// Writes a version-[`DUMP_VERSION`] heap dump to `path`
    /// (quiescent path: opens a file, includes the live profile
    /// samples when the crate is built with `profile`).
    pub fn dump_heap(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        render_dump(self.inner(), &mut f, true)?;
        crate::stat_event!(self.inner(), HeapDump, 0u16, DUMP_VERSION);
        f.flush()
    }

    /// Writes a heap dump to an already-open raw fd using only
    /// `write(2)` and fixed buffers — the best-effort crash-context
    /// path. Omits the profile section (building it allocates).
    pub fn dump_heap_fd(&self, fd: i32) {
        let mut w = FdWriter::new(fd);
        let _ = render_dump(self.inner(), &mut w, false);
    }

    /// Renders a heap dump into any sink (tests, in-memory capture).
    pub fn dump_heap_to(&self, w: &mut impl Write) -> io::Result<()> {
        render_dump(self.inner(), w, true)
    }
}

// ---------------------------------------------------------------------
// Offline side: minimal JSON parser + analyzers
// ---------------------------------------------------------------------

/// Minimal JSON value for the offline analyzers (no external deps).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn u64_at(&self, key: &str) -> u64 {
        self.get(key).and_then(Json::as_u64).unwrap_or(0)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn lit(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        core::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Copy the full UTF-8 sequence.
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xF0 => 4,
                        c if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|b| core::str::from_utf8(b).ok())
                        .ok_or("bad utf-8 in string")?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

fn parse_dump(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    match v.get("format").and_then(Json::as_str) {
        Some("lfmalloc-heapdump") => {}
        Some(other) => return Err(format!("not a heap dump (format {other:?})")),
        None => return Err("not a heap dump (no format field)".into()),
    }
    let version = v.u64_at("version");
    if version == 0 || version > DUMP_VERSION {
        return Err(format!(
            "unsupported dump version {version} (analyzer understands <= {DUMP_VERSION})"
        ));
    }
    Ok(v)
}

/// One call site ranked as a leak candidate (live profile samples at
/// dump time, largest retained bytes first).
#[derive(Debug, Clone)]
pub struct LeakCandidate {
    /// Source file of the allocation call site.
    pub file: String,
    /// Source line of the call site.
    pub line: u64,
    /// Estimated retained bytes.
    pub live_bytes: u64,
    /// Live samples attributed to the site.
    pub live_samples: u64,
}

/// Per-size-class occupancy from the dump.
#[derive(Debug, Clone, Copy)]
pub struct ClassCensus {
    /// Size-class index.
    pub class: u64,
    /// Block size in bytes.
    pub size: u64,
    /// Superblocks bound to this class.
    pub superblocks: u64,
    /// Blocks in use (or reserved as credits) across those superblocks.
    pub blocks_used: u64,
    /// Total block capacity across those superblocks.
    pub blocks_capacity: u64,
}

impl ClassCensus {
    /// Occupied fraction of the class's block capacity.
    pub fn utilization(&self) -> f64 {
        if self.blocks_capacity == 0 {
            0.0
        } else {
            self.blocks_used as f64 / self.blocks_capacity as f64
        }
    }
}

/// Descriptor-universe census by superblock state.
#[derive(Debug, Clone, Copy, Default)]
pub struct DescriptorCensus {
    /// All descriptors ever carved.
    pub total: u64,
    /// Bound to an Active superblock.
    pub active: u64,
    /// Bound to a Full superblock.
    pub full: u64,
    /// Bound to a Partial superblock.
    pub partial: u64,
    /// Bound to an Empty superblock.
    pub empty: u64,
    /// Not currently backing a superblock.
    pub unbound: u64,
}

/// The offline analysis of one heap dump (`lfstat analyze`).
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// Dump format version.
    pub version: u64,
    /// Hardening mode the instance ran with.
    pub hardening: String,
    /// Leak candidates, largest retained bytes first (empty when the
    /// dump has no profile section).
    pub leak_candidates: Vec<LeakCandidate>,
    /// Non-empty size classes.
    pub classes: Vec<ClassCensus>,
    /// Descriptor census.
    pub descriptors: DescriptorCensus,
    /// Live large spans registered at dump time.
    pub large_spans: u64,
    /// Bytes backing live large blocks.
    pub large_bytes: u64,
    /// Freed blocks parked in quarantine.
    pub quarantine_depth: u64,
    /// Page-source live bytes.
    pub os_live_bytes: u64,
    /// Whether the component byte counts reconciled.
    pub reconciles: bool,
    /// Sum of `blocks_used * size` over all classes.
    pub small_used_bytes: u64,
    /// Sum of `blocks_capacity * size` over all classes.
    pub small_capacity_bytes: u64,
    /// Flight-recorder entries present in the dump.
    pub flight_len: u64,
    /// Flight-recorder drops.
    pub flight_dropped: u64,
    /// Total misuse reports.
    pub misuse_total: u64,
}

impl AnalyzeReport {
    /// Occupied fraction of the small-block capacity — the headline
    /// fragmentation number (1.0 = fully packed).
    pub fn small_utilization(&self) -> f64 {
        if self.small_capacity_bytes == 0 {
            0.0
        } else {
            self.small_used_bytes as f64 / self.small_capacity_bytes as f64
        }
    }
}

/// Analyzes heap-dump `text` (the engine behind `lfstat analyze`).
pub fn analyze_dump(text: &str) -> Result<AnalyzeReport, String> {
    let v = parse_dump(text)?;
    let mut leaks: Vec<LeakCandidate> = v
        .get("profile")
        .and_then(|p| p.get("sites"))
        .and_then(Json::as_arr)
        .map(|sites| {
            sites
                .iter()
                .map(|s| LeakCandidate {
                    file: s.get("file").and_then(Json::as_str).unwrap_or("?").to_string(),
                    line: s.u64_at("line"),
                    live_bytes: s.u64_at("live_bytes"),
                    live_samples: s.u64_at("live_samples"),
                })
                .collect()
        })
        .unwrap_or_default();
    leaks.sort_by(|a, b| b.live_bytes.cmp(&a.live_bytes));

    let classes: Vec<ClassCensus> = v
        .get("classes")
        .and_then(Json::as_arr)
        .map(|cs| {
            cs.iter()
                .map(|c| ClassCensus {
                    class: c.u64_at("class"),
                    size: c.u64_at("size"),
                    superblocks: c.u64_at("superblocks"),
                    blocks_used: c.u64_at("blocks_used"),
                    blocks_capacity: c.u64_at("blocks_capacity"),
                })
                .collect()
        })
        .unwrap_or_default();
    let small_used_bytes = classes.iter().map(|c| c.blocks_used * c.size).sum();
    let small_capacity_bytes = classes.iter().map(|c| c.blocks_capacity * c.size).sum();

    let d = v.get("descriptors");
    let descriptors = DescriptorCensus {
        total: d.map_or(0, |d| d.u64_at("total")),
        active: d.map_or(0, |d| d.u64_at("active")),
        full: d.map_or(0, |d| d.u64_at("full")),
        partial: d.map_or(0, |d| d.u64_at("partial")),
        empty: d.map_or(0, |d| d.u64_at("empty")),
        unbound: d.map_or(0, |d| d.u64_at("unbound")),
    };

    let misuse_total = v
        .get("misuse")
        .map(|m| match m {
            Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
            _ => 0,
        })
        .unwrap_or(0);

    Ok(AnalyzeReport {
        version: v.u64_at("version"),
        hardening: v.get("hardening").and_then(Json::as_str).unwrap_or("?").to_string(),
        leak_candidates: leaks,
        classes,
        descriptors,
        large_spans: v
            .get("large")
            .and_then(|l| l.get("spans"))
            .and_then(Json::as_arr)
            .map_or(0, |s| s.len() as u64),
        large_bytes: v.get("large").map_or(0, |l| l.u64_at("bytes")),
        quarantine_depth: v.u64_at("quarantine_depth"),
        os_live_bytes: v.get("os").map_or(0, |o| o.u64_at("source_live_bytes")),
        reconciles: v
            .get("os")
            .and_then(|o| o.get("reconciles"))
            .and_then(Json::as_bool)
            .unwrap_or(false),
        small_used_bytes,
        small_capacity_bytes,
        flight_len: v
            .get("flight")
            .and_then(|f| f.get("tail"))
            .and_then(Json::as_arr)
            .map_or(0, |t| t.len() as u64),
        flight_dropped: v.get("flight").map_or(0, |f| f.u64_at("dropped")),
        misuse_total,
    })
}

impl core::fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "lfmalloc heap dump v{} (hardening: {})", self.version, self.hardening)?;
        writeln!(
            f,
            "os: {} live bytes ({}), large: {} spans / {} B, quarantine: {}",
            self.os_live_bytes,
            if self.reconciles { "reconciles" } else { "DOES NOT RECONCILE" },
            self.large_spans,
            self.large_bytes,
            self.quarantine_depth,
        )?;
        writeln!(
            f,
            "descriptors: {} total ({} active, {} full, {} partial, {} empty, {} unbound)",
            self.descriptors.total,
            self.descriptors.active,
            self.descriptors.full,
            self.descriptors.partial,
            self.descriptors.empty,
            self.descriptors.unbound,
        )?;
        writeln!(
            f,
            "small blocks: {} / {} B used ({:.1}% utilization)",
            self.small_used_bytes,
            self.small_capacity_bytes,
            self.small_utilization() * 100.0,
        )?;
        if self.misuse_total > 0 {
            writeln!(f, "misuse reports: {}", self.misuse_total)?;
        }
        writeln!(f, "fragmentation by class:")?;
        for c in &self.classes {
            writeln!(
                f,
                "  class {:>2} ({:>5} B): {:>4} superblocks, {:>7}/{:<7} blocks ({:.1}%)",
                c.class,
                c.size,
                c.superblocks,
                c.blocks_used,
                c.blocks_capacity,
                c.utilization() * 100.0,
            )?;
        }
        if self.leak_candidates.is_empty() {
            writeln!(f, "leak candidates: none (dump has no live profile samples)")?;
        } else {
            writeln!(f, "leak candidates (retained bytes, largest first):")?;
            for (i, l) in self.leak_candidates.iter().enumerate().take(16) {
                writeln!(
                    f,
                    "  {:>2}. {}:{} — {} B over {} live samples",
                    i + 1,
                    l.file,
                    l.line,
                    l.live_bytes,
                    l.live_samples,
                )?;
            }
        }
        write!(
            f,
            "flight recorder: {} entries in dump, {} dropped",
            self.flight_len, self.flight_dropped
        )
    }
}

/// Per-site retained-bytes delta between two dumps.
#[derive(Debug, Clone)]
pub struct SiteDelta {
    /// Source file of the call site.
    pub file: String,
    /// Source line.
    pub line: u64,
    /// `b.live_bytes - a.live_bytes` for the site.
    pub delta_bytes: i64,
    /// `b.live_samples - a.live_samples`.
    pub delta_samples: i64,
}

/// `lfstat diff-heap`: growth between two dumps of the same process.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Per-site deltas, largest growth first (sites present in either
    /// dump).
    pub site_deltas: Vec<SiteDelta>,
    /// Per-class `blocks_used` deltas `(class, size, delta)`, non-zero
    /// only.
    pub class_deltas: Vec<(u64, u64, i64)>,
    /// Large-bytes delta.
    pub delta_large_bytes: i64,
    /// Page-source live-bytes delta.
    pub delta_os_bytes: i64,
}

/// Diffs two heap dumps (earlier `a`, later `b`).
pub fn diff_dumps(a: &str, b: &str) -> Result<DiffReport, String> {
    let ra = analyze_dump(a)?;
    let rb = analyze_dump(b)?;
    let mut deltas: Vec<SiteDelta> = Vec::new();
    for l in &rb.leak_candidates {
        let prev = ra
            .leak_candidates
            .iter()
            .find(|p| p.file == l.file && p.line == l.line);
        deltas.push(SiteDelta {
            file: l.file.clone(),
            line: l.line,
            delta_bytes: l.live_bytes as i64 - prev.map_or(0, |p| p.live_bytes as i64),
            delta_samples: l.live_samples as i64 - prev.map_or(0, |p| p.live_samples as i64),
        });
    }
    for p in &ra.leak_candidates {
        if !rb.leak_candidates.iter().any(|l| l.file == p.file && l.line == p.line) {
            deltas.push(SiteDelta {
                file: p.file.clone(),
                line: p.line,
                delta_bytes: -(p.live_bytes as i64),
                delta_samples: -(p.live_samples as i64),
            });
        }
    }
    deltas.sort_by(|x, y| y.delta_bytes.cmp(&x.delta_bytes));

    let mut class_deltas = Vec::new();
    for cb in &rb.classes {
        let used_a = ra
            .classes
            .iter()
            .find(|c| c.class == cb.class)
            .map_or(0, |c| c.blocks_used as i64);
        let d = cb.blocks_used as i64 - used_a;
        if d != 0 {
            class_deltas.push((cb.class, cb.size, d));
        }
    }
    for ca in &ra.classes {
        if !rb.classes.iter().any(|c| c.class == ca.class) && ca.blocks_used > 0 {
            class_deltas.push((ca.class, ca.size, -(ca.blocks_used as i64)));
        }
    }

    Ok(DiffReport {
        site_deltas: deltas,
        class_deltas,
        delta_large_bytes: rb.large_bytes as i64 - ra.large_bytes as i64,
        delta_os_bytes: rb.os_live_bytes as i64 - ra.os_live_bytes as i64,
    })
}

impl core::fmt::Display for DiffReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "heap growth: os {:+} B, large {:+} B",
            self.delta_os_bytes, self.delta_large_bytes
        )?;
        if self.class_deltas.is_empty() {
            writeln!(f, "class occupancy: unchanged")?;
        } else {
            writeln!(f, "class occupancy deltas:")?;
            for &(class, size, d) in &self.class_deltas {
                writeln!(f, "  class {class:>2} ({size:>5} B): {d:+} blocks")?;
            }
        }
        if self.site_deltas.is_empty() {
            write!(f, "call sites: no profile data in either dump")
        } else {
            writeln!(f, "call-site retention deltas (growth first):")?;
            for (i, s) in self.site_deltas.iter().enumerate().take(16) {
                writeln!(
                    f,
                    "  {:>2}. {}:{} — {:+} B ({:+} samples)",
                    i + 1,
                    s.file,
                    s.line,
                    s.delta_bytes,
                    s.delta_samples,
                )?;
            }
            Ok(())
        }
    }
}

// Suppress unused warnings for constants referenced only by docs/tests.
const _: u16 = CLASS_LARGE;
const _: u16 = CLASS_UNKNOWN;

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "format": "lfmalloc-heapdump", "version": 1,
        "nheaps": 4, "hardening": "detect",
        "os": {"superblock_bytes": 1048576, "descriptor_slab_bytes": 16384,
               "large_bytes": 8192, "source_live_bytes": 1073152, "reconciles": true},
        "health": {"storms": 0, "throttles": 0, "maintain_passes": 2, "fork_recoveries": 0},
        "misuse": {"invalid_free": 0, "double_free": 1, "poison_violation": 0,
                   "guard_overrun": 0, "reentrant_alloc": 0},
        "descriptors": {"total": 10, "active": 4, "full": 1, "partial": 2,
                        "empty": 1, "unbound": 2},
        "classes": [
            {"class": 0, "size": 16, "superblocks": 2, "blocks_used": 100, "blocks_capacity": 2048},
            {"class": 5, "size": 96, "superblocks": 1, "blocks_used": 170, "blocks_capacity": 170}
        ],
        "large": {"live": 1, "bytes": 8192, "spans": [{"base": 4096, "bytes": 8192}]},
        "quarantine_depth": 3,
        "flight": {"dropped": 0, "tail": [
            {"seq": 2, "op": "free", "class": 0, "tid": 0, "ptr": 64},
            {"seq": 1, "op": "alloc", "class": 0, "tid": 0, "ptr": 64}
        ]},
        "profile": {"sites": [
            {"file": "small.rs", "line": 5, "live_bytes": 128, "live_samples": 1},
            {"file": "leaky.rs", "line": 42, "live_bytes": 999999, "live_samples": 7}
        ]}
    }"#;

    #[test]
    fn analyze_parses_and_ranks_leaks() {
        let r = analyze_dump(SAMPLE).unwrap();
        assert_eq!(r.version, 1);
        assert_eq!(r.hardening, "detect");
        assert_eq!(r.leak_candidates[0].file, "leaky.rs");
        assert_eq!(r.leak_candidates[0].live_bytes, 999_999);
        assert_eq!(r.classes.len(), 2);
        assert_eq!(r.small_used_bytes, 100 * 16 + 170 * 96);
        assert_eq!(r.descriptors.total, 10);
        assert_eq!(r.large_spans, 1);
        assert_eq!(r.quarantine_depth, 3);
        assert_eq!(r.flight_len, 2);
        assert_eq!(r.misuse_total, 1);
        assert!(r.reconciles);
        let text = r.to_string();
        assert!(text.contains("leaky.rs:42"));
        assert!(text.contains("reconciles"));
    }

    #[test]
    fn analyze_rejects_foreign_and_future_inputs() {
        assert!(analyze_dump("{}").unwrap_err().contains("no format"));
        assert!(analyze_dump(r#"{"format":"something-else","version":1}"#)
            .unwrap_err()
            .contains("not a heap dump"));
        assert!(analyze_dump(r#"{"format":"lfmalloc-heapdump","version":99}"#)
            .unwrap_err()
            .contains("unsupported dump version"));
        assert!(analyze_dump("not json at all").is_err());
    }

    #[test]
    fn diff_reports_growth_and_disappearance() {
        let earlier = SAMPLE.replace("999999", "1000").replace("\"live_samples\": 7", "\"live_samples\": 1");
        let d = diff_dumps(&earlier, SAMPLE).unwrap();
        assert_eq!(d.site_deltas[0].file, "leaky.rs");
        assert_eq!(d.site_deltas[0].delta_bytes, 999_999 - 1000);
        assert_eq!(d.delta_os_bytes, 0);
        let text = d.to_string();
        assert!(text.contains("leaky.rs:42"));
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let mut p = Parser::new(r#"{"a\n\"b":[1,2.5,-3,true,false,null,{"x":"A"}]}"#);
        let v = p.value().unwrap();
        let arr = v.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[6].get("x").and_then(Json::as_str), Some("A"));
    }
}
