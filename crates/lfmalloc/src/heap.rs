//! Processor heaps and the thread → heap mapping.
//!
//! Paper, Figure 3:
//!
//! ```text
//! typedef procheap :
//!     active Active;       // initially NULL
//!     descriptor* Partial; // initially NULL
//!     sizeclass* sc;       // pointer to parent sizeclass
//! ```
//!
//! "Each size class contains multiple processor heaps proportional to
//! the number of processors in the system" (§3.1). "Threads use their
//! thread ids to decide which processor heap to use for malloc."
//! The `Partial` field is "a most-recently-used Partial slot" (§3.2.6)
//! in front of the size class's partial list.

use crate::active::Active;
use crate::config::HeapMode;
use crate::descriptor::Descriptor;
use core::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// One processor heap. Cache-line aligned and padded so neighbouring
/// heaps never share a line (avoiding allocator-induced false sharing,
/// one of the paper's headline properties).
#[repr(C, align(64))]
#[derive(Debug)]
pub struct ProcHeap {
    /// Packed `(descriptor, credits)` of the active superblock.
    active: AtomicU64,
    /// Most-recently-used partial superblock slot.
    partial: AtomicPtr<Descriptor>,
    /// Owning size-class index (set at initialization, immutable after).
    class: AtomicUsize,
}

impl ProcHeap {
    /// A heap with no active and no partial superblock.
    pub const fn new(class: usize) -> Self {
        ProcHeap {
            active: AtomicU64::new(0),
            partial: AtomicPtr::new(core::ptr::null_mut()),
            class: AtomicUsize::new(class),
        }
    }

    /// Loads the `Active` word.
    #[inline]
    pub fn load_active(&self) -> Active {
        Active::from_raw(self.active.load(Ordering::Acquire))
    }

    /// One CAS attempt on the `Active` word.
    #[inline]
    pub fn cas_active(&self, old: Active, new: Active) -> Result<(), Active> {
        match self.active.compare_exchange(
            old.raw(),
            new.raw(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(observed) => Err(Active::from_raw(observed)),
        }
    }

    /// Loads the `Partial` slot.
    #[inline]
    pub fn load_partial(&self) -> *mut Descriptor {
        self.partial.load(Ordering::Acquire)
    }

    /// One CAS attempt on the `Partial` slot (used by `HeapGetPartial`
    /// and `RemoveEmptyDesc`).
    #[inline]
    pub fn cas_partial(&self, old: *mut Descriptor, new: *mut Descriptor) -> bool {
        self.partial
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Unconditionally swaps the `Partial` slot (the `HeapPutPartial`
    /// exchange), returning the previous occupant.
    #[inline]
    pub fn swap_partial(&self, desc: *mut Descriptor) -> *mut Descriptor {
        self.partial.swap(desc, Ordering::AcqRel)
    }

    /// The owning size-class index.
    #[inline]
    pub fn class(&self) -> usize {
        self.class.load(Ordering::Relaxed)
    }
}

static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `(process generation, thread id)`. The id is issued lazily and
    /// re-issued whenever the stored generation lags
    /// [`malloc_api::procfork::generation`]: the TLS cell survives a
    /// fork verbatim, but a parent-era id must not leak into the child —
    /// recycled ids would alias heap slots whose parent owners died
    /// mid-operation. `u64::MAX` is the "never issued" sentinel (the
    /// generation counter starts at 0 and only increments).
    static THREAD_SLOT: core::cell::Cell<(u64, usize)> =
        const { core::cell::Cell::new((u64::MAX, 0)) };
}

/// A small, dense per-thread id ("Threads use their thread ids to decide
/// which processor heap to use"). Falls back to 0 when thread-local
/// storage is unavailable (calls during thread teardown) — correctness
/// never depends on the id, only distribution does.
///
/// The fallback means allocator calls issued from TLS destructors all
/// map to heap 0. For *malloc* that is only a distribution artifact; for
/// *free*-side telemetry it would silently misattribute teardown frees
/// of heap-0 blocks as local. Callers that care use [`try_thread_id`]
/// to detect the teardown case and route it deliberately (counted under
/// the `free_teardown` stat as a remote free).
#[inline]
pub fn thread_id() -> usize {
    try_thread_id().unwrap_or(0)
}

/// Like [`thread_id`], but reports thread-local-storage unavailability
/// (the thread is running TLS destructors) as `None` instead of folding
/// it into id 0.
#[inline]
pub fn try_thread_id() -> Option<usize> {
    THREAD_SLOT
        .try_with(|slot| {
            let cur = malloc_api::procfork::generation();
            let (gen, id) = slot.get();
            if gen == cur {
                id
            } else {
                // First use on this thread, or first use since a fork:
                // issue a fresh id. `NEXT_THREAD_ID` keeps counting from
                // the parent's value, so a child id can never collide
                // with an id some parent thread stamped into heap state.
                let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
                slot.set((cur, id));
                id
            }
        })
        .ok()
}

/// Maps the calling thread to a heap index under `mode`.
///
/// `HeapMode::Single` skips the thread-id lookup entirely — that skipped
/// lookup is the §4.2.4 uniprocessor optimization.
#[inline]
pub fn heap_index(mode: HeapMode) -> usize {
    match mode {
        HeapMode::Single => 0,
        HeapMode::PerCpu(n) => thread_id() % n.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_is_cache_line_sized() {
        assert_eq!(core::mem::align_of::<ProcHeap>(), 64);
        assert_eq!(core::mem::size_of::<ProcHeap>(), 64);
    }

    #[test]
    fn new_heap_is_inactive() {
        let h = ProcHeap::new(7);
        assert!(h.load_active().is_null());
        assert!(h.load_partial().is_null());
        assert_eq!(h.class(), 7);
    }

    #[test]
    fn cas_active_detects_interference() {
        let h = ProcHeap::new(0);
        let d = 0x40usize as *const Descriptor;
        let a = Active::pack(d, 3);
        h.cas_active(Active::null(), a).unwrap();
        let err = h.cas_active(Active::null(), a).unwrap_err();
        assert_eq!(err.raw(), a.raw());
        // Take a credit.
        h.cas_active(a, a.take_credit()).unwrap();
        assert_eq!(h.load_active().credits(), 2);
    }

    #[test]
    fn swap_partial_returns_previous() {
        let h = ProcHeap::new(0);
        let d1 = 0x40usize as *mut Descriptor;
        let d2 = 0x80usize as *mut Descriptor;
        assert!(h.swap_partial(d1).is_null());
        assert_eq!(h.swap_partial(d2), d1);
        assert_eq!(h.load_partial(), d2);
        assert!(h.cas_partial(d2, core::ptr::null_mut()));
        assert!(!h.cas_partial(d2, d1), "stale CAS must fail");
    }

    #[test]
    fn thread_ids_are_distinct_across_threads() {
        let id0 = thread_id();
        assert_eq!(id0, thread_id(), "stable within a thread");
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(id0, other);
    }

    #[test]
    fn heap_index_modes() {
        assert_eq!(heap_index(HeapMode::Single), 0);
        let n = 4;
        assert!(heap_index(HeapMode::PerCpu(n)) < n);
        assert_eq!(heap_index(HeapMode::PerCpu(1)), 0);
    }
}
