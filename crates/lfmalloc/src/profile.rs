//! Sampled allocation-site profiling (cargo feature `profile`).
//!
//! Answers the question telemetry counters cannot: *where is live memory
//! coming from, and how long has it been held?* The design keeps the
//! paper's hot-path discipline — nothing here locks, nothing on the
//! malloc path allocates, and the per-allocation cost when a sample is
//! *not* taken is one TLS read, one subtraction and one branch:
//!
//! * **Byte-stride sampler.** Every thread counts requested bytes down
//!   from a deterministic phase; the allocation that crosses zero is
//!   sampled and the countdown re-arms from a per-thread splitmix64
//!   stream seeded by [`ProfileParams`](crate::config::ProfileParams).
//!   No RNG runs on the fast path — randomness is consumed only when a
//!   sample is taken (on average once per `stride_bytes` of traffic).
//!   Same seed + same single-threaded allocation sequence ⇒ identical
//!   samples, which is what makes the profiler testable.
//! * **Lock-free live-sample table.** A fixed-capacity open-addressing
//!   table keyed by user pointer, reusing the shadow-map slot protocol
//!   (`crates/oracle/src/shadow.rs`): key `0` = empty, `1` = tombstone,
//!   `ptr|1` = transient insert/remove lock, `ptr` = live sample. Claim
//!   by CAS to `ptr|1`, write metadata, publish with a release store.
//!   The table is system-allocated at construction and never grows, so
//!   the profiler can ride inside the global allocator.
//! * **Call-site attribution.** The public entry points carry
//!   `#[track_caller]` under this feature, and the `#[inline(never)]`
//!   sampling shim records `core::panic::Location::caller()` — the
//!   stable-Rust equivalent of capturing the caller return address
//!   (stable Rust has no `__builtin_return_address`; the `Location` is
//!   deterministic, needs no symbolization, and renders as
//!   `file:line:column`). See DESIGN.md §13.
//! * **Weights.** Each sample carries an estimated byte weight of
//!   `max(requested, stride_bytes)` — the tcmalloc/jemalloc estimator:
//!   an allocation of `r ≥ stride` bytes is sampled with probability
//!   ~1, so it represents itself; a smaller allocation is sampled with
//!   probability ~`r/stride`, so it stands in for ~`stride` bytes of
//!   similar traffic. Summing weights over live samples estimates live
//!   bytes per call site, which is what the retention report ranks.
//!
//! Sample *removal* (on free) does not need thread identity, so the
//! TLS-teardown free path unwinds samples correctly; sample *taking*
//! requires live TLS and silently skips during teardown.

use crate::config::{ProfileParams, PREFIX_SIZE};
use crate::instance::Inner;
use crate::size_classes::NUM_CLASSES;
use core::cell::UnsafeCell;
use core::panic::Location;
use core::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use malloc_api::telemetry::{monotonic_nanos, Counter};
use osmem::PageSource;
use std::alloc::{GlobalAlloc, Layout, System};

/// Live-sample table capacity (power of two). At the default 512 KiB
/// stride this covers ~2 GiB of sampled live heap; when it fills,
/// further samples are dropped and counted, never blocked on.
pub const SAMPLE_TABLE_CAP: usize = 4096;

/// Size-class value marking a large (direct-mmap) sample.
pub const LARGE_CLASS: u16 = u16::MAX;

const EMPTY: usize = 0;
const TOMB: usize = 1;

/// Metadata of one live sample (owned by whoever holds the slot's
/// transient `ptr|1` lock).
#[derive(Clone, Copy, Debug, Default)]
struct SampleMeta {
    /// `&'static Location<'static>` of the allocating call site.
    site: usize,
    /// Requested (user) bytes.
    requested: usize,
    /// Total block bytes backing the allocation (class block size for
    /// small, page-rounded span for large) — the internal-fragmentation
    /// denominator.
    block_bytes: usize,
    /// Estimated bytes this sample represents (see module docs).
    weight: u64,
    /// [`monotonic_nanos`] at allocation.
    birth_nanos: u64,
    /// Size-class index, or [`LARGE_CLASS`].
    class: u16,
    /// Per-instance sampler thread index (dense, deterministic).
    thread: u32,
}

struct SampleSlot {
    key: AtomicUsize,
    meta: UnsafeCell<SampleMeta>,
}

/// Per-instance profiler state, embedded in `Inner` under the `profile`
/// feature.
#[derive(Debug)]
pub(crate) struct ProfileState {
    /// Distinguishes this instance's sampler stream in the thread-local
    /// slot (see [`SAMPLER`]); process-unique and never zero.
    epoch: u64,
    params: ProfileParams,
    /// Dense per-instance thread indices, issued in first-touch order.
    next_thread: AtomicU32,
    /// `SAMPLE_TABLE_CAP` slots, system-allocated (zeroed = all empty).
    slots: *mut SampleSlot,
    /// Samples taken (lifetime).
    pub samples: Counter,
    /// Samples lost to a full table (lifetime).
    pub dropped: Counter,
    /// Sampled blocks whose free was observed (lifetime).
    pub freed: Counter,
}

unsafe impl Send for ProfileState {}
// Slot metadata is only touched under the transient `ptr|1` slot lock.
unsafe impl Sync for ProfileState {}

static PROFILE_EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(instance epoch, rng state, countdown)`. One slot serves every
    /// instance: when a thread's allocations interleave across
    /// instances the slot re-arms deterministically on each switch
    /// (epoch mismatch), preserving per-instance determinism for the
    /// dominant single-instance case.
    static SAMPLER: core::cell::Cell<(u64, u64, i64)> =
        const { core::cell::Cell::new((0, 0, 0)) };
    /// Per-instance thread index last issued to this thread, keyed by
    /// the same epoch.
    static SAMPLER_THREAD: core::cell::Cell<(u64, u32)> =
        const { core::cell::Cell::new((0, 0)) };
}

/// splitmix64 step — the sampler's only RNG, run once per *sample*.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Next inter-sample gap: uniform in `[stride/2, 3*stride/2)`, mean
/// `stride`, never zero — jittered so periodic allocation patterns
/// cannot phase-lock with the sampler, deterministic given the stream.
#[inline]
fn next_gap(rng: &mut u64, stride: u64) -> i64 {
    let stride = stride.max(1);
    let jitter = splitmix64(rng) % stride;
    ((stride / 2 + jitter).max(1)).min(i64::MAX as u64) as i64
}

impl ProfileState {
    /// Allocates the sample table; `None` when the system allocator is
    /// exhausted.
    pub(crate) fn new(params: ProfileParams) -> Option<Self> {
        let layout = Layout::array::<SampleSlot>(SAMPLE_TABLE_CAP).ok()?;
        // Zeroed memory is a valid slot array: EMPTY keys, zeroed meta.
        let slots = unsafe { System.alloc_zeroed(layout) } as *mut SampleSlot;
        if slots.is_null() {
            return None;
        }
        Some(ProfileState {
            epoch: PROFILE_EPOCH.fetch_add(1, Ordering::Relaxed) + 1,
            params,
            next_thread: AtomicU32::new(0),
            slots,
            samples: Counter::new(),
            dropped: Counter::new(),
            freed: Counter::new(),
        })
    }

    #[inline]
    fn slot(&self, i: usize) -> &SampleSlot {
        debug_assert!(i < SAMPLE_TABLE_CAP);
        unsafe { &*self.slots.add(i) }
    }

    /// splitmix64 finalizer over the pointer sans alignment bits (the
    /// shadow-map hash).
    #[inline]
    fn hash(ptr: usize) -> usize {
        let mut z = (ptr >> 3) as u64;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize & (SAMPLE_TABLE_CAP - 1)
    }

    /// Inserts a live sample. Lock-free: claims the first reusable slot
    /// in the probe chain by CAS to `ptr|1`, writes the metadata, then
    /// publishes the key with a release store.
    fn insert(&self, ptr: usize, meta: SampleMeta) {
        debug_assert_eq!(ptr & 1, 0, "user pointers are at least 8-aligned");
        let start = Self::hash(ptr);
        for i in 0..SAMPLE_TABLE_CAP {
            let slot = self.slot((start + i) & (SAMPLE_TABLE_CAP - 1));
            let key = slot.key.load(Ordering::Acquire);
            if key != EMPTY && key != TOMB {
                continue;
            }
            if slot
                .key
                .compare_exchange(key, ptr | 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // Lost the slot race; try it (and its successors) again.
                continue;
            }
            unsafe { *slot.meta.get() = meta };
            slot.key.store(ptr, Ordering::Release);
            self.samples.inc();
            return;
        }
        self.dropped.inc();
    }

    /// Removes the sample for `ptr` if one is live (called on every
    /// free; almost always terminates at the first EMPTY probe).
    fn remove(&self, ptr: usize) {
        let start = Self::hash(ptr);
        for i in 0..SAMPLE_TABLE_CAP {
            let slot = self.slot((start + i) & (SAMPLE_TABLE_CAP - 1));
            let key = slot.key.load(Ordering::Acquire);
            if key == EMPTY {
                return; // not sampled
            }
            if key != ptr {
                continue;
            }
            if slot
                .key
                .compare_exchange(ptr, ptr | 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.key.store(TOMB, Ordering::Release);
                self.freed.inc();
            }
            // Either we removed it or a racing remover did; done.
            return;
        }
    }

    /// Racy point-in-time copy of the live samples (a sample concurrent
    /// with the scan may be seen or missed; metadata of a *published*
    /// key is always consistent — it was completed before the release
    /// store).
    fn collect_live(&self) -> Vec<(usize, SampleMeta)> {
        let mut out = Vec::new();
        for i in 0..SAMPLE_TABLE_CAP {
            let slot = self.slot(i);
            let key = slot.key.load(Ordering::Acquire);
            if key != EMPTY && key != TOMB && key & 1 == 0 {
                out.push((key, unsafe { *slot.meta.get() }));
            }
        }
        out
    }
}

impl Drop for ProfileState {
    fn drop(&mut self) {
        unsafe {
            System.dealloc(
                self.slots as *mut u8,
                Layout::array::<SampleSlot>(SAMPLE_TABLE_CAP).unwrap(),
            );
        }
    }
}

/// Fast-path sampler hook, called by `allocate`/`allocate_zeroed` for
/// every successful allocation: decrement the thread's byte countdown
/// and fall into the cold shim only when it crosses zero. Skips
/// silently when TLS is gone (teardown-time allocation).
#[inline]
pub(crate) fn tick<S: PageSource>(
    inner: &Inner<S>,
    ptr: *mut u8,
    requested: usize,
    site: &'static Location<'static>,
) {
    let p = &inner.profile;
    let crossed = SAMPLER
        .try_with(|slot| {
            let (epoch, rng, countdown) = slot.get();
            if epoch != p.epoch {
                return true; // re-arm (and decide) in the cold shim
            }
            let left = countdown - requested.min(i64::MAX as usize) as i64;
            slot.set((epoch, rng, left));
            left <= 0
        })
        .unwrap_or(false);
    if crossed {
        take_sample(inner, ptr, requested, site);
    }
}

/// The sampling shim: re-arms the countdown and records the sample.
/// `#[inline(never)]` keeps it (and its `Location` capture) out of the
/// fast path and gives the profiler a single symbol to account for.
#[inline(never)]
#[cold]
fn take_sample<S: PageSource>(
    inner: &Inner<S>,
    ptr: *mut u8,
    requested: usize,
    site: &'static Location<'static>,
) {
    let p = &inner.profile;
    let stride = p.params.stride_bytes;
    // Re-arm the countdown (switching instances re-seeds the stream so
    // each instance observes a deterministic phase).
    let armed = SAMPLER.try_with(|slot| {
        let (epoch, mut rng, countdown) = slot.get();
        if epoch != p.epoch {
            let idx = SAMPLER_THREAD
                .try_with(|t| {
                    let (tepoch, tidx) = t.get();
                    if tepoch == p.epoch {
                        tidx
                    } else {
                        let idx = p.next_thread.fetch_add(1, Ordering::Relaxed);
                        t.set((p.epoch, idx));
                        idx
                    }
                })
                .unwrap_or(u32::MAX);
            rng = p.params.seed ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let first = next_gap(&mut rng, stride) - requested.min(i64::MAX as usize) as i64;
            slot.set((p.epoch, rng, first));
            // A fresh stream's first allocation is sampled only if it
            // alone crosses the phase — mirrors the steady state.
            return first <= 0;
        }
        debug_assert!(countdown <= 0);
        let gap = next_gap(&mut rng, stride);
        slot.set((epoch, rng, countdown + gap));
        true
    });
    if armed != Ok(true) {
        return;
    }
    // Derive class and block geometry from the block itself (prefix
    // word: descriptor pointer when even, large marker when odd) — the
    // shim needs no plumbing through the malloc ladder.
    let prefix = unsafe {
        (*((ptr as usize - PREFIX_SIZE) as *const AtomicUsize)).load(Ordering::Relaxed)
    };
    let (class, block_bytes) = if prefix & crate::large::LARGE_FLAG != 0 {
        let user_off = prefix >> 1;
        (LARGE_CLASS, unsafe { crate::large::usable_size_large(ptr, prefix) } + user_off)
    } else {
        let desc = unsafe { &*(prefix as *const crate::descriptor::Descriptor) };
        let heap = unsafe { &*desc.heap() };
        (heap.class() as u16, desc.sz() as usize)
    };
    let thread = SAMPLER_THREAD.try_with(|t| t.get().1).unwrap_or(u32::MAX);
    p.insert(
        ptr as usize,
        SampleMeta {
            site: site as *const Location<'static> as usize,
            requested,
            block_bytes,
            weight: (requested as u64).max(stride),
            birth_nanos: monotonic_nanos(),
            class,
            thread,
        },
    );
}

/// Free-side unwind, called by `deallocate` for every non-null free —
/// including TLS-teardown and large-block frees (removal needs no
/// thread identity).
#[inline]
pub(crate) fn untick<S: PageSource>(inner: &Inner<S>, ptr: *mut u8) {
    inner.profile.remove(ptr as usize);
}

/// An allocating call site (`#[track_caller]` provenance), rendered as
/// `file:line:column`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSite {
    pub file: &'static str,
    pub line: u32,
    pub column: u32,
}

impl CallSite {
    fn from_raw(site: usize) -> CallSite {
        let loc = unsafe { &*(site as *const Location<'static>) };
        CallSite { file: loc.file(), line: loc.line(), column: loc.column() }
    }
}

impl core::fmt::Display for CallSite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

/// One live sample, as reported by [`ProfileSnapshot`].
#[derive(Clone, Copy, Debug)]
pub struct LiveSample {
    /// The sampled user pointer.
    pub ptr: usize,
    /// Allocating call site.
    pub site: CallSite,
    /// Requested bytes.
    pub requested: usize,
    /// Backing block bytes (internal-fragmentation denominator).
    pub block_bytes: usize,
    /// Estimated bytes this sample represents.
    pub weight: u64,
    /// Size class, or [`LARGE_CLASS`].
    pub class: u16,
    /// Per-instance sampler thread index.
    pub thread: u32,
    /// Nanoseconds the allocation has been live.
    pub age_nanos: u64,
}

/// Retention aggregate of one call site, ranked by estimated live
/// bytes — the unit of the leak report.
#[derive(Clone, Debug)]
pub struct SiteReport {
    pub site: CallSite,
    /// Live samples attributed to the site.
    pub live_samples: u64,
    /// Estimated live bytes (sum of sample weights).
    pub live_bytes: u64,
    /// Sum of requested bytes over the live samples (un-weighted).
    pub requested_bytes: u64,
    /// Sum of backing block bytes over the live samples.
    pub block_bytes: u64,
    /// Distinct sampler threads that allocated here.
    pub threads: u32,
    /// Size class holding the most live bytes for this site.
    pub top_class: u16,
    /// Age of the oldest live sample.
    pub oldest_age_nanos: u64,
}

/// Point-in-time profiler state: counters plus the live samples.
#[derive(Clone, Debug)]
pub struct ProfileSnapshot {
    /// Sampler parameters in force.
    pub stride_bytes: u64,
    pub seed: u64,
    /// Lifetime samples taken / dropped (table full) / freed.
    pub samples_taken: u64,
    pub samples_dropped: u64,
    pub sampled_frees: u64,
    /// Live samples, in table order.
    pub live: Vec<LiveSample>,
}

impl ProfileSnapshot {
    /// Estimated total live sampled bytes.
    pub fn live_bytes_estimate(&self) -> u64 {
        self.live.iter().map(|s| s.weight).sum()
    }

    /// Sampled internal fragmentation: `(requested, block)` byte sums
    /// over the live samples. `1 - requested/block` is the wasted
    /// fraction inside blocks.
    pub fn internal_frag_bytes(&self) -> (u64, u64) {
        let req = self.live.iter().map(|s| s.requested as u64).sum();
        let blk = self.live.iter().map(|s| s.block_bytes as u64).sum();
        (req, blk)
    }

    /// Internal fragmentation in permille (0 when nothing is sampled).
    pub fn internal_frag_permille(&self) -> u32 {
        let (req, blk) = self.internal_frag_bytes();
        if blk == 0 {
            0
        } else {
            (1000u64.saturating_sub(req * 1000 / blk)) as u32
        }
    }

    /// The retention report: per-site aggregates of the live samples,
    /// ranked by estimated live bytes (descending) — the top entry is
    /// the strongest leak suspect.
    pub fn sites(&self) -> Vec<SiteReport> {
        let mut sorted: Vec<&LiveSample> = self.live.iter().collect();
        sorted.sort_by(|a, b| a.site.cmp(&b.site));
        let mut out: Vec<SiteReport> = Vec::new();
        for s in sorted {
            if out.last().map(|r| r.site) != Some(s.site) {
                out.push(SiteReport {
                    site: s.site,
                    live_samples: 0,
                    live_bytes: 0,
                    requested_bytes: 0,
                    block_bytes: 0,
                    threads: 0,
                    top_class: s.class,
                    oldest_age_nanos: 0,
                });
            }
            let r = out.last_mut().unwrap();
            r.live_samples += 1;
            r.live_bytes += s.weight;
            r.requested_bytes += s.requested as u64;
            r.block_bytes += s.block_bytes as u64;
            r.oldest_age_nanos = r.oldest_age_nanos.max(s.age_nanos);
        }
        // Per-site class and thread rollups (sites are few; the n² over
        // a site's samples is bounded by the table capacity).
        for r in &mut out {
            let mut class_bytes: Vec<(u16, u64)> = Vec::new();
            let mut threads: Vec<u32> = Vec::new();
            for s in self.live.iter().filter(|s| s.site == r.site) {
                match class_bytes.iter_mut().find(|(c, _)| *c == s.class) {
                    Some((_, b)) => *b += s.weight,
                    None => class_bytes.push((s.class, s.weight)),
                }
                if !threads.contains(&s.thread) {
                    threads.push(s.thread);
                }
            }
            r.top_class =
                class_bytes.iter().max_by_key(|(_, b)| *b).map(|(c, _)| *c).unwrap_or(0);
            r.threads = threads.len() as u32;
        }
        out.sort_by(|a, b| b.live_bytes.cmp(&a.live_bytes));
        out
    }

    /// Hand-rolled JSON object (embedded by `StatsSnapshot::to_json`).
    pub fn to_json(&self) -> String {
        let sites: Vec<String> = self
            .sites()
            .iter()
            .map(|r| {
                format!(
                    "{{\"site\":\"{}\",\"live_samples\":{},\"live_bytes\":{},\
                     \"requested_bytes\":{},\"block_bytes\":{},\"threads\":{},\
                     \"top_class\":{},\"oldest_age_nanos\":{}}}",
                    json_escape(&r.site.to_string()),
                    r.live_samples,
                    r.live_bytes,
                    r.requested_bytes,
                    r.block_bytes,
                    r.threads,
                    r.top_class,
                    r.oldest_age_nanos
                )
            })
            .collect();
        let (req, blk) = self.internal_frag_bytes();
        format!(
            "{{\"stride_bytes\":{},\"seed\":{},\"samples_taken\":{},\
             \"samples_dropped\":{},\"sampled_frees\":{},\"live_samples\":{},\
             \"live_bytes_estimate\":{},\"sampled_requested_bytes\":{},\
             \"sampled_block_bytes\":{},\"internal_frag_permille\":{},\
             \"sites\":[{}]}}",
            self.stride_bytes,
            self.seed,
            self.samples_taken,
            self.samples_dropped,
            self.sampled_frees,
            self.live.len(),
            self.live_bytes_estimate(),
            req,
            blk,
            self.internal_frag_permille(),
            sites.join(",")
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<S: PageSource> crate::instance::LfMalloc<S> {
    /// A point-in-time profiler snapshot: sampler counters plus every
    /// live sample with call-site, class, thread and age attribution.
    /// Racy against concurrent allocation the same way
    /// [`stats`](Self::stats) is; snapshotting allocates (through the
    /// Rust global allocator) and must not be called from inside an
    /// allocation path.
    pub fn profile(&self) -> ProfileSnapshot {
        let inner = self.inner();
        let p = &inner.profile;
        let now = monotonic_nanos();
        let live = p
            .collect_live()
            .into_iter()
            .map(|(ptr, m)| LiveSample {
                ptr,
                site: CallSite::from_raw(m.site),
                requested: m.requested,
                block_bytes: m.block_bytes,
                weight: m.weight,
                class: m.class,
                thread: m.thread,
                age_nanos: now.saturating_sub(m.birth_nanos),
            })
            .collect();
        ProfileSnapshot {
            stride_bytes: p.params.stride_bytes,
            seed: p.params.seed,
            samples_taken: p.samples.get(),
            samples_dropped: p.dropped.get(),
            sampled_frees: p.freed.get(),
            live,
        }
    }

    /// The ranked leak/retention report —
    /// [`ProfileSnapshot::sites`] of a fresh snapshot.
    pub fn retention_report(&self) -> Vec<SiteReport> {
        self.profile().sites()
    }
}

/// Classes a [`LiveSample::class`] value for display: the class block
/// size, or `"large"`.
pub fn class_label(class: u16) -> String {
    if class == LARGE_CLASS {
        "large".into()
    } else if (class as usize) < NUM_CLASSES {
        crate::size_classes::CLASS_SIZES[class as usize].to_string()
    } else {
        format!("class-{class}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_distribution_brackets_stride() {
        let mut rng = 42u64;
        for _ in 0..1000 {
            let g = next_gap(&mut rng, 1024);
            assert!((512..1536).contains(&g), "gap {g} out of [stride/2, 3stride/2)");
        }
        // Degenerate strides still make progress.
        let mut rng = 7u64;
        assert!(next_gap(&mut rng, 0) >= 1);
        assert!(next_gap(&mut rng, 1) >= 1);
    }

    #[test]
    fn gap_stream_is_deterministic() {
        let mut a = 9u64;
        let mut b = 9u64;
        let ga: Vec<i64> = (0..100).map(|_| next_gap(&mut a, 4096)).collect();
        let gb: Vec<i64> = (0..100).map(|_| next_gap(&mut b, 4096)).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn table_insert_remove_roundtrip() {
        let p = ProfileState::new(ProfileParams::default_const()).unwrap();
        let meta = SampleMeta { requested: 100, weight: 512, ..Default::default() };
        for i in 0..100usize {
            p.insert(0x10000 + i * 64, meta);
        }
        assert_eq!(p.samples.get(), 100);
        assert_eq!(p.collect_live().len(), 100);
        for i in 0..50usize {
            p.remove(0x10000 + i * 64);
        }
        assert_eq!(p.freed.get(), 50);
        assert_eq!(p.collect_live().len(), 50);
        // Removing an unsampled pointer is a no-op.
        p.remove(0xDEAD0);
        assert_eq!(p.freed.get(), 50);
        // Tombstoned slots are reusable.
        for i in 0..50usize {
            p.insert(0x90000 + i * 64, meta);
        }
        assert_eq!(p.collect_live().len(), 100);
        assert_eq!(p.dropped.get(), 0);
    }

    #[test]
    fn table_full_drops_and_counts() {
        let p = ProfileState::new(ProfileParams::default_const()).unwrap();
        let meta = SampleMeta::default();
        for i in 0..SAMPLE_TABLE_CAP + 10 {
            p.insert(0x100000 + i * 8, meta);
        }
        assert_eq!(p.samples.get(), SAMPLE_TABLE_CAP as u64);
        assert_eq!(p.dropped.get(), 10);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain/path.rs"), "plain/path.rs");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
    }

    #[test]
    fn site_report_ranks_by_live_bytes() {
        #[track_caller]
        fn here() -> &'static Location<'static> {
            Location::caller()
        }
        let big = here();
        let small = here();
        let snap = ProfileSnapshot {
            stride_bytes: 512,
            seed: 0,
            samples_taken: 3,
            samples_dropped: 0,
            sampled_frees: 0,
            live: vec![
                LiveSample {
                    ptr: 0x1000,
                    site: CallSite { file: big.file(), line: big.line(), column: big.column() },
                    requested: 4000,
                    block_bytes: 4096,
                    weight: 4000,
                    class: 9,
                    thread: 0,
                    age_nanos: 5,
                },
                LiveSample {
                    ptr: 0x2000,
                    site: CallSite { file: big.file(), line: big.line(), column: big.column() },
                    requested: 4000,
                    block_bytes: 4096,
                    weight: 4000,
                    class: 9,
                    thread: 1,
                    age_nanos: 9,
                },
                LiveSample {
                    ptr: 0x3000,
                    site: CallSite {
                        file: small.file(),
                        line: small.line(),
                        column: small.column(),
                    },
                    requested: 64,
                    block_bytes: 128,
                    weight: 512,
                    class: 3,
                    thread: 0,
                    age_nanos: 1,
                },
            ],
        };
        let sites = snap.sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].live_bytes, 8000, "heavier site ranks first");
        assert_eq!(sites[0].threads, 2);
        assert_eq!(sites[0].top_class, 9);
        assert_eq!(sites[0].oldest_age_nanos, 9);
        assert_eq!(sites[1].live_bytes, 512);
        let (req, blk) = snap.internal_frag_bytes();
        assert_eq!((req, blk), (8064, 8320));
        assert!(snap.internal_frag_permille() < 100);
        let json = snap.to_json();
        assert!(json.contains("\"sites\":["));
        assert!(json.contains("\"live_bytes\":8000"));
    }
}
