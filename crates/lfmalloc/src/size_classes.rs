//! Size classes: the mapping from request sizes to block sizes.
//!
//! "Superblocks are distributed among size classes based on their block
//! sizes" (§3.1). The paper does not prescribe a class table; we use the
//! conventional geometric-ish ladder (16-byte granularity at the bottom,
//! ~12.5% steps above), with every class a multiple of 16 so blocks are
//! 16-aligned within the 16 KiB-aligned superblock.
//!
//! Block sizes are *total* sizes — they include the 8-byte prefix — so
//! the 8-byte requests of the paper's benchmarks land in the 16-byte
//! class, exactly as in the paper ("Each block includes an 8 byte
//! prefix").
//!
//! Sizes above [`MAX_SMALL_TOTAL`] bypass the size classes and go
//! straight to the OS (`large` module).

use crate::config::SB_SIZE;

/// Number of small size classes.
pub const NUM_CLASSES: usize = 56;

/// Largest total block size served from superblocks. Anything bigger is
/// a "large block ... allocated directly from the OS".
pub const MAX_SMALL_TOTAL: usize = 8192;

/// Granularity of the lookup table.
const GRAIN: usize = 16;

/// Total block sizes (prefix included) of each class, ascending.
pub const CLASS_SIZES: [u32; NUM_CLASSES] = build_sizes();

const fn build_sizes() -> [u32; NUM_CLASSES] {
    let mut s = [0u32; NUM_CLASSES];
    let mut i = 0;
    // 16..=256 step 16, then doubling bands with 8 steps each.
    let mut v = 16;
    while v <= 256 {
        s[i] = v;
        i += 1;
        v += 16;
    }
    let bands: [(u32, u32); 5] =
        [(256, 32), (512, 64), (1024, 128), (2048, 256), (4096, 512)];
    let mut b = 0;
    while b < bands.len() {
        let (base, step) = bands[b];
        let mut k = 1;
        while k <= 8 {
            s[i] = base + step * k;
            i += 1;
            k += 1;
        }
        b += 1;
    }
    assert!(i == NUM_CLASSES);
    assert!(s[NUM_CLASSES - 1] == MAX_SMALL_TOTAL as u32);
    s
}

/// `size/16 -> class` lookup table (computed at compile time), covering
/// total sizes `0..=MAX_SMALL_TOTAL`.
static LUT: [u8; MAX_SMALL_TOTAL / GRAIN + 1] = build_lut();

const fn build_lut() -> [u8; MAX_SMALL_TOTAL / GRAIN + 1] {
    let mut lut = [0u8; MAX_SMALL_TOTAL / GRAIN + 1];
    let mut slot = 0;
    let mut class = 0;
    while slot < lut.len() {
        let size = slot * GRAIN;
        while CLASS_SIZES[class] < size as u32 {
            class += 1;
        }
        lut[slot] = class as u8;
        slot += 1;
    }
    lut
}

/// Maps a *total* block size (request + prefix) to a class index, or
/// `None` for large blocks.
///
/// # Example
///
/// ```
/// use lfmalloc::size_classes::{class_index, CLASS_SIZES};
/// // An 8-byte request plus the 8-byte prefix: the 16-byte class.
/// let c = class_index(16).unwrap();
/// assert_eq!(CLASS_SIZES[c], 16);
/// assert!(class_index(9000).is_none());
/// ```
#[inline]
pub fn class_index(total_size: usize) -> Option<usize> {
    if total_size > MAX_SMALL_TOTAL {
        return None;
    }
    let slot = total_size.div_ceil(GRAIN);
    Some(LUT[slot] as usize)
}

/// Maps a (total size, alignment) pair to the smallest class whose block
/// size is a multiple of `align` and at least `total_size`. `None` if no
/// small class fits; caller falls back to the large path.
///
/// Within a superblock, block `i` starts at `sb + i*sz` and the
/// superblock base is 16 KiB-aligned, so `sz % align == 0` guarantees
/// every block start is `align`-aligned.
pub fn class_index_aligned(total_size: usize, align: usize) -> Option<usize> {
    debug_assert!(align.is_power_of_two());
    let start = class_index(total_size)?;
    CLASS_SIZES[start..]
        .iter()
        .position(|&sz| sz as usize % align == 0)
        .map(|off| start + off)
}

/// Blocks per superblock for class `ci`.
#[inline]
pub fn blocks_per_superblock(ci: usize) -> u32 {
    (SB_SIZE / CLASS_SIZES[ci] as usize) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use malloc_api::testkit::TestRng;

    #[test]
    fn table_is_ascending_multiples_of_16() {
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &s in &CLASS_SIZES {
            assert_eq!(s % 16, 0, "class {s} not 16-aligned");
        }
        assert_eq!(CLASS_SIZES[0], 16);
        assert_eq!(CLASS_SIZES[NUM_CLASSES - 1] as usize, MAX_SMALL_TOTAL);
    }

    #[test]
    fn every_class_has_at_least_two_blocks() {
        // MallocFromNewSB computes credits = min(maxcount-1, MAXCREDITS)-1,
        // which requires maxcount >= 2.
        for ci in 0..NUM_CLASSES {
            assert!(blocks_per_superblock(ci) >= 2, "class {ci} too large for superblock");
        }
    }

    #[test]
    fn class_population_fits_anchor_fields() {
        for ci in 0..NUM_CLASSES {
            assert!(blocks_per_superblock(ci) <= crate::anchor::MAX_BLOCKS);
        }
    }

    #[test]
    fn boundary_lookups() {
        assert_eq!(CLASS_SIZES[class_index(1).unwrap()], 16);
        assert_eq!(CLASS_SIZES[class_index(16).unwrap()], 16);
        assert_eq!(CLASS_SIZES[class_index(17).unwrap()], 32);
        assert_eq!(CLASS_SIZES[class_index(8192).unwrap()], 8192);
        assert!(class_index(8193).is_none());
        assert_eq!(CLASS_SIZES[class_index(0).unwrap()], 16);
    }

    #[test]
    fn aligned_lookup_prefers_smallest_fitting_class() {
        // 100 bytes at align 64: needs sz >= 100 and sz % 64 == 0 -> 128.
        let ci = class_index_aligned(100, 64).unwrap();
        assert_eq!(CLASS_SIZES[ci], 128);
        // align 16 is free: every class qualifies.
        let ci = class_index_aligned(100, 16).unwrap();
        assert_eq!(CLASS_SIZES[ci], 112);
        // enormous alignment within small range: 4096.
        let ci = class_index_aligned(10, 4096).unwrap();
        assert_eq!(CLASS_SIZES[ci], 4096);
    }

    #[test]
    fn lookup_is_tight_for_every_size() {
        // Exhaustive, not sampled: the whole small range is only 8 KiB.
        for total in 1..=MAX_SMALL_TOTAL {
            let ci = class_index(total).unwrap();
            let sz = CLASS_SIZES[ci] as usize;
            assert!(sz >= total, "class {sz} too small for {total}");
            if ci > 0 {
                assert!(
                    (CLASS_SIZES[ci - 1] as usize) < total,
                    "class below ({}) would also fit {total}",
                    CLASS_SIZES[ci - 1]
                );
            }
        }
    }

    #[test]
    fn aligned_lookup_is_correct_randomized() {
        let mut rng = TestRng::new(0x517E);
        for _ in 0..4096 {
            let total = rng.range(1, 4097);
            let align = 1usize << rng.range(3, 9);
            if let Some(ci) = class_index_aligned(total, align) {
                let sz = CLASS_SIZES[ci] as usize;
                assert!(sz >= total);
                assert_eq!(sz % align, 0);
            }
        }
    }
}
