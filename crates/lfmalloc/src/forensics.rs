//! Crash forensics (the `forensics` cargo feature): a black-box flight
//! recorder, async-signal-safe pointer classification, and a chained
//! crash reporter.
//!
//! Production postmortems rarely get to ask "what are the counters
//! now" — the process is dead. This module answers "what was the heap
//! doing when it died" with three pieces:
//!
//! * **Flight recorder** — per-thread lock-free rings of the most
//!   recent allocator operations (op kind, size class, pointer, thread,
//!   monotonic sequence number). Threads claim ring slots first-touch
//!   with the same epoch-keyed thread-local scheme as the profiler's
//!   sampler slots, so instances never share streams and the rings
//!   survive fork (plain memory, no locks). Writers publish each entry
//!   by storing its sequence word last with `Release` after zeroing it,
//!   so a reader (possibly a signal handler interrupting the writer
//!   mid-entry) either sees a fully-written entry or skips it.
//! * **`describe_ptr`** — classifies *any* address against the
//!   instance's memory: small block (with descriptor state, class,
//!   block index, hardened allocated-bit and quarantine-poison
//!   verdicts), large span or its guard region, descriptor-slab
//!   metadata, owned-but-uncarved superblock memory, or foreign. It
//!   composes the same provenance gates as the hardened free path
//!   ([`crate::harden`]) — hyperblock-registry walks, descriptor-slot
//!   validation, span-registry lookups — all of which are lock-free and
//!   allocation-free, so the walk is async-signal-safe by construction.
//! * **Crash reporter** — chained SIGSEGV/SIGBUS/SIGABRT handlers that
//!   emit a black-box report to a configurable fd using only `write(2)`
//!   and hand-rolled fixed-buffer rendering: no allocation, no locks,
//!   no `std::fmt`. The report contains the faulting address's
//!   `describe_ptr` line, the merged tail of the flight recorder, the
//!   health counters, misuse counters, and the OS-byte reconciliation.
//!   After reporting, the previous signal disposition is restored and
//!   the signal re-delivered, so default core-dumping (or a
//!   pre-existing handler) still happens. `Hardening::Abort` and
//!   `LivenessPolicy::Abort` fail-stops route through the same report
//!   path before panicking.
//!
//! # Async-signal-safety contract
//!
//! Everything reachable from [`crash_handler`] obeys: only `write(2)`
//! for I/O; only relaxed/acquire atomic loads and thread-local `Cell`
//! reads for state; only memory the instance itself mapped (hyperblock
//! registries, descriptor slabs, span segments — all published with
//! `Release` before use and never unmapped while the instance lives)
//! is dereferenced. The handler is reentrancy-guarded: a fault inside
//! the reporter immediately restores the old disposition and
//! re-raises.

use core::cell::{Cell, UnsafeCell};
use core::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::alloc::{GlobalAlloc, Layout, System};

use malloc_api::procfork::{self, sys};
use malloc_api::telemetry::Counter;
use osmem::source::{PageSource, PAGE_SIZE};

use crate::anchor::SbState;
use crate::config::{ForensicsParams, PREFIX_SIZE, SB_SIZE};
use crate::descriptor::Descriptor;
use crate::harden::POISON;
use crate::instance::{Inner, LfMalloc};
use crate::size_classes::CLASS_SIZES;

/// Ring slots per instance. Threads hash into the slots by their dense
/// first-touch index; more threads than slots share rings (entries
/// interleave, the global sequence keeps them ordered).
pub const RING_THREADS: usize = 32;

/// Entries per ring (power of two).
pub const RING_CAP: usize = 64;

/// Entries printed in a crash report's flight-recorder section.
const REPORT_TAIL: usize = 32;

/// `class` value of a large-block entry.
pub const CLASS_LARGE: u16 = u16::MAX;

/// `class` value when the free path could not attribute a class
/// (foreign pointer, torn prefix).
pub const CLASS_UNKNOWN: u16 = u16::MAX - 1;

/// Flight-recorder operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Successful allocation.
    Alloc = 1,
    /// Deallocation (recorded before dispatch, so misuse frees appear
    /// too).
    Free = 2,
    /// Allocation that returned null.
    AllocFailed = 3,
}

impl OpKind {
    /// Stable human label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Alloc => "alloc",
            OpKind::Free => "free",
            OpKind::AllocFailed => "alloc-failed",
        }
    }

    pub(crate) fn from_bits(b: u64) -> Option<OpKind> {
        match b {
            1 => Some(OpKind::Alloc),
            2 => Some(OpKind::Free),
            3 => Some(OpKind::AllocFailed),
            _ => None,
        }
    }
}

/// One decoded flight-recorder entry (public snapshot form).
#[derive(Clone, Copy, Debug)]
pub struct FlightOp {
    /// Global monotonic sequence number (never zero).
    pub seq: u64,
    /// Operation kind.
    pub op: OpKind,
    /// Size-class index, [`CLASS_LARGE`] or [`CLASS_UNKNOWN`].
    pub class: u16,
    /// Dense per-instance thread index of the recording thread.
    pub tid: u32,
    /// The block's user pointer.
    pub ptr: usize,
}

/// One ring entry: `seq == 0` means empty/being-rewritten. Writers
/// store `seq` last (`Release`) after zeroing it, so readers that see a
/// non-zero `seq` (`Acquire`) see matching `meta`/`ptr`.
struct RingEntry {
    seq: AtomicU64,
    meta: AtomicU64,
    ptr: AtomicU64,
}

/// One per-thread(-ish) ring.
struct RingSlot {
    head: AtomicU64,
    entries: [RingEntry; RING_CAP],
}

#[inline]
fn pack_meta(op: OpKind, class: u16, tid: u32) -> u64 {
    (op as u64) | ((class as u64) << 8) | ((tid as u64) << 24)
}

#[inline]
pub(crate) fn unpack_meta(meta: u64) -> (u64, u16, u32) {
    (meta & 0xFF, ((meta >> 8) & 0xFFFF) as u16, (meta >> 24) as u32)
}

/// Per-instance forensics state, embedded in `Inner` under the
/// `forensics` feature.
#[derive(Debug)]
pub(crate) struct ForensicsState {
    /// Distinguishes this instance's recorder stream in the
    /// thread-local slot (see [`FLIGHT_THREAD`]); process-unique and
    /// never zero — the same scheme as the profiler's sampler epoch.
    epoch: u64,
    /// Dense per-instance thread indices, issued in first-touch order.
    next_thread: AtomicU32,
    /// `RING_THREADS` rings, system-allocated (zeroed = all empty).
    rings: *mut RingSlot,
    /// Global op sequence; starts at 1 so 0 stays the "empty" marker.
    seq: AtomicU64,
    /// Ops not recorded (thread-local storage already torn down).
    pub dropped: Counter,
    /// Crash-report fd; negative = reporting not configured.
    pub report_fd: AtomicI32,
    /// 1 after the crash handlers were installed for this instance.
    pub handler_installed: AtomicU32,
    /// procfork generation captured at handler installation, so the
    /// report can say whether the process forked since.
    pub crash_generation: AtomicU64,
}

unsafe impl Send for ForensicsState {}
unsafe impl Sync for ForensicsState {}

static FORENSICS_EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(instance epoch, ring index + 1)`: the ring slot this thread
    /// last claimed, keyed by instance epoch (re-arms on mismatch).
    static FLIGHT_THREAD: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

impl ForensicsState {
    /// Allocates the rings; `None` when the system allocator is
    /// exhausted.
    pub(crate) fn new(_params: ForensicsParams) -> Option<Self> {
        let layout = Layout::array::<RingSlot>(RING_THREADS).ok()?;
        // Zeroed memory is a valid RingSlot: every field is atomics.
        let rings = unsafe { System.alloc_zeroed(layout) } as *mut RingSlot;
        if rings.is_null() {
            return None;
        }
        Some(ForensicsState {
            epoch: FORENSICS_EPOCH.fetch_add(1, Ordering::Relaxed) + 1,
            next_thread: AtomicU32::new(0),
            rings,
            seq: AtomicU64::new(1),
            dropped: Counter::new(),
            report_fd: AtomicI32::new(-1),
            handler_installed: AtomicU32::new(0),
            crash_generation: AtomicU64::new(0),
        })
    }

    #[inline]
    fn ring(&self, i: usize) -> &RingSlot {
        debug_assert!(i < RING_THREADS);
        unsafe { &*self.rings.add(i) }
    }
}

impl Drop for ForensicsState {
    fn drop(&mut self) {
        unsafe {
            System.dealloc(
                self.rings as *mut u8,
                Layout::array::<RingSlot>(RING_THREADS).unwrap(),
            );
        }
    }
}

/// Records one op into the calling thread's ring. Two relaxed
/// `fetch_add`s plus three stores; called only when the feature is
/// compiled in.
#[inline]
pub(crate) fn record<S: PageSource>(inner: &Inner<S>, op: OpKind, class: u16, ptr: usize) {
    let st = &inner.forensics;
    let tid = match FLIGHT_THREAD.try_with(|slot| {
        let (epoch, idx1) = slot.get();
        if epoch == st.epoch && idx1 != 0 {
            idx1 - 1
        } else {
            let idx = st.next_thread.fetch_add(1, Ordering::Relaxed);
            slot.set((st.epoch, idx + 1));
            idx
        }
    }) {
        Ok(t) => t,
        Err(_) => {
            // TLS teardown: no stream identity left for this thread.
            st.dropped.inc();
            return;
        }
    };
    let seq = st.seq.fetch_add(1, Ordering::Relaxed);
    let ring = st.ring(tid as usize % RING_THREADS);
    let pos = ring.head.fetch_add(1, Ordering::Relaxed) as usize % RING_CAP;
    let e = &ring.entries[pos];
    // Invalidate, fill, publish: a reader interrupting between the
    // stores sees seq == 0 and skips the entry.
    e.seq.store(0, Ordering::Release);
    e.meta.store(pack_meta(op, class, tid), Ordering::Relaxed);
    e.ptr.store(ptr as u64, Ordering::Relaxed);
    e.seq.store(seq, Ordering::Release);
}

/// Free-path hook: attributes the class with the same guarded prefix
/// walk `describe_ptr` uses (never dereferences unowned memory), then
/// records the op.
#[inline]
pub(crate) fn record_free<S: PageSource>(inner: &Inner<S>, ptr: *mut u8) {
    let addr = ptr as usize;
    let class = if inner.large_spans.span_containing(addr).is_some() {
        CLASS_LARGE
    } else {
        small_class_of(inner, addr).unwrap_or(CLASS_UNKNOWN)
    };
    record(inner, OpKind::Free, class, addr);
}

/// Best-effort size-class attribution of a (purported) small-block user
/// pointer: provenance-gated prefix read, exactly like the hardened
/// free path, but reporting instead of rejecting.
fn small_class_of<S: PageSource>(inner: &Inner<S>, addr: usize) -> Option<u16> {
    if addr < PREFIX_SIZE || addr % PREFIX_SIZE != 0 {
        return None;
    }
    let prefix_addr = addr - PREFIX_SIZE;
    if !inner.sb_pool.owns(prefix_addr) {
        return None;
    }
    let prefix = unsafe { (*(prefix_addr as *const AtomicUsize)).load(Ordering::Relaxed) };
    if prefix & crate::large::LARGE_FLAG != 0 {
        return None;
    }
    let desc_ptr = prefix as *mut Descriptor;
    if !inner.desc_pool.owns(desc_ptr) {
        return None;
    }
    let desc = unsafe { &*desc_ptr };
    class_of_size(desc.sz())
}

/// Maps a block size back to its class index (sizes are distinct).
pub(crate) fn class_of_size(sz: u32) -> Option<u16> {
    CLASS_SIZES.iter().position(|&s| s == sz).map(|i| i as u16)
}

/// Snapshot of the most recent `max` flight-recorder entries, newest
/// first. Allocates (quiescent/diagnostic use); the crash path uses
/// [`merge_tail`] instead.
pub(crate) fn flight_tail<S: PageSource>(inner: &Inner<S>, max: usize) -> Vec<FlightOp> {
    let mut out = Vec::new();
    let st = &inner.forensics;
    for t in 0..RING_THREADS {
        let ring = st.ring(t);
        for e in &ring.entries {
            if let Some(op) = decode_entry(e) {
                out.push(op);
            }
        }
    }
    out.sort_unstable_by(|a, b| b.seq.cmp(&a.seq));
    out.truncate(max);
    out
}

fn decode_entry(e: &RingEntry) -> Option<FlightOp> {
    let seq = e.seq.load(Ordering::Acquire);
    if seq == 0 {
        return None;
    }
    let meta = e.meta.load(Ordering::Relaxed);
    let ptr = e.ptr.load(Ordering::Relaxed) as usize;
    // Reject entries rewritten mid-read.
    if e.seq.load(Ordering::Acquire) != seq {
        return None;
    }
    let (op_bits, class, tid) = unpack_meta(meta);
    Some(FlightOp { seq, op: OpKind::from_bits(op_bits)?, class, tid, ptr })
}

// ---------------------------------------------------------------------
// describe_ptr
// ---------------------------------------------------------------------

/// What kind of memory an address landed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrKind {
    /// The null page.
    Null,
    /// Inside a small block of an owned superblock with a valid
    /// descriptor (detail fields of [`PtrReport`] are filled in).
    Small,
    /// Inside the user extent of a live large span.
    LargeSpan,
    /// Inside the trailing guard region of a live guarded large span
    /// (canary page or the `PROT_NONE` hardware guard).
    GuardRegion,
    /// Inside a descriptor slab (allocator metadata, never user data).
    DescriptorSlab,
    /// Inside an owned superblock hyperblock but no live descriptor
    /// claims the containing superblock (uncarved or recycled memory).
    Superblock,
    /// Not owned by this instance at all.
    Foreign,
}

impl PtrKind {
    /// Stable human label.
    pub fn label(self) -> &'static str {
        match self {
            PtrKind::Null => "null",
            PtrKind::Small => "small-block",
            PtrKind::LargeSpan => "large-span",
            PtrKind::GuardRegion => "guard-region",
            PtrKind::DescriptorSlab => "descriptor-slab",
            PtrKind::Superblock => "superblock",
            PtrKind::Foreign => "foreign",
        }
    }
}

/// Classification of one address against one instance. Plain-data
/// (`Copy`, fixed size) so the crash handler can build and render it
/// without allocating.
#[derive(Clone, Copy, Debug)]
pub struct PtrReport {
    /// The address described.
    pub addr: usize,
    /// Coarse classification.
    pub kind: PtrKind,
    /// Size-class index (kind == `Small`).
    pub class: Option<u16>,
    /// Block size in bytes (kind == `Small`).
    pub class_size: u32,
    /// Containing superblock base (kind == `Small`).
    pub superblock: usize,
    /// Descriptor address (kind == `Small`).
    pub descriptor: usize,
    /// Block index inside the superblock (kind == `Small`).
    pub block_index: u32,
    /// Block start address (kind == `Small`).
    pub block_start: usize,
    /// `addr - block_start` (kind == `Small`).
    pub offset_in_block: u32,
    /// Superblock lifecycle state (kind == `Small`).
    pub sb_state: Option<SbState>,
    /// Hardened allocated-bitmap verdict (`None` when hardening is off
    /// and the bitmap is not maintained).
    pub allocated: Option<bool>,
    /// Block interior carries the quarantine poison pattern (freed
    /// hardened blocks await reuse poisoned — a strong "freed /
    /// quarantined" signal).
    pub poisoned: bool,
    /// Span base (kind == `LargeSpan` | `GuardRegion`).
    pub span_base: usize,
    /// Span length in bytes, guard pages included (kind == `LargeSpan`
    /// | `GuardRegion`).
    pub span_bytes: usize,
    /// The span has trailing guard pages (kind == `LargeSpan` |
    /// `GuardRegion`).
    pub guarded: bool,
}

impl PtrReport {
    fn blank(addr: usize, kind: PtrKind) -> Self {
        PtrReport {
            addr,
            kind,
            class: None,
            class_size: 0,
            superblock: 0,
            descriptor: 0,
            block_index: 0,
            block_start: 0,
            offset_in_block: 0,
            sb_state: None,
            allocated: None,
            poisoned: false,
            span_base: 0,
            span_bytes: 0,
            guarded: false,
        }
    }

    /// Renders the one-line classification into `buf` (async-signal-
    /// safe: fixed buffer, no allocation, no `std::fmt`).
    pub fn render(&self, buf: &mut SigBuf) {
        buf.push_str("ptr 0x");
        buf.push_hex(self.addr as u64);
        buf.push_str(": ");
        match self.kind {
            PtrKind::Null => buf.push_str("null pointer"),
            PtrKind::Small => {
                buf.push_str("small block, class ");
                match self.class {
                    Some(c) => buf.push_dec(c as u64),
                    None => buf.push_str("?"),
                }
                buf.push_str(" (");
                buf.push_dec(self.class_size as u64);
                buf.push_str(" B), superblock 0x");
                buf.push_hex(self.superblock as u64);
                buf.push_str(" block #");
                buf.push_dec(self.block_index as u64);
                buf.push_str(" +");
                buf.push_dec(self.offset_in_block as u64);
                buf.push_str(", state=");
                buf.push_str(match self.sb_state {
                    Some(SbState::Active) => "Active",
                    Some(SbState::Full) => "Full",
                    Some(SbState::Partial) => "Partial",
                    Some(SbState::Empty) => "Empty",
                    None => "?",
                });
                buf.push_str(", allocated=");
                buf.push_str(match self.allocated {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "untracked",
                });
                buf.push_str(", poisoned=");
                buf.push_str(if self.poisoned { "yes" } else { "no" });
                buf.push_str(", descriptor 0x");
                buf.push_hex(self.descriptor as u64);
            }
            PtrKind::LargeSpan => {
                buf.push_str("large span, base 0x");
                buf.push_hex(self.span_base as u64);
                buf.push_str(" (");
                buf.push_dec(self.span_bytes as u64);
                buf.push_str(" B");
                if self.guarded {
                    buf.push_str(", guarded");
                }
                buf.push_str(")");
            }
            PtrKind::GuardRegion => {
                buf.push_str("GUARD REGION of large span base 0x");
                buf.push_hex(self.span_base as u64);
                buf.push_str(" (+");
                buf.push_dec((self.addr - self.span_base) as u64);
                buf.push_str(" of ");
                buf.push_dec(self.span_bytes as u64);
                buf.push_str(" B) — overrun past the user extent");
            }
            PtrKind::DescriptorSlab => {
                buf.push_str("descriptor-slab metadata (allocator-internal, never user data)")
            }
            PtrKind::Superblock => buf.push_str(
                "owned superblock memory with no live descriptor (uncarved or recycled)",
            ),
            PtrKind::Foreign => {
                buf.push_str("foreign address (not owned by this instance)")
            }
        }
    }
}

impl core::fmt::Display for PtrReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut buf = SigBuf::new();
        self.render(&mut buf);
        f.write_str(core::str::from_utf8(buf.as_bytes()).unwrap_or("<non-utf8>"))
    }
}

/// Classifies `addr` against this instance. Lock-free, allocation-free,
/// async-signal-safe; see the module docs for the walk.
pub(crate) fn describe_ptr_inner<S: PageSource>(inner: &Inner<S>, addr: usize) -> PtrReport {
    if addr < PAGE_SIZE {
        return PtrReport::blank(addr, PtrKind::Null);
    }
    // Large spans (registry maintained under hardening; in trusting
    // mode spans are registered too — the registry is the source of
    // truth either way).
    if let Some((base, bytes)) = inner.large_spans.span_containing(addr) {
        let header = unsafe { *(base as *const usize) };
        let (total, guarded, _hw) = crate::large::header_fields(header);
        let mut r = PtrReport::blank(
            addr,
            if guarded && total >= 2 * PAGE_SIZE && addr >= base + total - 2 * PAGE_SIZE {
                PtrKind::GuardRegion
            } else {
                PtrKind::LargeSpan
            },
        );
        r.span_base = base;
        r.span_bytes = bytes;
        r.guarded = guarded;
        return r;
    }
    if inner.sb_pool.owns(addr) {
        // Find the descriptor whose superblock contains the address —
        // an allocation-free scan of the (append-only) slab registry
        // with the hardened-free geometry gates on each candidate.
        let mut found: Option<PtrReport> = None;
        inner.desc_pool.for_each_descriptor(|dp| {
            if found.is_some() {
                return;
            }
            let desc = unsafe { &*dp };
            let sz = desc.sz() as usize;
            let maxcount = desc.maxcount() as usize;
            let sb = desc.sb() as usize;
            let geometry_ok = sz >= 2 * PREFIX_SIZE
                && maxcount >= 1
                && sz * maxcount <= SB_SIZE
                && sb != 0
                && sb % SB_SIZE == 0
                && inner.sb_pool.owns(sb);
            if !geometry_ok || addr < sb || addr >= sb + SB_SIZE {
                return;
            }
            let idx = (addr - sb) / sz;
            if idx >= maxcount {
                // Inside the superblock's unusable tail slack.
                return;
            }
            let block_start = sb + idx * sz;
            let hardened = inner.config.hardening != crate::harden::Hardening::Off;
            let mut r = PtrReport::blank(addr, PtrKind::Small);
            r.class = class_of_size(desc.sz());
            r.class_size = desc.sz();
            r.superblock = sb;
            r.descriptor = dp as usize;
            r.block_index = idx as u32;
            r.block_start = block_start;
            r.offset_in_block = (addr - block_start) as u32;
            r.sb_state = Some(desc.load_anchor().state());
            r.allocated = if hardened { Some(desc.alloc_bit(idx)) } else { None };
            r.poisoned = hardened && block_poisoned(block_start, sz);
            found = Some(r);
        });
        return found.unwrap_or_else(|| PtrReport::blank(addr, PtrKind::Superblock));
    }
    if inner.desc_pool.owns_addr(addr) {
        return PtrReport::blank(addr, PtrKind::DescriptorSlab);
    }
    PtrReport::blank(addr, PtrKind::Foreign)
}

/// Whether the block interior (past the prefix word, which stays a live
/// descriptor pointer while quarantined) carries the poison fill.
fn block_poisoned(block_start: usize, sz: usize) -> bool {
    let start = block_start + PREFIX_SIZE;
    let n = (sz - PREFIX_SIZE).min(16);
    if n == 0 {
        return false;
    }
    (0..n).all(|i| unsafe { core::ptr::read_volatile((start + i) as *const u8) } == POISON)
}

// ---------------------------------------------------------------------
// Async-signal-safe rendering primitives
// ---------------------------------------------------------------------

/// A fixed-capacity byte buffer with decimal/hex formatting — the crash
/// path's replacement for `std::fmt` (which is not allocation-free).
pub struct SigBuf {
    bytes: [u8; 512],
    len: usize,
}

impl SigBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        SigBuf { bytes: [0; 512], len: 0 }
    }

    /// Filled prefix.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len]
    }

    /// Discards the contents.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends literal text (truncates at capacity).
    pub fn push_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            if self.len == self.bytes.len() {
                return;
            }
            self.bytes[self.len] = b;
            self.len += 1;
        }
    }

    /// Appends `v` in decimal.
    pub fn push_dec(&mut self, mut v: u64) {
        let mut tmp = [0u8; 20];
        let mut i = tmp.len();
        loop {
            i -= 1;
            tmp[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        for &b in &tmp[i..] {
            if self.len == self.bytes.len() {
                return;
            }
            self.bytes[self.len] = b;
            self.len += 1;
        }
    }

    /// Appends `v` in lowercase hex (no `0x` prefix).
    pub fn push_hex(&mut self, v: u64) {
        const DIGITS: &[u8; 16] = b"0123456789abcdef";
        let mut tmp = [0u8; 16];
        let mut i = tmp.len();
        let mut v = v;
        loop {
            i -= 1;
            tmp[i] = DIGITS[(v & 0xF) as usize];
            v >>= 4;
            if v == 0 {
                break;
            }
        }
        for &b in &tmp[i..] {
            if self.len == self.bytes.len() {
                return;
            }
            self.bytes[self.len] = b;
            self.len += 1;
        }
    }
}

impl Default for SigBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// Raw-fd sink: loops `write(2)` until the buffer is out (short writes,
/// EINTR). The only I/O primitive the crash path uses — and the "raw-fd
/// sink" the report renderers target so callers can point them at
/// stderr, a pipe, or a pre-opened black-box file.
#[derive(Clone, Copy)]
pub struct FdWriter {
    fd: i32,
}

impl FdWriter {
    /// A writer over an already-open descriptor (not closed on drop).
    pub fn new(fd: i32) -> Self {
        FdWriter { fd }
    }

    /// Writes all of `buf`, ignoring errors (a crash report must never
    /// make the crash worse). Named `put` so it can never shadow or be
    /// shadowed by `io::Write::write_all` on a `&mut FdWriter`.
    pub fn put(&self, buf: &[u8]) {
        let mut off = 0;
        let mut spins = 0;
        while off < buf.len() && spins < 64 {
            let n = unsafe {
                sys::write(self.fd, buf[off..].as_ptr(), buf.len() - off)
            };
            if n > 0 {
                off += n as usize;
            } else {
                spins += 1;
            }
        }
    }

    /// Writes a buffer followed by a newline.
    pub fn line(&self, buf: &SigBuf) {
        self.put(buf.as_bytes());
        self.put(b"\n");
    }
}

impl std::io::Write for FdWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        FdWriter::put(self, buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Crash reporter
// ---------------------------------------------------------------------

/// Process-global crash sinks: one per reporting instance. Slots are
/// CAS-claimed; the handler reads them lock-free.
struct Sink {
    /// `Inner<S>` address; 0 = empty.
    inner: AtomicUsize,
    /// Type-erased `emit_trampoline::<S>` address; 0 = not ready yet.
    emit: AtomicUsize,
}

const MAX_SINKS: usize = 8;

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SINK: Sink = Sink { inner: AtomicUsize::new(0), emit: AtomicUsize::new(0) };
static SINKS: [Sink; MAX_SINKS] = [EMPTY_SINK; MAX_SINKS];

/// The three fail-stop signals the reporter chains.
const CRASH_SIGNALS: [i32; 3] = [sys::SIGSEGV, sys::SIGBUS, sys::SIGABRT];

/// Previous dispositions, written once under the `HANDLERS` claim.
struct OldActions(UnsafeCell<[sys::SigAction; 3]>);
unsafe impl Sync for OldActions {}
static OLD_ACTIONS: OldActions =
    OldActions(UnsafeCell::new([sys::SigAction { sa_sigaction: 0, sa_mask: [0; 16], sa_flags: 0, sa_restorer: 0 }; 3]));

/// 0 = not installed, 1 = installing, 2 = installed.
static HANDLERS: AtomicU32 = AtomicU32::new(0);

/// Recursive-crash guard: a fault inside the reporter chains
/// immediately instead of reporting again.
static CRASH_DEPTH: AtomicU32 = AtomicU32::new(0);

fn sig_index(sig: i32) -> Option<usize> {
    CRASH_SIGNALS.iter().position(|&s| s == sig)
}

type EmitFn = unsafe fn(usize, i32, usize);

/// Monomorphized per page source: recovers the `Inner<S>` and emits.
unsafe fn emit_trampoline<S: PageSource>(inner_addr: usize, sig: i32, fault: usize) {
    let inner = unsafe { &*(inner_addr as *const Inner<S>) };
    emit_crash_report(inner, sig, fault, None);
}

/// The chained signal handler. See the module docs for the
/// async-signal-safety contract.
extern "C" fn crash_handler(sig: i32, info: *mut sys::SigInfo, _ctx: *mut core::ffi::c_void) {
    if CRASH_DEPTH.fetch_add(1, Ordering::SeqCst) == 0 {
        let fault = if sig == sys::SIGABRT || info.is_null() {
            0
        } else {
            unsafe { (*info).si_addr }
        };
        for s in &SINKS {
            let inner = s.inner.load(Ordering::Acquire);
            let emit = s.emit.load(Ordering::Acquire);
            if inner != 0 && emit != 0 {
                let f: EmitFn = unsafe { core::mem::transmute::<usize, EmitFn>(emit) };
                unsafe { f(inner, sig, fault) };
            }
        }
    }
    // Chain: restore the previous disposition and re-deliver. For a
    // hardware fault the faulting instruction re-executes on return and
    // refaults under the old disposition (default: core dump); raise()
    // covers the software-delivered case (abort, kill).
    if let Some(idx) = sig_index(sig) {
        unsafe {
            let old = (*OLD_ACTIONS.0.get())[idx];
            sys::sigaction(sig, &old, core::ptr::null_mut());
        }
    }
    unsafe { sys::raise(sig) };
}

/// Installs the chained handlers once per process (first caller wins;
/// later instances only add sinks).
fn install_handlers_once() {
    match HANDLERS.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => {
            for (i, &sig) in CRASH_SIGNALS.iter().enumerate() {
                let act =
                    sys::SigAction::new(crash_handler as *const () as usize, sys::SA_SIGINFO);
                unsafe {
                    let old = &mut (*OLD_ACTIONS.0.get())[i];
                    sys::sigaction(sig, &act, old);
                }
            }
            HANDLERS.store(2, Ordering::Release);
        }
        Err(_) => {
            // Another thread is installing or already did; spin briefly
            // until published (bounded: installation is three syscalls).
            for _ in 0..1024 {
                if HANDLERS.load(Ordering::Acquire) == 2 {
                    break;
                }
                std::hint::spin_loop();
            }
        }
    }
}

/// Registers `inner` as a crash-report sink writing to `fd` and
/// installs the process handlers. Returns false when all sink slots are
/// taken.
pub(crate) fn install_crash_reporter_inner<S: PageSource>(inner: &Inner<S>, fd: i32) -> bool {
    let st = &inner.forensics;
    st.report_fd.store(fd, Ordering::Relaxed);
    st.crash_generation.store(procfork::generation(), Ordering::Relaxed);
    let addr = inner as *const Inner<S> as usize;
    let emit = emit_trampoline::<S> as *const () as usize;
    let mut claimed = false;
    for s in &SINKS {
        let cur = s.inner.load(Ordering::Acquire);
        if cur == addr {
            s.emit.store(emit, Ordering::Release);
            claimed = true;
            break;
        }
        if cur == 0
            && s.inner
                .compare_exchange(0, addr, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            s.emit.store(emit, Ordering::Release);
            claimed = true;
            break;
        }
    }
    if !claimed {
        return false;
    }
    install_handlers_once();
    st.handler_installed.store(1, Ordering::Release);
    true
}

/// Removes `inner` from the sink table (instance teardown). The
/// process-wide handlers stay installed — with no sinks they only
/// chain.
pub(crate) fn unregister_crash_sink<S: PageSource>(inner: &Inner<S>) {
    let addr = inner as *const Inner<S> as usize;
    for s in &SINKS {
        if s.inner.load(Ordering::Acquire) == addr {
            s.emit.store(0, Ordering::Release);
            s.inner.store(0, Ordering::Release);
        }
    }
}

/// Fail-stop black box: `Hardening::Abort` and `LivenessPolicy::Abort`
/// call this right before panicking so the report survives the abort.
/// No-op unless a report fd was configured.
pub(crate) fn failstop_report<S: PageSource>(inner: &Inner<S>, reason: &str, addr: usize) {
    if inner.forensics.report_fd.load(Ordering::Relaxed) < 0 {
        return;
    }
    // Fail-stops run in normal (non-signal) context, so the event ring
    // (which timestamps) is fair game here — unlike in crash_handler.
    crate::stat_event!(inner, CrashReport, 0u16, addr as u64);
    emit_crash_report(inner, 0, addr, Some(reason));
}

/// Renders the black-box report. `sig == 0` means a fail-stop (reason
/// given) rather than a signal. Async-signal-safe throughout.
fn emit_crash_report<S: PageSource>(inner: &Inner<S>, sig: i32, fault: usize, reason: Option<&str>) {
    let fd = inner.forensics.report_fd.load(Ordering::Relaxed);
    if fd < 0 {
        return;
    }
    let w = FdWriter::new(fd);
    let mut b = SigBuf::new();

    b.push_str("==== lfmalloc crash report ====");
    w.line(&b);

    b.clear();
    match reason {
        Some(r) => {
            b.push_str("cause: fail-stop (");
            b.push_str(r);
            b.push_str(")");
        }
        None => {
            b.push_str("cause: signal ");
            b.push_dec(sig as u64);
            b.push_str(match sig {
                s if s == sys::SIGSEGV => " (SIGSEGV)",
                s if s == sys::SIGBUS => " (SIGBUS)",
                s if s == sys::SIGABRT => " (SIGABRT)",
                _ => "",
            });
        }
    }
    w.line(&b);

    b.clear();
    b.push_str("fault address: 0x");
    b.push_hex(fault as u64);
    w.line(&b);

    b.clear();
    describe_ptr_inner(inner, fault).render(&mut b);
    w.line(&b);

    b.clear();
    b.push_str("inside allocator entry point: ");
    b.push_str(if crate::fork::in_allocator() { "yes" } else { "no" });
    w.line(&b);

    b.clear();
    b.push_str("fork generation: ");
    b.push_dec(procfork::generation());
    b.push_str(" (handlers installed at ");
    b.push_dec(inner.forensics.crash_generation.load(Ordering::Relaxed));
    b.push_str(")");
    w.line(&b);

    // -- Flight recorder: merged tail, newest first. -------------------
    b.clear();
    b.push_str("-- flight recorder (newest first, dropped=");
    b.push_dec(inner.forensics.dropped.get());
    b.push_str(") --");
    w.line(&b);
    let mut tail: [(u64, u64, u64); REPORT_TAIL] = [(0, 0, 0); REPORT_TAIL];
    let mut n = 0usize;
    merge_tail(inner, |seq, meta, ptr| {
        // Keep the REPORT_TAIL largest sequence numbers (insertion into
        // a fixed array — no allocation).
        if n < tail.len() {
            tail[n] = (seq, meta, ptr);
            n += 1;
        } else {
            // Replace the smallest if this one is newer.
            let mut min_i = 0;
            for i in 1..tail.len() {
                if tail[i].0 < tail[min_i].0 {
                    min_i = i;
                }
            }
            if seq > tail[min_i].0 {
                tail[min_i] = (seq, meta, ptr);
            }
        }
    });
    tail[..n].sort_unstable_by(|a, b| b.0.cmp(&a.0));
    for &(seq, meta, ptr) in &tail[..n] {
        let (op_bits, class, tid) = unpack_meta(meta);
        b.clear();
        b.push_str("  seq=");
        b.push_dec(seq);
        b.push_str(" tid=");
        b.push_dec(tid as u64);
        b.push_str(" op=");
        b.push_str(match OpKind::from_bits(op_bits) {
            Some(k) => k.label(),
            None => "?",
        });
        b.push_str(" class=");
        match class {
            CLASS_LARGE => b.push_str("large"),
            CLASS_UNKNOWN => b.push_str("?"),
            c => b.push_dec(c as u64),
        }
        b.push_str(" ptr=0x");
        b.push_hex(ptr);
        w.line(&b);
    }
    if n == 0 {
        b.clear();
        b.push_str("  (empty)");
        w.line(&b);
    }

    // -- Health. -------------------------------------------------------
    b.clear();
    b.push_str("-- health --");
    w.line(&b);
    let (storms, throttles, passes, recoveries) = inner.health.crash_counters();
    b.clear();
    b.push_str("  storms=");
    b.push_dec(storms);
    b.push_str(" throttles=");
    b.push_dec(throttles);
    b.push_str(" maintain_passes=");
    b.push_dec(passes);
    b.push_str(" fork_recoveries=");
    b.push_dec(recoveries);
    w.line(&b);

    // -- OS-byte reconciliation. ---------------------------------------
    let rec = inner.reconcile_bytes();
    b.clear();
    b.push_str("  os live bytes: ");
    b.push_dec(rec.source_live_bytes as u64);
    b.push_str(" (superblocks ");
    b.push_dec(rec.superblock_bytes as u64);
    b.push_str(" + slabs ");
    b.push_dec(rec.descriptor_slab_bytes as u64);
    b.push_str(" + large ");
    b.push_dec(rec.large_bytes as u64);
    b.push_str(", reconciles=");
    b.push_str(if rec.reconciles() { "yes" } else { "no" });
    b.push_str(")");
    w.line(&b);

    // -- Misuse counters. ----------------------------------------------
    b.clear();
    b.push_str("-- misuse --");
    w.line(&b);
    b.clear();
    b.push_str("  invalid_free=");
    b.push_dec(inner.misuse.count(crate::harden::MisuseKind::InvalidFree));
    b.push_str(" double_free=");
    b.push_dec(inner.misuse.count(crate::harden::MisuseKind::DoubleFree));
    b.push_str(" poison_violation=");
    b.push_dec(inner.misuse.count(crate::harden::MisuseKind::PoisonViolation));
    b.push_str(" guard_overrun=");
    b.push_dec(inner.misuse.count(crate::harden::MisuseKind::GuardOverrun));
    b.push_str(" reentrant_alloc=");
    b.push_dec(inner.misuse.count(crate::harden::MisuseKind::ReentrantAlloc));
    w.line(&b);

    b.clear();
    b.push_str("==== end lfmalloc crash report ====");
    w.line(&b);
}

/// Feeds every published ring entry to `f` as raw `(seq, meta, ptr)`
/// words — the crash handler's allocation-free tail walk.
pub(crate) fn merge_tail<S: PageSource>(inner: &Inner<S>, mut f: impl FnMut(u64, u64, u64)) {
    let st = &inner.forensics;
    for t in 0..RING_THREADS {
        let ring = st.ring(t);
        for e in &ring.entries {
            let seq = e.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let meta = e.meta.load(Ordering::Relaxed);
            let ptr = e.ptr.load(Ordering::Relaxed);
            if e.seq.load(Ordering::Acquire) == seq {
                f(seq, meta, ptr);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Exit-time leak report
// ---------------------------------------------------------------------

type ExitFn = unsafe fn(usize, i32);

static EXIT_INNER: AtomicUsize = AtomicUsize::new(0);
static EXIT_FD: AtomicI32 = AtomicI32::new(-1);
static EXIT_EMIT: AtomicUsize = AtomicUsize::new(0);
static EXIT_REGISTERED: AtomicU32 = AtomicU32::new(0);

unsafe fn exit_trampoline<S: PageSource>(inner_addr: usize, fd: i32) {
    let inner = unsafe { &*(inner_addr as *const Inner<S>) };
    emit_leak_report(inner, fd);
}

extern "C" fn exit_cb() {
    let inner = EXIT_INNER.load(Ordering::Acquire);
    let emit = EXIT_EMIT.load(Ordering::Acquire);
    let fd = EXIT_FD.load(Ordering::Acquire);
    if inner != 0 && emit != 0 && fd >= 0 {
        let f: ExitFn = unsafe { core::mem::transmute::<usize, ExitFn>(emit) };
        unsafe { f(inner, fd) };
    }
}

/// Registers an exit-time leak report for `inner` on `fd` (used by
/// [`crate::GlobalLfMalloc::install_exit_leak_report`]; one per
/// process — the global allocator's instance is the natural owner).
pub(crate) fn install_exit_report_inner<S: PageSource>(inner: &Inner<S>, fd: i32) {
    EXIT_INNER.store(inner as *const Inner<S> as usize, Ordering::Release);
    EXIT_EMIT.store(exit_trampoline::<S> as *const () as usize, Ordering::Release);
    EXIT_FD.store(fd, Ordering::Release);
    if EXIT_REGISTERED.swap(1, Ordering::AcqRel) == 0 {
        unsafe { sys::atexit(exit_cb) };
    }
}

/// Renders the exit-time leak report: retained OS bytes, live large
/// blocks, and (with `profile`) the top retained call sites. Runs at
/// normal exit — allocation is legal here, but the renderer sticks to
/// the fixed-buffer primitives anyway except for the profile section.
fn emit_leak_report<S: PageSource>(inner: &Inner<S>, fd: i32) {
    let w = FdWriter::new(fd);
    let mut b = SigBuf::new();
    b.push_str("==== lfmalloc exit leak report ====");
    w.line(&b);

    let rec = inner.reconcile_bytes();
    b.clear();
    b.push_str("os live bytes at exit: ");
    b.push_dec(rec.source_live_bytes as u64);
    w.line(&b);

    b.clear();
    b.push_str("large blocks live: ");
    b.push_dec(inner.large_live.load(Ordering::Relaxed) as u64);
    b.push_str(" (");
    b.push_dec(inner.large_bytes.load(Ordering::Relaxed) as u64);
    b.push_str(" B)");
    w.line(&b);

    // Small-block occupancy from the descriptor universe.
    let mut live_blocks = 0u64;
    let mut live_bytes = 0u64;
    inner.desc_pool.for_each_descriptor(|dp| {
        let desc = unsafe { &*dp };
        let sz = desc.sz() as usize;
        let maxcount = desc.maxcount() as usize;
        let sb = desc.sb() as usize;
        if sz >= 2 * PREFIX_SIZE && maxcount >= 1 && sz * maxcount <= SB_SIZE && sb != 0 {
            let anchor = desc.load_anchor();
            let used = maxcount as u64 - (anchor.count() as u64).min(maxcount as u64);
            live_blocks += used;
            live_bytes += used * sz as u64;
        }
    });
    b.clear();
    b.push_str("small blocks live-or-reserved: ");
    b.push_dec(live_blocks);
    b.push_str(" (");
    b.push_dec(live_bytes);
    b.push_str(" B)");
    w.line(&b);

    #[cfg(feature = "profile")]
    {
        let sites = {
            let inst = unsafe {
                LfMalloc::<S>::borrow_raw(core::ptr::NonNull::new_unchecked(
                    inner as *const Inner<S> as *mut Inner<S>,
                ))
            };
            inst.retention_report()
        };
        b.clear();
        b.push_str("top retained call sites:");
        w.line(&b);
        for (i, site) in sites.iter().take(8).enumerate() {
            b.clear();
            b.push_str("  ");
            b.push_dec(i as u64 + 1);
            b.push_str(". ");
            b.push_str(&site.site.file);
            b.push_str(":");
            b.push_dec(site.site.line as u64);
            b.push_str(" live~");
            b.push_dec(site.live_bytes);
            b.push_str(" B over ");
            b.push_dec(site.live_samples as u64);
            b.push_str(" samples");
            w.line(&b);
        }
        if sites.is_empty() {
            b.clear();
            b.push_str("  (no live samples)");
            w.line(&b);
        }
    }

    b.clear();
    b.push_str("==== end lfmalloc exit leak report ====");
    w.line(&b);
}

// ---------------------------------------------------------------------
// Public API surface
// ---------------------------------------------------------------------

impl<S: PageSource> LfMalloc<S> {
    /// Classifies `addr` against this instance's memory: small block
    /// (with descriptor state, hardened allocated-bit and poison
    /// verdicts), large span or guard region, descriptor metadata,
    /// owned superblock memory, or foreign. Lock-free,
    /// allocation-free, async-signal-safe.
    pub fn describe_ptr(&self, addr: usize) -> PtrReport {
        describe_ptr_inner(self.inner(), addr)
    }

    /// Installs the chained SIGSEGV/SIGBUS/SIGABRT crash reporter for
    /// this instance, writing black-box reports to `fd` with `write(2)`
    /// only. Returns false if the process sink table is full
    /// (more than 8 reporting instances).
    pub fn install_crash_reporter(&self, fd: i32) -> bool {
        install_crash_reporter_inner(self.inner(), fd)
    }

    /// The most recent `max` flight-recorder entries, newest first.
    pub fn flight_recorder_tail(&self, max: usize) -> Vec<FlightOp> {
        flight_tail(self.inner(), max)
    }

    /// Lifetime count of operations the flight recorder could not
    /// record (thread-local storage torn down).
    pub fn flight_recorder_dropped(&self) -> u64 {
        self.inner().forensics.dropped.get()
    }

    /// Whether this instance's crash handlers are installed.
    pub fn crash_handler_installed(&self) -> bool {
        self.inner().forensics.handler_installed.load(Ordering::Relaxed) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_packing_roundtrip() {
        for (op, class, tid) in [
            (OpKind::Alloc, 0u16, 0u32),
            (OpKind::Free, CLASS_LARGE, 7),
            (OpKind::AllocFailed, CLASS_UNKNOWN, u32::MAX),
            (OpKind::Alloc, 55, 12345),
        ] {
            let (ob, c, t) = unpack_meta(pack_meta(op, class, tid));
            assert_eq!(OpKind::from_bits(ob), Some(op));
            assert_eq!(c, class);
            assert_eq!(t, tid);
        }
    }

    #[test]
    fn sigbuf_formats_and_truncates() {
        let mut b = SigBuf::new();
        b.push_str("x=");
        b.push_dec(0);
        b.push_str(" y=0x");
        b.push_hex(0xdead_beef);
        assert_eq!(b.as_bytes(), b"x=0 y=0xdeadbeef");
        b.clear();
        b.push_dec(18_446_744_073_709_551_615);
        assert_eq!(b.as_bytes(), b"18446744073709551615");
        b.clear();
        for _ in 0..600 {
            b.push_str("a");
        }
        assert_eq!(b.as_bytes().len(), 512, "capped at capacity");
    }

    #[test]
    fn class_of_size_maps_every_class() {
        for (i, &sz) in CLASS_SIZES.iter().enumerate() {
            assert_eq!(class_of_size(sz), Some(i as u16));
        }
        assert_eq!(class_of_size(3), None);
    }
}
