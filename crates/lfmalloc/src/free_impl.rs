//! The free path — a faithful transcription of the paper's Figure 6.
//!
//! "The free algorithm for small blocks is simple. It primarily involves
//! pushing the freed block into its superblock's available list and
//! adjusting the superblock's state appropriately." One CAS in the
//! common case; the first free into a FULL superblock re-links it
//! (`HeapPutPartial`), and the free of the last allocated block empties
//! the superblock (recycle + `RemoveEmptyDesc`).

use crate::anchor::SbState;
use crate::config::PREFIX_SIZE;
use crate::descriptor::Descriptor;
use crate::heap::ProcHeap;
use crate::instance::Inner;
use core::sync::atomic::{AtomicU64, Ordering};
use osmem::PageSource;

/// Frees a small block. `ptr` is the user pointer; `desc_ptr` was read
/// from its prefix.
///
/// # Safety
///
/// `ptr` must be a live small block of this instance whose prefix named
/// `desc_ptr`.
pub(crate) unsafe fn free_small<S: PageSource>(
    inner: &Inner<S>,
    ptr: *mut u8,
    desc_ptr: *mut Descriptor,
) {
    let desc = unsafe { &*desc_ptr };
    let sb = desc.sb() as usize; // line 6
    let sz = desc.sz() as usize;
    // The prefix may sit anywhere inside the block (alignment offsets);
    // integer division recovers the block index (== the paper's
    // `(ptr-sb)/desc->sz` with the default 8-byte offset).
    let prefix_addr = ptr as usize - PREFIX_SIZE;
    let idx = (prefix_addr - sb) / sz; // line 9
    let block = sb + idx * sz;
    unsafe { push_free_block(inner, desc_ptr, block) }
}

/// Pushes `block` (a block *start* address) onto its superblock's free
/// list and performs the state transitions of Figure 6 — the anchor-CAS
/// half of [`free_small`], shared with the hardened path, which releases
/// quarantined blocks through it.
///
/// # Safety
///
/// `block` must be an allocated block of `desc_ptr`'s superblock that no
/// other thread can free concurrently.
pub(crate) unsafe fn push_free_block<S: PageSource>(
    inner: &Inner<S>,
    desc_ptr: *mut Descriptor,
    block: usize,
) {
    let desc = unsafe { &*desc_ptr };
    let sb = desc.sb() as usize;
    let sz = desc.sz() as usize;
    let maxcount = desc.maxcount();
    let idx = ((block - sb) / sz) as u32;
    // Latency classification: a plain free-list push is the fast path;
    // an EMPTY transition or FULL→PARTIAL relink is the slow path.
    let t0 = crate::lat_start!();

    // The watchdog needs the owning heap for site attribution; read it
    // now, while the block still pins the descriptor (the heap table
    // itself lives until instance teardown, so the reference stays
    // valid even if the descriptor is recycled later).
    let owner = unsafe { &*desc.heap() };
    // Telemetry reads the owning heap under the same pinning argument.
    #[cfg(feature = "stats")]
    {
        if crate::heap::try_thread_id().is_none() {
            // TLS teardown: the freeing thread no longer has an
            // identity, so "local vs remote" is undecidable — it is
            // deliberately attributed as a *remote* free (the paper's
            // slow-path accounting) rather than defaulting to heap 0's
            // local path, and counted separately so teardown traffic is
            // visible. See `heap::try_thread_id`.
            inner.shard(owner).free_teardown.inc();
            inner.shard(owner).free_remote.inc();
        } else if crate::stats::is_local_heap(inner, owner) {
            inner.shard(owner).free_local.inc();
        } else {
            inner.shard(owner).free_remote.inc();
        }
    }

    let mut link_tries: u64 = 0;
    let mut heap: *mut ProcHeap = core::ptr::null_mut();
    let (oldanchor, newanchor) = loop {
        let fp = malloc_api::fail_point!("free.link");
        if fp.kill {
            // Died before the anchor CAS: the block simply stays
            // allocated forever; the superblock is untouched.
            return;
        }
        if fp.retry {
            // Forced CAS failure: counted so the watchdog sees it.
            link_tries += 1;
            crate::health::watch(inner, owner, crate::health::WatchSite::FreeLink, link_tries);
            continue;
        }
        let old = desc.load_anchor(); // line 7
        // line 8: link this block to the current list head. Written
        // before the CAS; the CAS's release ordering is the paper's
        // memory fence (line 17).
        unsafe {
            (*(block as *const AtomicU64)).store(old.avail() as u64, Ordering::Relaxed);
        }
        let mut new = old.with_avail(idx); // line 9
        if old.state() == SbState::Full {
            new = new.with_state(SbState::Partial); // lines 10-11
        }
        if old.count() == maxcount - 1 {
            // lines 12-15: this was the last allocated block. Read the
            // owning heap *before* the CAS (the paper's instruction
            // fence, line 14): after the CAS the descriptor may be
            // recycled by another thread at any time.
            heap = desc.heap(); // line 13
            new = new.with_state(SbState::Empty); // line 15
        } else {
            new = new.with_count(old.count() + 1); // line 16
        }
        match desc.cas_anchor(old, new) {
            Ok(()) => break (old, new), // line 18
            Err(_) => {
                link_tries += 1;
                crate::health::watch(inner, owner, crate::health::WatchSite::FreeLink, link_tries);
                continue;
            }
        }
    };
    crate::stat_hist!(inner, owner, anchor_cas, link_tries);

    if newanchor.state() == SbState::Empty {
        if malloc_api::fail_point!("free.empty").kill {
            // Died between the EMPTY transition and the recycle: the
            // superblock and its descriptor leak with the dead thread.
            return;
        }
        crate::stat!(inner, owner, free_empty);
        crate::stat_event!(inner, SbRetire, owner.class(), sb);
        // lines 19-21: recycle the superblock's memory, then make the
        // descriptor reclaimable.
        unsafe {
            inner.sb_pool.dealloc(sb as *mut u8); // line 20
            remove_empty_desc(inner, &*heap, desc_ptr); // line 21
        }
        crate::stat_lat!(inner, lat_free_slow, t0);
    } else if oldanchor.state() == SbState::Full {
        crate::stat_event!(inner, HeapTransition, owner.class(), sb);
        // lines 22-23: we are the first to free into a FULL superblock;
        // take responsibility for re-linking it.
        unsafe { crate::alloc::heap_put_partial(inner, desc_ptr) };
        crate::stat_lat!(inner, lat_free_slow, t0);
    } else {
        crate::stat_lat!(inner, lat_free_fast, t0);
    }
}

/// `RemoveEmptyDesc` (Figure 6): retire the descriptor if we can pluck
/// it from the heap's Partial slot; otherwise sweep one empty descriptor
/// out of the size class's partial list.
unsafe fn remove_empty_desc<S: PageSource>(
    inner: &Inner<S>,
    heap: &ProcHeap,
    desc: *mut Descriptor,
) {
    if heap.cas_partial(desc, core::ptr::null_mut()) {
        // lines 1-2
        unsafe { inner.desc_pool.retire(&inner.domain, desc) };
    } else {
        // line 3: ListRemoveEmptyDesc — the goal "is to ensure that
        // empty descriptors are eventually made available for reuse, and
        // not necessarily to remove a specific empty descriptor
        // immediately".
        let ci = heap.class();
        unsafe { inner.classes[ci].partial.remove_empty(&inner.domain, &inner.desc_pool) };
    }
}
