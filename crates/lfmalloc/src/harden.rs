//! Hardened deallocation: provenance-checked free, double-free and
//! use-after-free defense.
//!
//! The paper's free path trusts its caller completely: it reads the
//! descriptor pointer out of the 8-byte block prefix and CASes the
//! anchor it finds there. A single invalid or double free therefore
//! corrupts the heap silently. This module adds an opt-in validated
//! free path ([`Config::hardening`](crate::config::Config) ≠
//! [`Hardening::Off`]) that keeps the allocator's lock-freedom while
//! detecting the four classic misuse classes:
//!
//! * **Invalid free** — the pointer was never produced by this instance
//!   (foreign allocator, interior pointer, stack/unmapped address).
//!   Established *before any dereference* by asking the superblock page
//!   pool, the descriptor-slab pool and the large-span registry whether
//!   they own the relevant addresses.
//! * **Double free** — arbitrated by a per-block allocation bitmap in
//!   the descriptor ([`Descriptor::clear_alloc_bit`]): concurrent
//!   double frees race on one `fetch_and` and exactly one loses, so the
//!   anchor is never pushed twice.
//! * **Use-after-free write** — freed small blocks are filled with
//!   [`POISON`] and parked in a bounded per-heap quarantine ring;
//!   on the way back into circulation every byte is re-verified.
//! * **Guard overrun** — large blocks get guard pages appended (see
//!   [`crate::large`]); the canary page is verified on free and the
//!   `PROT_NONE` page traps wild writes at the instant they happen.
//!
//! Every detection produces a [`MisuseReport`] counted per-instance and
//! in a process-wide sink; [`Hardening::Detect`] returns without
//! touching allocator state, [`Hardening::Abort`] panics with the
//! report.

use crate::config::{PREFIX_SIZE, SB_SIZE};
use crate::descriptor::Descriptor;
use crate::instance::Inner;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use osmem::source::PAGE_SIZE;
use osmem::PageSource;

/// Hardening level of an allocator instance (see
/// [`Config::hardening`](crate::config::Config)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Hardening {
    /// The paper's trusting free path; no validation, no overhead.
    #[default]
    Off,
    /// Validate every free; count and report misuse, then return
    /// without corrupting allocator state.
    Detect,
    /// Validate every free; panic with the [`MisuseReport`] on the
    /// first misuse (fail-stop).
    Abort,
}

/// The misuse classes hardened mode distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisuseKind {
    /// Freed pointer is not a live block of this instance.
    InvalidFree,
    /// Block was already free when freed again.
    DoubleFree,
    /// A quarantined (freed) block was written through a stale pointer.
    PoisonViolation,
    /// A large block's canary guard page was overwritten.
    GuardOverrun,
    /// An allocator entry point re-entered itself on the same thread —
    /// a signal handler called `malloc`/`free` while the interrupted
    /// code was already inside the allocator. The nested call is
    /// rejected (null / leaked) instead of risking a torn fast path;
    /// see the [`fork`](crate::fork) module's signal-safety contract.
    ReentrantAlloc,
}

impl MisuseKind {
    /// Dense index for counter arrays.
    #[inline]
    fn index(self) -> usize {
        match self {
            MisuseKind::InvalidFree => 0,
            MisuseKind::DoubleFree => 1,
            MisuseKind::PoisonViolation => 2,
            MisuseKind::GuardOverrun => 3,
            MisuseKind::ReentrantAlloc => 4,
        }
    }

    fn from_index(i: usize) -> Option<Self> {
        match i {
            0 => Some(MisuseKind::InvalidFree),
            1 => Some(MisuseKind::DoubleFree),
            2 => Some(MisuseKind::PoisonViolation),
            3 => Some(MisuseKind::GuardOverrun),
            4 => Some(MisuseKind::ReentrantAlloc),
            _ => None,
        }
    }
}

/// Number of [`MisuseKind`] variants.
const NUM_KINDS: usize = 5;

/// One detected deallocation misuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MisuseReport {
    /// What went wrong.
    pub kind: MisuseKind,
    /// The pointer the application passed to `free`.
    pub ptr: usize,
    /// Total block size (prefix included) of the owning size class;
    /// `None` for large blocks and pointers with no valid owner.
    pub size_class: Option<usize>,
    /// Address of the owning `ProcHeap` (0 when unknown — large blocks
    /// and foreign pointers have none).
    pub heap: usize,
    /// The freeing thread's allocator thread id.
    pub tid: usize,
}

impl core::fmt::Display for MisuseReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:?} of {:#x} (tid {})", self.kind, self.ptr, self.tid)?;
        if let Some(sz) = self.size_class {
            write!(f, " [class sz {sz}]")?;
        }
        if self.heap != 0 {
            write!(f, " [heap {:#x}]", self.heap)?;
        }
        Ok(())
    }
}

/// Lock-free misuse accounting: per-kind counts plus the most recent
/// report. One instance lives in every hardened allocator; one
/// process-wide sink ([`process_misuse_counters`]) aggregates across
/// instances.
#[derive(Debug)]
pub struct MisuseCounters {
    counts: [AtomicU64; NUM_KINDS],
    // Last-report fields are stored individually; a torn read across
    // them under contention is acceptable for diagnostics (the counts
    // are the test oracle).
    last_kind: AtomicUsize, // MisuseKind::index + 1; 0 = none yet
    last_ptr: AtomicUsize,
    last_size_class: AtomicUsize, // value + 1; 0 = None
    last_heap: AtomicUsize,
    last_tid: AtomicUsize,
}

impl MisuseCounters {
    /// All-zero counters.
    pub const fn new() -> Self {
        MisuseCounters {
            counts: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            last_kind: AtomicUsize::new(0),
            last_ptr: AtomicUsize::new(0),
            last_size_class: AtomicUsize::new(0),
            last_heap: AtomicUsize::new(0),
            last_tid: AtomicUsize::new(0),
        }
    }

    fn record(&self, r: &MisuseReport) {
        self.counts[r.kind.index()].fetch_add(1, Ordering::AcqRel);
        self.last_ptr.store(r.ptr, Ordering::Relaxed);
        self.last_size_class.store(r.size_class.map_or(0, |s| s + 1), Ordering::Relaxed);
        self.last_heap.store(r.heap, Ordering::Relaxed);
        self.last_tid.store(r.tid, Ordering::Relaxed);
        // Written last: a non-zero kind tells readers the other fields
        // hold at least one complete report.
        self.last_kind.store(r.kind.index() + 1, Ordering::Release);
    }

    /// Detections of `kind` so far.
    pub fn count(&self, kind: MisuseKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Acquire)
    }

    /// Total detections across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// The most recent report, if any misuse was ever recorded.
    pub fn last_report(&self) -> Option<MisuseReport> {
        let k = self.last_kind.load(Ordering::Acquire);
        let kind = MisuseKind::from_index(k.checked_sub(1)?)?;
        let sc = self.last_size_class.load(Ordering::Relaxed);
        Some(MisuseReport {
            kind,
            ptr: self.last_ptr.load(Ordering::Relaxed),
            size_class: sc.checked_sub(1),
            heap: self.last_heap.load(Ordering::Relaxed),
            tid: self.last_tid.load(Ordering::Relaxed),
        })
    }
}

impl Default for MisuseCounters {
    fn default() -> Self {
        Self::new()
    }
}

/// Process-wide misuse sink, aggregated across all hardened instances.
static PROCESS_COUNTERS: MisuseCounters = MisuseCounters::new();

/// The process-wide misuse sink (sums every hardened instance in the
/// process; individual instances expose their own counters through
/// [`LfMalloc::misuse_counters`](crate::LfMalloc::misuse_counters)).
pub fn process_misuse_counters() -> &'static MisuseCounters {
    &PROCESS_COUNTERS
}

/// Fill byte for freed small blocks while quarantined.
pub const POISON: u8 = 0xF5;

/// Fill byte of a large block's canary guard page.
pub const GUARD_CANARY: u8 = 0xC7;

/// Capacity of each per-heap quarantine ring. Small on purpose: the
/// quarantine delays reuse to catch dangling writes, it is not a cache,
/// and every parked block pins its superblock partially allocated.
pub const QUARANTINE_CAP: usize = 32;

/// Records a misuse in the instance and process counters; panics in
/// [`Hardening::Abort`] mode.
pub(crate) fn report<S: PageSource>(inner: &Inner<S>, r: MisuseReport) {
    inner.misuse.record(&r);
    PROCESS_COUNTERS.record(&r);
    if inner.config.hardening == Hardening::Abort {
        // The fail-stop is about to unwind into an abort: flush the
        // black-box report first so the postmortem has the flight
        // recorder and the misuse pointer's classification.
        #[cfg(feature = "forensics")]
        crate::forensics::failstop_report(inner, "hardened-abort", r.ptr);
        panic!("lfmalloc hardened mode: {r}");
    }
}

#[inline]
fn misuse(kind: MisuseKind, ptr: *mut u8) -> MisuseReport {
    MisuseReport {
        kind,
        ptr: ptr as usize,
        size_class: None,
        heap: 0,
        tid: crate::heap::thread_id(),
    }
}

/// The validated free path: every `deallocate` routes here when
/// hardening is on. Never dereferences an address whose ownership has
/// not been established first.
///
/// # Safety
///
/// `ptr` is non-null but otherwise completely untrusted — that is the
/// point. The instance must be alive.
pub(crate) unsafe fn free_hardened<S: PageSource>(inner: &Inner<S>, ptr: *mut u8) {
    let addr = ptr as usize;

    // -- Large blocks: the span registry is the source of truth. -------
    if let Some((base, _)) = inner.large_spans.span_containing(addr) {
        unsafe { free_large_hardened(inner, ptr, base) };
        return;
    }

    // -- Small blocks. -------------------------------------------------
    // Every pointer this instance hands out is >= 8-aligned with its
    // prefix word 8 bytes below; reject before any memory access.
    if addr < PREFIX_SIZE || addr % PREFIX_SIZE != 0 {
        report(inner, misuse(MisuseKind::InvalidFree, ptr));
        return;
    }
    let prefix_addr = addr - PREFIX_SIZE;
    // Provenance gate 1: the prefix word must lie inside a superblock
    // hyperblock this instance mapped. Only now is it safe to read.
    if !inner.sb_pool.owns(prefix_addr) {
        report(inner, misuse(MisuseKind::InvalidFree, ptr));
        return;
    }
    let prefix =
        unsafe { (*(prefix_addr as *const AtomicUsize)).load(Ordering::Relaxed) };
    if prefix & crate::large::LARGE_FLAG != 0 {
        // An odd prefix inside a superblock: either a stale large-block
        // marker (the span was already freed) or plain user data. The
        // span registry above said this is not a live large block.
        report(inner, misuse(MisuseKind::InvalidFree, ptr));
        return;
    }
    // Provenance gate 2: the prefix must name a real descriptor slot.
    let desc_ptr = prefix as *mut Descriptor;
    if !inner.desc_pool.owns(desc_ptr) {
        report(inner, misuse(MisuseKind::InvalidFree, ptr));
        return;
    }
    // The descriptor slot is ours, so dereferencing is safe; its
    // *contents* are still untrusted (the slot may be free or describe
    // a different superblock) — sanity-check the geometry.
    let desc = unsafe { &*desc_ptr };
    let sz = desc.sz() as usize;
    let maxcount = desc.maxcount() as usize;
    let sb = desc.sb() as usize;
    let geometry_ok = sz >= 2 * PREFIX_SIZE
        && maxcount >= 1
        && sz * maxcount <= SB_SIZE
        && sb != 0
        && sb % SB_SIZE == 0
        && inner.sb_pool.owns(sb)
        && prefix_addr >= sb
        && prefix_addr < sb + SB_SIZE;
    if !geometry_ok {
        report(inner, misuse(MisuseKind::InvalidFree, ptr));
        return;
    }
    let idx = (prefix_addr - sb) / sz;
    if idx >= maxcount {
        report(inner, misuse(MisuseKind::InvalidFree, ptr));
        return;
    }
    // -- Double-free arbiter: one fetch_and, one winner. ---------------
    if !desc.clear_alloc_bit(idx) {
        report(
            inner,
            MisuseReport {
                kind: MisuseKind::DoubleFree,
                ptr: addr,
                size_class: Some(sz),
                heap: desc.heap() as usize,
                tid: crate::heap::thread_id(),
            },
        );
        return;
    }
    // -- Poison + quarantine. ------------------------------------------
    // The prefix word (the descriptor pointer) is left intact: a repeat
    // free of a quarantined block must still find the descriptor so the
    // bitmap can classify it as a double free.
    let block = sb + idx * sz;
    unsafe {
        core::ptr::write_bytes((block + PREFIX_SIZE) as *mut u8, POISON, sz - PREFIX_SIZE)
    };
    let shard = unsafe {
        &*inner.quarantine.add(crate::heap::thread_id() % inner.nheaps)
    };
    let mut entry = (block, desc_ptr as usize);
    // Push, displacing the oldest entry when the ring is full; the
    // displaced block is verified and released for reuse. Bounded
    // retries: under a pathological push/pop race, releasing directly
    // is always correct (the quarantine is best-effort delay).
    for _ in 0..4 {
        match shard.push(entry) {
            Ok(()) => return,
            Err(back) => {
                entry = back;
                if let Some((old_block, old_desc)) = shard.pop() {
                    unsafe {
                        release_quarantined(inner, old_block, old_desc as *mut Descriptor)
                    };
                }
            }
        }
    }
    unsafe { release_quarantined(inner, entry.0, entry.1 as *mut Descriptor) };
}

/// Verifies a quarantined block's poison and hands it to the normal
/// free path. A rewritten byte is a use-after-free write through a
/// stale pointer; the block is still released (in `Detect` mode) so the
/// heap keeps functioning.
pub(crate) unsafe fn release_quarantined<S: PageSource>(
    inner: &Inner<S>,
    block: usize,
    desc_ptr: *mut Descriptor,
) {
    let desc = unsafe { &*desc_ptr };
    let sz = desc.sz() as usize;
    let clean =
        (PREFIX_SIZE..sz).all(|i| unsafe { *((block + i) as *const u8) } == POISON);
    if !clean {
        report(
            inner,
            MisuseReport {
                kind: MisuseKind::PoisonViolation,
                ptr: block,
                size_class: Some(sz),
                heap: desc.heap() as usize,
                tid: crate::heap::thread_id(),
            },
        );
    }
    unsafe { crate::free_impl::push_free_block(inner, desc_ptr, block) };
}

/// Hardened free of a large block whose span registry entry named
/// `base`. The registry `remove` CAS is the double-free arbiter: the
/// winner owns the span (and may dereference it), every loser reports
/// without touching memory.
unsafe fn free_large_hardened<S: PageSource>(inner: &Inner<S>, ptr: *mut u8, base: usize) {
    let addr = ptr as usize;
    if !inner.large_spans.remove(base) {
        // A concurrent free claimed the span between our lookup and
        // now: a racing double free.
        report(inner, misuse(MisuseKind::DoubleFree, ptr));
        return;
    }
    // Sole owner of the span from here on.
    let header = unsafe { (*(base as *const AtomicUsize)).load(Ordering::Relaxed) };
    let (total, guarded, hw) = crate::large::header_fields(header);
    let guard_bytes = if guarded { 2 * PAGE_SIZE } else { 0 };
    let user_off = addr - base;
    let prefix_ok = addr % PREFIX_SIZE == 0
        && user_off >= 2 * PREFIX_SIZE
        && addr < base + total - guard_bytes
        // Safe to read only after the range checks above: the prefix
        // word lies inside the span's unprotected prefix region.
        && unsafe { (*((addr - PREFIX_SIZE) as *const AtomicUsize)).load(Ordering::Relaxed) }
            == (user_off << 1) | crate::large::LARGE_FLAG;
    if !prefix_ok {
        // Interior (or otherwise mangled) pointer into a live large
        // block: put the span back and reject the free.
        inner.large_spans.insert(base, total);
        report(inner, misuse(MisuseKind::InvalidFree, ptr));
        return;
    }
    if guarded {
        let canary = base + total - 2 * PAGE_SIZE;
        let intact =
            (0..PAGE_SIZE).all(|i| unsafe { *((canary + i) as *const u8) } == GUARD_CANARY);
        if !intact {
            report(inner, misuse(MisuseKind::GuardOverrun, ptr));
            // Detect mode: still release the block below.
        }
        if hw {
            // Restore the trap page before the pages go back to the
            // source (pools may recycle them).
            unsafe {
                inner.source.protect_pages(
                    (base + total - PAGE_SIZE) as *mut u8,
                    PAGE_SIZE,
                    true,
                )
            };
        }
    }
    unsafe { crate::large::release_large(inner, base) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_roundtrip() {
        for kind in [
            MisuseKind::InvalidFree,
            MisuseKind::DoubleFree,
            MisuseKind::PoisonViolation,
            MisuseKind::GuardOverrun,
        ] {
            assert_eq!(MisuseKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(MisuseKind::from_index(NUM_KINDS), None);
    }

    #[test]
    fn counters_record_and_expose_last_report() {
        let c = MisuseCounters::new();
        assert_eq!(c.total(), 0);
        assert!(c.last_report().is_none());
        let r = MisuseReport {
            kind: MisuseKind::DoubleFree,
            ptr: 0xdead_bee8,
            size_class: Some(64),
            heap: 0x1000,
            tid: 7,
        };
        c.record(&r);
        c.record(&MisuseReport { kind: MisuseKind::InvalidFree, size_class: None, ..r });
        assert_eq!(c.count(MisuseKind::DoubleFree), 1);
        assert_eq!(c.count(MisuseKind::InvalidFree), 1);
        assert_eq!(c.count(MisuseKind::GuardOverrun), 0);
        assert_eq!(c.total(), 2);
        let last = c.last_report().unwrap();
        assert_eq!(last.kind, MisuseKind::InvalidFree);
        assert_eq!(last.ptr, 0xdead_bee8);
        assert_eq!(last.size_class, None);
    }

    #[test]
    fn report_display_is_informative() {
        let r = MisuseReport {
            kind: MisuseKind::PoisonViolation,
            ptr: 0xabc0,
            size_class: Some(128),
            heap: 0,
            tid: 3,
        };
        let s = format!("{r}");
        assert!(s.contains("PoisonViolation") && s.contains("0xabc0") && s.contains("128"), "{s}");
    }
}
