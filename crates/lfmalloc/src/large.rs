//! Large blocks: allocated directly from the OS, freed directly to the
//! OS (§3.1 / Figure 4 lines 2–3, Figure 6 lines 4–5).
//!
//! Layout of a large allocation:
//!
//! ```text
//! base (page aligned, >= align)
//! │ [ header: total_size | log2(os_align) ]   8 bytes
//! │ [ ...padding to satisfy user alignment... ]
//! │ [ prefix: (user_offset << 1) | 1 ]        8 bytes at user-8
//! └─[ user data: `size` bytes ]               at base + user_offset
//! ```
//!
//! The odd prefix word is the paper's "large block bit": `free` reads
//! the word before the user pointer and dispatches on the low bit
//! ("Large block - desc holds sz+1"). Descriptors are 64-byte aligned so
//! a genuine descriptor pointer is always even.

use crate::config::PREFIX_SIZE;
use crate::instance::Inner;
use core::sync::atomic::{AtomicUsize, Ordering};
use malloc_api::layout::align_up;
use osmem::source::{pages_for, PAGE_SIZE};
use osmem::PageSource;

/// Low prefix bit marking a large block.
pub(crate) const LARGE_FLAG: usize = 1;

/// The OS alignment exponent is stashed in the low bits of the header
/// word (total size is page-aligned, so its low 12 bits are free).
const ALIGN_EXP_MASK: usize = (1 << PAGE_SIZE.trailing_zeros()) - 1;

/// Allocates a large block of `size` bytes at `align`.
pub(crate) unsafe fn alloc_large<S: PageSource>(
    inner: &Inner<S>,
    size: usize,
    align: usize,
) -> *mut u8 {
    // User data starts at least 16 bytes in: 8 for the header word at
    // base, 8 for the prefix at user-8.
    let user_off = align_up(2 * PREFIX_SIZE, align.max(PREFIX_SIZE));
    // Checked rounding: near-usize::MAX requests must fail cleanly, not
    // wrap into tiny page counts.
    let Some(needed) = size.checked_add(user_off) else {
        return core::ptr::null_mut();
    };
    let Some(padded) = needed.checked_add(PAGE_SIZE - 1) else {
        return core::ptr::null_mut();
    };
    let total = pages_for(padded & !(PAGE_SIZE - 1));
    let os_align = align.max(PAGE_SIZE);
    // Bounded backoff: ride out a transient source outage rather than
    // reporting spurious OOM (same policy as the superblock carve).
    let base = crate::retry::with_backoff(inner.config.oom_retries, || unsafe {
        inner.source.alloc_pages(total, os_align)
    });
    if base.is_null() {
        return core::ptr::null_mut();
    }
    debug_assert_eq!(total & ALIGN_EXP_MASK, 0);
    let header = total | os_align.trailing_zeros() as usize;
    unsafe {
        (*(base as *const AtomicUsize)).store(header, Ordering::Relaxed);
        let user = base.add(user_off);
        (*(user.sub(PREFIX_SIZE) as *const AtomicUsize))
            .store((user_off << 1) | LARGE_FLAG, Ordering::Relaxed);
        inner.large_live.fetch_add(1, Ordering::Relaxed);
        inner.large_bytes.fetch_add(total, Ordering::Relaxed);
        user
    }
}

/// Usable bytes of a large block given its user pointer and prefix.
pub(crate) unsafe fn usable_size_large(ptr: *mut u8, prefix: usize) -> usize {
    debug_assert_eq!(prefix & LARGE_FLAG, LARGE_FLAG);
    let user_off = prefix >> 1;
    let base = ptr as usize - user_off;
    let header = unsafe { (*(base as *const AtomicUsize)).load(Ordering::Relaxed) };
    let total = header & !ALIGN_EXP_MASK;
    total - user_off
}

/// Frees a large block given its user pointer and (odd) prefix word.
pub(crate) unsafe fn free_large<S: PageSource>(inner: &Inner<S>, ptr: *mut u8, prefix: usize) {
    debug_assert_eq!(prefix & LARGE_FLAG, LARGE_FLAG);
    let user_off = prefix >> 1;
    let base = unsafe { ptr.sub(user_off) };
    let header = unsafe { (*(base as *const AtomicUsize)).load(Ordering::Relaxed) };
    let total = header & !ALIGN_EXP_MASK;
    let os_align = 1usize << (header & ALIGN_EXP_MASK);
    unsafe { inner.source.dealloc_pages(base, total, os_align) };
    inner.large_live.fetch_sub(1, Ordering::Relaxed);
    inner.large_bytes.fetch_sub(total, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_packing_roundtrip() {
        // total is page aligned; align exponent fits in the low bits.
        let total = 7 * PAGE_SIZE;
        let os_align = 1usize << 20;
        let header = total | os_align.trailing_zeros() as usize;
        assert_eq!(header & !ALIGN_EXP_MASK, total);
        assert_eq!(1usize << (header & ALIGN_EXP_MASK), os_align);
    }

    #[test]
    fn default_user_offset_is_16() {
        assert_eq!(align_up(2 * PREFIX_SIZE, PREFIX_SIZE), 16);
        assert_eq!(align_up(2 * PREFIX_SIZE, 64), 64);
        assert_eq!(align_up(2 * PREFIX_SIZE, 4096), 4096);
    }
}
