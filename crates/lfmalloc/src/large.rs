//! Large blocks: allocated directly from the OS, freed directly to the
//! OS (§3.1 / Figure 4 lines 2–3, Figure 6 lines 4–5).
//!
//! Layout of a large allocation:
//!
//! ```text
//! base (page aligned, >= align)
//! │ [ header: total_size | log2(os_align) ]   8 bytes
//! │ [ ...padding to satisfy user alignment... ]
//! │ [ prefix: (user_offset << 1) | 1 ]        8 bytes at user-8
//! └─[ user data: `size` bytes ]               at base + user_offset
//! ```
//!
//! The odd prefix word is the paper's "large block bit": `free` reads
//! the word before the user pointer and dispatches on the low bit
//! ("Large block - desc holds sz+1"). Descriptors are 64-byte aligned so
//! a genuine descriptor pointer is always even.

use crate::config::PREFIX_SIZE;
use crate::harden::{Hardening, GUARD_CANARY};
use crate::instance::Inner;
use core::sync::atomic::{AtomicUsize, Ordering};
use malloc_api::layout::align_up;
use osmem::source::{pages_for, PAGE_SIZE};
use osmem::PageSource;

/// Low prefix bit marking a large block.
pub(crate) const LARGE_FLAG: usize = 1;

/// Header flag field: total size is page-aligned, so its low 12 bits
/// are free for the alignment exponent and the hardening flags.
const ALIGN_EXP_MASK: usize = (1 << PAGE_SIZE.trailing_zeros()) - 1;

/// Alignment exponent: the low 6 flag bits (exponents reach at most 63
/// on a 64-bit address space).
const ALIGN_EXP_BITS: usize = 0x3F;

/// Header bit 6: the block carries two trailing guard pages (canary +
/// trap), excluded from its usable size.
const GUARDED_FLAG: usize = 1 << 6;

/// Header bit 7: the trailing guard page is hardware-protected
/// (`PROT_NONE`); it must be restored before the pages are released.
const HW_GUARD_FLAG: usize = 1 << 7;

/// Decodes a large-block header into `(total_bytes, guarded, hw_guard)`.
pub(crate) fn header_fields(header: usize) -> (usize, bool, bool) {
    (
        header & !ALIGN_EXP_MASK,
        header & GUARDED_FLAG != 0,
        header & HW_GUARD_FLAG != 0,
    )
}

/// Allocates a large block of `size` bytes at `align`.
pub(crate) unsafe fn alloc_large<S: PageSource>(
    inner: &Inner<S>,
    size: usize,
    align: usize,
) -> *mut u8 {
    let t0 = crate::lat_start!();
    // User data starts at least 16 bytes in: 8 for the header word at
    // base, 8 for the prefix at user-8.
    let user_off = align_up(2 * PREFIX_SIZE, align.max(PREFIX_SIZE));
    // Checked rounding: near-usize::MAX requests must fail cleanly, not
    // wrap into tiny page counts.
    let Some(needed) = size.checked_add(user_off) else {
        return core::ptr::null_mut();
    };
    let Some(padded) = needed.checked_add(PAGE_SIZE - 1) else {
        return core::ptr::null_mut();
    };
    // Hardened blocks carry two trailing guard pages: a canary page
    // whose bytes are verified on free, then a trap page that is made
    // PROT_NONE when the source supports it.
    let hardened = inner.config.hardening != Hardening::Off;
    let guard_bytes = if hardened { 2 * PAGE_SIZE } else { 0 };
    let Some(padded) = padded.checked_add(guard_bytes) else {
        return core::ptr::null_mut();
    };
    let total = pages_for(padded & !(PAGE_SIZE - 1));
    let os_align = align.max(PAGE_SIZE);
    // Bounded backoff: ride out a transient source outage rather than
    // reporting spurious OOM (same policy as the superblock carve).
    let base = crate::retry::with_backoff(inner.config.oom_retries, || {
        let p = unsafe { inner.source.alloc_pages(total, os_align) };
        if p.is_null() {
            crate::stat_global!(inner, oom_backoffs);
        }
        p
    });
    if base.is_null() {
        crate::stat_event!(inner, OomBackoff, 0, total);
        return core::ptr::null_mut();
    }
    debug_assert_eq!(total & ALIGN_EXP_MASK, 0);
    let mut header = total | os_align.trailing_zeros() as usize;
    if hardened {
        header |= GUARDED_FLAG;
        unsafe {
            core::ptr::write_bytes(
                base.add(total - 2 * PAGE_SIZE),
                GUARD_CANARY,
                PAGE_SIZE,
            );
            if inner.source.protect_pages(base.add(total - PAGE_SIZE), PAGE_SIZE, false) {
                header |= HW_GUARD_FLAG;
            }
        }
        // Register the span before the block can circulate; without a
        // registry entry a hardened free would reject the pointer.
        if !inner.large_spans.insert(base as usize, total) {
            unsafe {
                if header & HW_GUARD_FLAG != 0 {
                    inner.source.protect_pages(base.add(total - PAGE_SIZE), PAGE_SIZE, true);
                }
                inner.source.dealloc_pages(base, total, os_align);
            }
            return core::ptr::null_mut();
        }
    }
    unsafe {
        (*(base as *const AtomicUsize)).store(header, Ordering::Relaxed);
        let user = base.add(user_off);
        (*(user.sub(PREFIX_SIZE) as *const AtomicUsize))
            .store((user_off << 1) | LARGE_FLAG, Ordering::Relaxed);
        inner.large_live.fetch_add(1, Ordering::Relaxed);
        inner.large_bytes.fetch_add(total, Ordering::Relaxed);
        crate::stat_global!(inner, large_alloc);
        crate::stat_lat!(inner, lat_malloc_large, t0);
        user
    }
}

/// Usable bytes of a large block given its user pointer and prefix
/// (guard pages, when present, are not usable).
pub(crate) unsafe fn usable_size_large(ptr: *mut u8, prefix: usize) -> usize {
    debug_assert_eq!(prefix & LARGE_FLAG, LARGE_FLAG);
    let user_off = prefix >> 1;
    let base = ptr as usize - user_off;
    let header = unsafe { (*(base as *const AtomicUsize)).load(Ordering::Relaxed) };
    let (total, guarded, _) = header_fields(header);
    let guard_bytes = if guarded { 2 * PAGE_SIZE } else { 0 };
    total - guard_bytes - user_off
}

/// Frees a large block given its user pointer and (odd) prefix word
/// (the trusting non-hardened path; hardened frees route through
/// [`crate::harden`], which validates and then calls
/// [`release_large`]).
pub(crate) unsafe fn free_large<S: PageSource>(inner: &Inner<S>, ptr: *mut u8, prefix: usize) {
    debug_assert_eq!(prefix & LARGE_FLAG, LARGE_FLAG);
    let user_off = prefix >> 1;
    let base = unsafe { ptr.sub(user_off) };
    unsafe { release_large(inner, base as usize) };
}

/// Returns a large block's pages to the source and settles the
/// accounting, given its validated base address.
pub(crate) unsafe fn release_large<S: PageSource>(inner: &Inner<S>, base: usize) {
    let t0 = crate::lat_start!();
    let header = unsafe { (*(base as *const AtomicUsize)).load(Ordering::Relaxed) };
    let (total, _, _) = header_fields(header);
    let os_align = 1usize << (header & ALIGN_EXP_BITS);
    unsafe { inner.source.dealloc_pages(base as *mut u8, total, os_align) };
    inner.large_live.fetch_sub(1, Ordering::Relaxed);
    inner.large_bytes.fetch_sub(total, Ordering::Relaxed);
    crate::stat_global!(inner, large_free);
    crate::stat_lat!(inner, lat_free_large, t0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_packing_roundtrip() {
        // total is page aligned; align exponent fits in the low bits.
        let total = 7 * PAGE_SIZE;
        let os_align = 1usize << 20;
        let header = total | os_align.trailing_zeros() as usize;
        assert_eq!(header_fields(header), (total, false, false));
        assert_eq!(1usize << (header & ALIGN_EXP_BITS), os_align);
        // Guard flags coexist with any exponent up to 63.
        let header = total | 63 | GUARDED_FLAG | HW_GUARD_FLAG;
        assert_eq!(header_fields(header), (total, true, true));
        assert_eq!(header & ALIGN_EXP_BITS, 63);
    }

    #[test]
    fn default_user_offset_is_16() {
        assert_eq!(align_up(2 * PREFIX_SIZE, PREFIX_SIZE), 16);
        assert_eq!(align_up(2 * PREFIX_SIZE, 64), 64);
        assert_eq!(align_up(2 * PREFIX_SIZE, 4096), 4096);
    }
}
