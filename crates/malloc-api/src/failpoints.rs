//! Deterministic, seedable fault injection for the lock-free stack.
//!
//! The paper's availability claim (§3, §5) is about what happens when a
//! thread is delayed, preempted, or killed *inside* a lock-free
//! operation: every CAS window must tolerate arbitrary interleavings.
//! This module gives each such window a *named failpoint* that tests can
//! arm to inject, deterministically from a seed:
//!
//! * a scheduler yield ([`FpAction::Yield`]) — widens the race window,
//! * a bounded spin delay ([`FpAction::Delay`]) — simulates preemption,
//! * a forced CAS retry ([`FpAction::Retry`]) — exercises the loop's
//!   failure arm even when no real contention exists,
//! * a simulated thread death ([`FpAction::Kill`]) — the call site
//!   abandons the operation mid-flight, exactly like a thread killed by
//!   the OS between two instructions.
//!
//! A site is reached via the [`fail_point!`] macro and returns an
//! [`FpSignal`] the caller inspects:
//!
//! ```ignore
//! let fp = malloc_api::fail_point!("active.reserve");
//! if fp.retry { continue; }        // forced CAS-retry
//! if fp.kill { return abandon(); } // simulated thread death
//! ```
//!
//! With the `failpoints` cargo feature disabled (the default), the macro
//! expands to the constant [`FpSignal::NONE`]; both branches above are
//! `if false` and the optimizer removes the site entirely, so release
//! binaries carry zero failpoint code.
//!
//! Firing is decided by an [`FpTrigger`] (always / every-Nth hit /
//! probabilistic from a per-site PRNG seeded by [`ScenarioGuard`]), with
//! an optional fire budget for one-shot or bounded faults. Cumulative
//! per-site fire counts survive re-arming so a test can assert which
//! sites actually fired.
//!
//! Configuration is process-global (the sites live inside allocator
//! instances that tests construct freely), so tests that arm failpoints
//! must hold the [`scenario`] guard — it serializes such tests against
//! each other and guarantees a clean slate on entry and exit.

/// What a call site should do, decided by the armed failpoint.
///
/// Yield and delay are performed *inside* [`hit`] before returning;
/// retry and kill are returned as flags because only the call site knows
/// how to re-enter its loop or abandon its operation legally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpSignal {
    /// The call site should take its CAS-failure arm once.
    pub retry: bool,
    /// The call site should abandon the operation as if the thread died.
    pub kill: bool,
}

impl FpSignal {
    /// The "nothing armed" signal; what every site sees with the
    /// `failpoints` feature off.
    pub const NONE: FpSignal = FpSignal { retry: false, kill: false };
}

/// Reaches the named failpoint: expands to [`failpoints::hit`](hit) with
/// the `failpoints` feature on, and to the constant [`FpSignal::NONE`]
/// (which the optimizer folds away) with the feature off.
///
/// The feature is resolved in the *calling* crate, so every crate that
/// wires failpoints re-exports a `failpoints` feature forwarding to
/// `malloc-api/failpoints`.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            $crate::failpoints::hit($name)
        }
        #[cfg(not(feature = "failpoints"))]
        {
            $crate::failpoints::FpSignal::NONE
        }
    }};
}

#[cfg(feature = "failpoints")]
pub use imp::*;

#[cfg(feature = "failpoints")]
mod imp {
    use super::FpSignal;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The fault injected when a site fires.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FpAction {
        /// `std::thread::yield_now()` at the site.
        Yield,
        /// Spin (`spin_loop` hint) for this many iterations at the site.
        Delay(u32),
        /// Ask the site to take its CAS-failure/retry arm once.
        Retry,
        /// Ask the site to abandon the operation (simulated thread death).
        Kill,
    }

    /// When an armed site fires.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FpTrigger {
        /// Every time the site is reached.
        Always,
        /// On the Nth, 2Nth, 3Nth... hit (N of 0 never fires).
        EveryNth(u64),
        /// With probability `p / 65536` per hit, drawn from the site's
        /// seeded PRNG (deterministic given the scenario seed and the
        /// site's hit sequence).
        Chance(u16),
    }

    struct Site {
        action: FpAction,
        trigger: FpTrigger,
        /// Remaining fires before the site disarms itself; `None` means
        /// unlimited.
        budget: Option<u64>,
        hits: u64,
        rng: u64,
    }

    #[derive(Default)]
    struct Registry {
        sites: HashMap<&'static str, Site>,
        seed: u64,
        /// Cumulative fires per site; survives re-arming and budget
        /// exhaustion so tests can assert coverage.
        fired: HashMap<&'static str, u64>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn lock_registry() -> MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn site_seed(scenario_seed: u64, name: &str) -> u64 {
        // FNV-1a over the site name, mixed with the scenario seed, so
        // each site draws an independent deterministic stream.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = scenario_seed ^ h;
        splitmix64(&mut s)
    }

    /// Arms `name` to perform `action` whenever `trigger` says so, with
    /// no fire limit.
    pub fn arm(name: &'static str, action: FpAction, trigger: FpTrigger) {
        arm_limited(name, action, trigger, u64::MAX);
    }

    /// Arms `name` with a fire budget: after `max_fires` fires the site
    /// disarms itself (one-shot faults use `max_fires == 1`).
    pub fn arm_limited(name: &'static str, action: FpAction, trigger: FpTrigger, max_fires: u64) {
        let mut reg = lock_registry();
        let rng = site_seed(reg.seed, name);
        let budget = if max_fires == u64::MAX { None } else { Some(max_fires) };
        reg.sites.insert(name, Site { action, trigger, budget, hits: 0, rng });
    }

    /// Disarms one site (its cumulative fire count is preserved).
    pub fn disarm(name: &str) {
        lock_registry().sites.remove(name);
    }

    /// Disarms every site and zeroes all counters and the seed.
    pub fn clear() {
        let mut reg = lock_registry();
        reg.sites.clear();
        reg.fired.clear();
        reg.seed = 0;
    }

    /// Sets the scenario seed and reseeds every armed site's PRNG.
    pub fn set_seed(seed: u64) {
        let mut reg = lock_registry();
        reg.seed = seed;
        let names: Vec<&'static str> = reg.sites.keys().copied().collect();
        for name in names {
            let rng = site_seed(seed, name);
            if let Some(site) = reg.sites.get_mut(name) {
                site.rng = rng;
                site.hits = 0;
            }
        }
    }

    /// Cumulative number of times `name` fired since the last [`clear`].
    pub fn fired(name: &str) -> u64 {
        lock_registry().fired.get(name).copied().unwrap_or(0)
    }

    /// Every site that fired since the last [`clear`], with counts,
    /// sorted by name for stable assertions.
    pub fn fired_sites() -> Vec<(&'static str, u64)> {
        let reg = lock_registry();
        let mut v: Vec<(&'static str, u64)> =
            reg.fired.iter().map(|(n, c)| (*n, *c)).collect();
        v.sort_unstable();
        v
    }

    /// The live decision point behind [`fail_point!`].
    pub fn hit(name: &'static str) -> FpSignal {
        let action = {
            let mut reg = lock_registry();
            let Some(site) = reg.sites.get_mut(name) else {
                return FpSignal::NONE;
            };
            site.hits += 1;
            let fires = match site.trigger {
                FpTrigger::Always => true,
                FpTrigger::EveryNth(n) => n != 0 && site.hits % n == 0,
                FpTrigger::Chance(p) => ((splitmix64(&mut site.rng) >> 48) as u16) < p,
            };
            if !fires {
                return FpSignal::NONE;
            }
            if let Some(budget) = &mut site.budget {
                if *budget == 0 {
                    return FpSignal::NONE;
                }
                *budget -= 1;
            }
            let action = site.action;
            *reg.fired.entry(name).or_insert(0) += 1;
            action
        };
        match action {
            FpAction::Yield => {
                std::thread::yield_now();
                FpSignal::NONE
            }
            FpAction::Delay(spins) => {
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                FpSignal::NONE
            }
            FpAction::Retry => FpSignal { retry: true, kill: false },
            FpAction::Kill => FpSignal { retry: false, kill: true },
        }
    }

    /// Serializes failpoint-using tests and guarantees a clean registry.
    ///
    /// Acquire with [`scenario`]; on drop the registry is cleared again
    /// so a later non-failpoint test never sees stale faults.
    pub struct ScenarioGuard {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for ScenarioGuard {
        fn drop(&mut self) {
            clear();
        }
    }

    /// Starts a fault scenario: takes the global scenario lock, clears
    /// all previous state, and installs `seed` for probabilistic
    /// triggers.
    pub fn scenario(seed: u64) -> ScenarioGuard {
        static SCENARIO: Mutex<()> = Mutex::new(());
        let lock = SCENARIO.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        set_seed(seed);
        ScenarioGuard { _lock: lock }
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_silent() {
        let _s = scenario(1);
        assert_eq!(hit("fp.test.unarmed"), FpSignal::NONE);
        assert_eq!(fired("fp.test.unarmed"), 0);
    }

    #[test]
    fn retry_fires_and_counts() {
        let _s = scenario(1);
        arm("fp.test.retry", FpAction::Retry, FpTrigger::Always);
        assert!(hit("fp.test.retry").retry);
        assert!(hit("fp.test.retry").retry);
        assert_eq!(fired("fp.test.retry"), 2);
    }

    #[test]
    fn every_nth_skips_between_fires() {
        let _s = scenario(1);
        arm("fp.test.nth", FpAction::Kill, FpTrigger::EveryNth(3));
        let kills: Vec<bool> = (0..9).map(|_| hit("fp.test.nth").kill).collect();
        assert_eq!(kills, [false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn budget_disarms_after_max_fires() {
        let _s = scenario(1);
        arm_limited("fp.test.oneshot", FpAction::Kill, FpTrigger::Always, 1);
        assert!(hit("fp.test.oneshot").kill);
        assert!(!hit("fp.test.oneshot").kill);
        assert_eq!(fired("fp.test.oneshot"), 1);
    }

    #[test]
    fn chance_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let _s = scenario(seed);
            arm("fp.test.chance", FpAction::Retry, FpTrigger::Chance(32768));
            (0..64).map(|_| hit("fp.test.chance").retry).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ");
        let fires = a.iter().filter(|x| **x).count();
        assert!(fires > 8 && fires < 56, "p=0.5 should fire roughly half: {fires}/64");
    }

    #[test]
    fn scenario_drop_clears_state() {
        {
            let _s = scenario(7);
            arm("fp.test.cleanup", FpAction::Retry, FpTrigger::Always);
            assert!(hit("fp.test.cleanup").retry);
        }
        let _s = scenario(8);
        assert_eq!(hit("fp.test.cleanup"), FpSignal::NONE);
        assert_eq!(fired("fp.test.cleanup"), 0);
    }
}
