//! A safe RAII wrapper over one raw block: the smallest safe surface on
//! top of [`RawMalloc`], for users who want allocator-backed buffers
//! without `unsafe`.

use crate::RawMalloc;
use core::ptr::NonNull;

/// An owned, zero-initialized byte buffer borrowed from an allocator;
/// freed on drop.
///
/// # Example
///
/// ```
/// use malloc_api::{block::OwnedBlock, RawMalloc};
/// # struct Sys;
/// # unsafe impl RawMalloc for Sys {
/// #     unsafe fn malloc(&self, size: usize) -> *mut u8 {
/// #         std::alloc::alloc_zeroed(std::alloc::Layout::from_size_align(size.max(1), 8).unwrap())
/// #     }
/// #     unsafe fn free(&self, _p: *mut u8) {}
/// #     fn name(&self) -> &str { "sys" }
/// # }
/// # let alloc = Sys;
/// let mut block = OwnedBlock::new(&alloc, 64).expect("out of memory");
/// block.as_mut_slice()[0] = 42;
/// assert_eq!(block.as_slice()[0], 42);
/// assert_eq!(block.len(), 64);
/// // Dropped here: returned to `alloc`.
/// ```
#[derive(Debug)]
pub struct OwnedBlock<'a, A: RawMalloc + ?Sized> {
    ptr: NonNull<u8>,
    size: usize,
    alloc: &'a A,
}

impl<'a, A: RawMalloc + ?Sized> OwnedBlock<'a, A> {
    /// Allocates `size` zeroed bytes from `alloc`; `None` on failure.
    pub fn new(alloc: &'a A, size: usize) -> Option<Self> {
        let p = unsafe { alloc.malloc_zeroed(size) };
        NonNull::new(p).map(|ptr| OwnedBlock { ptr, size, alloc })
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True for zero-length blocks.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Read access to the bytes.
    pub fn as_slice(&self) -> &[u8] {
        unsafe { core::slice::from_raw_parts(self.ptr.as_ptr(), self.size) }
    }

    /// Write access to the bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        unsafe { core::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.size) }
    }

    /// The raw pointer (stays owned by this block).
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr.as_ptr()
    }

    /// Resizes in place or by move, preserving contents up to
    /// `min(old, new)`; on failure the block is unchanged.
    pub fn resize(&mut self, new_size: usize) -> Result<(), ()> {
        let np = unsafe { self.alloc.realloc(self.ptr.as_ptr(), self.size, new_size) };
        match NonNull::new(np) {
            Some(ptr) => {
                // Zero any newly exposed tail for the safe-API guarantee.
                if new_size > self.size {
                    unsafe {
                        core::ptr::write_bytes(
                            ptr.as_ptr().add(self.size),
                            0,
                            new_size - self.size,
                        );
                    }
                }
                self.ptr = ptr;
                self.size = new_size;
                Ok(())
            }
            None => Err(()),
        }
    }

    /// Releases ownership; the caller must `free` the pointer itself.
    pub fn into_raw(self) -> (*mut u8, usize) {
        let out = (self.ptr.as_ptr(), self.size);
        core::mem::forget(self);
        out
    }
}

impl<A: RawMalloc + ?Sized> Drop for OwnedBlock<'_, A> {
    fn drop(&mut self) {
        unsafe { self.alloc.free(self.ptr.as_ptr()) };
    }
}

unsafe impl<A: RawMalloc + Sync + ?Sized> Send for OwnedBlock<'_, A> {}
unsafe impl<A: RawMalloc + Sync + ?Sized> Sync for OwnedBlock<'_, A> {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sys;
    unsafe impl RawMalloc for Sys {
        unsafe fn malloc(&self, size: usize) -> *mut u8 {
            unsafe {
                std::alloc::alloc(
                    std::alloc::Layout::from_size_align(size.max(1).next_multiple_of(8), 8)
                        .unwrap(),
                )
            }
        }
        unsafe fn free(&self, _p: *mut u8) {
            // Test shim leaks (sizes unknown at free); fine for tests.
        }
        fn name(&self) -> &str {
            "sys"
        }
    }

    #[test]
    fn zeroed_on_creation() {
        let a = Sys;
        let b = OwnedBlock::new(&a, 128).unwrap();
        assert!(b.as_slice().iter().all(|&x| x == 0));
        assert_eq!(b.len(), 128);
        assert!(!b.is_empty());
    }

    #[test]
    fn write_read_roundtrip() {
        let a = Sys;
        let mut b = OwnedBlock::new(&a, 16).unwrap();
        b.as_mut_slice().copy_from_slice(&[7u8; 16]);
        assert_eq!(b.as_slice(), &[7u8; 16]);
    }

    #[test]
    fn resize_preserves_and_zeroes() {
        let a = Sys;
        let mut b = OwnedBlock::new(&a, 8).unwrap();
        b.as_mut_slice().copy_from_slice(&[9u8; 8]);
        b.resize(32).unwrap();
        assert_eq!(&b.as_slice()[..8], &[9u8; 8], "contents preserved");
        assert!(b.as_slice()[8..].iter().all(|&x| x == 0), "tail zeroed");
        b.resize(4).unwrap();
        assert_eq!(b.as_slice(), &[9u8; 4]);
    }

    #[test]
    fn into_raw_releases_ownership() {
        let a = Sys;
        let b = OwnedBlock::new(&a, 8).unwrap();
        let (p, sz) = b.into_raw();
        assert!(!p.is_null());
        assert_eq!(sz, 8);
        unsafe { a.free(p) };
    }
}
