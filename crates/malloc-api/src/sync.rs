//! Thin lock wrappers over `std::sync` with a `parking_lot`-flavored API.
//!
//! The baseline allocators (`dlheap::LockedHeap`, `ptmalloc`, `hoard`)
//! want three things the raw std API does not give directly:
//!
//! * `lock()` / `read()` / `write()` return the guard, not a `Result` —
//!   a panic while holding a lock must not poison the heap for every
//!   later caller (an allocator that throws once and then refuses all
//!   service is useless as a baseline).
//! * `try_lock()` returns `Option<Guard>` (the ptmalloc arena-hopping
//!   scan is written against exactly that shape).
//! * The guard types are nameable (`hoard` returns a guard from a
//!   helper function).
//!
//! Keeping this in `malloc-api` lets the whole workspace build with no
//! external dependencies.

use std::sync::TryLockError;

/// The guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never fails and never stays poisoned.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired; ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose acquires never fail and never stay
/// poisoned.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked `RwLock` holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access; ignores poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access; ignores poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Shared access only if no writer holds the lock right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access only if the lock is free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7usize));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A poisoned std mutex would panic here; ours recovers.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write_roundtrip() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        let r = l.read();
        assert!(l.try_write().is_none(), "reader must block writers");
        drop(r);
        assert!(l.try_write().is_some());
    }
}
