//! Common raw-malloc interface for the lfmalloc reproduction.
//!
//! Every allocator in this workspace — the lock-free allocator from
//! Michael (PLDI 2004) and the three baselines it is evaluated against
//! (a serial "libc"-style heap behind one lock, a Ptmalloc-style arena
//! allocator, and a Hoard-style superblock allocator) — implements the
//! [`RawMalloc`] trait defined here. The benchmark workloads in the
//! `workloads` crate are generic over this trait, so a single workload
//! implementation measures all allocators identically, exactly as the
//! paper runs one benchmark binary against interchangeable `malloc`
//! shared libraries.
//!
//! # Example
//!
//! ```
//! use malloc_api::{RawMalloc, layout::align_up};
//!
//! /// A trivial allocator that leaks everything (for illustration only).
//! struct Leaky;
//!
//! unsafe impl RawMalloc for Leaky {
//!     unsafe fn malloc(&self, size: usize) -> *mut u8 {
//!         let layout = std::alloc::Layout::from_size_align(align_up(size.max(1), 8), 8).unwrap();
//!         std::alloc::alloc(layout)
//!     }
//!     unsafe fn free(&self, _ptr: *mut u8) {}
//!     fn name(&self) -> &str { "leaky" }
//! }
//!
//! let a = Leaky;
//! let p = unsafe { a.malloc(100) };
//! assert!(!p.is_null());
//! unsafe { a.free(p) };
//! ```

pub mod block;
pub mod failpoints;
pub mod layout;
pub mod procfork;
pub mod stats;
pub mod sync;
#[cfg(feature = "stats")]
pub mod telemetry;
pub mod testkit;

pub use stats::AllocStats;

/// The minimum alignment every [`RawMalloc::malloc`] result must satisfy.
///
/// This matches the paper's allocator, which returns `addr + EIGHTBYTES`
/// inside superblocks whose blocks are 8-byte aligned, and matches the
/// C `malloc` contract on 64-bit platforms for objects up to 8 bytes.
pub const MIN_MALLOC_ALIGN: usize = 8;

/// A multithread-safe `malloc`/`free` pair, the interface the paper's
/// benchmarks drive.
///
/// # Safety
///
/// Implementations must guarantee, for any interleaving of calls from any
/// number of threads:
///
/// * `malloc(size)` returns either a null pointer (allocation failure) or
///   a pointer to at least `size` bytes, aligned to at least
///   [`MIN_MALLOC_ALIGN`], that does not overlap any other live block.
/// * A block stays valid until the first `free` of its pointer.
/// * `free(ptr)` accepts any pointer previously returned by `malloc` on
///   the same allocator instance (from *any* thread — remote free must be
///   supported; this is the producer-consumer pattern of §4.1) and must
///   tolerate `ptr == null` as a no-op.
///
/// Callers must never free a pointer twice, free a pointer the instance
/// did not allocate, or touch a block after freeing it.
pub unsafe trait RawMalloc: Sync {
    /// Allocates `size` bytes aligned to at least [`MIN_MALLOC_ALIGN`].
    ///
    /// Returns null on allocation failure. `size == 0` is allowed and
    /// returns a valid, freeable, unique pointer (like glibc). Sizes so
    /// large that internal rounding (headers, page alignment) would
    /// overflow `usize` must fail cleanly with null — never wrap into a
    /// small allocation or panic (`testkit::check_overflow` pins this).
    ///
    /// # Safety
    ///
    /// The returned memory is uninitialized; the caller must not read it
    /// before writing, and must eventually pass it to [`RawMalloc::free`]
    /// exactly once.
    ///
    /// Under the `stats` feature the declaration is `#[track_caller]`
    /// so heap profilers can attribute allocations to the original call
    /// site through the blanket `&A`/`Arc<A>` forwarders (a trait-level
    /// attribute applies to every implementation).
    #[cfg_attr(feature = "stats", track_caller)]
    unsafe fn malloc(&self, size: usize) -> *mut u8;

    /// Returns a block obtained from [`RawMalloc::malloc`].
    ///
    /// # Safety
    ///
    /// `ptr` must be null or a pointer returned by `malloc` on this
    /// instance that has not already been freed.
    unsafe fn free(&self, ptr: *mut u8);

    /// Short human-readable allocator name used in benchmark reports
    /// (e.g. `"lfmalloc"`, `"hoard"`, `"ptmalloc"`, `"libc-serial"`).
    fn name(&self) -> &str;

    /// Allocates `size` bytes aligned to `align` (a power of two).
    ///
    /// The default routes through `malloc` and is only correct for
    /// `align <= MIN_MALLOC_ALIGN`; allocators that support stronger
    /// alignment override this. Requests whose `size`/`align`
    /// combination cannot be represented (overflow during rounding)
    /// must return null, never wrap.
    ///
    /// # Safety
    ///
    /// Same contract as [`RawMalloc::malloc`]; additionally `align` must
    /// be a power of two.
    #[cfg_attr(feature = "stats", track_caller)]
    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(align.is_power_of_two());
        if align <= MIN_MALLOC_ALIGN {
            self.malloc(size)
        } else {
            core::ptr::null_mut()
        }
    }

    /// Allocates `size` zeroed bytes (the `calloc(1, size)` shape).
    ///
    /// # Safety
    ///
    /// Same contract as [`RawMalloc::malloc`].
    #[cfg_attr(feature = "stats", track_caller)]
    unsafe fn malloc_zeroed(&self, size: usize) -> *mut u8 {
        let p = self.malloc(size);
        if !p.is_null() {
            core::ptr::write_bytes(p, 0, size);
        }
        p
    }

    /// Allocates an array of `count` elements of `size` bytes each, all
    /// zeroed — the C `calloc` contract. The `count * size` multiply is
    /// overflow-checked: requests whose product does not fit a `usize`
    /// must fail cleanly with null, never wrap into a small allocation
    /// (the classic calloc CVE shape). `count == 0` or `size == 0`
    /// behaves like `malloc(0)`: a valid, unique, freeable pointer.
    ///
    /// The default routes through [`malloc_zeroed`](Self::malloc_zeroed)
    /// (malloc + explicit memset). Allocators whose fresh memory is
    /// provably zero (e.g. straight-from-OS large blocks) may override
    /// to skip the memset — `testkit::check_calloc` pins the observable
    /// contract either way.
    ///
    /// # Safety
    ///
    /// Same contract as [`RawMalloc::malloc`].
    #[cfg_attr(feature = "stats", track_caller)]
    unsafe fn calloc(&self, count: usize, size: usize) -> *mut u8 {
        let Some(total) = count.checked_mul(size) else {
            return core::ptr::null_mut();
        };
        unsafe { self.malloc_zeroed(total) }
    }

    /// Number of usable bytes in the block at `ptr` (at least the
    /// requested size; possibly more due to size-class rounding).
    /// Returns 0 when the allocator cannot tell (the conservative
    /// default).
    ///
    /// # Safety
    ///
    /// `ptr` must be a live block of this allocator.
    unsafe fn usable_size(&self, ptr: *mut u8) -> usize {
        let _ = ptr;
        0
    }

    /// Resizes a block, preserving `min(old, new)` bytes of content —
    /// the C `realloc` contract. Null `ptr` behaves as `malloc`; returns
    /// null (leaving the old block intact) on failure.
    ///
    /// The default copies through a fresh block using
    /// [`usable_size`](Self::usable_size) when available, else
    /// `old_size_hint` (the caller's knowledge of the original request —
    /// Rust's `GlobalAlloc::realloc` always has it).
    ///
    /// # Safety
    ///
    /// `ptr` null or live; `old_size_hint` no larger than the block's
    /// original requested size.
    #[cfg_attr(feature = "stats", track_caller)]
    unsafe fn realloc(&self, ptr: *mut u8, old_size_hint: usize, new_size: usize) -> *mut u8 {
        if ptr.is_null() {
            return unsafe { self.malloc(new_size) };
        }
        let usable = unsafe { self.usable_size(ptr) };
        if usable >= new_size && usable != 0 {
            return ptr; // grows within the same block
        }
        let new = unsafe { self.malloc(new_size) };
        if !new.is_null() {
            let copy = old_size_hint.max(usable).min(new_size);
            unsafe {
                core::ptr::copy_nonoverlapping(ptr, new, copy);
                self.free(ptr);
            }
        }
        new
    }

    /// A point-in-time snapshot of the allocator's memory accounting.
    ///
    /// Used by the §4.2.5 space-efficiency experiment. Allocators that do
    /// not track statistics return [`AllocStats::default`].
    fn stats(&self) -> AllocStats {
        AllocStats::default()
    }
}

// Blanket impls so workloads can take `&A` or `Arc<A>` transparently.
unsafe impl<A: RawMalloc + ?Sized> RawMalloc for &A {
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        (**self).malloc(size)
    }
    unsafe fn free(&self, ptr: *mut u8) {
        (**self).free(ptr)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        (**self).malloc_aligned(size, align)
    }
    unsafe fn calloc(&self, count: usize, size: usize) -> *mut u8 {
        (**self).calloc(count, size)
    }
    unsafe fn usable_size(&self, ptr: *mut u8) -> usize {
        (**self).usable_size(ptr)
    }
    unsafe fn realloc(&self, ptr: *mut u8, old_size_hint: usize, new_size: usize) -> *mut u8 {
        (**self).realloc(ptr, old_size_hint, new_size)
    }
    fn stats(&self) -> AllocStats {
        (**self).stats()
    }
}

unsafe impl<A: RawMalloc + Send + ?Sized> RawMalloc for std::sync::Arc<A> {
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        (**self).malloc(size)
    }
    unsafe fn free(&self, ptr: *mut u8) {
        (**self).free(ptr)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        (**self).malloc_aligned(size, align)
    }
    unsafe fn calloc(&self, count: usize, size: usize) -> *mut u8 {
        (**self).calloc(count, size)
    }
    unsafe fn usable_size(&self, ptr: *mut u8) -> usize {
        (**self).usable_size(ptr)
    }
    unsafe fn realloc(&self, ptr: *mut u8, old_size_hint: usize, new_size: usize) -> *mut u8 {
        (**self).realloc(ptr, old_size_hint, new_size)
    }
    fn stats(&self) -> AllocStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SysMalloc;

    unsafe impl RawMalloc for SysMalloc {
        unsafe fn malloc(&self, size: usize) -> *mut u8 {
            let l =
                std::alloc::Layout::from_size_align(layout::align_up(size.max(8), 8), 8).unwrap();
            std::alloc::alloc(l)
        }
        unsafe fn free(&self, _ptr: *mut u8) {
            // Leaking in a test shim is fine; real impls reclaim.
        }
        fn name(&self) -> &str {
            "sys"
        }
    }

    #[test]
    fn default_zeroed_zeroes() {
        let a = SysMalloc;
        unsafe {
            let p = a.malloc_zeroed(64);
            assert!(!p.is_null());
            for i in 0..64 {
                assert_eq!(*p.add(i), 0);
            }
            a.free(p);
        }
    }

    #[test]
    fn default_aligned_rejects_large_align() {
        let a = SysMalloc;
        unsafe {
            assert!(a.malloc_aligned(8, 4096).is_null());
            let p = a.malloc_aligned(8, 8);
            assert!(!p.is_null());
            a.free(p);
        }
    }

    #[test]
    fn reference_forwarding_preserves_name() {
        let a = SysMalloc;
        let r = &a;
        assert_eq!(RawMalloc::name(&r), "sys");
    }

    #[test]
    fn arc_forwarding_allocates() {
        let a = std::sync::Arc::new(SysMalloc);
        unsafe {
            let p = a.malloc(16);
            assert!(!p.is_null());
            a.free(p);
        }
    }

    #[test]
    fn default_stats_are_zero() {
        let a = SysMalloc;
        let s = a.stats();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.peak_bytes, 0);
    }
}
