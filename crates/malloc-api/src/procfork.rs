//! Process-lifecycle (fork) hooks and the process generation counter.
//!
//! `fork()` in a multithreaded process copies the whole address space but
//! only the *calling* thread survives in the child. For an allocator that
//! is bad news twice over: lock-based allocators can be cloned with a
//! lock held by a thread that no longer exists (the child deadlocks on
//! first use), and even a lock-free allocator inherits per-thread state —
//! hazard records, retired queues, background threads — whose owners are
//! gone. POSIX answers with `pthread_atfork`; this module provides the
//! same prepare/parent/child protocol **in-tree**, so it is testable,
//! deterministic, and free of the libc allocation hazards that make
//! `pthread_atfork` unusable from inside a global allocator's
//! initialization path (glibc's `pthread_atfork` may itself `malloc`,
//! which would recurse into the allocator being constructed).
//!
//! # The three ways hooks run
//!
//! 1. **[`fork`] wrapper** (preferred, what the workspace's tests use):
//!    runs every registered prepare hook, calls the raw libc `fork`, then
//!    runs parent hooks in the parent and child hooks in the child.
//!    Fully in-tree; nothing depends on libc's handler list.
//! 2. **[`install`] bridge** (opt-in): registers the three runners with
//!    the real `pthread_atfork`, so raw `libc::fork()` calls made by
//!    foreign code also run the hooks. Must be called early from a
//!    context that may allocate (never from allocator init).
//! 3. **[`child_after_raw_fork`]** (escape hatch): a child created by a
//!    raw `fork()` with neither of the above can call this, immediately
//!    after forking and before creating threads, to bump the generation
//!    and run child hooks.
//!
//! # The generation counter
//!
//! [`generation`] starts at 0 and is incremented in the child (before
//! child hooks run). Long-lived structures stamp the generation they were
//! created under; comparing the stamp against the current generation is
//! a one-load test for "did a fork happen since?" — the mechanism behind
//! lfmalloc's lazy child-side heap recovery and its fork-aware
//! thread-id TLS.
//!
//! # Ordering and locking
//!
//! Like POSIX: prepare hooks run in **reverse** registration order,
//! parent/child hooks in registration order, so nested lock hierarchies
//! acquired by prepare are released in the opposite order. The registry
//! itself is a fixed-size slot array behind a spinlock — no allocation
//! on any path — and the spinlock is held **across** the fork (acquired
//! by prepare, released by parent/child), so the child can never observe
//! a half-registered entry and concurrent forks serialize.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Capacity of the hook registry. Each allocator instance uses one slot;
/// 64 concurrent fork-aware allocator instances is far beyond any real
/// configuration (the workspace's torture tests peak below ten).
pub const MAX_HOOKS: usize = 64;

/// One hook function: called with the `data` word its registration
/// supplied (typically a pointer to the instance, as a `usize`).
///
/// # Safety contract (for registrants)
///
/// Hooks run during [`fork`] with the registry lock held: they must not
/// register/unregister hooks or fork, and child hooks run in the
/// single-threaded child where every other parent thread is gone.
pub type Hook = unsafe fn(usize);

/// The prepare/parent/child triple plus its context word.
#[derive(Clone, Copy, Default)]
pub struct HookSet {
    /// Runs in the forking process before `fork` (reverse registration
    /// order). Acquire locks here.
    pub prepare: Option<Hook>,
    /// Runs in the parent after `fork` (registration order). Release
    /// what prepare acquired.
    pub parent: Option<Hook>,
    /// Runs in the child after `fork` (registration order), after the
    /// generation bump, while the child is still single-threaded.
    pub child: Option<Hook>,
    /// Opaque word handed to each hook (instance address, typically).
    pub data: usize,
}

#[derive(Clone, Copy)]
struct Entry {
    set: HookSet,
    /// Monotonic registration sequence; orders hook execution even when
    /// slots are reused after unregistration.
    seq: u64,
}

/// Fixed-capacity registry. All slot access happens under `lock`, which
/// doubles as the fork serialization lock (held across the fork itself).
struct Registry {
    lock: AtomicBool,
    slots: UnsafeCell<[Option<Entry>; MAX_HOOKS]>,
    next_seq: UnsafeCell<u64>,
}

// Slot data is only touched while `lock` is held.
unsafe impl Sync for Registry {}

static REGISTRY: Registry = Registry {
    lock: AtomicBool::new(false),
    slots: UnsafeCell::new([None; MAX_HOOKS]),
    next_seq: UnsafeCell::new(1),
};

/// Process generation: 0 at process start, +1 in every forked child
/// (bumped before the child hooks run).
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Whether [`install`] has bridged the runners into `pthread_atfork`.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// The current process generation. Cheap (one relaxed load) — meant for
/// hot-path "did a fork happen?" stamps.
#[inline]
pub fn generation() -> u64 {
    GENERATION.load(Ordering::Relaxed)
}

/// Proof of a successful [`register`]; pass it to [`unregister`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookToken {
    slot: usize,
    seq: u64,
}

fn lock_registry() {
    while REGISTRY
        .lock
        .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        core::hint::spin_loop();
    }
}

fn unlock_registry() {
    REGISTRY.lock.store(false, Ordering::Release);
}

/// Registers a hook set. Returns `None` when all [`MAX_HOOKS`] slots are
/// taken. Never allocates. Must not be called from inside a hook.
pub fn register(set: HookSet) -> Option<HookToken> {
    lock_registry();
    let token = unsafe {
        let slots = &mut *REGISTRY.slots.get();
        let seq_cell = &mut *REGISTRY.next_seq.get();
        let mut found = None;
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                let seq = *seq_cell;
                *seq_cell += 1;
                *slot = Some(Entry { set, seq });
                found = Some(HookToken { slot: i, seq });
                break;
            }
        }
        found
    };
    unlock_registry();
    token
}

/// Unregisters a previously registered hook set. A stale token (slot
/// already reused) is detected via the sequence number and ignored.
/// Serializes against [`fork`]: an unregistration can never interleave
/// with a fork in progress, so a hook set is either fully present for
/// all three phases of a fork or absent from all three.
pub fn unregister(token: HookToken) {
    lock_registry();
    unsafe {
        let slots = &mut *REGISTRY.slots.get();
        if let Some(entry) = slots[token.slot] {
            if entry.seq == token.seq {
                slots[token.slot] = None;
            }
        }
    }
    unlock_registry();
}

/// Number of currently registered hook sets (diagnostics/tests).
pub fn registered_count() -> usize {
    lock_registry();
    let n = unsafe { (*REGISTRY.slots.get()).iter().flatten().count() };
    unlock_registry();
    n
}

/// Runs `f` on every live entry, ordered by registration sequence
/// (ascending or descending). Selection scan instead of a sort: no
/// allocation, and MAX_HOOKS² is trivially small.
///
/// # Safety
///
/// Registry lock must be held by the caller.
unsafe fn for_each_ordered(descending: bool, mut f: impl FnMut(&Entry)) {
    let slots = unsafe { &*REGISTRY.slots.get() };
    let mut last: Option<u64> = None;
    loop {
        let mut best: Option<&Entry> = None;
        for entry in slots.iter().flatten() {
            let better_than_last = match last {
                None => true,
                Some(l) => {
                    if descending {
                        entry.seq < l
                    } else {
                        entry.seq > l
                    }
                }
            };
            if !better_than_last {
                continue;
            }
            let better_than_best = match best {
                None => true,
                Some(b) => {
                    if descending {
                        entry.seq > b.seq
                    } else {
                        entry.seq < b.seq
                    }
                }
            };
            if better_than_best {
                best = Some(entry);
            }
        }
        match best {
            Some(entry) => {
                last = Some(entry.seq);
                f(entry);
            }
            None => break,
        }
    }
}

/// Prepare phase: takes the registry lock (held until `run_parent` /
/// `run_child` releases it) and runs prepare hooks newest-first.
fn run_prepare() {
    lock_registry();
    unsafe {
        for_each_ordered(true, |e| {
            if let Some(h) = e.set.prepare {
                h(e.set.data);
            }
        });
    }
}

/// Parent phase: runs parent hooks oldest-first, then releases the lock
/// taken by `run_prepare`.
fn run_parent() {
    unsafe {
        for_each_ordered(false, |e| {
            if let Some(h) = e.set.parent {
                h(e.set.data);
            }
        });
    }
    unlock_registry();
}

/// Child phase: bumps the generation, runs child hooks oldest-first,
/// then releases the lock. The lock word was copied in the *held* state
/// and the forking thread — the only one alive — is its owner, so the
/// release is sound.
fn run_child() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    unsafe {
        for_each_ordered(false, |e| {
            if let Some(h) = e.set.child {
                h(e.set.data);
            }
        });
    }
    unlock_registry();
}

extern "C" fn bridge_prepare() {
    run_prepare();
}
extern "C" fn bridge_parent() {
    run_parent();
}
extern "C" fn bridge_child() {
    run_child();
}

/// Bridges the hook runners into the real `pthread_atfork`, so raw
/// `fork()` calls made by code outside this workspace also run them.
/// Idempotent; returns `true` once the bridge is active.
///
/// Call this early (e.g. top of `main`) from a context where allocation
/// is safe — glibc's `pthread_atfork` may allocate, which is exactly why
/// allocator construction never calls this implicitly. After a
/// successful `install`, [`fork`] stops running hooks manually (libc
/// runs the bridge) so hooks never fire twice.
pub fn install() -> bool {
    if INSTALLED.load(Ordering::Acquire) {
        return true;
    }
    let rc = unsafe {
        sys::pthread_atfork(Some(bridge_prepare), Some(bridge_parent), Some(bridge_child))
    };
    if rc == 0 {
        INSTALLED.store(true, Ordering::Release);
        true
    } else {
        false
    }
}

/// Whether the `pthread_atfork` bridge is active.
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Acquire)
}

/// Forks the process with the full hook protocol.
///
/// Returns the raw `fork` result: 0 in the child, the child's pid in the
/// parent, negative on failure (in which case prepare hooks were undone
/// by the parent hooks — both run in the forking process).
///
/// # Safety
///
/// `fork` in a multithreaded process is inherently delicate: the child
/// must restrict itself to the recovered allocators and async-signal-safe
/// libc until it execs or exits (glibc's own atfork handling covers libc
/// malloc's internal locks). The caller must not hold any lock a
/// registered hook acquires (don't fork from inside an allocation).
pub unsafe fn fork() -> i32 {
    if installed() {
        // libc runs the bridge hooks itself.
        return unsafe { sys::fork() };
    }
    run_prepare();
    let pid = unsafe { sys::fork() };
    if pid == 0 {
        run_child();
    } else {
        // Parent hooks also undo prepare when the fork itself failed.
        run_parent();
    }
    pid
}

/// Recovery entry point for a child created by a **raw** `fork()` that
/// bypassed both [`fork`] and the [`install`] bridge: bumps the
/// generation and runs the child hooks.
///
/// # Safety
///
/// Must be called by the forking thread, in the child, before any other
/// thread is spawned and before the allocators are used, and only when
/// the hooks did *not* already run (calling it after [`fork`] would
/// double-bump the generation). The registry lock is forcibly taken:
/// any parent thread that held it died in the fork.
pub unsafe fn child_after_raw_fork() {
    // Steal the lock unconditionally: the child is single-threaded, so
    // a "held" lock has no live owner.
    REGISTRY.lock.store(true, Ordering::Relaxed);
    run_child();
}

/// Minimal raw libc surface for process-lifecycle work: declared
/// `extern "C"` against the already-linked libc (the same pattern as
/// `osmem`'s `mprotect`), keeping the workspace dependency-free.
pub mod sys {
    unsafe extern "C" {
        /// Raw `fork(2)`. Prefer [`super::fork`], which runs the hooks.
        pub fn fork() -> i32;
        /// `waitpid(2)`.
        pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        /// `_exit(2)` — exits without running atexit handlers or
        /// flushing stdio; the only safe way for a forked test child to
        /// report a verdict.
        pub fn _exit(code: i32) -> !;
        /// `kill(2)`.
        pub fn kill(pid: i32, sig: i32) -> i32;
        /// `raise(3)` — sends `sig` to the calling thread.
        pub fn raise(sig: i32) -> i32;
        /// `getpid(2)`.
        pub fn getpid() -> i32;
        /// `execv(2)`.
        pub fn execv(path: *const u8, argv: *const *const u8) -> i32;
        /// `signal(2)`; `handler` is a function address or `SIG_DFL`/
        /// `SIG_IGN` (0/1).
        pub fn signal(sig: i32, handler: usize) -> usize;
        /// `pthread_atfork(3)` — used by [`super::install`].
        pub fn pthread_atfork(
            prepare: Option<extern "C" fn()>,
            parent: Option<extern "C" fn()>,
            child: Option<extern "C" fn()>,
        ) -> i32;
        /// `write(2)` — the only output primitive that is
        /// async-signal-safe; crash reporters must use nothing else.
        pub fn write(fd: i32, buf: *const u8, len: usize) -> isize;
        /// `sigaction(2)` against the glibc `struct sigaction` layout
        /// mirrored by [`SigAction`]. Used to install `SA_SIGINFO`
        /// crash handlers while capturing the previous disposition for
        /// chaining.
        pub fn sigaction(sig: i32, act: *const SigAction, old: *mut SigAction) -> i32;
        /// `atexit(3)` — registers a normal-exit hook (leak reports).
        pub fn atexit(cb: extern "C" fn()) -> i32;
    }

    /// glibc's `struct sigaction` on Linux: handler word, 1024-bit
    /// signal mask, flags, restorer. Zero-initialised is a valid empty
    /// mask. `sa_sigaction` holds either a function address or
    /// `SIG_DFL`/`SIG_IGN` (0/1).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SigAction {
        pub sa_sigaction: usize,
        pub sa_mask: [u64; 16],
        pub sa_flags: i32,
        pub sa_restorer: usize,
    }

    impl SigAction {
        /// An empty (all-default) action with the given handler word
        /// and flags.
        pub fn new(handler: usize, flags: i32) -> Self {
            SigAction { sa_sigaction: handler, sa_mask: [0; 16], sa_flags: flags, sa_restorer: 0 }
        }
    }

    /// The prefix of Linux's `siginfo_t` that crash handlers need:
    /// `si_addr` (the faulting address for SIGSEGV/SIGBUS) lives at
    /// offset 16 on 64-bit Linux, after signo/errno/code + padding.
    #[repr(C)]
    pub struct SigInfo {
        pub si_signo: i32,
        pub si_errno: i32,
        pub si_code: i32,
        _pad: i32,
        pub si_addr: usize,
        _rest: [u64; 13],
    }

    /// `waitpid` option: return immediately when no child has exited.
    pub const WNOHANG: i32 = 1;
    /// `SIGUSR1` on Linux.
    pub const SIGUSR1: i32 = 10;
    /// `SIGKILL`.
    pub const SIGKILL: i32 = 9;
    /// `SIGABRT` — raised by `abort(3)`/Rust `panic=abort`.
    pub const SIGABRT: i32 = 6;
    /// `SIGBUS` on Linux.
    pub const SIGBUS: i32 = 7;
    /// `SIGSEGV` on Linux.
    pub const SIGSEGV: i32 = 11;
    /// `sigaction` flag: deliver the 3-argument `SA_SIGINFO` handler.
    pub const SA_SIGINFO: i32 = 4;

    /// Decodes a `waitpid` status: `Some(code)` if the child exited
    /// normally (the `WIFEXITED`/`WEXITSTATUS` pair).
    pub fn exit_code(status: i32) -> Option<i32> {
        if status & 0x7f == 0 {
            Some((status >> 8) & 0xff)
        } else {
            None
        }
    }

    /// Decodes a `waitpid` status: `Some(signal)` if the child was
    /// killed by a signal (the `WIFSIGNALED`/`WTERMSIG` pair).
    pub fn term_signal(status: i32) -> Option<i32> {
        let sig = status & 0x7f;
        if sig != 0 && sig != 0x7f { Some(sig) } else { None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    // The unit tests share the process-global registry; serialize them.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    static TRACE: AtomicUsize = AtomicUsize::new(0);

    unsafe fn record(tag: usize) {
        // Shift in a nibble per hook call: a readable call-order trace.
        let mut cur = TRACE.load(Ordering::Relaxed);
        loop {
            match TRACE.compare_exchange(
                cur,
                (cur << 4) | tag,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    unsafe fn p1(_d: usize) {
        unsafe { record(0x1) }
    }
    unsafe fn p2(_d: usize) {
        unsafe { record(0x2) }
    }
    unsafe fn c1(_d: usize) {
        unsafe { record(0xA) }
    }
    unsafe fn c2(_d: usize) {
        unsafe { record(0xB) }
    }

    #[test]
    fn register_unregister_roundtrip() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = registered_count();
        let t = register(HookSet { prepare: Some(p1), ..Default::default() }).unwrap();
        assert_eq!(registered_count(), before + 1);
        unregister(t);
        assert_eq!(registered_count(), before);
        // Stale token against a reused slot is ignored.
        let t2 = register(HookSet { prepare: Some(p2), ..Default::default() }).unwrap();
        unregister(t);
        assert_eq!(registered_count(), before + 1, "stale token must not evict");
        unregister(t2);
    }

    #[test]
    fn prepare_reversed_parent_in_order() {
        let _g = TEST_LOCK.lock().unwrap();
        TRACE.store(0, Ordering::Relaxed);
        let t1 = register(HookSet { prepare: Some(p1), parent: Some(c1), ..Default::default() })
            .unwrap();
        let t2 = register(HookSet { prepare: Some(p2), parent: Some(c2), ..Default::default() })
            .unwrap();
        run_prepare();
        run_parent();
        unregister(t1);
        unregister(t2);
        // prepare: newest first (2 then 1); parent: oldest first (A then B).
        assert_eq!(TRACE.load(Ordering::Relaxed), 0x21AB);
    }

    #[test]
    fn fork_bumps_generation_and_reports_child_exit() {
        let _g = TEST_LOCK.lock().unwrap();
        let gen_before = generation();
        let pid = unsafe { fork() };
        assert!(pid >= 0, "fork failed");
        if pid == 0 {
            // Child: report the generation delta via the exit code.
            // Only _exit is safe here (other test threads may hold
            // arbitrary locks).
            let delta = generation().wrapping_sub(gen_before) as i32;
            unsafe { sys::_exit(40 + delta) };
        }
        let mut status = 0;
        let r = unsafe { sys::waitpid(pid, &mut status, 0) };
        assert_eq!(r, pid);
        assert_eq!(sys::exit_code(status), Some(41), "child saw generation + 1");
        assert_eq!(generation(), gen_before, "parent generation unchanged");
    }
}
