//! Allocator memory accounting used by the §4.2.5 space experiment.
//!
//! The paper tracks "the maximum space used by" each allocator while
//! running Threadtest, Larson and Producer-consumer. Every allocator in
//! this workspace obtains pages through an accounting layer (see
//! `osmem::CountingSource`) and reports the numbers through
//! [`AllocStats`].

use core::sync::atomic::{AtomicUsize, Ordering};

/// A point-in-time snapshot of an allocator's OS-level memory usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently obtained from the OS and not yet returned.
    pub live_bytes: usize,
    /// High-water mark of `live_bytes` since the allocator was created.
    pub peak_bytes: usize,
    /// Number of OS-level allocation calls (the paper batches superblocks
    /// into hyperblocks specifically to keep this low, §3.2.5).
    pub os_allocs: usize,
    /// Number of OS-level release calls.
    pub os_frees: usize,
}

impl AllocStats {
    /// Ratio of this snapshot's peak to another's, the shape reported in
    /// §4.2.5 ("the ratio of the maximum space allocated by Ptmalloc to
    /// the maximum space allocated by ours ... ranged from 1.16 to 3.83").
    ///
    /// Returns `None` if `other` has a zero peak.
    pub fn peak_ratio_over(&self, other: &AllocStats) -> Option<f64> {
        if other.peak_bytes == 0 {
            None
        } else {
            Some(self.peak_bytes as f64 / other.peak_bytes as f64)
        }
    }
}

impl core::fmt::Display for AllocStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "live={}B peak={}B os_allocs={} os_frees={}",
            self.live_bytes, self.peak_bytes, self.os_allocs, self.os_frees
        )
    }
}

/// Lock-free live/peak counter shared by the allocators' OS layers.
///
/// `record_alloc`/`record_free` are wait-free apart from the peak update,
/// which is a bounded CAS loop; this keeps the accounting from perturbing
/// the lock-freedom claims of the allocator under test.
#[derive(Debug, Default)]
pub struct UsageCounter {
    live: AtomicUsize,
    peak: AtomicUsize,
    allocs: AtomicUsize,
    frees: AtomicUsize,
}

impl UsageCounter {
    /// Creates a counter with all fields zero.
    pub const fn new() -> Self {
        Self {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            allocs: AtomicUsize::new(0),
            frees: AtomicUsize::new(0),
        }
    }

    /// Records an OS-level allocation of `bytes`.
    pub fn record_alloc(&self, bytes: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Lock-free max: retry only while someone else holds a smaller peak.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            match self
                .peak
                .compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
    }

    /// Records an OS-level release of `bytes`.
    pub fn record_free(&self, bytes: usize) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Snapshots the counter.
    pub fn snapshot(&self) -> AllocStats {
        AllocStats {
            live_bytes: self.live.load(Ordering::Relaxed),
            peak_bytes: self.peak.load(Ordering::Relaxed),
            os_allocs: self.allocs.load(Ordering::Relaxed),
            os_frees: self.frees.load(Ordering::Relaxed),
        }
    }

    /// Resets live/peak/alloc/free counts to zero (between experiments).
    pub fn reset(&self) {
        self.live.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_tracks_live_and_peak() {
        let c = UsageCounter::new();
        c.record_alloc(100);
        c.record_alloc(50);
        c.record_free(100);
        c.record_alloc(25);
        let s = c.snapshot();
        assert_eq!(s.live_bytes, 75);
        assert_eq!(s.peak_bytes, 150);
        assert_eq!(s.os_allocs, 3);
        assert_eq!(s.os_frees, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let c = UsageCounter::new();
        c.record_alloc(10);
        c.reset();
        assert_eq!(c.snapshot(), AllocStats::default());
    }

    #[test]
    fn peak_ratio() {
        let a = AllocStats { peak_bytes: 383, ..Default::default() };
        let b = AllocStats { peak_bytes: 100, ..Default::default() };
        let r = a.peak_ratio_over(&b).unwrap();
        assert!((r - 3.83).abs() < 1e-9);
        assert!(a.peak_ratio_over(&AllocStats::default()).is_none());
    }

    #[test]
    fn concurrent_peak_is_at_least_max_single_live() {
        // 4 threads each allocate then free 1000 bytes repeatedly; the peak
        // must be at least 1000 and at most 4000.
        let c = Arc::new(UsageCounter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.record_alloc(1000);
                    c.record_free(1000);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.live_bytes, 0);
        assert!(s.peak_bytes >= 1000 && s.peak_bytes <= 4000, "peak={}", s.peak_bytes);
        assert_eq!(s.os_allocs, 4000);
        assert_eq!(s.os_frees, 4000);
    }

    #[test]
    fn display_is_nonempty() {
        let s = AllocStats::default();
        assert!(!format!("{s}").is_empty());
    }
}
