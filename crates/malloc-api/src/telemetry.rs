//! Lock-free telemetry primitives shared by every instrumented crate.
//!
//! Compiled only under the `stats` cargo feature. All counters use
//! `Relaxed` ordering: telemetry observes *how often* paths run, never
//! *orders* them — a stats read racing a stats write may be off by a few
//! events, which is exactly the tolerance a monotonic counter snapshot
//! needs (see DESIGN.md §9 for the full rationale). The only CAS loop in
//! the module is the lock-free max of [`MaxGauge`], the same pattern as
//! [`UsageCounter`](crate::stats::UsageCounter)'s peak tracking.

use core::sync::atomic::{AtomicU64, Ordering};

/// A relaxed, monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const so counters can live in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free high-water mark (bounded CAS loop, like peak bytes).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        MaxGauge(AtomicU64::new(0))
    }

    /// Raises the high-water mark to `v` if `v` exceeds it.
    #[inline]
    pub fn observe(&self, v: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > cur {
            match self.0.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Current high-water mark.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Buckets of the CAS-retry histograms: 0, 1, 2–3, 4–7, 8–15, 16–31,
/// 32–63, 64+.
pub const RETRY_BUCKETS: usize = 8;

/// A power-of-two-bucket histogram of per-operation counts.
///
/// `record(n)` lands in bucket `0` for `n == 0`, bucket
/// `1 + floor(log2 n)` otherwise, saturating at the last bucket — so the
/// retry histograms read "operations that needed 0 / 1 / 2–3 / ... CAS
/// retries".
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    buckets: [AtomicU64; N],
}

impl<const N: usize> Default for Histogram<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Histogram<N> {
    /// A zeroed histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not Copy; build the array element by element.
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [ZERO; N] }
    }

    /// Index of the bucket `n` falls in.
    #[inline]
    pub fn bucket_of(n: u64) -> usize {
        if n == 0 {
            0
        } else {
            ((64 - n.leading_zeros()) as usize).min(N - 1)
        }
    }

    /// Records one sample of value `n`.
    #[inline]
    pub fn record(&self, n: u64) {
        self.buckets[Self::bucket_of(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all bucket counts.
    pub fn snapshot(&self) -> [u64; N] {
        core::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Label of bucket `i` of an `N`-bucket histogram ("0", "1", "2-3", ...,
/// "64+") for report rendering.
pub fn bucket_label(i: usize, n: usize) -> String {
    if i == 0 {
        "0".into()
    } else if i == n - 1 {
        format!("{}+", 1u64 << (i - 1))
    } else if i == 1 {
        "1".into()
    } else {
        format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn max_gauge_keeps_high_water() {
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(10);
        g.observe(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::<8>::bucket_of(0), 0);
        assert_eq!(Histogram::<8>::bucket_of(1), 1);
        assert_eq!(Histogram::<8>::bucket_of(2), 2);
        assert_eq!(Histogram::<8>::bucket_of(3), 2);
        assert_eq!(Histogram::<8>::bucket_of(4), 3);
        assert_eq!(Histogram::<8>::bucket_of(63), 6);
        assert_eq!(Histogram::<8>::bucket_of(64), 7);
        assert_eq!(Histogram::<8>::bucket_of(u64::MAX), 7);
    }

    #[test]
    fn histogram_records_and_totals() {
        let h: Histogram<8> = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(3);
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s[0], 2);
        assert_eq!(s[2], 1);
        assert_eq!(s[7], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bucket_labels_render() {
        assert_eq!(bucket_label(0, 8), "0");
        assert_eq!(bucket_label(1, 8), "1");
        assert_eq!(bucket_label(2, 8), "2-3");
        assert_eq!(bucket_label(6, 8), "32-63");
        assert_eq!(bucket_label(7, 8), "64+");
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let c = std::sync::Arc::new(Counter::new());
        let mut hs = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            hs.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
