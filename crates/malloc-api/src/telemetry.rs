//! Lock-free telemetry primitives shared by every instrumented crate.
//!
//! Compiled only under the `stats` cargo feature. All counters use
//! `Relaxed` ordering: telemetry observes *how often* paths run, never
//! *orders* them — a stats read racing a stats write may be off by a few
//! events, which is exactly the tolerance a monotonic counter snapshot
//! needs (see DESIGN.md §9 for the full rationale). The only CAS loop in
//! the module is the lock-free max of [`MaxGauge`], the same pattern as
//! [`UsageCounter`](crate::stats::UsageCounter)'s peak tracking.

use core::sync::atomic::{AtomicU64, Ordering};

/// A relaxed, monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const so counters can live in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free high-water mark (bounded CAS loop, like peak bytes).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        MaxGauge(AtomicU64::new(0))
    }

    /// Raises the high-water mark to `v` if `v` exceeds it.
    #[inline]
    pub fn observe(&self, v: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > cur {
            match self.0.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Current high-water mark.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Buckets of the CAS-retry histograms: 0, 1, 2–3, 4–7, 8–15, 16–31,
/// 32–63, 64+.
pub const RETRY_BUCKETS: usize = 8;

/// A power-of-two-bucket histogram of per-operation counts.
///
/// `record(n)` lands in bucket `0` for `n == 0`, bucket
/// `1 + floor(log2 n)` otherwise, saturating at the last bucket — so the
/// retry histograms read "operations that needed 0 / 1 / 2–3 / ... CAS
/// retries".
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    buckets: [AtomicU64; N],
}

impl<const N: usize> Default for Histogram<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Histogram<N> {
    /// A zeroed histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not Copy; build the array element by element.
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [ZERO; N] }
    }

    /// Index of the bucket `n` falls in.
    #[inline]
    pub fn bucket_of(n: u64) -> usize {
        if n == 0 {
            0
        } else {
            ((64 - n.leading_zeros()) as usize).min(N - 1)
        }
    }

    /// Records one sample of value `n`.
    #[inline]
    pub fn record(&self, n: u64) {
        self.buckets[Self::bucket_of(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all bucket counts.
    pub fn snapshot(&self) -> [u64; N] {
        core::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Buckets of the per-operation latency histograms. Bucket `i` covers
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 is "0 ns", i.e. below clock
/// resolution); 32 buckets reach `2^31` ns ≈ 2.1 s before saturating,
/// which comfortably brackets everything from a TLS-hit malloc (~20 ns)
/// to a full trim pass under OOM backoff.
pub const TIME_BUCKETS: usize = 32;

/// Process-relative monotonic nanoseconds.
///
/// All timestamps in the telemetry and profiling layers come from this
/// one clock so latencies, event times and sample ages are directly
/// comparable. Backed by `Instant` (CLOCK_MONOTONIC on Linux) against a
/// lazily pinned epoch; the epoch is pinned once per process, so
/// readings are wall-clock-shift immune and strictly non-decreasing per
/// thread.
#[inline]
pub fn monotonic_nanos() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// A latency histogram: power-of-two-nanosecond buckets plus a running
/// sum, so snapshots can report both percentile estimates and the mean
/// (and OpenMetrics can render `_sum`/`_count`).
///
/// Recording is two relaxed `fetch_add`s — no CAS, no locks — so it is
/// safe on every allocator path including TLS teardown.
#[derive(Debug, Default)]
pub struct LatencyHist {
    hist: Histogram<TIME_BUCKETS>,
    sum: Counter,
}

impl LatencyHist {
    /// A zeroed histogram.
    pub const fn new() -> Self {
        LatencyHist { hist: Histogram::new(), sum: Counter::new() }
    }

    /// Records one operation that took `nanos` nanoseconds.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.hist.record(nanos);
        self.sum.add(nanos);
    }

    /// Records the elapsed time since `start` (a [`monotonic_nanos`]
    /// reading taken at operation entry).
    #[inline]
    pub fn record_since(&self, start: u64) {
        self.record(monotonic_nanos().saturating_sub(start));
    }

    /// Consistent-enough snapshot of buckets and sum (relaxed reads; a
    /// racing record may be visible in one but not the other, which a
    /// monotonic report tolerates).
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot { buckets: self.hist.snapshot(), sum_nanos: self.sum.get() }
    }
}

/// Point-in-time copy of a [`LatencyHist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Power-of-two-ns bucket counts (see [`TIME_BUCKETS`]).
    pub buckets: [u64; TIME_BUCKETS],
    /// Sum of all recorded durations in nanoseconds.
    pub sum_nanos: u64,
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        LatencySnapshot { buckets: [0; TIME_BUCKETS], sum_nanos: 0 }
    }
}

impl LatencySnapshot {
    /// Total operations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (inclusive, in ns) of bucket `i`; the last bucket is
    /// open-ended and reports its lower bound (a saturation marker).
    pub fn bucket_upper_nanos(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i == TIME_BUCKETS - 1 {
            1u64 << (i - 1)
        } else {
            (1u64 << i) - 1
        }
    }

    /// Estimated `q`-quantile in nanoseconds (`q` in `[0, 1]`), as the
    /// upper bound of the first bucket at which the cumulative count
    /// reaches `ceil(q * total)`. Conservative: the true quantile is at
    /// most one power of two below the estimate. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_nanos(i);
            }
        }
        Self::bucket_upper_nanos(TIME_BUCKETS - 1)
    }

    /// Mean duration in nanoseconds (0 if empty).
    pub fn mean_nanos(&self) -> u64 {
        let n = self.count();
        if n == 0 { 0 } else { self.sum_nanos / n }
    }

    /// Merges another snapshot into this one (for cross-histogram
    /// aggregates like "all malloc paths combined").
    pub fn merge(&mut self, other: &LatencySnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.sum_nanos += other.sum_nanos;
    }
}

/// Label of bucket `i` of an `N`-bucket histogram ("0", "1", "2-3", ...,
/// "64+") for report rendering.
pub fn bucket_label(i: usize, n: usize) -> String {
    if i == 0 {
        "0".into()
    } else if i == n - 1 {
        format!("{}+", 1u64 << (i - 1))
    } else if i == 1 {
        "1".into()
    } else {
        format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn max_gauge_keeps_high_water() {
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(10);
        g.observe(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::<8>::bucket_of(0), 0);
        assert_eq!(Histogram::<8>::bucket_of(1), 1);
        assert_eq!(Histogram::<8>::bucket_of(2), 2);
        assert_eq!(Histogram::<8>::bucket_of(3), 2);
        assert_eq!(Histogram::<8>::bucket_of(4), 3);
        assert_eq!(Histogram::<8>::bucket_of(63), 6);
        assert_eq!(Histogram::<8>::bucket_of(64), 7);
        assert_eq!(Histogram::<8>::bucket_of(u64::MAX), 7);
    }

    #[test]
    fn histogram_records_and_totals() {
        let h: Histogram<8> = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(3);
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s[0], 2);
        assert_eq!(s[2], 1);
        assert_eq!(s[7], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bucket_labels_render() {
        assert_eq!(bucket_label(0, 8), "0");
        assert_eq!(bucket_label(1, 8), "1");
        assert_eq!(bucket_label(2, 8), "2-3");
        assert_eq!(bucket_label(6, 8), "32-63");
        assert_eq!(bucket_label(7, 8), "64+");
    }

    #[test]
    fn monotonic_nanos_is_monotonic() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
    }

    #[test]
    fn latency_bucket_bounds() {
        assert_eq!(LatencySnapshot::bucket_upper_nanos(0), 0);
        assert_eq!(LatencySnapshot::bucket_upper_nanos(1), 1);
        assert_eq!(LatencySnapshot::bucket_upper_nanos(2), 3);
        assert_eq!(LatencySnapshot::bucket_upper_nanos(10), 1023);
        // Last bucket is open-ended and labels its lower bound.
        assert_eq!(
            LatencySnapshot::bucket_upper_nanos(TIME_BUCKETS - 1),
            1u64 << (TIME_BUCKETS - 2)
        );
    }

    #[test]
    fn latency_percentiles_from_known_distribution() {
        let h = LatencyHist::new();
        // 90 ops at ~100 ns (bucket 7: 64-127), 9 at ~1000 ns
        // (bucket 10: 512-1023), 1 at ~1e6 ns (bucket 20).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum_nanos, 90 * 100 + 9 * 1000 + 1_000_000);
        assert_eq!(s.percentile(0.50), 127);
        assert_eq!(s.percentile(0.90), 127);
        assert_eq!(s.percentile(0.99), 1023);
        assert_eq!(s.percentile(0.999), (1u64 << 20) - 1);
        assert_eq!(s.mean_nanos(), s.sum_nanos / 100);
    }

    #[test]
    fn latency_percentile_edge_cases() {
        let empty = LatencySnapshot::default();
        assert_eq!(empty.percentile(0.99), 0);
        assert_eq!(empty.mean_nanos(), 0);

        let h = LatencyHist::new();
        h.record(7);
        let s = h.snapshot();
        // A single sample is every percentile.
        assert_eq!(s.percentile(0.0), 7);
        assert_eq!(s.percentile(0.5), 7);
        assert_eq!(s.percentile(1.0), 7);
    }

    #[test]
    fn latency_merge_accumulates() {
        let a = LatencyHist::new();
        let b = LatencyHist::new();
        a.record(10);
        b.record(10_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum_nanos, 10_010);
    }

    #[test]
    fn record_since_measures_forward_time() {
        let h = LatencyHist::new();
        let t0 = monotonic_nanos();
        h.record_since(t0);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        // Can't assert much about magnitude, but it must not wrap.
        assert!(s.sum_nanos < 1_000_000_000, "sub-second elapsed expected");
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let c = std::sync::Arc::new(Counter::new());
        let mut hs = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            hs.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
